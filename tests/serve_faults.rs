//! Fault injection against the real `vulnds serve --tcp` binary: slow
//! clients holding half-written lines, mid-request disconnects, floods
//! past the shed threshold, oversized frames, connection-cap refusals,
//! deadline-pinned queries, and shutdown while a query is pinned. The
//! contract under every fault is the same — the server never hangs or
//! aborts, refusals are structured JSON, and degraded answers replay
//! bit-identically through the service.
//!
//! Every client read carries a hard socket timeout and every child
//! wait is bounded, so a regression shows up as a test failure, not a
//! wedged CI job.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use vulnds::json::Json;

/// Longest any single client read may take before the test fails.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Generates the shared graph fixture once, via the binary's own
/// `generate` command, so the suite exercises the real file path too.
fn graph_path() -> &'static str {
    static PATH: OnceLock<String> = OnceLock::new();
    PATH.get_or_init(|| {
        let path = std::env::temp_dir().join(format!("vulnds_faults_{}.graph", std::process::id()));
        let path = path.to_str().expect("temp path is utf-8").to_string();
        let status = Command::new(env!("CARGO_BIN_EXE_vulnds"))
            .args(["generate", "interbank", &path, "--scale", "0.5", "--seed", "7"])
            .status()
            .expect("spawn vulnds generate");
        assert!(status.success(), "generate failed: {status}");
        path
    })
}

/// One live `vulnds serve --tcp 127.0.0.1:0` child. Dropping the
/// handle kills the child, so a failing test never leaks a server.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_vulnds"))
            .args(["serve", graph_path(), "--tcp", "127.0.0.1:0", "--seed", "11"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn vulnds serve");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        // The first stderr line announces the bound address (the test
        // asked for port 0, so this is the only way to learn it).
        let mut line = String::new();
        stderr.read_line(&mut line).expect("read listening line");
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split(' ').next())
            .unwrap_or_else(|| panic!("no bound address in {line:?}"))
            .to_string();
        // Drain the rest of stderr forever so the child never blocks
        // on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = stderr.read_to_string(&mut sink);
        });
        Server { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr)
    }

    /// Polls the child until it exits or the budget runs out.
    fn wait_exit(&mut self, within: Duration) -> Option<ExitStatus> {
        let deadline = Instant::now() + within;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return Some(status);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A newline-delimited JSON client with a hard read timeout.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT)).expect("read timeout");
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { writer: stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    /// Best-effort write for retry loops racing a server-side close.
    fn try_send(&mut self, line: &str) -> bool {
        let sent = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush());
        sent.is_ok()
    }

    /// Reads one response line; `None` on a server-side close (clean
    /// EOF or an RST from a refused/raced connection).
    fn recv_line(&mut self) -> Option<String> {
        use std::io::ErrorKind;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim().to_string()),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                ) =>
            {
                None
            }
            Err(e) => panic!("client read failed (timeout = wedged server?): {e}"),
        }
    }

    fn recv(&mut self) -> Json {
        let line = self.recv_line().expect("server closed instead of answering");
        Json::parse(&line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
    }
}

fn ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_text(response: &Json) -> &str {
    response.get("error").and_then(Json::as_str).unwrap_or("")
}

fn id_of(response: &Json) -> Option<u64> {
    response.get("id").and_then(Json::as_u64)
}

#[test]
fn slow_loris_partial_lines_never_wedge_other_clients() {
    let server = Server::spawn(&["--workers", "1"]);
    // A slow client trickles half a request and then stalls without
    // ever sending the newline.
    let mut loris = server.client();
    loris.writer.write_all(b"{\"id\": 1, \"cmd\":").expect("partial write");
    loris.writer.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(300));
    loris.writer.write_all(b" \"sta").expect("second dribble");
    loris.writer.flush().expect("flush");
    // While the loris holds its connection open, a well-behaved client
    // must be served normally.
    let mut honest = server.client();
    honest.send(r#"{"id": 2, "cmd": "stats"}"#);
    let answer = honest.recv();
    assert!(ok(&answer), "honest client starved behind a slow loris: {answer}");
    assert_eq!(id_of(&answer), Some(2));
    // Dropping the loris mid-line (a truncated frame, no newline, then
    // EOF) must not take the server down either.
    drop(loris);
    honest.send(r#"{"id": 3, "cmd": "stats"}"#);
    assert!(ok(&honest.recv()), "server died after a truncated frame");
}

#[test]
fn mid_request_disconnect_is_survived() {
    let server = Server::spawn(&["--workers", "2"]);
    // Fire a real query and vanish before the answer can be written;
    // the server's write fails on a dead socket and must be absorbed.
    let mut ghost = server.client();
    ghost.send(r#"{"id": 1, "cmd": "detect", "k": 2, "epsilon": 0.2}"#);
    drop(ghost);
    std::thread::sleep(Duration::from_millis(100));
    let mut after = server.client();
    after.send(r#"{"id": 2, "cmd": "detect", "k": 2, "epsilon": 0.2}"#);
    let answer = after.recv();
    assert!(ok(&answer), "server wedged by a mid-request disconnect: {answer}");
}

#[test]
fn floods_past_the_queue_shed_with_structured_refusals() {
    // One worker, pinned by a hostile-ε query with a self-limiting
    // timeout; the flood behind it overflows the bounded queue.
    let server = Server::spawn(&["--workers", "1"]);
    let mut client = server.client();
    const FLOOD: u64 = 600;
    // Reader thread first: responses interleave with our writes, and
    // an unread socket would eventually backpressure the server.
    let collector = {
        let addr_reader = client.reader.get_ref().try_clone().expect("clone");
        addr_reader.set_read_timeout(Some(CLIENT_READ_TIMEOUT)).expect("timeout");
        std::thread::spawn(move || {
            let mut lines = Vec::new();
            let mut reader = BufReader::new(addr_reader);
            let mut line = String::new();
            while (lines.len() as u64) < FLOOD + 1 {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => lines.push(line.trim().to_string()),
                    Err(e) => panic!("flood reader failed: {e}"),
                }
            }
            lines
        })
    };
    client.send(r#"{"id": 0, "cmd": "detect", "k": 3, "epsilon": 1e-9, "timeout_ms": 1500}"#);
    for id in 1..=FLOOD {
        client.send(&format!("{{\"id\": {id}, \"cmd\": \"stats\"}}"));
    }
    let responses: Vec<Json> = collector
        .join()
        .expect("collector panicked")
        .iter()
        .map(|l| Json::parse(l).expect("responses stay valid JSON"))
        .collect();
    assert_eq!(responses.len() as u64, FLOOD + 1, "every request must be answered or refused");
    let shed: Vec<&Json> =
        responses.iter().filter(|r| !ok(r) && error_text(r) == "overloaded").collect();
    assert!(!shed.is_empty(), "a {FLOOD}-deep flood behind a pinned worker must shed");
    for refusal in &shed {
        assert!(
            refusal.get("retry_after_ms").and_then(Json::as_u64).is_some_and(|ms| ms > 0),
            "refusal lacks a back-off hint: {refusal}"
        );
    }
    // The pinned query itself still answers (degraded or cancelled),
    // and nothing else failed for any reason besides overload.
    assert!(responses.iter().any(|r| id_of(r) == Some(0)), "pinned query never answered");
    for r in &responses {
        assert!(ok(r) || error_text(r) == "overloaded" || error_text(r).contains("cancel"), "{r}");
    }
}

#[test]
fn connection_cap_refuses_with_structured_errors() {
    let server = Server::spawn(&["--max-connections", "1"]);
    let mut holder = server.client();
    holder.send(r#"{"id": 1, "cmd": "stats"}"#);
    assert!(ok(&holder.recv()));
    // The second connection gets a parseable refusal and a close — not
    // a silent drop, not a hang.
    let mut refused = server.client();
    let line = refused.recv();
    assert_eq!(error_text(&line), "overloaded", "{line}");
    assert_eq!(line.get("id"), Some(&Json::Null));
    assert!(line.get("retry_after_ms").and_then(Json::as_u64).is_some());
    assert!(refused.recv_line().is_none(), "refused connection must be closed");
    // Releasing the slot re-admits new clients (the handler unwinds
    // asynchronously, so poll briefly).
    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = server.client();
        let answered = retry.try_send(r#"{"id": 3, "cmd": "stats"}"#)
            && matches!(retry.recv_line(), Some(l) if ok(&Json::parse(&l).expect("valid JSON")));
        if answered {
            break;
        }
        assert!(Instant::now() < deadline, "slot never released after the holder left");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn oversized_lines_are_refused_without_killing_the_connection() {
    let server = Server::spawn(&[]);
    let mut client = server.client();
    // Two MiB of junk on one line: refused with the framing error and
    // a null id (the line was never buffered), connection kept.
    let mut huge = String::with_capacity(2 << 20);
    huge.push_str("{\"id\": 1, \"junk\": \"");
    huge.push_str(&"x".repeat(2 << 20));
    huge.push_str("\"}");
    client.send(&huge);
    let refusal = client.recv();
    assert!(!ok(&refusal));
    assert!(error_text(&refusal).contains("exceeds"), "{refusal}");
    assert_eq!(refusal.get("id"), Some(&Json::Null));
    client.send(r#"{"id": 2, "cmd": "stats"}"#);
    let answer = client.recv();
    assert!(ok(&answer), "connection must survive an oversized frame: {answer}");
    assert_eq!(id_of(&answer), Some(2));
}

#[test]
fn pinned_epsilon_query_cancels_within_twice_its_timeout() {
    let server = Server::spawn(&["--workers", "1"]);
    let mut client = server.client();
    let started = Instant::now();
    client.send(r#"{"id": 7, "cmd": "detect", "k": 3, "epsilon": 1e-9, "timeout_ms": 750}"#);
    let answer = client.recv();
    let elapsed = started.elapsed();
    assert_eq!(id_of(&answer), Some(7));
    // The ~2× contract is enforced on optimized builds (the release CI
    // fault job). Unoptimized builds get a flat grace period: the
    // budget-order build runs ~20× slower there and cannot be cut
    // mid-sort, only before and after.
    let allowance = if cfg!(debug_assertions) {
        Duration::from_millis(20_000)
    } else {
        Duration::from_millis(1_500)
    };
    assert!(
        elapsed <= allowance,
        "ε=1e-9 with timeout_ms=750 took {elapsed:?} — cancellation is not responsive"
    );
    // Three outcomes are legitimate — a complete answer (the machine
    // beat the deadline), a degraded one (the deadline cut the pass),
    // or a clean cancellation (the cut landed before any sample). What
    // the contract bans is the fourth: sitting on the query.
    if !ok(&answer) {
        assert!(error_text(&answer).contains("cancel"), "{answer}");
    }
    // The session is not poisoned: an easy query still answers fully.
    client.send(r#"{"id": 8, "cmd": "detect", "k": 2, "epsilon": 0.3}"#);
    let after = client.recv();
    assert!(ok(&after), "{after}");
    assert_eq!(after.get("degraded"), Some(&Json::Bool(false)));
}

#[test]
fn degraded_answers_replay_bit_identically_through_the_service() {
    let server = Server::spawn(&["--workers", "1"]);
    let mut client = server.client();
    // Preferred path: let a real deadline cut the forward sampler
    // mid-flight (per-superblock cancellation, no early stop).
    client.send(
        r#"{"id": 1, "cmd": "detect", "algorithm": "sn", "k": 3, "epsilon": 1e-9, "seed": 5, "timeout_ms": 400}"#,
    );
    let mut first = client.recv();
    let deadline_degraded = ok(&first) && first.get("degraded") == Some(&Json::Bool(true));
    if !deadline_degraded {
        // On a machine fast enough to finish (or slow enough that the
        // deadline beat the first superblock, a clean cancellation),
        // fall back to an explicit cap — `sn` never early-stops, so a
        // cap under the budget degrades on every build profile.
        assert!(
            ok(&first) || error_text(&first).contains("cancel"),
            "unexpected failure mode: {first}"
        );
        client.send(
            r#"{"id": 11, "cmd": "detect", "algorithm": "sn", "k": 3, "epsilon": 1e-9, "seed": 5, "sample_cap": 4096}"#,
        );
        first = client.recv();
        assert!(ok(&first), "{first}");
        assert_eq!(first.get("degraded"), Some(&Json::Bool(true)), "{first}");
    }
    let used = first
        .get("stats")
        .and_then(|s| s.get("samples_used"))
        .and_then(Json::as_u64)
        .expect("degraded answer reports samples_used");
    assert!(used > 0);
    client.send(r#"{"id": 2, "cmd": "clear"}"#);
    assert!(ok(&client.recv()));
    // Replaying cold with the reported count as an explicit cap must
    // reproduce the cut-off answer bit for bit.
    client.send(&format!(
        "{{\"id\": 3, \"cmd\": \"detect\", \"algorithm\": \"sn\", \"k\": 3, \"epsilon\": 1e-9, \"seed\": 5, \"sample_cap\": {used}}}"
    ));
    let replay = client.recv();
    assert!(ok(&replay), "{replay}");
    assert_eq!(replay.get("top_k"), first.get("top_k"), "degraded answer failed to replay");
    assert_eq!(
        replay.get("stats").and_then(|s| s.get("samples_used")).and_then(Json::as_u64),
        Some(used)
    );
    assert_eq!(replay.get("achieved_epsilon"), first.get("achieved_epsilon"));
}

#[test]
fn shutdown_while_pinned_drains_and_exits_zero() {
    // A raised sample cap so the pinned pass outlasts the drain window
    // even on a fast release build; `sn` so it cannot early-stop its
    // way to a complete answer. The drain must actually cut it.
    let mut server =
        Server::spawn(&["--workers", "1", "--drain-ms", "500", "--max-samples", "200000000"]);
    let mut client = server.client();
    // Pin the single worker, give it a moment to be picked up, then
    // ask the server to shut down underneath it.
    client.send(r#"{"id": 1, "cmd": "detect", "algorithm": "sn", "k": 3, "epsilon": 1e-9}"#);
    std::thread::sleep(Duration::from_millis(150));
    let asked = Instant::now();
    client.send(r#"{"id": 9, "cmd": "shutdown"}"#);
    let ack = client.recv();
    assert!(ok(&ack), "{ack}");
    assert_eq!(id_of(&ack), Some(9));
    assert_eq!(ack.get("draining"), Some(&Json::Bool(true)));
    // The pinned query is drained into a degraded answer (or a clean
    // cancellation) rather than abandoned.
    let pinned = client.recv();
    assert_eq!(id_of(&pinned), Some(1));
    if ok(&pinned) {
        assert_eq!(pinned.get("degraded"), Some(&Json::Bool(true)), "{pinned}");
    } else {
        assert!(error_text(&pinned).contains("cancel"), "{pinned}");
    }
    assert!(client.recv_line().is_none(), "stream must close after the drain");
    // Optimized builds must wind down promptly against the 500ms drain
    // budget; unoptimized ones get the same flat grace period as the
    // deadline test (a debug superblock draw is slow enough to eat the
    // whole drain budget before the cancel check runs).
    let grace =
        if cfg!(debug_assertions) { Duration::from_secs(30) } else { Duration::from_secs(8) };
    let status = server.wait_exit(grace).expect("server failed to exit after shutdown + drain");
    assert!(status.success(), "drained shutdown must exit 0, got {status}");
    assert!(asked.elapsed() <= grace, "drain took {:?}", asked.elapsed());
}
