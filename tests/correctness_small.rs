//! Cross-crate correctness on small graphs where the exact answer is
//! computable by full possible-world enumeration.

use vulnds::core::{exact_default_probabilities, precision_with_ties, satisfies_epsilon_contract};
use vulnds::prelude::*;

/// The paper's Figure-3 network with uniform 0.2 probabilities.
fn figure3() -> UncertainGraph {
    let mut b = UncertainGraph::builder(5);
    for v in 0..5 {
        b.set_self_risk(NodeId(v), 0.2).unwrap();
    }
    for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
        b.add_edge(NodeId(u), NodeId(v), 0.2).unwrap();
    }
    b.build().unwrap()
}

/// A tiny random graph with at most 24 coins, for enumeration.
fn tiny_random(seed: u64) -> UncertainGraph {
    let mut rng = Xoshiro256pp::new(seed);
    let n = 6;
    let m = 8;
    let risks: Vec<f64> = (0..n).map(|_| rng.next_f64() * 0.6).collect();
    let mut edges = Vec::new();
    while edges.len() < m {
        let u = rng.next_bounded(n as u64) as u32;
        let v = rng.next_bounded(n as u64) as u32;
        if u != v && !edges.iter().any(|&(a, b, _)| (a, b) == (u, v)) {
            edges.push((u, v, rng.next_f64()));
        }
    }
    from_parts(&risks, &edges, DuplicateEdgePolicy::Error).unwrap()
}

/// One-shot query through a fresh session.
fn detect_once(
    g: &UncertainGraph,
    k: usize,
    alg: AlgorithmKind,
    cfg: &VulnConfig,
) -> DetectResponse {
    let d = Detector::builder(g).config(cfg.clone()).build().unwrap();
    d.detect(&DetectRequest::new(k, alg)).unwrap()
}

#[test]
fn all_algorithms_find_figure3_top1() {
    // The true margin is p(E) − p(D) ≈ 0.069, so request ε below it:
    // with the default ε = 0.3 the theorems do not promise this ranking
    // and whether it comes out right is seed luck.
    let g = figure3();
    let d = Detector::builder(&g).config(VulnConfig::default().with_seed(3)).build().unwrap();
    for alg in AlgorithmKind::ALL {
        let req = DetectRequest::new(1, alg).with_epsilon(0.05).with_delta(0.05);
        let r = d.detect(&req).unwrap();
        assert_eq!(r.top_k[0].node, NodeId(4), "{alg} missed node E");
    }
}

#[test]
fn algorithms_track_exact_probabilities_on_random_tiny_graphs() {
    for seed in 0..8u64 {
        let g = tiny_random(seed);
        let exact = exact_default_probabilities(&g);
        for alg in AlgorithmKind::ALL {
            let r = detect_once(&g, 2, alg, &VulnConfig::default().with_seed(seed * 31 + 7));
            // Tie-tolerant precision with the paper's ε slack: returned
            // nodes must be within ε = 0.3 of the true 2nd value.
            let p = precision_with_ties(&r.top_k, &exact, 2, 0.3);
            assert!(
                p >= 0.999,
                "{alg} on seed {seed}: precision {p}, exact {exact:?}, got {:?}",
                r.node_ids()
            );
        }
    }
}

#[test]
fn sn_satisfies_its_epsilon_contract_with_high_frequency() {
    // Theorem 4: SN is (0.3, 0.1)-approximate, so across 20 independent
    // runs at most a few should violate the ε contract.
    let g = tiny_random(42);
    let exact = exact_default_probabilities(&g);
    let mut violations = 0;
    let runs = 20;
    for seed in 0..runs {
        let r =
            detect_once(&g, 2, AlgorithmKind::SampledNaive, &VulnConfig::default().with_seed(seed));
        if !satisfies_epsilon_contract(&r.top_k, &exact, 2, 0.3) {
            violations += 1;
        }
    }
    // δ = 0.1 ⇒ expected ≤ 2 violations in 20; allow generous slack.
    assert!(violations <= 5, "{violations}/{runs} contract violations");
}

#[test]
fn bsr_never_loses_verified_nodes() {
    // A node with a point bound above everyone's upper bound must always
    // be returned, for every algorithm that verifies (BSR, BSRBK).
    let mut risks = vec![0.99];
    risks.extend(std::iter::repeat_n(0.3, 20));
    let edges: Vec<(u32, u32, f64)> = (1..=20).map(|v| (0u32, v as u32, 0.2)).collect();
    let g = from_parts(&risks, &edges, DuplicateEdgePolicy::Error).unwrap();
    for alg in [AlgorithmKind::BoundedSampleReverse, AlgorithmKind::BottomK] {
        for seed in 0..5 {
            let r = detect_once(&g, 3, alg, &VulnConfig::default().with_seed(seed));
            assert!(r.node_ids().contains(&NodeId(0)), "{alg} seed {seed} lost the sure node");
        }
    }
}

#[test]
fn exact_matches_definition1_on_a_tree() {
    // On an in-tree, Equation 1 is exact; the enumerator must agree.
    let g = from_parts(&[0.3, 0.2, 0.1], &[(0, 1, 0.5), (1, 2, 0.4)], DuplicateEdgePolicy::Error)
        .unwrap();
    let exact = exact_default_probabilities(&g);
    let p0 = 0.3;
    let p1 = 1.0 - (1.0 - 0.2) * (1.0 - 0.5 * p0);
    let p2 = 1.0 - (1.0 - 0.1) * (1.0 - 0.4 * p1);
    assert!((exact[0] - p0).abs() < 1e-12);
    assert!((exact[1] - p1).abs() < 1e-12);
    assert!((exact[2] - p2).abs() < 1e-12);
}
