//! Acceptance tests for `Detector::detect_many`: a batch over one graph
//! must draw strictly fewer total samples than the same requests issued
//! as independent one-shot calls, while returning bit-identical answers.

use vulnds::prelude::*;

fn graph() -> UncertainGraph {
    Dataset::Interbank.generate(7)
}

fn cfg() -> VulnConfig {
    VulnConfig::default().with_seed(41)
}

/// Four requests on the same graph: multiple `k` plus a tightened-ε
/// what-if repeat — the session workload the engine exists for.
fn requests() -> Vec<DetectRequest> {
    vec![
        DetectRequest::new(5, AlgorithmKind::SampledNaive),
        DetectRequest::new(10, AlgorithmKind::SampledNaive),
        DetectRequest::new(5, AlgorithmKind::SampledNaive).with_epsilon(0.25),
        DetectRequest::new(12, AlgorithmKind::BoundedSampleReverse),
    ]
}

#[test]
fn batch_draws_strictly_fewer_samples_than_independent_calls() {
    let g = graph();

    let batch = Detector::builder(&g).config(cfg()).build().unwrap();
    let batched = batch.detect_many(&requests()).unwrap();

    let mut independent_drawn = 0u64;
    let mut independent_responses = Vec::new();
    for req in requests() {
        let solo = Detector::builder(&g).config(cfg()).build().unwrap();
        independent_responses.push(solo.detect(&req).unwrap());
        independent_drawn += solo.session_stats().samples_drawn;
    }

    // The three SN requests share one forward stream: the batch extends
    // one sampling pass to the largest budget instead of redrawing.
    let batch_drawn = batch.session_stats().samples_drawn;
    assert!(
        batch_drawn < independent_drawn,
        "batch drew {batch_drawn} samples, independent calls drew {independent_drawn}"
    );
    let reused: u64 = batched.iter().map(|r| r.engine.samples_reused).sum();
    assert!(reused > 0, "no request reported cache reuse");

    // Sharing must not change any answer.
    for (b, s) in batched.iter().zip(&independent_responses) {
        assert_eq!(b.top_k, s.top_k);
        assert_eq!(b.stats.samples_used, s.stats.samples_used);
    }
}

#[test]
fn batches_are_width_independent() {
    // A batch on a width-pinned session must return exactly the answers
    // of the planner-driven batch — sharing sampled prefixes across
    // requests composes with superblock widths.
    let g = graph();
    let planned = Detector::builder(&g).config(cfg()).build().unwrap();
    let reference = planned.detect_many(&requests()).unwrap();
    for width in BlockWords::ALL {
        let pinned = Detector::builder(&g).config(cfg().with_block_words(width)).build().unwrap();
        let responses = pinned.detect_many(&requests()).unwrap();
        for (p, r) in reference.iter().zip(&responses) {
            assert_eq!(p.top_k, r.top_k, "width {width}");
            assert_eq!(p.stats.samples_used, r.stats.samples_used, "width {width}");
        }
        assert!(
            pinned.session_stats().widest_block_words <= width.words(),
            "width {width} session exceeded its pinned width"
        );
    }
}

#[test]
fn batch_responses_preserve_request_order() {
    let g = graph();
    let d = Detector::builder(&g).config(cfg()).build().unwrap();
    let reqs = requests();
    let responses = d.detect_many(&reqs).unwrap();
    assert_eq!(responses.len(), reqs.len());
    for (req, resp) in reqs.iter().zip(&responses) {
        assert_eq!(resp.top_k.len(), req.k, "response out of order for {req:?}");
        assert_eq!(resp.stats.algorithm, req.algorithm, "response out of order for {req:?}");
    }
}
