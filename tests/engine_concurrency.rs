//! Acceptance tests for the 0.4 concurrency contract: one shared
//! `Detector` answers `&self` queries from many threads with answers
//! **bit-identical** to a serial cold-cache run, session caches build
//! single-flight, and `clear_cache` is safe while queries are in
//! flight.
//!
//! CI runs this suite in release mode as its own job
//! (`cargo test --release -p vulnds --test engine_concurrency`) so
//! lock-ordering and interleaving regressions surface under real
//! parallelism, not just the debug scheduler.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use vulnds::prelude::*;

/// The mixed request batch every client fires: all five algorithms,
/// several `k`, one per-request `(ε, seed)` override, one candidate
/// hint — enough shape diversity to exercise every cache layer.
fn mixed_batch() -> Vec<DetectRequest> {
    vec![
        DetectRequest::new(3, AlgorithmKind::Naive),
        DetectRequest::new(5, AlgorithmKind::SampledNaive),
        DetectRequest::new(8, AlgorithmKind::SampledNaive),
        DetectRequest::new(4, AlgorithmKind::SampleReverse),
        DetectRequest::new(4, AlgorithmKind::BoundedSampleReverse),
        DetectRequest::new(7, AlgorithmKind::BoundedSampleReverse),
        DetectRequest::new(4, AlgorithmKind::BottomK),
        DetectRequest::new(5, AlgorithmKind::SampledNaive).with_epsilon(0.2).with_seed(99),
        DetectRequest::new(3, AlgorithmKind::SampleReverse)
            .with_candidates((0..40).map(NodeId).collect()),
    ]
}

fn graph() -> UncertainGraph {
    Dataset::Interbank.generate_scaled(11, 1.0)
}

fn session(graph: &UncertainGraph) -> Detector {
    Detector::builder(graph)
        .config(VulnConfig::default().with_seed(77).with_threads(2))
        .build()
        .unwrap()
}

/// The bit-comparable part of a response: ranked nodes with exact
/// scores, plus the deterministic run diagnostics (everything except
/// wall-clock time and cache attribution, which legitimately vary with
/// interleaving).
fn fingerprint(r: &DetectResponse) -> (Vec<(u32, u64)>, u64, u64, usize, usize, bool) {
    (
        r.top_k.iter().map(|s| (s.node.0, s.score.to_bits())).collect(),
        r.stats.sample_budget,
        r.stats.samples_used,
        r.stats.candidates,
        r.stats.verified,
        r.stats.early_stopped,
    )
}

#[test]
fn concurrent_queries_are_bit_identical_to_serial_cold_run() {
    let g = graph();
    let batch = mixed_batch();

    // Reference: a fresh session answering the batch serially, cold.
    let serial = session(&g);
    let reference: Vec<_> = batch.iter().map(|r| fingerprint(&serial.detect(r).unwrap())).collect();

    // 8 threads fire the same batch at one shared session, interleaved
    // (barrier-released, and each thread walks the batch in a different
    // rotation so cache hits/misses interleave across layers).
    let shared = Arc::new(session(&g));
    let n_threads = 8;
    let barrier = Barrier::new(n_threads);
    std::thread::scope(|s| {
        for t in 0..n_threads {
            let shared = Arc::clone(&shared);
            let batch = &batch;
            let reference = &reference;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..batch.len() {
                    let idx = (i + t) % batch.len();
                    let got = shared.detect(&batch[idx]).unwrap();
                    assert_eq!(
                        fingerprint(&got),
                        reference[idx],
                        "thread {t}: request {idx} diverged from the serial cold run"
                    );
                }
            });
        }
    });

    // And again on the (now fully warm) shared session, serially.
    for (i, req) in batch.iter().enumerate() {
        let warm = shared.detect(req).unwrap();
        assert_eq!(fingerprint(&warm), reference[i], "warm request {i} diverged");
    }

    let totals = shared.session_stats();
    assert_eq!(totals.queries, (n_threads as u64 + 1) * batch.len() as u64);
    assert!(totals.concurrent_peak >= 2, "stress run never actually overlapped");
    // Sharing must amortize: 9 batch executions on one session draw
    // far fewer worlds than 9 independent cold sessions would (exact
    // totals depend on which query reaches a stream first — a
    // smaller-budget query that arrives after a larger one redraws its
    // prefix, in serial and concurrent runs alike — so the claim is a
    // strict bound, not equality; exact single-pass accounting is
    // asserted by `concurrent_same_stream_misses_draw_the_sampling_pass_once`).
    let independent = serial.session_stats().samples_drawn * (n_threads as u64 + 1);
    assert!(
        totals.samples_drawn < independent,
        "shared session drew {} worlds, {} independent sessions would draw {independent}",
        totals.samples_drawn,
        n_threads + 1
    );
    assert!(totals.samples_reused > 0, "warm traffic never hit the cache");
}

#[test]
fn detect_many_is_safe_and_identical_under_concurrency() {
    let g = graph();
    let batch = mixed_batch();
    let serial = session(&g);
    let reference: Vec<_> = serial.detect_many(&batch).unwrap().iter().map(fingerprint).collect();

    let shared = session(&g);
    let barrier = Barrier::new(4);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let shared = &shared;
            let batch = &batch;
            let reference = &reference;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                let got = shared.detect_many(batch).unwrap();
                let got: Vec<_> = got.iter().map(fingerprint).collect();
                assert_eq!(&got, reference, "concurrent detect_many diverged");
            });
        }
    });
}

#[test]
fn concurrent_same_stream_misses_draw_the_sampling_pass_once() {
    let g = graph();
    let req = DetectRequest::new(6, AlgorithmKind::SampledNaive);

    // What one cold query draws.
    let solo = session(&g);
    let solo_resp = solo.detect(&req).unwrap();
    let expected_drawn = solo_resp.engine.samples_drawn;
    assert!(expected_drawn > 0, "test needs a sampling algorithm");

    // 8 simultaneous cold misses on the same stream: the single-flight
    // stream cell admits one drawer; everyone else blocks on the cell
    // and then serves the snapshot. Total drawn must equal ONE pass.
    let shared = Arc::new(session(&g));
    let barrier = Barrier::new(8);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let shared = Arc::clone(&shared);
            let req = &req;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                shared.detect(req).unwrap();
            });
        }
    });
    let totals = shared.session_stats();
    assert_eq!(
        totals.samples_drawn, expected_drawn,
        "concurrent same-stream misses drew the pass more than once"
    );
    assert_eq!(totals.samples_reused, 7 * expected_drawn);

    // Same single-flight property for the bounds layer: 8 simultaneous
    // cold BSR queries compute the bound vectors once.
    let bounds_shared = Arc::new(session(&g));
    let barrier = Barrier::new(8);
    let breq = DetectRequest::new(5, AlgorithmKind::BoundedSampleReverse);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let bounds_shared = Arc::clone(&bounds_shared);
            let breq = &breq;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                bounds_shared.detect(breq).unwrap();
            });
        }
    });
    let totals = bounds_shared.session_stats();
    assert_eq!(totals.bounds_computed, 1, "bounds must build single-flight");
    assert_eq!(totals.reductions_computed, 1, "reductions must build single-flight");
}

#[test]
fn clear_cache_while_queries_are_in_flight_is_safe_and_exact() {
    let g = graph();
    let serial = session(&g);
    let batch = mixed_batch();
    let reference: Vec<_> = batch.iter().map(|r| fingerprint(&serial.detect(r).unwrap())).collect();

    // 4 query threads hammer the shared session while the main thread
    // clears the cache repeatedly: every answer must still match the
    // serial reference (in-flight queries keep their Arc snapshots;
    // clears only cold-start *future* queries).
    let shared = session(&g);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let queriers: Vec<_> = (0..4)
            .map(|t| {
                let shared = &shared;
                let batch = &batch;
                let reference = &reference;
                s.spawn(move || {
                    for round in 0..6 {
                        for i in 0..batch.len() {
                            let idx = (i + t + round) % batch.len();
                            let got = shared.detect(&batch[idx]).unwrap();
                            assert_eq!(
                                fingerprint(&got),
                                reference[idx],
                                "request {idx} diverged during concurrent clear_cache"
                            );
                        }
                    }
                })
            })
            .collect();
        let shared = &shared;
        let stop = &stop;
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                shared.clear_cache();
                std::thread::yield_now();
            }
        });
        // Join the query threads, then release the clearer.
        for q in queriers {
            q.join().expect("query thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
    });
    // After the dust settles, a fresh query still answers exactly.
    let after = shared.detect(&batch[0]).unwrap();
    assert_eq!(fingerprint(&after), reference[0]);
}

#[test]
fn updates_under_live_traffic_answer_bit_identically_per_epoch() {
    let g = graph();
    let batch = mixed_batch();
    let deltas: Vec<GraphDelta> = (0..4u32)
        .map(|i| {
            GraphDelta::default()
                .set_self_risk(NodeId(i), 0.55 + 0.05 * f64::from(i))
                .set_edge_prob(EdgeId(i), 0.45)
        })
        .collect();

    // Reference answers per epoch, from fresh cold sessions on each
    // post-delta graph. Epoch e's graph carries a distinct probability
    // version, which responses echo — that is how a concurrent query
    // names the snapshot it pinned.
    let mut epoch_graphs = vec![g.clone()];
    for delta in &deltas {
        let mut next = epoch_graphs.last().unwrap().clone();
        delta.apply(&mut next).unwrap();
        epoch_graphs.push(next);
    }
    let reference: std::collections::BTreeMap<u64, Vec<_>> = epoch_graphs
        .iter()
        .map(|eg| {
            let cold = session(eg);
            (eg.version(), batch.iter().map(|r| fingerprint(&cold.detect(r).unwrap())).collect())
        })
        .collect();

    // 6 query threads hammer the shared session while the main thread
    // commits the deltas one by one. Every answer must be bit-identical
    // to the cold reference for whichever epoch the query pinned —
    // queries in flight across a commit keep their old snapshot.
    let shared = session(&g);
    let committed = AtomicBool::new(false);
    std::thread::scope(|s| {
        let queriers: Vec<_> = (0..6)
            .map(|t| {
                let shared = &shared;
                let batch = &batch;
                let reference = &reference;
                let committed = &committed;
                s.spawn(move || {
                    let mut rounds = 0usize;
                    // Keep querying until every delta is in, plus one
                    // full post-commit round.
                    loop {
                        let done = committed.load(Ordering::Acquire);
                        for i in 0..batch.len() {
                            let idx = (i + t + rounds) % batch.len();
                            let got = shared.detect(&batch[idx]).unwrap();
                            let expected = &reference[&got.engine.graph_version][idx];
                            assert_eq!(
                                &fingerprint(&got),
                                expected,
                                "request {idx} diverged on epoch {}",
                                got.engine.epoch
                            );
                        }
                        rounds += 1;
                        if done {
                            return;
                        }
                    }
                })
            })
            .collect();
        for delta in &deltas {
            shared.apply_delta(delta).unwrap();
            std::thread::yield_now();
        }
        committed.store(true, Ordering::Release);
        for q in queriers {
            q.join().expect("query thread panicked");
        }
    });

    // Quiescent: every future query runs on the final epoch and matches
    // the final cold reference.
    assert_eq!(shared.epoch(), deltas.len() as u64);
    let final_version = epoch_graphs.last().unwrap().version();
    for (i, req) in batch.iter().enumerate() {
        let got = shared.detect(req).unwrap();
        assert_eq!(got.engine.graph_version, final_version);
        assert_eq!(fingerprint(&got), reference[&final_version][i], "settled request {i}");
    }
    let stats = shared.session_stats();
    assert_eq!(stats.deltas_applied, deltas.len() as u64);
    assert_eq!(stats.epoch, deltas.len() as u64);
}

#[test]
fn detector_is_send_sync_and_shareable_by_reference() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Detector>();
    assert_send_sync::<Arc<Detector>>();

    // Scoped borrow (no Arc) is enough to share a session.
    let g = graph();
    let d = session(&g);
    let req = DetectRequest::new(3, AlgorithmKind::BottomK);
    let reference = fingerprint(&d.detect(&req).unwrap());
    std::thread::scope(|s| {
        for _ in 0..3 {
            let d = &d;
            let req = &req;
            let reference = &reference;
            s.spawn(move || {
                assert_eq!(&fingerprint(&d.detect(req).unwrap()), reference);
            });
        }
    });
}

#[test]
fn shared_arc_graph_feeds_many_sessions_without_copying() {
    let shared_graph = Arc::new(graph());
    let a = Detector::builder(Arc::clone(&shared_graph)).seed(1).build().unwrap();
    let b = Detector::builder(Arc::clone(&shared_graph)).seed(1).build().unwrap();
    assert!(Arc::ptr_eq(&a.shared_graph(), &b.shared_graph()));
    let req = DetectRequest::new(4, AlgorithmKind::BottomK);
    assert_eq!(
        fingerprint(&a.detect(&req).unwrap()),
        fingerprint(&b.detect(&req).unwrap()),
        "same graph + config + request must answer identically across sessions"
    );
}
