//! Crash-durability of `vulnds serve --wal`: a storm of acked updates
//! and queries is cut short by `kill -9` at points chosen by a
//! deterministic schedule — after an ack, between send and ack, with
//! and without compaction — and the server is restarted on the same
//! log. The recovery contract checked after every kill:
//!
//! * acked ⊆ recovered ⊆ sent — every update acked before the kill is
//!   present after restart (the WAL appends and fsyncs before the
//!   engine applies, so recovery can only run *ahead* of the acks,
//!   never behind), and nothing beyond what was sent appears;
//! * the recovered graph answers queries bit-identically to a fresh
//!   in-process session on the base graph with exactly the recovered
//!   prefix of deltas applied;
//! * `vulnds wal verify` passes on the log the restarted server left
//!   behind (recovery truncated any torn tail).
//!
//! Every client read carries a hard socket timeout and every child
//! wait is bounded, so a regression shows up as a test failure, not a
//! wedged CI job.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::Duration;

use vulnds::json::Json;
use vulnds::prelude::*;
use vulnds::serve::DEFAULT_SERVE_MAX_SAMPLES;

/// Longest any single client read may take before the test fails.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Seed the serve session is started with (`--seed`); the reference
/// sessions must match it for bit-identical answers.
const SERVE_SEED: u64 = 11;

/// Generates the shared graph fixture once, via the binary's own
/// `generate` command, and loads it for the in-process references.
fn base_graph() -> &'static (String, UncertainGraph) {
    static BASE: OnceLock<(String, UncertainGraph)> = OnceLock::new();
    BASE.get_or_init(|| {
        let path = std::env::temp_dir().join(format!("vulnds_walrec_{}.graph", std::process::id()));
        let path = path.to_str().expect("temp path is utf-8").to_string();
        let status = Command::new(env!("CARGO_BIN_EXE_vulnds"))
            .args(["generate", "interbank", &path, "--scale", "0.5", "--seed", "7"])
            .status()
            .expect("spawn vulnds generate");
        assert!(status.success(), "generate failed: {status}");
        let graph = vulnds::ugraph::io::load_from_path(&path).expect("load fixture");
        (path, graph)
    })
}

/// A serve child with a WAL attached. Dropping the handle kills the
/// child (SIGKILL), so a failing test never leaks a server.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(wal: &str, extra: &[&str]) -> Server {
        let (graph, _) = base_graph();
        let mut child = Command::new(env!("CARGO_BIN_EXE_vulnds"))
            .args(["serve", graph, "--tcp", "127.0.0.1:0", "--seed", "11", "--wal", wal])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn vulnds serve");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        // Recovery lines come first, then the bound-address line; read
        // until the latter (port 0 means this is the only way to learn
        // the address).
        let addr = loop {
            let mut line = String::new();
            let n = stderr.read_line(&mut line).expect("read startup line");
            assert!(n > 0, "serve exited before announcing its address");
            if let Some(rest) = line.split("listening on ").nth(1) {
                break rest.split(' ').next().expect("address token").to_string();
            }
        };
        // Drain the rest of stderr forever so the child never blocks
        // on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = stderr.read_to_string(&mut sink);
        });
        Server { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr)
    }

    /// The fault under test: SIGKILL, no drain, no flush.
    fn kill_dash_nine(&mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A newline-delimited JSON client with a hard read timeout.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT)).expect("read timeout");
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { writer: stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("client read");
        assert!(n > 0, "server closed instead of answering");
        Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
    }
}

fn ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

/// Deterministic schedule source (an LCG): the kill points vary from
/// round to round but replay identically on every run.
struct Schedule(u64);

impl Schedule {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The update stream is a pure function of its index, so the test can
/// rebuild any acked prefix as an in-process reference.
fn delta_at(index: u64, graph: &UncertainGraph) -> GraphDelta {
    let n = graph.num_nodes() as u64;
    let m = graph.num_edges() as u64;
    let node = (index * 7 + 3) % n;
    let edge = (index * 5 + 1) % m;
    GraphDelta::default()
        .set_self_risk(NodeId(node as u32), risk_at(index))
        .set_edge_prob(EdgeId(edge as u32), prob_at(index))
}

fn risk_at(index: u64) -> f64 {
    0.2 + (index % 60) as f64 * 0.01
}

fn prob_at(index: u64) -> f64 {
    0.15 + (index % 70) as f64 * 0.01
}

/// The same delta as JSON for the wire. `{}` on f64 prints the
/// shortest round-tripping form, so the server parses back the exact
/// bits the reference applies.
fn update_line(id: u64, index: u64, graph: &UncertainGraph) -> String {
    let n = graph.num_nodes() as u64;
    let m = graph.num_edges() as u64;
    let node = (index * 7 + 3) % n;
    let edge = (index * 5 + 1) % m;
    format!(
        "{{\"id\": {id}, \"cmd\": \"update\", \"self_risk\": [[{node}, {}]], \"edge_prob\": [[{edge}, {}]]}}",
        risk_at(index),
        prob_at(index)
    )
}

/// Fresh session on the base graph with the first `epochs` deltas
/// applied, configured exactly like the serve child.
fn reference_detector(epochs: u64) -> Detector {
    let (_, base) = base_graph();
    let mut graph = base.clone();
    for i in 0..epochs {
        delta_at(i, base).apply(&mut graph).expect("reference delta applies");
    }
    Detector::builder(graph)
        .seed(SERVE_SEED)
        .threads(1)
        .max_samples(DEFAULT_SERVE_MAX_SAMPLES)
        .build()
        .expect("reference builds")
}

/// Asserts a served `detect` answer is bit-identical to the same
/// query on the reference session (nodes, scores, samples used).
fn assert_answer_matches(reference: &Detector, answer: &Json, k: usize, kind: AlgorithmKind) {
    assert!(ok(answer), "query failed after recovery: {answer}");
    let want = reference.detect(&DetectRequest::new(k, kind)).expect("reference detects");
    let got: Vec<(u64, String)> = answer
        .get("top_k")
        .and_then(Json::as_array)
        .expect("top_k array")
        .iter()
        .map(|e| {
            (
                e.get("node").and_then(Json::as_u64).expect("node id"),
                e.get("score").expect("score").to_string(),
            )
        })
        .collect();
    let wanted: Vec<(u64, String)> =
        want.top_k.iter().map(|s| (u64::from(s.node.0), Json::from(s.score).to_string())).collect();
    assert_eq!(got, wanted, "recovered answer diverged from reference ({kind:?}, k={k})");
    assert_eq!(
        answer.get("stats").and_then(|s| s.get("samples_used")).and_then(Json::as_u64),
        Some(want.stats.samples_used),
        "sample count diverged ({kind:?}, k={k})"
    );
}

/// Absolute epoch of a live server, as reported by `stats`.
fn recovered_epoch(client: &mut Client) -> u64 {
    client.send(r#"{"id": 9000, "cmd": "stats"}"#);
    let stats = client.recv();
    assert!(ok(&stats), "{stats}");
    stats
        .get("session")
        .and_then(|s| s.get("epoch"))
        .and_then(Json::as_u64)
        .expect("stats reports the epoch")
}

#[test]
fn kill_nine_storm_recovers_bit_identically_at_every_cut() {
    let wal = std::env::temp_dir().join(format!("vulnds_walrec_{}.wal", std::process::id()));
    let wal = wal.to_str().expect("temp path is utf-8").to_string();
    let _ = std::fs::remove_file(&wal);
    let _ = std::fs::remove_file(format!("{wal}.snapshot"));
    let (_, base) = base_graph();

    let mut schedule = Schedule(0x5EED_CAB1E);
    let mut sent: u64 = 0; // updates written to the socket, ever
    let mut acked: u64 = 0; // updates acked by a server, ever
    let mut kinds =
        [AlgorithmKind::SampleReverse, AlgorithmKind::BoundedSampleReverse].iter().cycle();

    // Rounds 0..3 run plain; round 3 adds compaction so a snapshot +
    // rotated log also feeds a recovery.
    for round in 0..4u64 {
        let extra: &[&str] =
            if round == 3 { &["--fsync", "always", "--compact-every", "3"] } else { &[] };
        let mut server = Server::spawn(&wal, extra);
        let mut client = server.client();

        // The restarted server must already hold every previously
        // acked update — and answer queries for its exact recovered
        // prefix bit-identically — before this round's storm begins.
        let recovered = recovered_epoch(&mut client);
        assert!(
            (acked..=sent).contains(&recovered),
            "round {round}: recovered epoch {recovered} outside acked..=sent ({acked}..={sent})"
        );
        let reference = reference_detector(recovered);
        let k = 2 + (schedule.pick(4) as usize);
        let kind = *kinds.next().expect("cycle");
        let label = match kind {
            AlgorithmKind::BoundedSampleReverse => "bsr",
            _ => "sr",
        };
        client.send(&format!(
            "{{\"id\": 9001, \"cmd\": \"detect\", \"k\": {k}, \"algorithm\": \"{label}\"}}"
        ));
        assert_answer_matches(&reference, &client.recv(), k, kind);
        // Epochs resume from the recovered point: deltas the reference
        // replayed are exactly the deltas the server replayed.
        acked = recovered;
        sent = recovered;

        // The storm: updates interleaved with queries, cut short by a
        // kill -9 whose position (and whether the final ack is awaited)
        // the schedule picks.
        let storm = 3 + schedule.pick(5);
        let kill_after = 1 + schedule.pick(storm);
        let await_last_ack = schedule.pick(2) == 0;
        for i in 0..storm {
            let last = i + 1 == kill_after;
            client.send(&update_line(100 + i, sent, base));
            sent += 1;
            if last && !await_last_ack {
                break; // die with the ack in flight
            }
            let ack = client.recv();
            assert!(ok(&ack), "round {round}: update refused: {ack}");
            assert_eq!(
                ack.get("epoch").and_then(Json::as_u64),
                Some(acked + 1),
                "acked epochs must be dense: {ack}"
            );
            assert_eq!(ack.get("durable").and_then(Json::as_bool), Some(true), "{ack}");
            acked += 1;
            if last {
                break;
            }
            if schedule.pick(3) == 0 {
                client.send(r#"{"id": 200, "cmd": "detect", "k": 3, "algorithm": "sr"}"#);
                let answer = client.recv();
                assert!(ok(&answer), "round {round}: query under updates failed: {answer}");
            }
        }
        server.kill_dash_nine();
    }

    // Final restart: full window check, bit-identical answers across
    // two algorithms and several k, and a clean `wal verify` on the
    // log recovery left behind.
    let server = Server::spawn(&wal, &[]);
    let mut client = server.client();
    let recovered = recovered_epoch(&mut client);
    assert!(
        (acked..=sent).contains(&recovered),
        "final recovery epoch {recovered} outside acked..=sent ({acked}..={sent})"
    );
    assert!(acked > 0, "schedule degenerated: no update was ever acked");
    let reference = reference_detector(recovered);
    for (id, (k, label, kind)) in [
        (3usize, "sr", AlgorithmKind::SampleReverse),
        (5, "bsr", AlgorithmKind::BoundedSampleReverse),
        (2, "bsrbk", AlgorithmKind::BottomK),
    ]
    .iter()
    .enumerate()
    {
        client.send(&format!(
            "{{\"id\": {id}, \"cmd\": \"detect\", \"k\": {k}, \"algorithm\": \"{label}\"}}"
        ));
        assert_answer_matches(&reference, &client.recv(), *k, *kind);
    }
    drop(client);
    drop(server);

    let verify = Command::new(env!("CARGO_BIN_EXE_vulnds"))
        .args(["wal", "verify", &wal])
        .output()
        .expect("spawn vulnds wal verify");
    assert!(
        verify.status.success(),
        "wal verify failed on a recovered log: {}",
        String::from_utf8_lossy(&verify.stderr)
    );

    let _ = std::fs::remove_file(&wal);
    let _ = std::fs::remove_file(format!("{wal}.snapshot"));
}
