//! Property tests for the degraded-answer determinism contract: a
//! sampling pass cut short (deadline, token, or explicit `sample_cap`)
//! returns a block-aligned sample prefix, and replaying the request with
//! the reported `samples_used` as its cap reproduces that answer
//! **bit-identically** — across superblock widths, traversal directions,
//! and thread counts, warm or cold. Uses the in-repo deterministic test
//! kit (the workspace builds offline with no external dependencies).

use ugraph::testkit::{check, TestRng};
use vulnds::prelude::*;

fn arb_graph(rng: &mut TestRng) -> UncertainGraph {
    let n = rng.range_usize(30, 120);
    let m = rng.range_usize(n, 3 * n);
    let risks: Vec<f64> = (0..n).map(|_| rng.next_f64() * 0.6).collect();
    let edges: Vec<(u32, u32, f64)> = (0..m)
        .map(|_| {
            let u = rng.next_bounded(n as u64) as u32;
            let d = 1 + rng.next_bounded(n as u64 - 1) as u32;
            (u, (u + d) % n as u32, rng.next_f64() * 0.6)
        })
        .collect();
    from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap()
}

fn session(g: &UncertainGraph, threads: usize) -> Detector {
    Detector::builder(g)
        .config(VulnConfig::default().with_seed(77))
        .threads(threads)
        .build()
        .unwrap()
}

/// A capped (degraded) answer is bit-identical across thread counts,
/// pinned superblock widths, and traversal directions — the same
/// invariance the full-budget answers already guarantee.
#[test]
fn degraded_answers_identical_across_widths_directions_and_threads() {
    check(8, |rng| {
        let g = arb_graph(rng);
        // The sampling algorithms; BSRBK exercises the adaptive lane
        // replay, the others the stream cache.
        let kinds = [
            AlgorithmKind::SampledNaive,
            AlgorithmKind::SampleReverse,
            AlgorithmKind::BoundedSampleReverse,
            AlgorithmKind::BottomK,
        ];
        let kind = kinds[rng.range_usize(0, kinds.len() - 1)];
        let k = rng.range_usize(1, (g.num_nodes() / 4).max(2));
        let full = session(&g, 1).detect(&DetectRequest::new(k, kind)).unwrap();
        if full.stats.samples_used < 2 {
            return; // degenerate plan: bounds resolved everything
        }
        let cap = 1 + rng.next_bounded(full.stats.samples_used - 1);
        let req = DetectRequest::new(k, kind).with_sample_cap(cap);

        let reference = session(&g, 1).detect(&req).unwrap();
        assert!(reference.degraded, "{kind}: cap {cap} below budget must degrade");
        assert_eq!(reference.stats.samples_used, cap, "{kind}");
        assert!(
            reference.achieved_epsilon.is_finite() && reference.achieved_epsilon > 0.0,
            "{kind}: achieved ε must be a finite widened bound"
        );

        for threads in [1usize, 4] {
            for width in [BlockWords::W1, BlockWords::W2, BlockWords::W4, BlockWords::W8] {
                let d = Detector::builder(&g)
                    .config(VulnConfig::default().with_seed(77).with_block_words(width))
                    .threads(threads)
                    .build()
                    .unwrap();
                let r = d.detect(&req).unwrap();
                assert_eq!(
                    r.top_k, reference.top_k,
                    "{kind}: degraded answer changed at threads={threads} width={width:?}"
                );
                assert_eq!(r.stats.samples_used, cap, "{kind}: cap not exact");
                assert_eq!(r.achieved_epsilon, reference.achieved_epsilon, "{kind}");
            }
        }
        // Direction policy (forward samplers) is answer-neutral too.
        if kind == AlgorithmKind::SampledNaive {
            for direction in vulnds_core::Direction::ALL {
                let d = Detector::builder(&g)
                    .config(VulnConfig::default().with_seed(77).with_direction(direction))
                    .threads(2)
                    .build()
                    .unwrap();
                let r = d.detect(&req).unwrap();
                assert_eq!(r.top_k, reference.top_k, "direction {direction} changed answer");
                assert_eq!(r.stats.samples_used, cap);
            }
        }
    });
}

/// A warm cache never changes a degraded answer: serving the capped
/// prefix from cached worlds is bit-identical to drawing it cold.
#[test]
fn degraded_answers_survive_warm_caches() {
    check(8, |rng| {
        let g = arb_graph(rng);
        let k = rng.range_usize(1, (g.num_nodes() / 4).max(2));
        let kind =
            [AlgorithmKind::SampledNaive, AlgorithmKind::SampleReverse][rng.range_usize(0, 1)];
        let warm = session(&g, 2);
        let full = warm.detect(&DetectRequest::new(k, kind)).unwrap();
        if full.stats.samples_used < 2 {
            return;
        }
        let cap = 1 + rng.next_bounded(full.stats.samples_used - 1);
        let req = DetectRequest::new(k, kind).with_sample_cap(cap);
        let cold = session(&g, 2).detect(&req).unwrap();
        let from_cache = warm.detect(&req).unwrap();
        assert_eq!(from_cache.top_k, cold.top_k, "{kind}: warm prefix differs from cold");
        assert_eq!(from_cache.stats.samples_used, cap);
        // The warm replay may redraw below the cached snapshots'
        // alignment, but never more than the cap itself.
        assert!(from_cache.engine.samples_drawn <= cap, "{kind}: warm replay overdrew");
    });
}

/// Mid-run external cancellation yields a degraded answer whose
/// `samples_used` replays bit-identically — or, if the cut lands before
/// any sample, a clean `Cancelled` error. Either way nothing hangs and
/// the session stays usable.
#[test]
fn mid_run_cancellation_replays_bit_identically() {
    let mut rng = TestRng::new(0xDECADE);
    let g = arb_graph(&mut rng);
    let token = CancelToken::new();
    let d = session(&g, 3);
    // Tight ε so the budget is large enough for the canceller to land
    // mid-pass at least sometimes; all outcomes are asserted valid.
    let req = DetectRequest::new(3, AlgorithmKind::SampledNaive)
        .with_epsilon(0.02)
        .with_cancel(token.clone());
    let outcome = std::thread::scope(|s| {
        let canceller = {
            let token = token.clone();
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(200));
                token.cancel();
            })
        };
        let outcome = d.detect(&req);
        canceller.join().unwrap();
        outcome
    });
    match outcome {
        Err(VulnError::Cancelled) => {
            assert_eq!(d.session_stats().queries_cancelled, 1);
        }
        Ok(r) => {
            if r.degraded {
                assert!(r.stats.samples_used < r.stats.sample_budget);
                assert!(r.achieved_epsilon > 0.02);
                let replay = session(&g, 1)
                    .detect(
                        &DetectRequest::new(3, AlgorithmKind::SampledNaive)
                            .with_epsilon(0.02)
                            .with_sample_cap(r.stats.samples_used),
                    )
                    .unwrap();
                assert_eq!(replay.top_k, r.top_k, "degraded answer failed to replay");
                assert_eq!(d.session_stats().queries_degraded, 1);
            } else {
                assert_eq!(r.stats.samples_used, r.stats.sample_budget);
            }
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
    // The session is not poisoned: a fresh query still answers.
    let after = d.detect(&DetectRequest::new(3, AlgorithmKind::SampledNaive)).unwrap();
    assert!(!after.degraded);
}

/// An already-expired deadline cancels before any fresh sampling; a
/// generous one never degrades. `timeout_ms: 0` resolves to an expired
/// deadline by construction.
#[test]
fn deadline_edges_behave() {
    let mut rng = TestRng::new(0xFEED);
    let g = arb_graph(&mut rng);
    let cold = session(&g, 2);
    let expired = DetectRequest::new(2, AlgorithmKind::SampledNaive).with_timeout_ms(0);
    assert!(
        matches!(cold.detect(&expired), Err(VulnError::Cancelled)),
        "expired deadline on a cold session must cancel"
    );
    // A huge timeout must neither overflow nor degrade.
    let generous = DetectRequest::new(2, AlgorithmKind::SampledNaive).with_timeout_ms(u64::MAX);
    let r = cold.detect(&generous).unwrap();
    assert!(!r.degraded);
    // With the worlds already cached, even an expired deadline serves
    // the full cached answer: cancellation only gates fresh sampling.
    let warm_full = cold.detect(&expired).unwrap();
    assert_eq!(warm_full.top_k, r.top_k);
    assert!(!warm_full.degraded);
}
