//! Adversarial inputs for the hand-rolled JSON layer (`vulnds::json`)
//! and the serve loop's line framing: depth bombs at and over the cap,
//! truncated escapes, NUL and invalid-UTF-8 bytes, and request lines
//! straddling the 1 MiB framing limit. Every case must fail (or pass)
//! *predictably* — a structured error with a salvaged request id where
//! one was readable, never a panic, hang, or stack overflow.

use vulnds::json::Json;
use vulnds::prelude::*;
use vulnds::serve::{serve, MAX_REQUEST_BYTES};

/// The parser's documented nesting cap (kept private in `json.rs`; the
/// contract is pinned here from the outside).
const MAX_DEPTH: usize = 64;

fn parse_err(text: &str) -> String {
    match Json::parse(text) {
        Err(VulnError::Usage(msg)) => msg,
        Err(other) => panic!("wrong error category for {text:?}: {other:?}"),
        Ok(v) => panic!("hostile input parsed: {text:?} -> {v}"),
    }
}

#[test]
fn nesting_at_the_cap_parses_and_one_past_it_fails() {
    for (open, close) in [("[", "]"), ("{\"a\":", "}")] {
        let at = format!("{}null{}", open.repeat(MAX_DEPTH), close.repeat(MAX_DEPTH));
        assert!(Json::parse(&at).is_ok(), "depth {MAX_DEPTH} must parse for {open}");
        let over = format!("{}null{}", open.repeat(MAX_DEPTH + 1), close.repeat(MAX_DEPTH + 1));
        let msg = parse_err(&over);
        assert!(msg.contains("nesting"), "depth overflow must name the cap: {msg}");
    }
}

#[test]
fn depth_bombs_fail_fast_without_exhausting_the_stack() {
    // A depth bomb orders of magnitude past the cap must be rejected by
    // counting, not by unwinding a recursion that deep.
    for bomb in ["[".repeat(1_000_000), "{\"k\":".repeat(500_000)] {
        let msg = parse_err(&bomb);
        assert!(msg.contains("nesting"), "{msg}");
    }
}

#[test]
fn truncated_unicode_escapes_are_errors_not_panics() {
    for hostile in [
        r#""\u""#,
        r#""\u0""#,
        r#""\u00""#,
        r#""\u004""#,
        r#""\uZZZZ""#,
        r#""\u00GG""#,
        r#"{"id": 1, "s": "\u12"}"#,
        r#""\"#,
        r#""\q""#,
    ] {
        let msg = parse_err(hostile);
        assert!(!msg.is_empty(), "{hostile}");
    }
    // Surrogate halves are rejected rather than silently mangled.
    assert!(Json::parse(r#""\uD800""#).is_err());
    // A complete BMP escape still works.
    assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
}

#[test]
fn nul_and_control_bytes_are_rejected_inside_strings() {
    let with_nul = "\"a\u{0}b\"";
    assert!(Json::parse(with_nul).is_err(), "raw NUL inside a string must be rejected");
    assert!(Json::parse("\"tab\there\"").is_err(), "raw control bytes must be rejected");
    // Escaped forms of the same characters are fine.
    assert_eq!(Json::parse(r#""a\u0000b""#).unwrap(), Json::Str("a\u{0}b".to_string()));
    assert_eq!(Json::parse(r#""tab\there""#).unwrap(), Json::Str("tab\there".to_string()));
}

#[test]
fn salvaged_id_survives_every_failure_mode() {
    // Each hostile document carries a readable root-level id before the
    // damage; the salvage path must recover it so a service can pair
    // the error with the request.
    for hostile in [
        r#"{"id": 42, "k": }"#,
        r#"{"id": 42, "s": "\u12"}"#,
        r#"{"id": 42, "nest": [[[[[["#,
        "{\"id\": 42, \"s\": \"a\u{0}b\"}",
        r#"{"id": 42, "trailing": 1,}"#,
    ] {
        let (outcome, salvaged) = Json::parse_salvaging_id(hostile);
        assert!(outcome.is_err(), "hostile doc parsed: {hostile:?}");
        assert_eq!(salvaged.as_ref().and_then(Json::as_u64), Some(42), "id lost for {hostile:?}");
    }
    // Damage *before* the id: nothing to salvage, and that is reported
    // honestly rather than inventing an id.
    let (outcome, salvaged) = Json::parse_salvaging_id(r#"{"k": , "id": 42}"#);
    assert!(outcome.is_err() && salvaged.is_none());
}

#[test]
fn invalid_utf8_request_lines_get_error_responses() {
    // The serve reader decodes lossily; the mangled text then fails to
    // parse as JSON and is answered as a malformed line, keeping the
    // connection alive for the valid request behind it.
    let graph = Dataset::Interbank.generate_scaled(3, 0.5);
    let detector = Detector::builder(graph).seed(7).threads(1).build().unwrap();
    let mut input: Vec<u8> = Vec::new();
    input.extend(b"{\"id\": 1, \xFF\xFE garbage}\n");
    input.extend([0xC3, 0x28, b'\n']); // overlong/invalid UTF-8 pair
    input.extend(b"{\"id\": 2, \"cmd\": \"stats\"}\n");
    let mut output = Vec::new();
    let summary = serve(&detector, 1, std::io::Cursor::new(input), &mut output).unwrap();
    assert_eq!(summary.requests, 3);
    let lines: Vec<Json> = String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).expect("responses stay valid JSON"))
        .collect();
    assert_eq!(lines.iter().filter(|l| l.get("ok") == Some(&Json::Bool(false))).count(), 2);
    let stats = lines
        .iter()
        .find(|l| l.get("id").and_then(Json::as_u64) == Some(2))
        .expect("valid request after garbage still answered");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn request_lines_straddling_the_framing_limit() {
    let graph = Dataset::Interbank.generate_scaled(3, 0.5);
    let detector = Detector::builder(graph).seed(7).threads(1).build().unwrap();
    // Build three stats requests padded (via a junk field the dispatcher
    // ignores is not allowed — padding goes in a long id string) to one
    // byte under, exactly at, and one byte over MAX_REQUEST_BYTES.
    let frame = |total: usize| {
        let skeleton = "{\"id\": \"\", \"cmd\": \"stats\"}";
        let pad = total - skeleton.len();
        format!("{{\"id\": \"{}\", \"cmd\": \"stats\"}}\n", "p".repeat(pad))
    };
    let mut input = String::new();
    input.push_str(&frame(MAX_REQUEST_BYTES - 1));
    input.push_str(&frame(MAX_REQUEST_BYTES));
    input.push_str(&frame(MAX_REQUEST_BYTES + 1));
    let mut output = Vec::new();
    let summary = serve(&detector, 1, input.as_bytes(), &mut output).unwrap();
    assert_eq!(summary.requests, 3);
    let lines: Vec<Json> =
        String::from_utf8(output).unwrap().lines().map(|l| Json::parse(l).unwrap()).collect();
    let oks: Vec<bool> =
        lines.iter().map(|l| l.get("ok").and_then(Json::as_bool).unwrap()).collect();
    // At-limit and under-limit lines answer; the +1 line is refused
    // with the framing error (its response carries a null id because
    // the line was never buffered).
    assert_eq!(oks.iter().filter(|&&ok| ok).count(), 2, "{lines:?}");
    let refused = lines.iter().find(|l| l.get("ok") == Some(&Json::Bool(false))).unwrap();
    assert!(
        refused.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("exceeds")),
        "{refused}"
    );
    assert_eq!(refused.get("id"), Some(&Json::Null));
}

#[test]
fn crlf_and_lf_framing_agree_at_the_limit() {
    let graph = Dataset::Interbank.generate_scaled(3, 0.5);
    let detector = Detector::builder(graph).seed(7).threads(1).build().unwrap();
    let skeleton = "{\"id\": \"\", \"cmd\": \"stats\"}";
    let body = format!(
        "{{\"id\": \"{}\", \"cmd\": \"stats\"}}",
        "p".repeat(MAX_REQUEST_BYTES - skeleton.len())
    );
    assert_eq!(body.len(), MAX_REQUEST_BYTES);
    for terminator in ["\n", "\r\n"] {
        let input = format!("{body}{terminator}");
        let mut output = Vec::new();
        let summary = serve(&detector, 1, input.as_bytes(), &mut output).unwrap();
        assert_eq!(summary.requests, 1);
        let line = Json::parse(String::from_utf8(output).unwrap().trim()).unwrap();
        assert_eq!(
            line.get("ok").and_then(Json::as_bool),
            Some(true),
            "{terminator:?}-framed at-limit request must be judged identically"
        );
    }
}
