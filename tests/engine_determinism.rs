//! Randomized property tests for the `Detector` engine's determinism
//! contract: results are bit-identical across thread counts and across
//! warm vs cold caches, on arbitrary graphs. Uses the in-repo
//! deterministic test kit (the workspace builds offline with no external
//! dependencies).

use ugraph::testkit::{check, TestRng};
use vulnds::prelude::*;

/// A random graph big enough that bounds do not resolve everything and
/// sampling genuinely runs.
fn arb_graph(rng: &mut TestRng) -> UncertainGraph {
    let n = rng.range_usize(30, 120);
    let m = rng.range_usize(n, 3 * n);
    let risks: Vec<f64> = (0..n).map(|_| rng.next_f64() * 0.6).collect();
    let edges: Vec<(u32, u32, f64)> = (0..m)
        .map(|_| {
            let u = rng.next_bounded(n as u64) as u32;
            let d = 1 + rng.next_bounded(n as u64 - 1) as u32;
            (u, (u + d) % n as u32, rng.next_f64() * 0.6)
        })
        .collect();
    from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap()
}

fn arb_request(rng: &mut TestRng, n: usize) -> DetectRequest {
    let k = rng.range_usize(1, (n / 4).max(1));
    let alg = AlgorithmKind::ALL[rng.range_usize(0, 4)];
    DetectRequest::new(k, alg)
}

/// Detector results are bit-identical across thread counts: same top-k,
/// same scores, same sample accounting.
#[test]
fn results_identical_across_thread_counts() {
    check(12, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1000);
        let req = arb_request(rng, g.num_nodes());
        let mut reference: Option<DetectResponse> = None;
        for threads in [1usize, 2, 5, 8] {
            let d = Detector::builder(&g)
                .config(VulnConfig::default().with_seed(seed))
                .threads(threads)
                .build()
                .unwrap();
            let r = d.detect(&req).unwrap();
            match &reference {
                None => reference = Some(r),
                Some(e) => {
                    assert_eq!(e.top_k, r.top_k, "threads = {threads}, req = {req:?}");
                    assert_eq!(
                        e.stats.samples_used, r.stats.samples_used,
                        "threads = {threads}, req = {req:?}"
                    );
                    assert_eq!(
                        e.engine.samples_drawn, r.engine.samples_drawn,
                        "threads = {threads}, req = {req:?}"
                    );
                }
            }
        }
    });
}

/// A warm cache serves exactly what a cold run computes: replaying a
/// random request sequence on one session matches fresh sessions
/// answering each request alone.
#[test]
fn warm_cache_matches_cold_cache() {
    check(10, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1000);
        let cfg = VulnConfig::default().with_seed(seed);
        let requests: Vec<DetectRequest> =
            (0..5).map(|_| arb_request(rng, g.num_nodes())).collect();

        let warm = Detector::builder(&g).config(cfg.clone()).build().unwrap();
        for req in &requests {
            let warm_resp = warm.detect(req).unwrap();
            let cold = Detector::builder(&g).config(cfg.clone()).build().unwrap();
            let cold_resp = cold.detect(req).unwrap();
            assert_eq!(warm_resp.top_k, cold_resp.top_k, "warm differs from cold for {req:?}");
            assert_eq!(
                warm_resp.stats.samples_used, cold_resp.stats.samples_used,
                "sample accounting differs for {req:?}"
            );
        }
    });
}

/// Regression for coin-table invalidation: `set_edge_prob` /
/// `set_self_risk` bump the graph's probability version, so a session
/// must rebuild its cached `CoinTable` instead of serving stale
/// thresholds. The graph is rigged so the stale answer would be
/// deterministically wrong.
#[test]
fn coin_table_invalidated_by_probability_updates() {
    // ps(0) = 1, dead edge 0 → 1: node 1 can never default.
    let mut g = from_parts(&[1.0, 0.0], &[(0, 1, 0.0)], DuplicateEdgePolicy::Error).unwrap();
    let v0 = g.version();
    let req = DetectRequest::new(2, AlgorithmKind::SampledNaive);
    let cfg = VulnConfig::default().with_seed(5);
    let score_of = |r: &DetectResponse| {
        r.top_k.iter().find(|s| s.node == NodeId(1)).expect("k = n includes node 1").score
    };

    let first = {
        let d = Detector::builder(&g).config(cfg.clone()).build().unwrap();
        let r = d.detect(&req).unwrap();
        assert_eq!(d.session_stats().coin_tables_built, 1);
        // A warm repeat reuses the cached table (and the cached worlds).
        d.detect(&req).unwrap();
        assert_eq!(d.session_stats().coin_tables_built, 1, "warm query rebuilt the coin table");
        score_of(&r)
    };
    assert_eq!(first, 0.0, "dead edge must never transmit");

    g.set_edge_prob(EdgeId(0), 1.0).unwrap();
    assert_ne!(g.version(), v0, "probability updates must bump the graph version");

    let second = {
        let d = Detector::builder(&g).config(cfg).build().unwrap();
        score_of(&d.detect(&req).unwrap())
    };
    assert_eq!(second, 1.0, "stale coin thresholds served after set_edge_prob");
}

/// Repeating the same request on a warm session is a pure cache hit for
/// the non-adaptive algorithms: identical answer, zero fresh samples.
#[test]
fn repeat_requests_are_pure_cache_hits() {
    check(10, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1000);
        let d =
            Detector::builder(&g).config(VulnConfig::default().with_seed(seed)).build().unwrap();
        let req = arb_request(rng, g.num_nodes());
        let first = d.detect(&req).unwrap();
        let second = d.detect(&req).unwrap();
        assert_eq!(first.top_k, second.top_k, "{req:?}");
        if req.algorithm != AlgorithmKind::BottomK {
            assert_eq!(second.engine.samples_drawn, 0, "{req:?} redrew on a warm cache");
        }
    });
}
