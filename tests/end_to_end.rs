//! End-to-end pipeline tests: dataset generation → detection → metrics,
//! exercising the engine API the way the bench harness does.

use vulnds::core::{ground_truth, precision_with_ties};
use vulnds::prelude::*;

fn small(ds: Dataset) -> UncertainGraph {
    ds.generate_scaled(7, 0.05)
}

/// One-shot query through a fresh session.
fn detect_once(
    g: &UncertainGraph,
    k: usize,
    alg: AlgorithmKind,
    cfg: &VulnConfig,
) -> DetectResponse {
    let d = Detector::builder(g).config(cfg.clone()).build().unwrap();
    d.detect(&DetectRequest::new(k, alg)).unwrap()
}

#[test]
fn full_pipeline_on_interbank() {
    let g = Dataset::Interbank.generate(7);
    let truth = ground_truth(&g, 20_000, 99, 2);
    let k = (g.num_nodes() / 10).max(1);
    // One session answers all five algorithms.
    let d = Detector::builder(&g).config(VulnConfig::default().with_seed(5)).build().unwrap();
    for alg in AlgorithmKind::ALL {
        let r = d.detect(&DetectRequest::new(k, alg)).unwrap();
        assert_eq!(r.top_k.len(), k, "{alg}");
        let p = precision_with_ties(&r.top_k, &truth, k, 0.05);
        assert!(p >= 0.5, "{alg}: precision {p}");
        // Scores sorted descending (verified-first ordering may locally
        // reorder, but within the estimated tail it must be sorted).
        let est = &r.top_k[r.stats.verified..];
        for w in est.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12, "{alg}: unsorted estimates");
        }
    }
}

#[test]
fn sample_budgets_shrink_down_the_algorithm_ladder() {
    let g = small(Dataset::Citation);
    let k = (g.num_nodes() / 20).max(2);
    let cfg = VulnConfig::default().with_seed(11);
    let n = detect_once(&g, k, AlgorithmKind::Naive, &cfg);
    let sn = detect_once(&g, k, AlgorithmKind::SampledNaive, &cfg);
    let bsr = detect_once(&g, k, AlgorithmKind::BoundedSampleReverse, &cfg);
    let bk = detect_once(&g, k, AlgorithmKind::BottomK, &cfg);
    assert!(sn.stats.samples_used < n.stats.samples_used);
    assert!(bsr.stats.sample_budget <= sn.stats.sample_budget);
    assert!(bk.stats.samples_used <= bsr.stats.samples_used);
}

#[test]
fn pruning_is_effective_on_financial_shapes() {
    // Skewed financial probabilities give informative bounds: the
    // candidate set must be far below n.
    let g = small(Dataset::Guarantee);
    let k = (g.num_nodes() / 20).max(2);
    let r = detect_once(&g, k, AlgorithmKind::BoundedSampleReverse, &VulnConfig::default());
    assert!(
        (r.stats.candidates as f64) < 0.8 * g.num_nodes() as f64,
        "candidates {} of n {}",
        r.stats.candidates,
        g.num_nodes()
    );
}

#[test]
fn threads_do_not_change_results() {
    let g = small(Dataset::Bitcoin);
    let k = 5;
    for alg in [
        AlgorithmKind::Naive,
        AlgorithmKind::SampledNaive,
        AlgorithmKind::SampleReverse,
        AlgorithmKind::BoundedSampleReverse,
    ] {
        let seq = detect_once(&g, k, alg, &VulnConfig::default().with_seed(3).with_threads(1));
        let par = detect_once(&g, k, alg, &VulnConfig::default().with_seed(3).with_threads(4));
        assert_eq!(seq.top_k, par.top_k, "{alg}");
    }
}

#[test]
fn detection_is_reproducible_across_sessions() {
    let g = small(Dataset::Wiki);
    let cfg = VulnConfig::default().with_seed(21);
    for alg in AlgorithmKind::ALL {
        let a = detect_once(&g, 10, alg, &cfg);
        let b = detect_once(&g, 10, alg, &cfg);
        assert_eq!(a.top_k, b.top_k, "{alg}");
        assert_eq!(a.stats.samples_used, b.stats.samples_used, "{alg}");
    }
}

#[test]
fn every_superblock_width_matches_the_planned_engine() {
    // Width is purely a throughput knob: a session pinned to any
    // superblock width must answer bit-identically to the
    // planner-driven session, for every algorithm.
    let g = small(Dataset::Citation);
    let cfg = VulnConfig::default().with_seed(13);
    for alg in AlgorithmKind::ALL {
        let planned = detect_once(&g, 5, alg, &cfg);
        for width in BlockWords::ALL {
            let pinned = detect_once(&g, 5, alg, &cfg.clone().with_block_words(width));
            assert_eq!(pinned.top_k, planned.top_k, "{alg} at width {width}");
            assert_eq!(
                pinned.stats.samples_used, planned.stats.samples_used,
                "{alg} at width {width}"
            );
        }
    }
}

#[test]
fn graph_io_roundtrip_preserves_detection() {
    let g = small(Dataset::Citation);
    let mut buf = Vec::new();
    ugraph::io::write_graph(&g, &mut buf).unwrap();
    let g2 = ugraph::io::read_graph(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(g, g2);
    let cfg = VulnConfig::default().with_seed(9);
    let a = detect_once(&g, 5, AlgorithmKind::BottomK, &cfg);
    let b = detect_once(&g2, 5, AlgorithmKind::BottomK, &cfg);
    assert_eq!(a.top_k, b.top_k);
}

#[test]
fn baselines_integrate_with_generated_datasets() {
    use vulnds::baselines::{betweenness, core_numbers, pagerank, roc_auc, PageRankParams};
    let g = small(Dataset::Fraud);
    let n = g.num_nodes();
    assert_eq!(betweenness(&g).len(), n);
    assert_eq!(core_numbers(&g).len(), n);
    let pr = pagerank(&g, PageRankParams::default());
    assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    // AUC of self-risk as a predictor of true vulnerability ranking: the
    // pieces glue together without panicking and give a sane value.
    let truth = ground_truth(&g, 2_000, 5, 2);
    let labels: Vec<bool> = {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_unstable_by(|&a, &b| truth[b].partial_cmp(&truth[a]).unwrap());
        let mut l = vec![false; n];
        for &i in idx.iter().take(n / 10) {
            l[i] = true;
        }
        l
    };
    let risks: Vec<f64> = g.nodes().map(|v| g.self_risk(v)).collect();
    let auc = roc_auc(&risks, &labels).unwrap();
    assert!(auc > 0.5, "self-risk should be predictive: {auc}");
}
