//! Cross-validation of the engine's five algorithms on the bit-parallel
//! world-block data path against scalar one-world-at-a-time references.
//!
//! The sampling-level bitwise proofs live in
//! `crates/sampling/tests/block_cross_validation.rs`; this suite covers
//! the layers above:
//!
//! * N / SN / SR / BSR answers route through `*_counts_range`, so their
//!   estimates must equal a hand-rolled scalar-oracle run of the same
//!   budgets and candidate sets;
//! * BSRBK's chunked block replay (64 hash-ordered worlds per
//!   `WorldBlock`, lanes replayed in order) must reproduce a scalar
//!   per-sample adaptive pass — counters, saturation hashes, early-stop
//!   point and all;
//! * every algorithm stays bit-identical across thread counts and
//!   budgets that are not multiples of 64 (served via partial lane
//!   masks).

use ugraph::testkit::{check, TestRng};
use vulnds::prelude::*;
use vulnds::sampling::{
    BlockKernel, CoinTable, PossibleWorld, ReverseSampler, ScalarCoins, WorldBlock, LANES,
};
use vulnds::sketch::{bottomk_default_probability, hash_order, UnitHasher};

fn arb_graph(rng: &mut TestRng) -> UncertainGraph {
    let n = rng.range_usize(20, 80);
    let m = rng.range_usize(n, 3 * n);
    let risks: Vec<f64> = (0..n).map(|_| rng.next_f64() * 0.5).collect();
    let edges: Vec<(u32, u32, f64)> = (0..m)
        .map(|_| {
            let u = rng.next_bounded(n as u64) as u32;
            let d = 1 + rng.next_bounded(n as u64 - 1) as u32;
            (u, (u + d) % n as u32, rng.next_f64() * 0.5)
        })
        .collect();
    from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap()
}

/// N and SN top-k scores equal the scalar-oracle estimates of the same
/// forward budget — at thread counts on both sides of the machine's
/// parallelism and at non-64-multiple budgets.
#[test]
fn forward_algorithms_match_scalar_oracle_estimates() {
    check(8, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1000);
        // A deliberately unaligned fixed budget for N.
        let t = rng.range_usize(65, 300) as u64 | 1;
        for threads in [1usize, 4] {
            let cfg = VulnConfig::default().with_seed(seed).with_threads(threads);
            let d = Detector::builder(&g).config(cfg).naive_samples(t).build().unwrap();
            let r = d.detect(&DetectRequest::new(3, AlgorithmKind::Naive)).unwrap();

            // Scalar oracle: estimate every node over the same worlds.
            let mut counts = vec![0u64; g.num_nodes()];
            for i in 0..t {
                let world = PossibleWorld::sample_indexed(&g, seed, i);
                for (c, d) in counts.iter_mut().zip(world.defaulted_nodes(&g)) {
                    *c += d as u64;
                }
            }
            for scored in &r.top_k {
                let expected = counts[scored.node.index()] as f64 / t as f64;
                assert_eq!(scored.score, expected, "threads {threads}, node {:?}", scored.node);
            }
        }
    });
}

/// SR and BSR scores over an explicit candidate hint equal the scalar
/// oracle projected onto that hint.
#[test]
fn reverse_algorithms_match_scalar_oracle_estimates() {
    check(8, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1000);
        let hint: Vec<NodeId> = (0..10).map(NodeId).collect();
        for kind in [AlgorithmKind::SampleReverse, AlgorithmKind::BoundedSampleReverse] {
            let cfg = VulnConfig::default().with_seed(seed);
            let d = Detector::builder(&g).config(cfg).build().unwrap();
            let req = DetectRequest::new(2, kind).with_candidates(hint.clone());
            let r = d.detect(&req).unwrap();
            let t = r.stats.sample_budget;
            if t == 0 {
                continue; // degenerate BSR plan: bounds decided everything
            }
            let mut counts = vec![0u64; g.num_nodes()];
            for i in 0..t {
                let world = PossibleWorld::sample_indexed(&g, seed, i);
                for (c, d) in counts.iter_mut().zip(world.defaulted_nodes(&g)) {
                    *c += d as u64;
                }
            }
            // Sampled candidates carry exact oracle frequencies. The
            // first `stats.verified` entries are bound-verified nodes
            // with midpoint scores (skipped individually); every entry
            // after them must match the oracle bit for bit.
            for (rank, scored) in r.top_k.iter().enumerate() {
                if rank < r.stats.verified {
                    continue;
                }
                let freq = counts[scored.node.index()] as f64 / t as f64;
                assert_eq!(
                    scored.score, freq,
                    "{kind}: rank {rank} node {:?} scored {} vs oracle {freq}",
                    scored.node, scored.score
                );
            }
        }
    });
}

/// The BSRBK chunk-and-replay loop is an exact reformulation of the
/// scalar per-sample adaptive pass: same counters, same saturation
/// hashes, same stop sample.
#[test]
fn bsrbk_block_replay_matches_scalar_adaptive_pass() {
    check(10, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1000);
        let n = g.num_nodes();
        let candidates: Vec<NodeId> = (0..rng.range_usize(4, 16))
            .map(|_| NodeId(rng.next_bounded(n as u64) as u32))
            .collect();
        let t = rng.range_usize(70, 200);
        let bk = rng.range_usize(2, 6);
        let k_rem = rng.range_usize(1, candidates.len());
        let hasher = UnitHasher::new(seed ^ 0xB077_0A6B_5EED_0001);
        let order = hash_order(&hasher, t);

        // --- Scalar reference: one world per step, stop on saturation.
        let run_scalar = || {
            let table = CoinTable::new(&g);
            let mut sampler = ReverseSampler::new(&g);
            let mut counters = vec![0u32; candidates.len()];
            let mut kth_hash = vec![0.0f64; candidates.len()];
            let mut saturated = vec![false; candidates.len()];
            let mut saturated_count = 0usize;
            let mut used = 0u64;
            let mut stopped = false;
            'outer: for &sample_id in &order {
                let h = hasher.hash_unit(sample_id as u64);
                sampler.begin_sample(ScalarCoins::new(seed, sample_id as u64));
                used += 1;
                for (i, &v) in candidates.iter().enumerate() {
                    if !saturated[i] && sampler.is_influenced(&g, &table, v) {
                        counters[i] += 1;
                        if counters[i] as usize == bk {
                            saturated[i] = true;
                            kth_hash[i] = h;
                            saturated_count += 1;
                        }
                    }
                }
                if saturated_count >= k_rem {
                    stopped = true;
                    break 'outer;
                }
            }
            (counters, kth_hash, saturated, used, stopped)
        };

        // --- Block replay: 64 worlds per chunk, lanes consumed in order.
        let run_block = || {
            let table = CoinTable::new(&g);
            let mut block = WorldBlock::new(&g);
            let mut kernel = BlockKernel::new(&g);
            let mut counters = vec![0u32; candidates.len()];
            let mut kth_hash = vec![0.0f64; candidates.len()];
            let mut saturated = vec![false; candidates.len()];
            let mut saturated_count = 0usize;
            let mut used = 0u64;
            let mut stopped = false;
            'outer: for chunk in order.chunks(LANES) {
                let ids: Vec<u64> = chunk.iter().map(|&s| s as u64).collect();
                block.materialize_ids(&g, &table, seed, &ids);
                kernel.begin_block();
                let active: Vec<(usize, u64)> = candidates
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !saturated[*i])
                    .map(|(i, &v)| (i, kernel.reverse_hit_word(&g, &table, &mut block, v)))
                    .collect();
                for (lane, &sample_id) in ids.iter().enumerate() {
                    let h = hasher.hash_unit(sample_id);
                    used += 1;
                    for &(i, word) in &active {
                        if !saturated[i] && word >> lane & 1 == 1 {
                            counters[i] += 1;
                            if counters[i] as usize == bk {
                                saturated[i] = true;
                                kth_hash[i] = h;
                                saturated_count += 1;
                            }
                        }
                    }
                    if saturated_count >= k_rem {
                        stopped = true;
                        break 'outer;
                    }
                }
            }
            (counters, kth_hash, saturated, used, stopped)
        };

        assert_eq!(run_scalar(), run_block(), "bk {bk}, k_rem {k_rem}, t {t}");
    });
}

/// The engine's *actual* BSRBK implementation (the chunked block replay
/// inside `BottomKEarlyStop::run`, including its `begin_block` cache
/// resets) reproduces a scalar per-sample adaptive pass reconstructed
/// from the engine's own reported plan: same `samples_used`, same
/// early-stop verdict, and bit-identical scores for every sampled
/// top-k entry.
#[test]
fn engine_bsrbk_matches_scalar_adaptive_reference() {
    check(8, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1000);
        let k = rng.range_usize(2, 6);
        let bk = rng.range_usize(2, 5);
        let hint: Vec<NodeId> = g.nodes().collect();
        let cfg = VulnConfig::default().with_seed(seed).with_bk(bk);
        let d = Detector::builder(&g).config(cfg).build().unwrap();
        let req = DetectRequest::new(k, AlgorithmKind::BottomK).with_candidates(hint.clone());
        let r = d.detect(&req).unwrap();
        let t = r.stats.sample_budget;
        if t == 0 {
            return; // degenerate plan: the bounds decided everything
        }
        // Reconstruct the engine's plan from its response: verified
        // nodes lead the top-k, and the sampled candidate set is the
        // hint minus those verified nodes.
        let verified: Vec<NodeId> = r.top_k[..r.stats.verified].iter().map(|s| s.node).collect();
        let candidates: Vec<NodeId> =
            hint.iter().copied().filter(|v| !verified.contains(v)).collect();
        assert_eq!(candidates.len(), r.stats.candidates, "plan reconstruction drifted");
        let k_rem = k - r.stats.verified;

        // Scalar per-sample adaptive pass over the same plan.
        let table = CoinTable::new(&g);
        let hasher = UnitHasher::new(seed ^ 0xB077_0A6B_5EED_0001);
        let order = hash_order(&hasher, t as usize);
        let mut sampler = ReverseSampler::new(&g);
        let mut counters = vec![0u32; candidates.len()];
        let mut kth_hash = vec![0.0f64; candidates.len()];
        let mut saturated = vec![false; candidates.len()];
        let mut saturated_count = 0usize;
        let mut used = 0u64;
        let mut stopped = false;
        'outer: for &sample_id in &order {
            let h = hasher.hash_unit(sample_id as u64);
            sampler.begin_sample(ScalarCoins::new(seed, sample_id as u64));
            used += 1;
            for (i, &v) in candidates.iter().enumerate() {
                if !saturated[i] && sampler.is_influenced(&g, &table, v) {
                    counters[i] += 1;
                    if counters[i] as usize == bk {
                        saturated[i] = true;
                        kth_hash[i] = h;
                        saturated_count += 1;
                    }
                }
            }
            if saturated_count >= k_rem {
                stopped = true;
                break 'outer;
            }
        }
        assert_eq!(used, r.stats.samples_used, "samples_used diverged from the scalar pass");
        assert_eq!(stopped, r.stats.early_stopped, "early-stop verdict diverged");
        // Score every sampled top-k entry exactly as the engine must.
        for (rank, scored) in r.top_k.iter().enumerate().skip(r.stats.verified) {
            let i = candidates.iter().position(|&v| v == scored.node).expect("sampled entry");
            let expected = if saturated[i] {
                bottomk_default_probability(bk, kth_hash[i], t as usize)
            } else {
                assert!(!stopped, "early-stopped selection must come from saturated candidates");
                counters[i] as f64 / used as f64
            };
            assert_eq!(scored.score, expected, "rank {rank} node {:?}", scored.node);
        }
    });
}

/// End to end: all five algorithms agree bitwise across thread counts on
/// warm and cold sessions (extends PR 1's determinism suite to the block
/// data path explicitly).
#[test]
fn five_algorithms_bit_identical_across_thread_counts() {
    check(6, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1000);
        let k = rng.range_usize(1, 5);
        for kind in AlgorithmKind::ALL {
            let mut reference: Option<DetectResponse> = None;
            for threads in [1usize, 3, 16] {
                let d = Detector::builder(&g)
                    .config(VulnConfig::default().with_seed(seed))
                    .threads(threads)
                    .build()
                    .unwrap();
                let r = d.detect(&DetectRequest::new(k, kind)).unwrap();
                match &reference {
                    None => reference = Some(r),
                    Some(e) => {
                        assert_eq!(e.top_k, r.top_k, "{kind} threads {threads}");
                        assert_eq!(e.stats.samples_used, r.stats.samples_used, "{kind}");
                    }
                }
            }
        }
    });
}
