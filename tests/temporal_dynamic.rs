//! Integration of the temporal workload generator with the incremental
//! bounds maintainer and the detection pipeline — the "monthly
//! recalibration" loop of the paper's deployed system.

use vulnds::core::compute_bounds;
use vulnds::datasets::{replay, update_stream, UpdateEvent, UpdateStreamParams};
use vulnds::prelude::*;

/// One-shot query through a fresh session.
fn detect_once(
    g: &UncertainGraph,
    k: usize,
    alg: AlgorithmKind,
    cfg: &VulnConfig,
) -> DetectResponse {
    let d = Detector::builder(g).config(cfg.clone()).build().unwrap();
    d.detect(&DetectRequest::new(k, alg)).unwrap()
}

#[test]
fn incremental_bounds_track_a_month_of_updates() {
    let g = Dataset::Guarantee.generate_scaled(11, 0.02);
    let events =
        update_stream(&g, UpdateStreamParams { events: 200, node_fraction: 0.7, drift: 0.3 }, 5);
    let mut inc = IncrementalBounds::new(g.clone(), 2, BoundsMethod::Paper);
    let mut total_cells = 0usize;
    for &ev in &events {
        total_cells += match ev {
            UpdateEvent::SelfRisk(v, p) => inc.update_self_risk(v, p).unwrap(),
            UpdateEvent::EdgeProb(e, p) => inc.update_edge_prob(e, p).unwrap(),
        };
    }
    // Exactness against batch replay.
    let replayed = replay(&g, &events);
    let (l, u) = compute_bounds(&replayed, 2, BoundsMethod::Paper);
    for v in 0..replayed.num_nodes() {
        assert!((inc.lower()[v] - l[v]).abs() < 1e-12, "lower mismatch at {v}");
        assert!((inc.upper()[v] - u[v]).abs() < 1e-12, "upper mismatch at {v}");
    }
    // Locality: the near-tree Guarantee shape means repairs touch far
    // fewer cells than 200 full recomputations (200 · n · z cells).
    let full_cost = 200 * replayed.num_nodes() * 2;
    assert!(
        total_cells * 10 < full_cost,
        "incremental cost {total_cells} not clearly below batch {full_cost}"
    );
}

#[test]
fn detection_after_updates_equals_detection_on_replayed_graph() {
    let g = Dataset::Interbank.generate(13);
    let events = update_stream(&g, UpdateStreamParams::default(), 17);
    let replayed = replay(&g, &events);

    let mut inc = IncrementalBounds::new(g, 2, BoundsMethod::Paper);
    for &ev in &events {
        match ev {
            UpdateEvent::SelfRisk(v, p) => {
                inc.update_self_risk(v, p).unwrap();
            }
            UpdateEvent::EdgeProb(e, p) => {
                inc.update_edge_prob(e, p).unwrap();
            }
        }
    }
    let cfg = VulnConfig::default().with_seed(19);
    let from_incremental = detect_once(inc.graph(), 5, AlgorithmKind::BottomK, &cfg);
    let from_replay = detect_once(&replayed, 5, AlgorithmKind::BottomK, &cfg);
    assert_eq!(from_incremental.top_k, from_replay.top_k);
}

#[test]
fn drift_changes_the_ranking_eventually() {
    // Sanity: the temporal process actually moves the answer, otherwise
    // the incremental machinery is pointless.
    let g = Dataset::Interbank.generate(23);
    let cfg = VulnConfig::default().with_seed(29);
    let before = detect_once(&g, 5, AlgorithmKind::BoundedSampleReverse, &cfg);
    let events =
        update_stream(&g, UpdateStreamParams { events: 500, node_fraction: 0.9, drift: 0.5 }, 31);
    let after_graph = replay(&g, &events);
    let after = detect_once(&after_graph, 5, AlgorithmKind::BoundedSampleReverse, &cfg);
    assert_ne!(before.node_ids(), after.node_ids(), "500 drift events changed nothing");
}
