//! System-level randomized property tests on tiny graphs where full
//! possible-world enumeration is feasible (n + m ≤ 24 coins). Uses the
//! in-repo deterministic test kit (the workspace builds offline with no
//! external dependencies).

use ugraph::testkit::{check, TestRng};
use vulnds::core::{
    exact_default_probabilities, lower_bounds_safe, reduce_candidates, upper_bounds,
};
use vulnds::prelude::*;
use vulnds::sampling::{forward_counts, reverse_counts};

/// A tiny random uncertain graph (≤ 6 nodes, ≤ 10 edges, so at most
/// 16 coins — well inside the enumerator's 24-coin limit).
fn tiny_graph(rng: &mut TestRng) -> UncertainGraph {
    let n = rng.range_usize(3, 6);
    let risks: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let m = rng.range_usize(0, 10);
    let edges: Vec<(u32, u32, f64)> = (0..m)
        .map(|_| {
            let u = rng.next_bounded(n as u64) as u32;
            let d = 1 + rng.next_bounded(n as u64 - 1) as u32;
            (u, (u + d) % n as u32, rng.next_f64())
        })
        .collect();
    from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap()
}

/// The safe bounds enclose the exact probability on every graph —
/// including cyclic ones and converging paths.
#[test]
fn safe_bounds_enclose_exact() {
    check(24, |rng| {
        let g = tiny_graph(rng);
        let z = rng.range_usize(1, 4);
        let exact = exact_default_probabilities(&g);
        let lower = lower_bounds_safe(&g, z);
        let upper = upper_bounds(&g, z);
        for (v, &p) in exact.iter().enumerate() {
            assert!(lower[v] <= p + 1e-9, "v={v} z={z}: lower {} > exact {p}", lower[v]);
            assert!(upper[v] >= p - 1e-9, "v={v} z={z}: upper {} < exact {p}", upper[v]);
        }
    });
}

/// With safe bounds, candidate reduction never loses a true top-k node:
/// verified ∪ candidates ⊇ exact top-k (up to boundary ties).
#[test]
fn candidate_reduction_covers_exact_topk() {
    check(24, |rng| {
        let g = tiny_graph(rng);
        let n = g.num_nodes();
        let k = rng.range_usize(1, 3).min(n);
        let exact = exact_default_probabilities(&g);
        let lower = lower_bounds_safe(&g, 2);
        let upper = upper_bounds(&g, 2);
        let r = reduce_candidates(&lower, &upper, k);
        let mut covered = vec![false; n];
        for v in r.verified.iter().chain(&r.candidates) {
            covered[v.index()] = true;
        }
        // k-th exact value; any node strictly above it must be covered.
        let mut sorted = exact.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let pk = sorted[k - 1];
        for v in 0..n {
            if exact[v] > pk + 1e-9 {
                assert!(covered[v], "node {v} (p={}) lost; pk={pk}", exact[v]);
            }
        }
    });
}

/// Forward and reverse samplers estimate the same marginals.
#[test]
fn forward_and_reverse_marginals_agree() {
    check(24, |rng| {
        let g = tiny_graph(rng);
        let n = g.num_nodes();
        let t = 8_000;
        let fwd = forward_counts(&g, t, 1234);
        let cands: Vec<NodeId> = g.nodes().collect();
        let rev = reverse_counts(&g, &cands, t, 4321);
        for v in 0..n {
            let diff = (fwd.estimate(v) - rev.estimate(v)).abs();
            assert!(diff < 0.06, "node {v}: fwd {} rev {}", fwd.estimate(v), rev.estimate(v));
        }
    });
}

/// Monte-Carlo estimates converge to the enumerated truth.
#[test]
fn sampling_converges_to_exact() {
    check(24, |rng| {
        let g = tiny_graph(rng);
        let exact = exact_default_probabilities(&g);
        let counts = forward_counts(&g, 12_000, 777);
        for (v, &p) in exact.iter().enumerate() {
            let diff = (counts.estimate(v) - p).abs();
            assert!(diff < 0.05, "node {v}: mc {} exact {p}", counts.estimate(v));
        }
    });
}

/// Default probabilities are monotone in self-risk: raising one node's
/// self-risk cannot lower anyone's default probability.
#[test]
fn monotone_in_self_risk() {
    check(24, |rng| {
        let g = tiny_graph(rng);
        let exact = exact_default_probabilities(&g);
        // Bump node 0's self-risk to 1.
        let risks: Vec<f64> =
            g.nodes().map(|v| if v.0 == 0 { 1.0 } else { g.self_risk(v) }).collect();
        let edges: Vec<(u32, u32, f64)> = g
            .edges()
            .map(|e| {
                let (u, v) = g.edge_endpoints(e);
                (u.0, v.0, g.edge_prob(e))
            })
            .collect();
        let bumped = from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap();
        let exact2 = exact_default_probabilities(&bumped);
        for v in 0..g.num_nodes() {
            assert!(
                exact2[v] >= exact[v] - 1e-9,
                "node {v} decreased: {} -> {}",
                exact[v],
                exact2[v]
            );
        }
    });
}
