//! Loan-risk screening on a synthetic guaranteed-loan network — the
//! paper's motivating scenario: a bank's risk-control center flags the
//! top-k enterprises for manual review each month.
//!
//! Run with `cargo run --release --example loan_risk`.

use std::sync::Arc;

use vulnds::prelude::*;

fn main() {
    // A 10%-scale Guarantee network (Table 2 shape: near-tree with one
    // dominant guarantor hub, financial skewed-low probabilities). The
    // bank keeps one `Arc` of it: the analyst below and the screening
    // session share the same allocation.
    let graph = Arc::new(Dataset::Guarantee.generate_scaled(2024, 0.1));
    let stats = GraphStats::compute(&graph);
    println!("Guaranteed-loan network:");
    println!("  enterprises:        {}", stats.nodes);
    println!("  guarantee relations: {}", stats.edges);
    println!("  max degree (hub):   {}", stats.max_degree);
    println!("  mean self-risk:     {:.3}", stats.mean_self_risk);

    // Monthly screening: flag the top 1% enterprises. The session owns
    // the thread pool size (defaults to available parallelism) and keeps
    // bounds and sampled worlds warm for follow-up queries.
    let k = (stats.nodes / 100).max(10);
    let detector = Detector::builder(Arc::clone(&graph)).seed(2024).build().expect("valid session");
    let result =
        detector.detect(&DetectRequest::new(k, AlgorithmKind::BottomK)).expect("valid request");

    println!("\nTop-{k} vulnerable enterprises (BSRBK):");
    for (rank, s) in result.top_k.iter().take(10).enumerate() {
        println!(
            "  #{:<3} enterprise {:<6} estimated default probability {:.3}  (self-risk {:.3}, {} guarantors)",
            rank + 1,
            s.node.0,
            s.score,
            graph.self_risk(s.node),
            graph.in_degree(s.node),
        );
    }
    if result.top_k.len() > 10 {
        println!("  ... and {} more", result.top_k.len() - 10);
    }

    println!("\nRun diagnostics:");
    println!("  candidates after pruning: {} / {}", result.stats.candidates, stats.nodes);
    println!("  verified without sampling: {}", result.stats.verified);
    println!(
        "  samples used / budget:     {} / {}",
        result.stats.samples_used, result.stats.sample_budget
    );
    println!("  early-stopped:             {}", result.stats.early_stopped);
    println!("  wall-clock:                {:?}", result.stats.elapsed);

    // The analyst asks a follow-up on the same session: a wider review
    // list. Bounds and the candidate machinery are already warm.
    let wider =
        detector.detect(&DetectRequest::new(k * 2, AlgorithmKind::BottomK)).expect("valid request");
    println!(
        "\nFollow-up top-{} on the warm session: bounds reused = {}, drew {} fresh worlds.",
        k * 2,
        wider.engine.bounds_reused,
        wider.engine.samples_drawn
    );

    // Contagion analysis for the riskiest enterprise: who would it drag
    // down? (Forward reachability, structural.)
    let worst = result.top_k[0].node;
    let downstream =
        ugraph::traversal::reachable_count(&graph, worst, ugraph::Direction::Forward) - 1;
    println!(
        "\nEnterprise {} can reach {} downstream enterprises through guarantee chains.",
        worst.0, downstream
    );
}
