//! Cascading-failure screening on a synthetic power grid — the paper's
//! second motivating domain: facilities break down by themselves or when
//! upstream facilities fail.
//!
//! Builds a layered transmission grid (generators → transmission →
//! distribution → substations), computes vulnerability with and without
//! hardening the riskiest facilities, and reports the delta.
//!
//! Run with `cargo run --release --example power_grid`.

use vulnds::prelude::*;
use vulnds::sampling::Xoshiro256pp;

/// Builds a layered grid: `layers[t]` facilities in tier `t`, feed lines
/// only from tier `t` to `t+1` (power flows downstream; so do failures).
/// Parallel feed lines merge as independent channels (noisy-or).
fn build_grid(layers: &[usize], seed: u64) -> UncertainGraph {
    let n: usize = layers.iter().sum();
    let mut rng = Xoshiro256pp::new(seed);
    let mut b = GraphBuilder::new(n).with_duplicate_policy(DuplicateEdgePolicy::NoisyOr);

    let mut offset = vec![0usize];
    for &l in layers {
        offset.push(offset.last().unwrap() + l);
    }

    // Self-risks: generators riskiest (mechanical wear), downstream safer.
    for (tier, &count) in layers.iter().enumerate() {
        let base = 0.12 / (tier as f64 + 1.0);
        for i in 0..count {
            let jitter = rng.next_f64() * base;
            b.set_self_risk(NodeId((offset[tier] + i) as u32), base + jitter).expect("valid risk");
        }
    }

    // Each facility in tier t+1 is fed by 2–3 facilities of tier t;
    // failure propagates along a feed line with moderate probability.
    for tier in 0..layers.len() - 1 {
        for i in 0..layers[tier + 1] {
            let child = (offset[tier + 1] + i) as u32;
            let feeds = 2 + rng.next_bounded(2) as usize;
            for _ in 0..feeds {
                let parent = (offset[tier] + rng.next_bounded(layers[tier] as u64) as usize) as u32;
                let p = 0.25 + rng.next_f64() * 0.35;
                b.add_edge(NodeId(parent), NodeId(child), p).expect("valid edge");
            }
        }
    }
    b.build().expect("valid grid")
}

fn tier_of(v: usize, layers: &[usize]) -> usize {
    let mut acc = 0;
    for (t, &l) in layers.iter().enumerate() {
        acc += l;
        if v < acc {
            return t;
        }
    }
    layers.len() - 1
}

fn main() {
    let layers = [40, 150, 600, 2000]; // generators → ... → substations
    let grid = build_grid(&layers, 77);
    let stats = GraphStats::compute(&grid);
    println!("Layered power grid: {} facilities, {} feed lines", stats.nodes, stats.edges);

    let k = 25;
    let detector = Detector::builder(&grid).seed(77).build().expect("valid session");
    let before = detector
        .detect(&DetectRequest::new(k, AlgorithmKind::BoundedSampleReverse))
        .expect("valid request");
    println!("\nTop-{k} breakdown-prone facilities (BSR):");
    for s in before.top_k.iter().take(8) {
        println!(
            "  facility {:<5} tier {}  p(breakdown) ≈ {:.3}",
            s.node.0,
            tier_of(s.node.0 as usize, &layers),
            s.score
        );
    }

    // Hardening experiment: halve the self-risk of the top-5 facilities
    // and re-detect — the top-k risk mass should drop. The modified grid
    // is a different graph, so it gets its own session.
    let mut b = GraphBuilder::new(grid.num_nodes());
    for v in grid.nodes() {
        b.set_self_risk(v, grid.self_risk(v)).unwrap();
    }
    for s in before.top_k.iter().take(5) {
        b.set_self_risk(s.node, grid.self_risk(s.node) * 0.5).unwrap();
    }
    for e in grid.edges() {
        let (u, v) = grid.edge_endpoints(e);
        b.add_edge(u, v, grid.edge_prob(e)).unwrap();
    }
    let hardened = b.build().expect("valid grid");
    // The session owns its graph, so the hardened grid moves in — no
    // borrow to keep alive, no copy.
    let hardened_detector = Detector::builder(hardened).seed(77).build().expect("valid session");
    let after = hardened_detector
        .detect(&DetectRequest::new(k, AlgorithmKind::BoundedSampleReverse))
        .expect("valid request");

    let mean =
        |r: &DetectResponse| r.top_k.iter().map(|s| s.score).sum::<f64>() / r.top_k.len() as f64;
    let (mb, ma) = (mean(&before), mean(&after));
    println!("\nHardening the top-5 facilities:");
    println!("  mean top-{k} breakdown probability before: {mb:.3}");
    println!("  mean top-{k} breakdown probability after:  {ma:.3}");
    println!("  reduction: {:.1}%", (1.0 - ma / mb.max(1e-12)) * 100.0);
}
