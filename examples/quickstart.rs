//! Quickstart: build the paper's Figure-3 toy guaranteed-loan network and
//! find its most vulnerable enterprises with every algorithm.
//!
//! Run with `cargo run --release --example quickstart`.

use vulnds::prelude::*;

fn main() {
    // Figure 3: enterprises A..E; an edge (X, Y) means "X's default can
    // drag Y down" with the given diffusion probability.
    let names = ["A", "B", "C", "D", "E"];
    let mut b = UncertainGraph::builder(5);
    for v in 0..5 {
        b.set_self_risk(NodeId(v), 0.2).expect("valid probability");
    }
    for (u, v) in [(0u32, 1u32), (0, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
        b.add_edge(NodeId(u), NodeId(v), 0.2).expect("valid edge");
    }
    let graph = b.build().expect("valid graph");

    println!("Toy guaranteed-loan network (paper Figure 3):");
    println!("  nodes: {}, edges: {}", graph.num_nodes(), graph.num_edges());

    // Exact default probabilities by full possible-world enumeration —
    // feasible only because the graph has 5 + 6 = 11 coins.
    let exact = vulnds::core::exact_default_probabilities(&graph);
    println!("\nExact default probabilities:");
    for v in 0..5 {
        println!("  {}: {:.4}", names[v], exact[v]);
    }

    // Detect the top-2 vulnerable nodes with each algorithm.
    let config = VulnConfig::default().with_seed(7);
    println!("\nTop-2 vulnerable nodes per algorithm:");
    for alg in AlgorithmKind::ALL {
        let result = detect(&graph, 2, alg, &config);
        let picks: Vec<&str> =
            result.top_k.iter().map(|s| names[s.node.index()]).collect();
        println!(
            "  {:6} -> {:?}  (samples used: {}, candidates: {}, {:?})",
            alg.label(),
            picks,
            result.stats.samples_used,
            result.stats.candidates,
            result.stats.elapsed
        );
    }

    println!("\nE is the most vulnerable: three upstream guarantors can infect it.");
}
