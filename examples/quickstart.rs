//! Quickstart: build the paper's Figure-3 toy guaranteed-loan network and
//! find its most vulnerable enterprises with every algorithm — one
//! `Detector` session, one batched query, then the same session shared
//! across concurrent client threads (`detect` takes `&self`).
//!
//! Run with `cargo run --release --example quickstart`.

use vulnds::prelude::*;

fn main() {
    // Figure 3: enterprises A..E; an edge (X, Y) means "X's default can
    // drag Y down" with the given diffusion probability.
    let names = ["A", "B", "C", "D", "E"];
    let mut b = UncertainGraph::builder(5);
    for v in 0..5 {
        b.set_self_risk(NodeId(v), 0.2).expect("valid probability");
    }
    for (u, v) in [(0u32, 1u32), (0, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
        b.add_edge(NodeId(u), NodeId(v), 0.2).expect("valid edge");
    }
    let graph = b.build().expect("valid graph");

    println!("Toy guaranteed-loan network (paper Figure 3):");
    println!("  nodes: {}, edges: {}", graph.num_nodes(), graph.num_edges());

    // Exact default probabilities by full possible-world enumeration —
    // feasible only because the graph has 5 + 6 = 11 coins.
    let exact = vulnds::core::exact_default_probabilities(&graph);
    println!("\nExact default probabilities:");
    for v in 0..5 {
        println!("  {}: {:.4}", names[v], exact[v]);
    }

    // One session answers all five algorithms as a batch: the bounds are
    // computed once, and algorithms that sample the same stream share
    // one sampling pass. The session owns the graph (here: cloned from
    // the borrow; pass by value or `Arc` to avoid the copy).
    let detector = Detector::builder(&graph).seed(7).build().expect("valid session");
    let requests: Vec<DetectRequest> =
        AlgorithmKind::ALL.iter().map(|&alg| DetectRequest::new(2, alg)).collect();
    let responses = detector.detect_many(&requests).expect("valid requests");

    println!("\nTop-2 vulnerable nodes per algorithm:");
    for (req, result) in requests.iter().zip(&responses) {
        let picks: Vec<&str> = result.top_k.iter().map(|s| names[s.node.index()]).collect();
        println!(
            "  {:6} -> {:?}  (drawn: {}, reused from session: {}, candidates: {})",
            req.algorithm.label(),
            picks,
            result.engine.samples_drawn,
            result.engine.samples_reused,
            result.stats.candidates,
        );
    }

    let totals = detector.session_stats();
    println!(
        "\nSession totals: {} queries, {} worlds drawn, {} served from cache.",
        totals.queries, totals.samples_drawn, totals.samples_reused
    );

    // The same session serves concurrent clients through `&self`
    // (`Detector` is `Send + Sync`): every thread's answer is
    // bit-identical to a serial run, and all of them reuse the worlds
    // the batch above already drew.
    let reference = detector.detect(&DetectRequest::new(1, AlgorithmKind::BottomK)).unwrap();
    std::thread::scope(|s| {
        for client in 0..4 {
            let detector = &detector;
            let reference = &reference;
            s.spawn(move || {
                let mine = detector.detect(&DetectRequest::new(1, AlgorithmKind::BottomK)).unwrap();
                assert_eq!(mine.top_k, reference.top_k);
                println!(
                    "  client {client}: top-1 = {} (drawn {}, reused {})",
                    ["A", "B", "C", "D", "E"][mine.top_k[0].node.index()],
                    mine.engine.samples_drawn,
                    mine.engine.samples_reused
                );
            });
        }
    });
    println!("E is the most vulnerable: three upstream guarantors can infect it.");
}
