//! Candidate reduction — Algorithm 4 / Lemma 1 of the paper.
//!
//! Given per-node lower bounds `pl` and upper bounds `pu`, and the
//! thresholds `Tu` (k-th largest upper bound) and `Tl` (k-th largest lower
//! bound):
//!
//! 1. a node with `pl(v) ≥ Tu` is **verified** into the top-k — at most
//!    `k` nodes can have upper bound above `pl(v)`, so nothing can
//!    displace it;
//! 2. a node with `pu(v) < Tl` is **pruned** — at least `k` nodes have a
//!    lower bound it cannot reach, so `Pk ≥ Tl > pu(v) ≥ p(v)`.
//!
//! Verified nodes reduce the open result slots from `k` to `k − k'`;
//! the rest form the candidate set `B`, both feeding Equation 4.

use crate::topk::kth_largest;
use ugraph::NodeId;

/// Output of the candidate-reduction phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateReduction {
    /// Nodes proven to be in the top-k (`k'` of them), ordered by
    /// descending lower bound (ties by id).
    pub verified: Vec<NodeId>,
    /// Remaining candidates `B`, in ascending node-id order.
    pub candidates: Vec<NodeId>,
    /// The threshold `Tl` (k-th largest lower bound).
    pub t_lower: f64,
    /// The threshold `Tu` (k-th largest upper bound).
    pub t_upper: f64,
}

impl CandidateReduction {
    /// Number of verified nodes `k'`.
    pub fn verified_count(&self) -> usize {
        self.verified.len()
    }

    /// Candidate-set size `|B|`.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }
}

/// Runs Algorithm 4.
///
/// `k` must be positive and at most `n`; `lower` and `upper` must have
/// equal length `n` with `lower[v] ≤ upper[v]`.
///
/// Ties at the verification threshold are resolved conservatively: at most
/// `k` nodes are verified (highest lower bound first, then lowest id), and
/// every node that met rule 1 but was not verified stays a candidate.
pub fn reduce_candidates(lower: &[f64], upper: &[f64], k: usize) -> CandidateReduction {
    assert_eq!(lower.len(), upper.len(), "bound vectors must align");
    let n = lower.len();
    assert!(k >= 1 && k <= n, "k = {k} out of range for n = {n}");

    // xlint: allow(panic-hygiene) — `kth_largest` is `Some` whenever
    // `1 <= k <= n`, which the assert above guarantees.
    let t_lower = kth_largest(lower, k).expect("k validated above");
    // xlint: allow(panic-hygiene) — same `1 <= k <= n` argument as
    // `t_lower`.
    let t_upper = kth_largest(upper, k).expect("k validated above");

    // Rule 1 survivors, to be capped at k.
    let mut rule1: Vec<u32> = (0..n as u32).filter(|&v| lower[v as usize] >= t_upper).collect();
    rule1
        .sort_unstable_by(|&a, &b| lower[b as usize].total_cmp(&lower[a as usize]).then(a.cmp(&b)));
    let verified: Vec<NodeId> = rule1.iter().take(k).map(|&v| NodeId(v)).collect();
    let verified_set: Vec<bool> = {
        let mut s = vec![false; n];
        for v in &verified {
            s[v.index()] = true;
        }
        s
    };

    let candidates: Vec<NodeId> = (0..n as u32)
        .filter(|&v| !verified_set[v as usize] && upper[v as usize] >= t_lower)
        .map(NodeId)
        .collect();

    CandidateReduction { verified, candidates, t_lower, t_upper }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_information_keeps_everything() {
        // All bounds identical: nothing verified (unless interval is a
        // point), nothing pruned.
        let lower = vec![0.0; 5];
        let upper = vec![1.0; 5];
        let r = reduce_candidates(&lower, &upper, 2);
        assert_eq!(r.verified_count(), 0);
        assert_eq!(r.candidate_count(), 5);
    }

    #[test]
    fn tight_bounds_verify_everything() {
        // Point intervals with distinct values: k nodes verified, nobody
        // else can reach the threshold.
        let p = vec![0.9, 0.8, 0.3, 0.2, 0.1];
        let r = reduce_candidates(&p, &p, 2);
        assert_eq!(r.verified, vec![NodeId(0), NodeId(1)]);
        assert_eq!(r.candidate_count(), 0);
    }

    #[test]
    fn rule2_prunes_hopeless_nodes() {
        let lower = vec![0.8, 0.7, 0.0, 0.0];
        let upper = vec![0.9, 0.9, 0.5, 0.9];
        // k = 2: Tl = 0.7, Tu = 0.9. Node 2 (pu = 0.5 < 0.7) pruned.
        let r = reduce_candidates(&lower, &upper, 2);
        assert!(!r.candidates.contains(&NodeId(2)));
        assert!((r.t_lower - 0.7).abs() < 1e-12);
        assert!((r.t_upper - 0.9).abs() < 1e-12);
    }

    #[test]
    fn rule1_verifies_dominant_node() {
        let lower = vec![0.95, 0.1, 0.1, 0.1];
        let upper = vec![1.0, 0.9, 0.3, 0.3];
        // k = 1: Tu = 1.0 → node 0 not verified (pl 0.95 < 1.0).
        let r = reduce_candidates(&lower, &upper, 1);
        assert_eq!(r.verified_count(), 0);
        // k = 2: Tu = 0.9 → node 0 verified (0.95 ≥ 0.9).
        let r = reduce_candidates(&lower, &upper, 2);
        assert_eq!(r.verified, vec![NodeId(0)]);
        // Node 0 no longer in candidates.
        assert!(!r.candidates.contains(&NodeId(0)));
        assert!(r.candidates.contains(&NodeId(1)));
    }

    #[test]
    fn verified_capped_at_k_under_ties() {
        let lower = vec![0.5; 4];
        let upper = vec![0.5; 4];
        let r = reduce_candidates(&lower, &upper, 2);
        assert_eq!(r.verified_count(), 2);
        // Ties break by id; the others remain candidates (their pu ≥ Tl).
        assert_eq!(r.verified, vec![NodeId(0), NodeId(1)]);
        assert_eq!(r.candidates, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn k_equals_n() {
        let lower = vec![0.2, 0.4];
        let upper = vec![0.6, 0.8];
        let r = reduce_candidates(&lower, &upper, 2);
        assert_eq!(r.verified_count() + r.candidate_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_zero_panics() {
        reduce_candidates(&[0.1], &[0.2], 0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        reduce_candidates(&[0.1], &[0.2, 0.3], 1);
    }

    #[test]
    fn union_covers_topk_when_bounds_valid() {
        // For valid bounds enclosing the truth, verified ∪ candidates must
        // contain every true top-k node.
        let truth = [0.9, 0.7, 0.5, 0.3, 0.1];
        let lower: Vec<f64> = truth.iter().map(|p| p - 0.05).collect();
        let upper: Vec<f64> = truth.iter().map(|p| p + 0.05).collect();
        for k in 1..=5 {
            let r = reduce_candidates(&lower, &upper, k);
            let mut covered: Vec<u32> =
                r.verified.iter().chain(&r.candidates).map(|v| v.0).collect();
            covered.sort_unstable();
            for top in 0..k as u32 {
                assert!(covered.contains(&top), "k={k} lost node {top}");
            }
        }
    }
}
