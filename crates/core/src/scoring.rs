//! Whole-graph default-probability scoring — the predictor behind the
//! paper's Table 3 case study, where BSR/BSRBK scores feed a default-
//! prediction AUC instead of a top-k query.

use crate::config::VulnConfig;
use crate::sample_size::basic_sample_size;
use ugraph::UncertainGraph;
use vulnds_sampling::{parallel_forward_counts, BlockKernel, CoinTable, WorldBlock, LANES};
use vulnds_sketch::{bottomk_default_probability, hash_order, UnitHasher};

/// Monte-Carlo scores for every node with the Equation-3 budget — the
/// BSR-style predictor (tight guarantee, full sampling).
pub fn score_nodes_mc(graph: &UncertainGraph, k_hint: usize, config: &VulnConfig) -> Vec<f64> {
    let n = graph.num_nodes();
    let t = config
        .cap_samples(basic_sample_size(
            n,
            k_hint.clamp(1, n.saturating_sub(1).max(1)),
            config.approx,
        ))
        .max(1);
    parallel_forward_counts(graph, t, config.seed, config.threads).estimates()
}

/// Bottom-k scores for every node — the BSRBK-style predictor: forward
/// samples visited in ascending hash order; a node that reaches `bk` hits
/// is scored by the sketch estimate `(bk − 1)/(h · t)` and frozen, others
/// by their final empirical frequency. Processing stops once every node
/// is frozen (or the budget is spent).
///
/// Worlds are evaluated 64 at a time on the bit-parallel block kernel
/// and replayed in hash order, so counters, freeze hashes, and the
/// processed-sample denominator are identical to a one-world-at-a-time
/// run.
pub fn score_nodes_bottomk(graph: &UncertainGraph, k_hint: usize, config: &VulnConfig) -> Vec<f64> {
    let n = graph.num_nodes();
    assert!(config.bk >= 2, "bottom-k parameter must be at least 2");
    let t = config
        .cap_samples(basic_sample_size(
            n,
            k_hint.clamp(1, n.saturating_sub(1).max(1)),
            config.approx,
        ))
        .max(1);
    let hasher = UnitHasher::new(config.seed ^ 0xB07_70A6);
    let order = hash_order(&hasher, t as usize);

    let coins = CoinTable::new(graph);
    let mut block = WorldBlock::new(graph);
    let mut kernel = BlockKernel::new(graph);
    let mut ids: Vec<u64> = Vec::with_capacity(LANES);
    let mut counters = vec![0u32; n];
    let mut score = vec![f64::NAN; n];
    let mut frozen = 0usize;
    let mut processed = 0u64;
    for chunk in order.chunks(LANES) {
        if frozen == n {
            break;
        }
        ids.clear();
        ids.extend(chunk.iter().map(|&s| s as u64));
        block.materialize_ids(graph, &coins, config.seed, &ids);
        let words = kernel.forward_defaults(graph, &coins, &mut block);
        // Per-node replay: a node's counter only depends on its own
        // default lanes, in lane (= hash) order. The single cross-node
        // coupling is the all-frozen early stop, handled below.
        let mut last_freeze_lane = 0usize;
        for (i, &word) in words.iter().enumerate() {
            if !score[i].is_nan() {
                continue;
            }
            let mut w = word;
            while w != 0 {
                let lane = w.trailing_zeros() as usize;
                w &= w - 1;
                counters[i] += 1;
                if counters[i] as usize == config.bk {
                    let h = hasher.hash_unit(ids[lane]);
                    score[i] = bottomk_default_probability(config.bk, h, t as usize);
                    frozen += 1;
                    last_freeze_lane = last_freeze_lane.max(lane);
                    break;
                }
            }
        }
        if frozen == n {
            // The final freeze is the latest freeze event of this chunk:
            // a sequential run would stop right after that sample.
            processed += last_freeze_lane as u64 + 1;
            break;
        }
        processed += chunk.len() as u64;
    }
    for i in 0..n {
        if score[i].is_nan() {
            score[i] = counters[i] as f64 / processed.max(1) as f64;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.6, 0.0, 0.0], &[(0, 1, 0.8), (1, 2, 0.8)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn mc_scores_rank_correctly() {
        // p = (0.6, 0.48, 0.384).
        let g = chain();
        let s = score_nodes_mc(&g, 1, &VulnConfig::default().with_seed(1));
        assert!(s[0] > s[1] && s[1] > s[2], "{s:?}");
        assert!((s[0] - 0.6).abs() < 0.15);
    }

    #[test]
    fn bottomk_scores_rank_correctly() {
        let g = chain();
        let cfg = VulnConfig::default().with_seed(2).with_max_samples(5000);
        let s = score_nodes_bottomk(&g, 1, &cfg);
        assert!(s[0] > s[2], "{s:?}");
        assert!(s.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn bottomk_scores_are_calibrated_roughly() {
        let g = chain();
        let cfg = VulnConfig::default().with_seed(3).with_max_samples(8000).with_bk(32);
        let s = score_nodes_bottomk(&g, 1, &cfg);
        assert!((s[0] - 0.6).abs() < 0.25, "score {} vs true 0.6", s[0]);
    }

    #[test]
    fn zero_risk_nodes_score_zero() {
        let g = from_parts(&[0.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let cfg = VulnConfig::default().with_max_samples(500);
        assert_eq!(score_nodes_mc(&g, 1, &cfg), vec![0.0, 0.0]);
        assert_eq!(score_nodes_bottomk(&g, 1, &cfg), vec![0.0, 0.0]);
    }

    #[test]
    fn deterministic() {
        let g = chain();
        let cfg = VulnConfig::default().with_seed(5).with_max_samples(2000);
        assert_eq!(score_nodes_bottomk(&g, 1, &cfg), score_nodes_bottomk(&g, 1, &cfg));
        assert_eq!(score_nodes_mc(&g, 1, &cfg), score_nodes_mc(&g, 1, &cfg));
    }
}
