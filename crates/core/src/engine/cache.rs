//! Session caches: bounds, candidate reductions, and prefix-extendable
//! sample counts — all safe to reach from many query threads at once.
//!
//! # Concurrency model
//!
//! Since 0.4 the [`Detector`](super::Detector) answers queries through
//! `&self`, so every cache in this module is an interior-mutability cell
//! designed for **single-flight** builds: when several queries miss on
//! the same key at the same moment, exactly one of them computes the
//! value while the others block on the same slot and then share the
//! one `Arc` — never two redundant builds, never a torn read.
//!
//! * [`FlightMap`] — a keyed memo map (bounds, candidate reductions)
//!   whose per-key slots serialize the build and let later arrivals
//!   join an in-flight one.
//! * [`StreamMap`] — per-sample-stream [`SampleCache`] cells. The
//!   stream's mutex is held across a draw, which *is* the single-flight
//!   property: a second query that wanted the same prefix blocks, then
//!   finds the snapshot and draws nothing.
//! * [`CoinCache`] — one mutex around the session's coin table.
//!
//! Lock ordering: a map-level mutex is only ever held to clone a slot
//! `Arc` out (never across a build), and slot/stream locks are never
//! nested — so the engine cannot deadlock no matter how queries
//! interleave. Poisoned locks are recovered (`Mutex::into_inner`
//! semantics): every cached value is inserted atomically after its
//! build completes, so a panicking query can never publish a torn
//! snapshot to the survivors.
//!
//! # The sample cache
//!
//! The sample cache exploits the samplers' per-sample RNG streams
//! (sample `i` is always drawn from the stream derived from `(seed, i)`):
//! cumulative counts over ids `0..t` are a *prefix sum* in `t`, so a
//! snapshot at `t0 < t` extends to `t` by drawing only ids `t0..t` — the
//! result is bit-identical to a cold run of `0..t`, which is what lets a
//! warm session serve exact answers while drawing strictly fewer fresh
//! samples.
//!
//! Snapshots are kept in **superblock granularity**: the samplers
//! evaluate `W · 64` worlds per [`SuperBlock`](vulnds_sampling::SuperBlock)
//! at the width the engine planned for the stream, so in addition to
//! the exact budget `t` the cache snapshots the largest
//! superblock-aligned prefix below it (the caller passes the alignment,
//! a multiple of 64). Future extensions then start at a superblock
//! boundary and re-materialize at most the one partial superblock a
//! non-aligned budget left open, instead of re-entering one mid-way on
//! every extension. Extensions that resume at a *narrower* width's
//! boundary still merge exactly — partial superblocks mask the home
//! blocks they do not cover.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use ugraph::UncertainGraph;
use vulnds_sampling::{CoinTable, DefaultCounts, TouchLedger};

/// Cap on stored snapshots per stream: a session sweeping many distinct
/// budgets would otherwise accumulate one O(slots) counts vector per
/// budget forever. When full, the smallest prefix is evicted — it is the
/// cheapest to re-draw, and the largest snapshot (which every future
/// extension builds on) is always among the survivors.
const MAX_SNAPSHOTS: usize = 8;

/// Cap on distinct sample streams a session keeps (per direction). A
/// service exposed to untrusted per-request seeds or candidate hints
/// would otherwise grow one O(slots)-snapshot cell per distinct key
/// forever. When full, an arbitrary other stream is evicted: every
/// cached value here is rebuildable, so eviction costs a redraw, never
/// correctness — answers are pure functions of `(seed, range)`.
const MAX_STREAMS: usize = 64;

/// Cap on distinct single-flight memo slots (candidate reductions are
/// keyed by `k`, which untrusted requests choose). Same rebuildable
/// rationale as [`MAX_STREAMS`].
const MAX_SLOTS: usize = 256;

/// Locks a mutex, recovering from poison (see the module docs), and
/// reports whether the caller had to block to get it — the engine's
/// `cache_waits` contention signal. Best-effort: a failed `try_lock`
/// may also be a reader passing through, not a build.
pub(crate) fn lock_tracked<T>(mutex: &Mutex<T>) -> (MutexGuard<'_, T>, bool) {
    match mutex.try_lock() {
        Ok(guard) => (guard, false),
        Err(std::sync::TryLockError::Poisoned(poisoned)) => (poisoned.into_inner(), false),
        Err(std::sync::TryLockError::WouldBlock) => {
            let guard = mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            (guard, true)
        }
    }
}

/// How a [`FlightMap`] lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flight {
    /// The value was already cached; nothing was waited on.
    Hit,
    /// This caller computed the value.
    Built,
    /// Another caller was computing the value; this one blocked on the
    /// same slot and shares the result (a deduplicated build).
    Joined,
}

/// One single-flight slot: the `building` flag marks an in-progress
/// build so late arrivals can tell "cache hit" from "joined a flight",
/// and the value mutex is what they block on.
#[derive(Debug)]
struct Slot<V> {
    building: AtomicBool,
    value: Mutex<Option<Arc<V>>>,
}

impl<V> Default for Slot<V> {
    fn default() -> Self {
        Slot { building: AtomicBool::new(false), value: Mutex::new(None) }
    }
}

/// A keyed memo map with single-flight builds: concurrent misses on the
/// same key build once; everyone else blocks on the same slot and
/// shares the one `Arc`.
pub(crate) struct FlightMap<K, V> {
    slots: Mutex<BTreeMap<K, Arc<Slot<V>>>>,
}

impl<K, V> Default for FlightMap<K, V> {
    fn default() -> Self {
        FlightMap { slots: Mutex::new(BTreeMap::new()) }
    }
}

impl<K, V> std::fmt::Debug for FlightMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = lock_tracked(&self.slots).0.len();
        f.debug_struct("FlightMap").field("slots", &len).finish()
    }
}

impl<K: Ord + Clone, V> FlightMap<K, V> {
    fn slot(&self, key: &K) -> Arc<Slot<V>> {
        let (mut slots, _) = lock_tracked(&self.slots);
        if !slots.contains_key(key) && slots.len() >= MAX_SLOTS {
            evict_one(&mut slots, key);
        }
        slots.entry(key.clone()).or_default().clone()
    }

    /// Non-building probe. Returns the cached value and whether the
    /// caller joined an in-flight build to get it; `None` if the key
    /// has never finished building.
    pub(crate) fn get(&self, key: &K) -> Option<(Arc<V>, bool)> {
        let slot = {
            let (slots, _) = lock_tracked(&self.slots);
            slots.get(key)?.clone()
        };
        // ORDERING: Acquire pairs with the Release store/reset in
        // `get_or_build`; seeing `true` here means a build was in
        // flight when this probe started, which is all the flag
        // classifies — the value itself is published under the mutex.
        let joined = slot.building.load(Ordering::Acquire);
        let (value, _) = lock_tracked(&slot.value);
        value.as_ref().map(|v| (v.clone(), joined))
    }

    /// Returns the value for `key`, running `build` if (and only if) no
    /// other caller has built or is building it.
    pub(crate) fn get_or_build(&self, key: &K, build: impl FnOnce() -> V) -> (Arc<V>, Flight) {
        let slot = self.slot(key);
        // ORDERING: Acquire/Release on `building` only classifies the
        // wait (hit vs joined flight); the value is transferred under
        // the slot mutex, so stronger orderings would buy nothing.
        let in_flight = slot.building.load(Ordering::Acquire);
        let (mut value, _) = lock_tracked(&slot.value);
        if let Some(v) = &*value {
            return (v.clone(), if in_flight { Flight::Joined } else { Flight::Hit });
        }
        // ORDERING: Release — the paired store for the Acquire probes
        // above; cleared with the same pairing by the guard below.
        slot.building.store(true, Ordering::Release);
        let building_reset = MarkerReset(&slot.building);
        let v = Arc::new(build());
        *value = Some(v.clone());
        drop(building_reset);
        (v, Flight::Built)
    }

    /// Forgets every cached value. In-flight builds keep their detached
    /// slots and complete normally; only future lookups see a cold map.
    pub(crate) fn clear(&self) {
        lock_tracked(&self.slots).0.clear();
    }

    /// Replaces (or creates) the cached value for `key` outright — the
    /// epoch-revalidation path, where a repaired value was computed
    /// outside any slot lock and must supersede whatever is there.
    pub(crate) fn insert(&self, key: &K, value: V) {
        let slot = self.slot(key);
        let (mut cell, _) = lock_tracked(&slot.value);
        *cell = Some(Arc::new(value));
    }

    /// Drops every slot whose key fails the predicate (epoch
    /// revalidation: stale-version keys become unreachable). Returns how
    /// many *built* values were dropped — empty in-flight slots detach
    /// without counting.
    pub(crate) fn retain(&self, mut keep: impl FnMut(&K) -> bool) -> u64 {
        let (mut slots, _) = lock_tracked(&self.slots);
        let mut dropped = 0u64;
        slots.retain(|key, slot| {
            if keep(key) {
                return true;
            }
            // xlint: allow(lock-nesting) — lock order is slots -> slot
            // value, the same order `get_or_build` uses (it clones the
            // slot Arc under `slots`, releases, then locks the value);
            // no path locks a value first and `slots` second, so the
            // nesting cannot invert.
            if lock_tracked(&slot.value).0.is_some() {
                dropped += 1;
            }
            false
        });
        dropped
    }
}

/// Evicts an arbitrary entry other than `keep` from a full map (the
/// cardinality backstop for untrusted key diversity — see
/// [`MAX_STREAMS`]/[`MAX_SLOTS`]).
fn evict_one<K: Ord + Clone, V>(map: &mut BTreeMap<K, V>, keep: &K) {
    if let Some(victim) = map.keys().find(|k| *k != keep).cloned() {
        map.remove(&victim);
    }
}

/// One sample stream: the prefix-extendable cache plus a `drawing`
/// marker set while a query materializes worlds under the cell lock, so
/// a blocked second query can tell "joined an in-flight draw" from
/// plain lock contention on a warm cell.
#[derive(Debug, Default)]
pub(crate) struct StreamCell {
    pub(crate) drawing: AtomicBool,
    pub(crate) cache: Mutex<SampleCache>,
    /// Union of the edge coins every draw into this cell ever
    /// materialized — the survival witness for delta-aware
    /// revalidation: counts are independent of every unmarked edge's
    /// coin, so a delta that only touches unmarked edges leaves the
    /// cached prefix bit-identical to a cold post-delta draw.
    ledger: OnceLock<TouchLedger>,
}

impl StreamCell {
    /// The cell's touch ledger, created on first draw.
    pub(crate) fn ledger(&self, num_edges: usize) -> &TouchLedger {
        self.ledger.get_or_init(|| TouchLedger::new(num_edges))
    }

    /// True if any dirty edge was ever materialized by a draw into this
    /// cell (a never-drawn cell intersects nothing).
    pub(crate) fn ledger_intersects(&self, edges: &[u32]) -> bool {
        self.ledger.get().is_some_and(|ledger| ledger.intersects(edges))
    }
}

/// Clears an atomic build/draw marker on drop — **including on
/// unwind** — so a panicking build can never leave the join-detection
/// flag stuck `true` (which would misclassify every later wait on that
/// key as a deduplicated build).
pub(crate) struct MarkerReset<'a>(pub(crate) &'a AtomicBool);

impl Drop for MarkerReset<'_> {
    fn drop(&mut self) {
        // ORDERING: Release pairs with the Acquire loads that classify
        // waits; the marker is advisory and protects no data.
        self.0.store(false, Ordering::Release);
    }
}

/// Per-stream [`StreamCell`]s (one per seed, or per
/// `(seed, candidate-set)` for reverse sampling). The cell mutex is held
/// across a draw, which gives sample streams their single-flight
/// property for free.
pub(crate) struct StreamMap<K> {
    streams: Mutex<BTreeMap<K, Arc<StreamCell>>>,
}

impl<K> Default for StreamMap<K> {
    fn default() -> Self {
        StreamMap { streams: Mutex::new(BTreeMap::new()) }
    }
}

impl<K> std::fmt::Debug for StreamMap<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = lock_tracked(&self.streams).0.len();
        f.debug_struct("StreamMap").field("streams", &len).finish()
    }
}

impl<K: Ord + Clone> StreamMap<K> {
    /// The stream's cache cell, created cold on first access.
    pub(crate) fn stream(&self, key: K) -> Arc<StreamCell> {
        let (mut streams, _) = lock_tracked(&self.streams);
        if !streams.contains_key(&key) && streams.len() >= MAX_STREAMS {
            evict_one(&mut streams, &key);
        }
        streams.entry(key).or_default().clone()
    }

    /// Forgets every stream. Queries mid-draw keep their detached cell
    /// (and their snapshots stay valid); future queries start cold.
    pub(crate) fn clear(&self) {
        lock_tracked(&self.streams).0.clear();
    }

    /// Applies an epoch-revalidation verdict to every cached stream:
    /// cells for which `keep` returns `false` are removed (a query
    /// mid-draw keeps its detached cell and finishes on its pinned
    /// snapshot). `keep` typically locks the cell, which waits out any
    /// in-flight draw — so the ledger it inspects is complete.
    pub(crate) fn retain(&self, mut keep: impl FnMut(&Arc<StreamCell>) -> bool) {
        lock_tracked(&self.streams).0.retain(|_, cell| keep(cell));
    }
}

/// Session cache of the graph's [`CoinTable`] — the per-graph
/// fixed-point thresholds the counter-RNG synthesis reads.
///
/// Built once per session and revalidated on every access against the
/// graph's probability version: a `set_self_risk`/`set_edge_prob` call
/// bumps the version, so a stale table is **rebuilt** instead of
/// serving old thresholds (and the rebuild is counted, so sessions can
/// report it). A `Detector` shares its graph immutably through an
/// `Arc`, so within a session the table is effectively built once; the
/// revalidation guards the cache when it is driven directly against a
/// graph that mutates between calls.
#[derive(Debug, Default)]
pub(crate) struct CoinCache {
    table: Option<Arc<CoinTable>>,
    builds: u64,
}

impl CoinCache {
    /// The cached table, if it is current for `graph` — never builds.
    pub(crate) fn peek(&self, graph: &UncertainGraph) -> Option<Arc<CoinTable>> {
        self.table.as_ref().filter(|table| table.matches(graph)).cloned()
    }

    /// Returns a current table for `graph`, building (or rebuilding)
    /// it if the cached one is missing or stale. The flag reports
    /// whether this call built a table.
    pub(crate) fn get(&mut self, graph: &UncertainGraph) -> (Arc<CoinTable>, bool) {
        if let Some(table) = self.peek(graph) {
            return (table, false);
        }
        let table = Arc::new(CoinTable::new(graph));
        self.table = Some(table.clone());
        self.builds += 1;
        (table, true)
    }

    /// Forgets the cached table.
    pub(crate) fn clear(&mut self) {
        self.table = None;
    }

    /// Epoch revalidation: re-quantizes only the delta's dirty items of
    /// the cached table for the post-delta graph (bit-identical to a
    /// full rebuild — thresholds are per-item pure). Patching is only
    /// sound from a table that matches `prev` exactly; a stale table
    /// (an in-flight old-epoch query may have rebuilt for its own
    /// snapshot) is dropped instead, so the next query rebuilds.
    ///
    /// Returns `Some(true)` when the table was patched in place,
    /// `Some(false)` when a stale table was dropped, `None` when
    /// nothing was cached.
    pub(crate) fn patch(
        &mut self,
        prev: &UncertainGraph,
        next: &UncertainGraph,
        dirty_nodes: &[u32],
        dirty_edges: &[u32],
    ) -> Option<bool> {
        match self.table.as_mut() {
            Some(table) if table.matches(prev) => {
                Arc::make_mut(table).patch(next, dirty_nodes, dirty_edges);
                Some(true)
            }
            Some(_) => {
                self.table = None;
                Some(false)
            }
            None => None,
        }
    }

    /// Tables built (including rebuilds after invalidation) over the
    /// cache's lifetime.
    #[cfg(test)]
    pub(crate) fn builds(&self) -> u64 {
        self.builds
    }
}

/// Prefix-extendable cache of cumulative sample counts for one stream
/// (one seed and, for reverse sampling, one candidate set).
#[derive(Debug, Clone, Default)]
pub(crate) struct SampleCache {
    /// `t →` cumulative counts over sample ids `0..t`. Shared out as
    /// `Arc` so exact cache hits are O(1) instead of an O(slots) copy.
    snapshots: BTreeMap<u64, Arc<DefaultCounts>>,
    /// Probability version of the graph the snapshots are valid for:
    /// stamped on first draw, re-stamped when an epoch's revalidation
    /// proves the cached prefix survives a delta. `None` until the
    /// first serve. A query whose pinned snapshot has a different
    /// version must not touch the snapshots (see
    /// `EngineCtx::stream_counts`).
    pub(crate) graph_version: Option<u64>,
}

impl SampleCache {
    /// Returns cumulative counts over sample ids `0..t`, drawing as few
    /// fresh samples as possible. `align` is the snapshot alignment —
    /// the stream's worlds-per-superblock (`W · 64`), a positive
    /// multiple of 64. `draw` materializes counts for a raw id range.
    /// Returns `(counts, drawn, reused)` where `drawn + reused == t` for
    /// a complete serve.
    ///
    /// A draw may come back **short** (fewer samples than its range)
    /// when a cancellation token cut the pass at a chunk boundary. The
    /// truncated prefix is still an exact cumulative count, so it is
    /// snapshotted at the point actually reached — a retry of the same
    /// request resumes from there instead of restarting — and returned
    /// as-is with `drawn` reflecting what was really drawn.
    pub(crate) fn serve(
        &mut self,
        t: u64,
        align: u64,
        mut draw: impl FnMut(Range<u64>) -> DefaultCounts,
    ) -> (Arc<DefaultCounts>, u64, u64) {
        debug_assert!(align >= 64 && align % 64 == 0, "alignment must be a superblock span");
        if let Some(hit) = self.snapshots.get(&t) {
            return (hit.clone(), 0, t);
        }
        let floor = self.snapshots.range(..t).next_back().map(|(&t0, c)| (t0, c.clone()));
        let t0 = floor.as_ref().map_or(0, |&(t0, _)| t0);
        // Largest superblock-aligned prefix strictly inside the drawn
        // gap: worth its own snapshot so later extensions resume on a
        // superblock boundary (see the module docs).
        let t_align = t / align * align;
        let split = t_align > t0 && t_align < t;
        let first_end = if split { t_align } else { t };

        let first = draw(t0..first_end);
        let first_complete = first.samples() == first_end - t0;
        let mut reached = t0 + first.samples();
        let mut acc = match floor {
            Some((_, base)) => {
                let mut extended = (*base).clone();
                extended.merge(&first);
                extended
            }
            None => first,
        };
        if split && first_complete {
            self.snapshots.insert(t_align, Arc::new(acc.clone()));
            let second = draw(t_align..t);
            reached += second.samples();
            acc.merge(&second);
        }
        let counts = Arc::new(acc);
        // `reached < t` only under cancellation; `reached == t0` means
        // not one chunk completed — nothing new to snapshot.
        if reached > t0 {
            self.snapshots.insert(reached, counts.clone());
        }
        while self.snapshots.len() > MAX_SNAPSHOTS {
            // Evict the smallest prefix other than what this call just
            // produced — it is the cheapest to re-draw.
            match self.snapshots.keys().find(|&&s| s != reached).copied() {
                Some(victim) => self.snapshots.remove(&victim),
                None => break,
            };
        }
        (counts, reached - t0, t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy, EdgeId, NodeId};

    #[test]
    fn coin_cache_rebuilds_on_probability_updates() {
        let mut g = from_parts(&[0.5, 0.1], &[(0, 1, 0.7)], DuplicateEdgePolicy::Error).unwrap();
        let mut cache = CoinCache::default();
        let (t1, built) = cache.get(&g);
        assert!(built);
        let (t2, built) = cache.get(&g);
        assert!(!built, "unchanged graph must hit the cached table");
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(cache.builds(), 1);

        // A probability update bumps the graph version: the stale table
        // must be rebuilt, not served.
        g.set_edge_prob(EdgeId(0), 0.2).unwrap();
        let (t3, built) = cache.get(&g);
        assert!(built, "stale coin table served after set_edge_prob");
        assert!(!Arc::ptr_eq(&t1, &t3));
        assert_eq!(t3.edge_threshold(0), vulnds_sampling::coins::quantize_probability(0.2));

        g.set_self_risk(NodeId(1), 0.9).unwrap();
        let (t4, built) = cache.get(&g);
        assert!(built, "stale coin table served after set_self_risk");
        assert_eq!(t4.node_threshold(1), vulnds_sampling::coins::quantize_probability(0.9));
        assert_eq!(cache.builds(), 3);
    }

    #[test]
    fn flight_map_builds_once_and_hits_after() {
        let map: FlightMap<u32, u64> = FlightMap::default();
        assert!(map.get(&7).is_none());
        let (v, flight) = map.get_or_build(&7, || 42);
        assert_eq!((*v, flight), (42, Flight::Built));
        let (v, flight) = map.get_or_build(&7, || panic!("must not rebuild"));
        assert_eq!((*v, flight), (42, Flight::Hit));
        let (v, joined) = map.get(&7).expect("built key probes as present");
        assert_eq!((*v, joined), (42, false));
        map.clear();
        assert!(map.get(&7).is_none());
        let (_, flight) = map.get_or_build(&7, || 43);
        assert_eq!(flight, Flight::Built, "clear() must cold-start future lookups");
    }

    #[test]
    fn flight_map_dedups_concurrent_builds() {
        use std::sync::atomic::AtomicU64;
        let map: FlightMap<u32, u64> = FlightMap::default();
        let builds = AtomicU64::new(0);
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        let (v, flight) = map.get_or_build(&1, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            // Widen the build window so late arrivals
                            // reliably join the flight.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            99u64
                        });
                        (*v, flight)
                    })
                })
                .collect();
            let results: Vec<(u64, Flight)> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(results.iter().all(|&(v, _)| v == 99));
            assert_eq!(
                results.iter().filter(|&&(_, f)| f == Flight::Built).count(),
                1,
                "exactly one thread may build"
            );
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "the build closure ran more than once");
    }

    #[test]
    fn stream_map_shares_cells_and_clears_cold() {
        let map: StreamMap<u64> = StreamMap::default();
        let a = map.stream(5);
        let b = map.stream(5);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one cell");
        let other = map.stream(6);
        assert!(!Arc::ptr_eq(&a, &other));
        lock_tracked(&a.cache).0.serve(10, 64, draw);
        map.clear();
        let fresh = map.stream(5);
        assert!(!Arc::ptr_eq(&a, &fresh), "clear() must detach old cells");
        let (_, drawn, reused) = lock_tracked(&fresh.cache).0.serve(10, 64, draw);
        assert_eq!((drawn, reused), (10, 0), "post-clear stream must start cold");
        // The detached cell still works for whoever holds it.
        let (_, drawn, reused) = lock_tracked(&a.cache).0.serve(10, 64, draw);
        assert_eq!((drawn, reused), (0, 10));
    }

    #[test]
    fn cache_cardinality_is_bounded_against_key_diversity() {
        // Hostile seed sweep: the stream map never exceeds its cap, and
        // the requested key always gets a live cell.
        let map: StreamMap<u64> = StreamMap::default();
        for seed in 0..(MAX_STREAMS as u64 * 4) {
            let cell = map.stream(seed);
            lock_tracked(&cell.cache).0.serve(10, 64, draw);
        }
        let len = lock_tracked(&map.streams).0.len();
        assert!(len <= MAX_STREAMS, "stream map grew to {len}");
        // Same for single-flight slots under a k sweep.
        let slots: FlightMap<u64, u64> = FlightMap::default();
        for k in 0..(MAX_SLOTS as u64 * 2) {
            let (v, _) = slots.get_or_build(&k, || k);
            assert_eq!(*v, k);
        }
        let len = lock_tracked(&slots.slots).0.len();
        assert!(len <= MAX_SLOTS, "slot map grew to {len}");
        // An evicted key simply rebuilds — values are pure.
        let (v, _) = slots.get_or_build(&0, || 0);
        assert_eq!(*v, 0);
    }

    /// Fake draw: counts slot 0 once per sample, tagging nothing else —
    /// enough to verify prefix arithmetic.
    fn draw(range: Range<u64>) -> DefaultCounts {
        let mut c = DefaultCounts::new(1);
        for _ in range {
            c.begin_sample();
            c.bump(0);
        }
        c
    }

    #[test]
    fn cold_draws_everything() {
        let mut cache = SampleCache::default();
        let (c, drawn, reused) = cache.serve(10, 64, draw);
        assert_eq!((c.samples(), drawn, reused), (10, 10, 0));
    }

    #[test]
    fn exact_hit_draws_nothing() {
        let mut cache = SampleCache::default();
        cache.serve(10, 64, draw);
        let (c, drawn, reused) = cache.serve(10, 64, draw);
        assert_eq!((c.samples(), drawn, reused), (10, 0, 10));
    }

    #[test]
    fn extends_prefix() {
        let mut cache = SampleCache::default();
        cache.serve(10, 64, draw);
        let (c, drawn, reused) = cache.serve(25, 64, draw);
        assert_eq!((c.samples(), c.count(0), drawn, reused), (25, 25, 15, 10));
        // The new snapshot serves exact hits too.
        let (_, drawn, reused) = cache.serve(25, 64, draw);
        assert_eq!((drawn, reused), (0, 25));
    }

    #[test]
    fn smaller_than_all_snapshots_redraws() {
        let mut cache = SampleCache::default();
        cache.serve(100, 64, draw);
        let (c, drawn, reused) = cache.serve(40, 64, draw);
        assert_eq!((c.samples(), drawn, reused), (40, 40, 0));
        // The 64-aligned snapshot produced by the 100-serve beats the
        // fresh 40-snapshot as an extension base.
        let (_, drawn, reused) = cache.serve(70, 64, draw);
        assert_eq!((drawn, reused), (6, 64));
    }

    #[test]
    fn extensions_resume_on_block_boundaries() {
        let mut cache = SampleCache::default();
        // A non-aligned budget snapshots its aligned prefix too …
        let (c, drawn, reused) = cache.serve(100, 64, draw);
        assert_eq!((c.samples(), drawn, reused), (100, 100, 0));
        assert!(cache.snapshots.contains_key(&64), "aligned prefix not snapshotted");
        // … so a smaller follow-up bridges from the block boundary
        // instead of redrawing everything.
        let (c, drawn, reused) = cache.serve(70, 64, draw);
        assert_eq!((c.samples(), c.count(0), drawn, reused), (70, 70, 6, 64));
        // Aligned budgets take the single-draw path and add one snapshot.
        let (_, drawn, reused) = cache.serve(128, 64, draw);
        assert_eq!((drawn, reused), (28, 100));
        // Tiny budgets below one block never split.
        let mut small = SampleCache::default();
        let (_, drawn, reused) = small.serve(10, 64, draw);
        assert_eq!((drawn, reused), (10, 0));
        assert_eq!(small.snapshots.len(), 1);
    }

    #[test]
    fn extensions_resume_on_superblock_boundaries() {
        // A width-8 stream aligns snapshots at 512: a non-aligned budget
        // snapshots its 512-aligned prefix…
        let mut cache = SampleCache::default();
        let (c, drawn, reused) = cache.serve(1000, 512, draw);
        assert_eq!((c.samples(), drawn, reused), (1000, 1000, 0));
        assert!(cache.snapshots.contains_key(&512), "superblock prefix not snapshotted");
        // …so a smaller follow-up bridges from the superblock boundary.
        let (c, drawn, reused) = cache.serve(600, 512, draw);
        assert_eq!((c.samples(), drawn, reused), (600, 88, 512));
        // A later narrow-width query on the same stream still extends
        // the widest prefix exactly.
        let (c, drawn, reused) = cache.serve(1100, 64, draw);
        assert_eq!((c.samples(), c.count(0), drawn, reused), (1100, 1100, 100, 1000));
    }

    /// Fake cancelled draw: like [`draw`] but stops at absolute sample
    /// id `limit`, mimicking a token cutting the pass mid-gap.
    fn draw_until(limit: u64) -> impl FnMut(Range<u64>) -> DefaultCounts {
        move |range: Range<u64>| draw(range.start..range.end.min(limit.max(range.start)))
    }

    #[test]
    fn truncated_first_stage_snapshots_at_reached_and_resumes() {
        let mut cache = SampleCache::default();
        // The aligned first stage (0..64) is cut at 30: no second stage
        // runs, and the 30-sample prefix is cached as-is.
        let (c, drawn, reused) = cache.serve(100, 64, draw_until(30));
        assert_eq!((c.samples(), c.count(0), drawn, reused), (30, 30, 30, 0));
        assert!(cache.snapshots.contains_key(&30), "truncated prefix not snapshotted");
        assert!(!cache.snapshots.contains_key(&64), "incomplete stage must not snapshot");
        assert!(!cache.snapshots.contains_key(&100));
        // A retry resumes from the truncated prefix instead of redrawing.
        let (c, drawn, reused) = cache.serve(100, 64, draw);
        assert_eq!((c.samples(), c.count(0), drawn, reused), (100, 100, 70, 30));
    }

    #[test]
    fn truncated_second_stage_keeps_the_aligned_snapshot() {
        let mut cache = SampleCache::default();
        // 0..64 completes, 64..100 is cut at 80: both the aligned and
        // the reached prefixes are cached.
        let (c, drawn, reused) = cache.serve(100, 64, draw_until(80));
        assert_eq!((c.samples(), drawn, reused), (80, 80, 0));
        assert!(cache.snapshots.contains_key(&64));
        assert!(cache.snapshots.contains_key(&80));
        let (c, drawn, reused) = cache.serve(100, 64, draw);
        assert_eq!((c.samples(), drawn, reused), (100, 20, 80));
    }

    #[test]
    fn zero_progress_draw_caches_nothing() {
        let mut cache = SampleCache::default();
        let (c, drawn, reused) = cache.serve(10, 64, draw_until(0));
        assert_eq!((c.samples(), drawn, reused), (0, 0, 0));
        assert!(cache.snapshots.is_empty(), "an empty prefix must not be cached");
        // With a warm floor, a zero-progress draw serves the floor.
        cache.serve(10, 64, draw);
        let (c, drawn, reused) = cache.serve(25, 64, draw_until(0));
        assert_eq!((c.samples(), drawn, reused), (10, 0, 10));
    }

    #[test]
    fn snapshot_count_is_bounded_and_keeps_the_largest() {
        let mut cache = SampleCache::default();
        for t in 1..=50u64 {
            cache.serve(t * 10, 64, draw);
        }
        assert!(cache.snapshots.len() <= MAX_SNAPSHOTS);
        // The largest prefix survives eviction: an extension past it
        // reuses all 500 cached samples.
        let (_, drawn, reused) = cache.serve(600, 64, draw);
        assert_eq!((drawn, reused), (100, 500));
        // Eviction never drops the snapshot produced by the current call.
        let (_, drawn, reused) = cache.serve(5, 64, draw);
        assert_eq!((drawn, reused), (5, 0));
        let (_, drawn, reused) = cache.serve(5, 64, draw);
        assert_eq!((drawn, reused), (0, 5));
    }
}
