//! Session caches: bounds, candidate reductions, and prefix-extendable
//! sample counts.
//!
//! The sample cache exploits the samplers' per-sample RNG streams
//! (sample `i` is always drawn from the stream derived from `(seed, i)`):
//! cumulative counts over ids `0..t` are a *prefix sum* in `t`, so a
//! snapshot at `t0 < t` extends to `t` by drawing only ids `t0..t` — the
//! result is bit-identical to a cold run of `0..t`, which is what lets a
//! warm session serve exact answers while drawing strictly fewer fresh
//! samples.
//!
//! Snapshots are kept in **superblock granularity**: the samplers
//! evaluate `W · 64` worlds per [`SuperBlock`](vulnds_sampling::SuperBlock)
//! at the width the engine planned for the stream, so in addition to
//! the exact budget `t` the cache snapshots the largest
//! superblock-aligned prefix below it (the caller passes the alignment,
//! a multiple of 64). Future extensions then start at a superblock
//! boundary and re-materialize at most the one partial superblock a
//! non-aligned budget left open, instead of re-entering one mid-way on
//! every extension. Extensions that resume at a *narrower* width's
//! boundary still merge exactly — partial superblocks mask the home
//! blocks they do not cover.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

use ugraph::UncertainGraph;
use vulnds_sampling::{CoinTable, DefaultCounts};

/// Cap on stored snapshots per stream: a session sweeping many distinct
/// budgets would otherwise accumulate one O(slots) counts vector per
/// budget forever. When full, the smallest prefix is evicted — it is the
/// cheapest to re-draw, and the largest snapshot (which every future
/// extension builds on) is always among the survivors.
const MAX_SNAPSHOTS: usize = 8;

/// Session cache of the graph's [`CoinTable`] — the per-graph
/// fixed-point thresholds the counter-RNG synthesis reads.
///
/// Built once per session and revalidated on every access against the
/// graph's probability version: a `set_self_risk`/`set_edge_prob` call
/// bumps the version, so a stale table is **rebuilt** instead of
/// serving old thresholds (and the rebuild is counted, so sessions can
/// report it).
#[derive(Debug, Default)]
pub(crate) struct CoinCache {
    table: Option<Arc<CoinTable>>,
    builds: u64,
}

impl CoinCache {
    /// Returns a current table for `graph`, building (or rebuilding)
    /// it if the cached one is missing or stale. The flag reports
    /// whether this call built a table.
    pub(crate) fn get(&mut self, graph: &UncertainGraph) -> (Arc<CoinTable>, bool) {
        if let Some(table) = &self.table {
            if table.matches(graph) {
                return (table.clone(), false);
            }
        }
        let table = Arc::new(CoinTable::new(graph));
        self.table = Some(table.clone());
        self.builds += 1;
        (table, true)
    }

    /// Tables built (including rebuilds after invalidation) over the
    /// cache's lifetime.
    #[cfg(test)]
    pub(crate) fn builds(&self) -> u64 {
        self.builds
    }
}

/// Prefix-extendable cache of cumulative sample counts for one stream
/// (one seed and, for reverse sampling, one candidate set).
#[derive(Debug, Clone, Default)]
pub(crate) struct SampleCache {
    /// `t →` cumulative counts over sample ids `0..t`. Shared out as
    /// `Arc` so exact cache hits are O(1) instead of an O(slots) copy.
    snapshots: BTreeMap<u64, Arc<DefaultCounts>>,
}

impl SampleCache {
    /// Returns cumulative counts over sample ids `0..t`, drawing as few
    /// fresh samples as possible. `align` is the snapshot alignment —
    /// the stream's worlds-per-superblock (`W · 64`), a positive
    /// multiple of 64. `draw` materializes counts for a raw id range.
    /// Returns `(counts, drawn, reused)` where `drawn + reused == t`.
    pub(crate) fn serve(
        &mut self,
        t: u64,
        align: u64,
        mut draw: impl FnMut(Range<u64>) -> DefaultCounts,
    ) -> (Arc<DefaultCounts>, u64, u64) {
        debug_assert!(align >= 64 && align % 64 == 0, "alignment must be a superblock span");
        if let Some(hit) = self.snapshots.get(&t) {
            return (hit.clone(), 0, t);
        }
        let floor = self.snapshots.range(..t).next_back().map(|(&t0, c)| (t0, c.clone()));
        let t0 = floor.as_ref().map_or(0, |&(t0, _)| t0);
        // Largest superblock-aligned prefix strictly inside the drawn
        // gap: worth its own snapshot so later extensions resume on a
        // superblock boundary (see the module docs).
        let t_align = t / align * align;
        let counts = if t_align > t0 && t_align < t {
            let mut aligned = match &floor {
                Some((_, base)) => {
                    let mut extended = (**base).clone();
                    extended.merge(&draw(t0..t_align));
                    extended
                }
                None => draw(0..t_align),
            };
            let aligned_arc = Arc::new(aligned.clone());
            self.snapshots.insert(t_align, aligned_arc);
            aligned.merge(&draw(t_align..t));
            Arc::new(aligned)
        } else {
            match floor {
                Some((_, base)) => {
                    let mut extended = (*base).clone();
                    extended.merge(&draw(t0..t));
                    Arc::new(extended)
                }
                None => Arc::new(draw(0..t)),
            }
        };
        self.snapshots.insert(t, counts.clone());
        while self.snapshots.len() > MAX_SNAPSHOTS {
            let smallest = *self.snapshots.keys().next().expect("cache is non-empty");
            if smallest == t {
                // Never evict what this call just produced; the next
                // smallest goes instead.
                let second = *self.snapshots.keys().nth(1).expect("len > MAX >= 2");
                self.snapshots.remove(&second);
            } else {
                self.snapshots.remove(&smallest);
            }
        }
        (counts, t - t0, t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy, EdgeId, NodeId};

    #[test]
    fn coin_cache_rebuilds_on_probability_updates() {
        let mut g = from_parts(&[0.5, 0.1], &[(0, 1, 0.7)], DuplicateEdgePolicy::Error).unwrap();
        let mut cache = CoinCache::default();
        let (t1, built) = cache.get(&g);
        assert!(built);
        let (t2, built) = cache.get(&g);
        assert!(!built, "unchanged graph must hit the cached table");
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(cache.builds(), 1);

        // A probability update bumps the graph version: the stale table
        // must be rebuilt, not served.
        g.set_edge_prob(EdgeId(0), 0.2).unwrap();
        let (t3, built) = cache.get(&g);
        assert!(built, "stale coin table served after set_edge_prob");
        assert!(!Arc::ptr_eq(&t1, &t3));
        assert_eq!(t3.edge_threshold(0), vulnds_sampling::coins::quantize_probability(0.2));

        g.set_self_risk(NodeId(1), 0.9).unwrap();
        let (t4, built) = cache.get(&g);
        assert!(built, "stale coin table served after set_self_risk");
        assert_eq!(t4.node_threshold(1), vulnds_sampling::coins::quantize_probability(0.9));
        assert_eq!(cache.builds(), 3);
    }

    /// Fake draw: counts slot 0 once per sample, tagging nothing else —
    /// enough to verify prefix arithmetic.
    fn draw(range: Range<u64>) -> DefaultCounts {
        let mut c = DefaultCounts::new(1);
        for _ in range {
            c.begin_sample();
            c.bump(0);
        }
        c
    }

    #[test]
    fn cold_draws_everything() {
        let mut cache = SampleCache::default();
        let (c, drawn, reused) = cache.serve(10, 64, draw);
        assert_eq!((c.samples(), drawn, reused), (10, 10, 0));
    }

    #[test]
    fn exact_hit_draws_nothing() {
        let mut cache = SampleCache::default();
        cache.serve(10, 64, draw);
        let (c, drawn, reused) = cache.serve(10, 64, draw);
        assert_eq!((c.samples(), drawn, reused), (10, 0, 10));
    }

    #[test]
    fn extends_prefix() {
        let mut cache = SampleCache::default();
        cache.serve(10, 64, draw);
        let (c, drawn, reused) = cache.serve(25, 64, draw);
        assert_eq!((c.samples(), c.count(0), drawn, reused), (25, 25, 15, 10));
        // The new snapshot serves exact hits too.
        let (_, drawn, reused) = cache.serve(25, 64, draw);
        assert_eq!((drawn, reused), (0, 25));
    }

    #[test]
    fn smaller_than_all_snapshots_redraws() {
        let mut cache = SampleCache::default();
        cache.serve(100, 64, draw);
        let (c, drawn, reused) = cache.serve(40, 64, draw);
        assert_eq!((c.samples(), drawn, reused), (40, 40, 0));
        // The 64-aligned snapshot produced by the 100-serve beats the
        // fresh 40-snapshot as an extension base.
        let (_, drawn, reused) = cache.serve(70, 64, draw);
        assert_eq!((drawn, reused), (6, 64));
    }

    #[test]
    fn extensions_resume_on_block_boundaries() {
        let mut cache = SampleCache::default();
        // A non-aligned budget snapshots its aligned prefix too …
        let (c, drawn, reused) = cache.serve(100, 64, draw);
        assert_eq!((c.samples(), drawn, reused), (100, 100, 0));
        assert!(cache.snapshots.contains_key(&64), "aligned prefix not snapshotted");
        // … so a smaller follow-up bridges from the block boundary
        // instead of redrawing everything.
        let (c, drawn, reused) = cache.serve(70, 64, draw);
        assert_eq!((c.samples(), c.count(0), drawn, reused), (70, 70, 6, 64));
        // Aligned budgets take the single-draw path and add one snapshot.
        let (_, drawn, reused) = cache.serve(128, 64, draw);
        assert_eq!((drawn, reused), (28, 100));
        // Tiny budgets below one block never split.
        let mut small = SampleCache::default();
        let (_, drawn, reused) = small.serve(10, 64, draw);
        assert_eq!((drawn, reused), (10, 0));
        assert_eq!(small.snapshots.len(), 1);
    }

    #[test]
    fn extensions_resume_on_superblock_boundaries() {
        // A width-8 stream aligns snapshots at 512: a non-aligned budget
        // snapshots its 512-aligned prefix…
        let mut cache = SampleCache::default();
        let (c, drawn, reused) = cache.serve(1000, 512, draw);
        assert_eq!((c.samples(), drawn, reused), (1000, 1000, 0));
        assert!(cache.snapshots.contains_key(&512), "superblock prefix not snapshotted");
        // …so a smaller follow-up bridges from the superblock boundary.
        let (c, drawn, reused) = cache.serve(600, 512, draw);
        assert_eq!((c.samples(), drawn, reused), (600, 88, 512));
        // A later narrow-width query on the same stream still extends
        // the widest prefix exactly.
        let (c, drawn, reused) = cache.serve(1100, 64, draw);
        assert_eq!((c.samples(), c.count(0), drawn, reused), (1100, 1100, 100, 1000));
    }

    #[test]
    fn snapshot_count_is_bounded_and_keeps_the_largest() {
        let mut cache = SampleCache::default();
        for t in 1..=50u64 {
            cache.serve(t * 10, 64, draw);
        }
        assert!(cache.snapshots.len() <= MAX_SNAPSHOTS);
        // The largest prefix survives eviction: an extension past it
        // reuses all 500 cached samples.
        let (_, drawn, reused) = cache.serve(600, 64, draw);
        assert_eq!((drawn, reused), (100, 500));
        // Eviction never drops the snapshot produced by the current call.
        let (_, drawn, reused) = cache.serve(5, 64, draw);
        assert_eq!((drawn, reused), (5, 0));
        let (_, drawn, reused) = cache.serve(5, 64, draw);
        assert_eq!((drawn, reused), (0, 5));
    }
}
