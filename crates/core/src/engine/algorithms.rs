//! The object-safe [`Algorithm`] trait and one implementation per paper
//! algorithm (N, SN, SR, BSR, BSRBK).
//!
//! Implementations are stateless: all reusable state (bounds, candidate
//! reductions, sampled-world counts) lives in the session and is reached
//! through [`EngineCtx`], so two sessions never share state and one
//! session's queries amortize each other's work.

use std::time::Instant;

use ugraph::NodeId;
use vulnds_sampling::{BlockKernel, WorldBlock, LANES};
use vulnds_sketch::{bottomk_default_probability, hash_order, UnitHasher};

use crate::algo::reverse_common::{assemble_result, merge_verified, Pruned};
use crate::algo::{AlgorithmKind, RunStats};
use crate::candidates::CandidateReduction;
use crate::error::{Result, VulnError};
use crate::sample_size::{achieved_epsilon, basic_sample_size, reduced_sample_size};
use crate::topk::{select_top_k, select_top_k_dense, ScoredNode};

use super::request::{DetectResponse, EngineStats, ResolvedRequest};
use super::EngineCtx;

/// Seed domain separator so the BSRBK sample-order hash never correlates
/// with the possible-world RNG streams.
const HASH_DOMAIN: u64 = 0xB077_0A6B_5EED_0001;

/// One detection algorithm, runnable inside a [`Detector`](super::Detector)
/// session.
///
/// The trait is object-safe; [`algorithm`] returns the built-in
/// implementation for each [`AlgorithmKind`]. The `engine` field of the
/// returned response is overwritten by the session with the cache
/// counters it observed, so implementations may leave it defaulted.
pub trait Algorithm {
    /// Which paper algorithm this is.
    fn kind(&self) -> AlgorithmKind;

    /// Answers one resolved request using (and filling) the session's
    /// caches.
    fn run(&self, ctx: &mut EngineCtx<'_>, req: &ResolvedRequest) -> Result<DetectResponse>;
}

/// The built-in implementation of each paper algorithm.
pub fn algorithm(kind: AlgorithmKind) -> &'static dyn Algorithm {
    match kind {
        AlgorithmKind::Naive => &NaiveMonteCarlo,
        AlgorithmKind::SampledNaive => &SampledNaive,
        AlgorithmKind::SampleReverse => &SampleReverse,
        AlgorithmKind::BoundedSampleReverse => &BoundedSampleReverse,
        AlgorithmKind::BottomK => &BottomKEarlyStop,
    }
}

/// The degradation outcome of one sampling pass: whether the pass fell
/// short of its budget and the `ε` the answer still satisfies. `a · b`
/// is the pair count of the algorithm's bound (Eq. 3/4).
fn epsilon_outcome(req: &ResolvedRequest, a: u64, b: u64, budget: u64, used: u64) -> (bool, f64) {
    let degraded = used < budget;
    let achieved = if degraded {
        achieved_epsilon(a, b, req.approx.delta(), used)
    } else {
        req.approx.epsilon()
    };
    (degraded, achieved)
}

/// Shared by N and SN: forward-sample `t` worlds (through the session
/// cache), estimate every node's default probability, return the top-k.
/// A pass cut short by cancellation returns the degraded prefix answer,
/// or [`VulnError::Cancelled`] when no samples were drawn at all.
fn forward_detect(
    ctx: &mut EngineCtx<'_>,
    req: &ResolvedRequest,
    t: u64,
    kind: AlgorithmKind,
) -> Result<DetectResponse> {
    // xlint: allow(no-wall-clock) — `elapsed` is a reported
    // diagnostic; no answer bit depends on the clock.
    let start = Instant::now();
    let counts = ctx.forward_counts(t, req.seed);
    let samples_used = counts.samples();
    if samples_used == 0 && t > 0 {
        return Err(VulnError::Cancelled);
    }
    let n = ctx.graph().num_nodes();
    let (degraded, achieved) =
        epsilon_outcome(req, req.k as u64, n.saturating_sub(req.k) as u64, t, samples_used);
    let top_k = select_top_k_dense(&counts.estimates(), req.k);
    Ok(DetectResponse {
        top_k,
        stats: RunStats {
            algorithm: kind,
            sample_budget: t,
            samples_used,
            candidates: n,
            verified: 0,
            early_stopped: false,
            elapsed: start.elapsed(),
        },
        engine: EngineStats::default(),
        degraded,
        achieved_epsilon: achieved,
    })
}

/// `N` — Algorithm 1 with the fixed budget of
/// [`VulnConfig::naive_samples`](crate::VulnConfig::naive_samples).
pub struct NaiveMonteCarlo;

impl Algorithm for NaiveMonteCarlo {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Naive
    }

    fn run(&self, ctx: &mut EngineCtx<'_>, req: &ResolvedRequest) -> Result<DetectResponse> {
        let t = ctx.config().naive_samples;
        forward_detect(ctx, req, t, AlgorithmKind::Naive)
    }
}

/// `SN` — Algorithm 1 with the Equation-3 sample size (Theorem 4).
pub struct SampledNaive;

impl Algorithm for SampledNaive {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::SampledNaive
    }

    fn run(&self, ctx: &mut EngineCtx<'_>, req: &ResolvedRequest) -> Result<DetectResponse> {
        let t = sn_budget(ctx, req);
        forward_detect(ctx, req, t, AlgorithmKind::SampledNaive)
    }
}

/// SN's Equation-3 budget, shared with the batch planner.
pub(super) fn sn_budget(ctx: &EngineCtx<'_>, req: &ResolvedRequest) -> u64 {
    ctx.config().cap_samples(basic_sample_size(ctx.graph().num_nodes(), req.k, req.approx)).max(1)
}

/// SR's candidate set: rule 2 only — verified nodes fold back into the
/// candidate pool (or the request's hint replaces the whole set).
pub(super) fn sr_candidates(
    reduction: &CandidateReduction,
    hint: Option<&[NodeId]>,
) -> Vec<NodeId> {
    if let Some(hint) = hint {
        return hint.to_vec();
    }
    let mut candidates = reduction.verified.clone();
    candidates.extend(reduction.candidates.iter().copied());
    candidates.sort_unstable_by_key(|v| v.0);
    candidates
}

/// BSR/BSRBK's candidate set `B`: the reduction's candidates, or the
/// request's hint minus the already-verified nodes.
pub(super) fn bsr_candidates(
    reduction: &CandidateReduction,
    hint: Option<&[NodeId]>,
) -> Vec<NodeId> {
    match hint {
        None => reduction.candidates.clone(),
        Some(hint) => hint.iter().copied().filter(|v| !reduction.verified.contains(v)).collect(),
    }
}

/// How a reverse-sampling request (SR/BSR/BSRBK) will execute: its
/// candidate set, verification split, and sample budget.
///
/// Derived in exactly one place — [`reverse_plan`] — and consumed both by
/// the `Algorithm` implementations and by `detect_many`'s batch planner,
/// so the grouping key can never drift from what a run actually samples.
pub(super) struct ReversePlan {
    /// The set `B` sampling estimates (candidate positions index counts).
    pub candidates: Vec<NodeId>,
    /// Nodes the bounds verified into the top-k (`k'`; 0 for SR).
    pub k_verified: usize,
    /// Result slots left open (`k − k'`; `k` for SR).
    pub k_rem: usize,
    /// The bounds alone decide everything: no sampling (BSR/BSRBK only).
    pub degenerate: bool,
    /// Equation-4 budget (0 when degenerate).
    pub budget: u64,
}

/// Derives the [`ReversePlan`] for one resolved request.
pub(super) fn reverse_plan(ctx: &mut EngineCtx<'_>, req: &ResolvedRequest) -> ReversePlan {
    let reduction = ctx.reduction(req.k);
    let hint = req.candidates.as_deref();
    if req.algorithm == AlgorithmKind::SampleReverse {
        let candidates = sr_candidates(&reduction, hint);
        let budget = ctx
            .config()
            .cap_samples(reduced_sample_size(candidates.len(), req.k, req.approx))
            .max(1);
        return ReversePlan { candidates, k_verified: 0, k_rem: req.k, degenerate: false, budget };
    }
    let k_verified = reduction.verified_count();
    let k_rem = req.k - k_verified.min(req.k);
    let candidates = bsr_candidates(&reduction, hint);
    let degenerate = k_rem == 0 || candidates.len() <= k_rem;
    let budget = if degenerate {
        0
    } else {
        ctx.config().cap_samples(reduced_sample_size(candidates.len(), k_rem, req.approx)).max(1)
    };
    ReversePlan { candidates, k_verified, k_rem, degenerate, budget }
}

/// The sampling-free answer for a degenerate BSR/BSRBK plan: open slots
/// are filled by bound midpoints, verified nodes lead. Never degraded:
/// there is no sampling pass to cut short.
fn degenerate_response(
    req: &ResolvedRequest,
    pruned: &Pruned<'_>,
    plan: &ReversePlan,
    k: usize,
    kind: AlgorithmKind,
    start: Instant,
) -> DetectResponse {
    let chosen = select_top_k(
        plan.candidates.iter().map(|&node| ScoredNode { node, score: pruned.midpoint_score(node) }),
        plan.k_rem,
    );
    let top_k = merge_verified(pruned, chosen, k);
    DetectResponse {
        top_k,
        stats: RunStats {
            algorithm: kind,
            sample_budget: 0,
            samples_used: 0,
            candidates: plan.candidates.len(),
            verified: plan.k_verified,
            early_stopped: false,
            elapsed: start.elapsed(),
        },
        engine: EngineStats::default(),
        degraded: false,
        achieved_epsilon: req.approx.epsilon(),
    }
}

/// `SR` — reverse sampling over the rule-2 candidate set, no
/// verification.
pub struct SampleReverse;

impl Algorithm for SampleReverse {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::SampleReverse
    }

    fn run(&self, ctx: &mut EngineCtx<'_>, req: &ResolvedRequest) -> Result<DetectResponse> {
        // xlint: allow(no-wall-clock) — `elapsed` is a reported
        // diagnostic; no answer bit depends on the clock.
        let start = Instant::now();
        let bounds = ctx.bounds();
        let reduction = ctx.reduction(req.k);
        let plan = reverse_plan(ctx, req);
        let counts = ctx.reverse_counts(&plan.candidates, plan.budget, req.seed);
        let samples_used = counts.samples();
        if samples_used == 0 && plan.budget > 0 {
            return Err(VulnError::Cancelled);
        }
        let (degraded, achieved) = epsilon_outcome(
            req,
            req.k as u64,
            plan.candidates.len().saturating_sub(req.k) as u64,
            plan.budget,
            samples_used,
        );

        // Rank purely by estimates: an empty verified set in the view.
        let unverified = CandidateReduction {
            verified: Vec::new(),
            candidates: plan.candidates.clone(),
            t_lower: reduction.t_lower,
            t_upper: reduction.t_upper,
        };
        let pruned = Pruned { lower: &bounds.0, upper: &bounds.1, reduction: &unverified };
        let top_k = assemble_result(&pruned, &plan.candidates, &counts, req.k);
        Ok(DetectResponse {
            top_k,
            stats: RunStats {
                algorithm: AlgorithmKind::SampleReverse,
                sample_budget: plan.budget,
                samples_used,
                candidates: plan.candidates.len(),
                verified: 0,
                early_stopped: false,
                elapsed: start.elapsed(),
            },
            engine: EngineStats::default(),
            degraded,
            achieved_epsilon: achieved,
        })
    }
}

/// `BSR` — bounds + verification + reverse sampling with the Equation-4
/// budget (Theorem 5).
pub struct BoundedSampleReverse;

impl Algorithm for BoundedSampleReverse {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::BoundedSampleReverse
    }

    fn run(&self, ctx: &mut EngineCtx<'_>, req: &ResolvedRequest) -> Result<DetectResponse> {
        // xlint: allow(no-wall-clock) — `elapsed` is a reported
        // diagnostic; no answer bit depends on the clock.
        let start = Instant::now();
        let bounds = ctx.bounds();
        let reduction = ctx.reduction(req.k);
        let plan = reverse_plan(ctx, req);
        let pruned = Pruned { lower: &bounds.0, upper: &bounds.1, reduction: &reduction };

        // Degenerate cases: everything decided by the bounds alone.
        if plan.degenerate {
            return Ok(degenerate_response(
                req,
                &pruned,
                &plan,
                req.k,
                AlgorithmKind::BoundedSampleReverse,
                start,
            ));
        }

        let counts = ctx.reverse_counts(&plan.candidates, plan.budget, req.seed);
        let samples_used = counts.samples();
        if samples_used == 0 && plan.budget > 0 {
            return Err(VulnError::Cancelled);
        }
        let (degraded, achieved) = epsilon_outcome(
            req,
            plan.k_rem as u64,
            plan.candidates.len().saturating_sub(plan.k_rem) as u64,
            plan.budget,
            samples_used,
        );
        let top_k = assemble_result(&pruned, &plan.candidates, &counts, req.k);
        Ok(DetectResponse {
            top_k,
            stats: RunStats {
                algorithm: AlgorithmKind::BoundedSampleReverse,
                sample_budget: plan.budget,
                samples_used,
                candidates: plan.candidates.len(),
                verified: plan.k_verified,
                early_stopped: false,
                elapsed: start.elapsed(),
            },
            engine: EngineStats::default(),
            degraded,
            achieved_epsilon: achieved,
        })
    }
}

/// `BSRBK` — BSR plus the bottom-k early-stopping rule (paper §3.3,
/// Theorem 6).
///
/// The sampling pass is adaptive (which worlds are visited depends on
/// when candidates saturate), so it cannot share a prefix with the other
/// algorithms; it still reuses the session's bounds and reduction.
///
/// Worlds are evaluated through the bit-parallel block kernel, 64 per
/// [`WorldBlock`] in hash order, and then replayed lane by lane so the
/// early-stop bookkeeping (counters, k-th hashes, `samples_used`) is
/// identical to processing the samples one at a time.
pub struct BottomKEarlyStop;

impl Algorithm for BottomKEarlyStop {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::BottomK
    }

    fn run(&self, ctx: &mut EngineCtx<'_>, req: &ResolvedRequest) -> Result<DetectResponse> {
        // xlint: allow(no-wall-clock) — `elapsed` is a reported
        // diagnostic; no answer bit depends on the clock.
        let start = Instant::now();
        let bk = ctx.config().bk;
        let bounds = ctx.bounds();
        let reduction = ctx.reduction(req.k);
        let plan = reverse_plan(ctx, req);
        let pruned = Pruned { lower: &bounds.0, upper: &bounds.1, reduction: &reduction };

        if plan.degenerate {
            return Ok(degenerate_response(
                req,
                &pruned,
                &plan,
                req.k,
                AlgorithmKind::BottomK,
                start,
            ));
        }
        let ReversePlan { candidates, k_verified, k_rem, budget: t, .. } = plan;
        // Degradation knobs: the adaptive pass samples outside the
        // session cache, so it honours the token and cap itself. The
        // cap bounds *worlds replayed*, not the budget `t` — the
        // hash-shuffled sample order is a pure function of `(seed, t)`,
        // so a capped replay walks the identical prefix of the identical
        // order.
        let cancel = req.cancel.clone();
        let cap = req.sample_cap.unwrap_or(u64::MAX);

        // The order build is O(t log t) before the first world is
        // drawn; an already-expired deadline (or a server drain) must
        // not pay for it.
        if cancel.as_ref().is_some_and(vulnds_sampling::CancelToken::is_cancelled) {
            return Err(VulnError::Cancelled);
        }
        let hasher = UnitHasher::new(req.seed ^ HASH_DOMAIN);
        let order = hash_order(&hasher, t as usize);

        let coins = ctx.coin_table();
        let graph = ctx.graph();
        let mut block = WorldBlock::new(graph);
        let mut kernel = BlockKernel::new(graph);
        let mut counters = vec![0u32; candidates.len()];
        let mut kth_hash = vec![0.0f64; candidates.len()];
        let mut saturated = vec![false; candidates.len()];
        let mut saturated_count = 0usize;
        let mut samples_used = 0u64;
        let mut early_stopped = false;

        // Scratch reused across chunks.
        let mut ids: Vec<u64> = Vec::with_capacity(LANES);
        let mut active: Vec<(usize, NodeId)> = Vec::with_capacity(candidates.len());
        let mut hit_words: Vec<u64> = Vec::with_capacity(candidates.len());

        'outer: for chunk in order.chunks(LANES) {
            // Polled once per 64-world chunk, like the kernel samplers
            // poll per superblock: the clock-driven cut never lands
            // mid-chunk, and `samples_used` is an exact replayable cut
            // either way.
            if cancel.as_ref().is_some_and(vulnds_sampling::CancelToken::is_cancelled) {
                break 'outer;
            }
            ids.clear();
            ids.extend(chunk.iter().map(|&s| s as u64));
            block.materialize_ids(graph, &coins, req.seed, &ids);
            kernel.begin_block();
            // One bit-parallel reverse BFS per still-unsaturated
            // candidate decides all 64 worlds of the chunk at once …
            active.clear();
            active.extend(
                candidates.iter().enumerate().filter(|(i, _)| !saturated[*i]).map(|(i, &v)| (i, v)),
            );
            hit_words.clear();
            for &(_, v) in &active {
                let word = kernel.reverse_hit_word(graph, &coins, &mut block, v);
                hit_words.push(word);
            }
            // … and the lanes are replayed in sample order so counters,
            // saturation hashes and the stop condition match a
            // one-world-at-a-time run exactly. (A candidate saturating
            // mid-chunk simply ignores its later lanes, like the scalar
            // loop skipped saturated candidates.)
            for (lane, &sample_id) in ids.iter().enumerate() {
                if samples_used >= cap {
                    // Replay cap reached: stop exactly here, like the
                    // original degraded run did.
                    break 'outer;
                }
                let h = hasher.hash_unit(sample_id);
                samples_used += 1;
                for (&(i, _), &word) in active.iter().zip(&hit_words) {
                    if !saturated[i] && word >> lane & 1 == 1 {
                        counters[i] += 1;
                        if counters[i] as usize == bk {
                            saturated[i] = true;
                            kth_hash[i] = h;
                            saturated_count += 1;
                        }
                    }
                }
                if saturated_count >= k_rem {
                    early_stopped = true;
                    break 'outer;
                }
            }
        }
        ctx.note_adaptive_samples(samples_used);
        ctx.note_coins(&block.take_usage());
        // Scattered hash-order replay is inherently single-word.
        ctx.note_width(vulnds_sampling::BlockWords::W1);

        if samples_used == 0 {
            return Err(VulnError::Cancelled);
        }
        // An early stop is success, not degradation: the stop rule's
        // contract is satisfied. Only an unfinished budget without the
        // stop firing widens ε.
        let (degraded, achieved) = if early_stopped {
            (false, req.approx.epsilon())
        } else {
            epsilon_outcome(
                req,
                k_rem as u64,
                candidates.len().saturating_sub(k_rem) as u64,
                t,
                samples_used,
            )
        };

        let chosen = if early_stopped {
            // Rank the saturated candidates by their sketch estimates;
            // more than k_rem can saturate in the final sample, so select.
            select_top_k(
                candidates.iter().enumerate().filter(|(i, _)| saturated[*i]).map(|(i, &node)| {
                    ScoredNode {
                        node,
                        score: bottomk_default_probability(bk, kth_hash[i], t as usize),
                    }
                }),
                k_rem,
            )
        } else {
            // Budget exhausted: BSR-style ranking.
            select_top_k(
                candidates.iter().enumerate().map(|(i, &node)| ScoredNode {
                    node,
                    score: if saturated[i] {
                        bottomk_default_probability(bk, kth_hash[i], t as usize)
                    } else {
                        counters[i] as f64 / samples_used as f64
                    },
                }),
                k_rem,
            )
        };
        let top_k = merge_verified(&pruned, chosen, req.k);

        Ok(DetectResponse {
            top_k,
            stats: RunStats {
                algorithm: AlgorithmKind::BottomK,
                sample_budget: t,
                samples_used,
                candidates: candidates.len(),
                verified: k_verified,
                early_stopped,
                elapsed: start.elapsed(),
            },
            engine: EngineStats::default(),
            degraded,
            achieved_epsilon: achieved,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_covers_all_kinds() {
        for kind in AlgorithmKind::ALL {
            assert_eq!(algorithm(kind).kind(), kind);
        }
    }

    #[test]
    fn sr_candidates_fold_verified_back_in() {
        let r = CandidateReduction {
            verified: vec![NodeId(3)],
            candidates: vec![NodeId(0), NodeId(5)],
            t_lower: 0.1,
            t_upper: 0.9,
        };
        assert_eq!(sr_candidates(&r, None), vec![NodeId(0), NodeId(3), NodeId(5)]);
        assert_eq!(sr_candidates(&r, Some(&[NodeId(1)])), vec![NodeId(1)]);
    }

    #[test]
    fn bsr_candidates_exclude_verified_from_hint() {
        let r = CandidateReduction {
            verified: vec![NodeId(3)],
            candidates: vec![NodeId(0), NodeId(5)],
            t_lower: 0.1,
            t_upper: 0.9,
        };
        assert_eq!(bsr_candidates(&r, None), vec![NodeId(0), NodeId(5)]);
        assert_eq!(
            bsr_candidates(&r, Some(&[NodeId(1), NodeId(3), NodeId(5)])),
            vec![NodeId(1), NodeId(5)]
        );
    }
}
