//! # The session-oriented detection engine
//!
//! [`Detector`] is the primary public API of the VulnDS system: a query
//! session that **owns** one shared graph (`Arc<UncertainGraph>`), the
//! run configuration, a worker thread count, and **reusable state** —
//! bound vectors (Algorithms 2–3), candidate reductions (Algorithm 4),
//! and cumulative sampled-world counts — so that repeated queries
//! (multiple `k`, tweaked `ε`/`δ`, what-if follow-ups) amortize each
//! other's work instead of re-deriving everything from scratch like the
//! classic free functions.
//!
//! Since 0.4 the engine is built for **concurrent multi-client use**:
//! [`Detector::detect`], [`Detector::detect_many`],
//! [`Detector::session_stats`], and [`Detector::clear_cache`] all take
//! `&self`, `Detector` is `Send + Sync`, and one session can be shared
//! across any number of query threads (wrap it in an `Arc`, or hand out
//! `&Detector` borrows from a scoped thread). Session caches build
//! **single-flight**: when several queries miss on the same plan key at
//! the same moment, one of them computes the value while the rest block
//! on the same slot and share the one `Arc` — so amortization compounds
//! across clients, not just across requests.
//!
//! ```
//! use std::sync::Arc;
//! use ugraph::{NodeId, UncertainGraph};
//! use vulnds_core::engine::{DetectRequest, Detector};
//! use vulnds_core::AlgorithmKind;
//!
//! let mut b = UncertainGraph::builder(5);
//! for v in 0..5 {
//!     b.set_self_risk(NodeId(v), 0.2).unwrap();
//! }
//! for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
//!     b.add_edge(NodeId(u), NodeId(v), 0.2).unwrap();
//! }
//! let graph = b.build().unwrap();
//!
//! // The builder takes `&UncertainGraph` (clones), `UncertainGraph`
//! // (moves), or `Arc<UncertainGraph>` (shares) — the session owns the
//! // graph either way.
//! let detector = Detector::builder(graph).seed(7).build().unwrap();
//! let top1 = detector.detect(&DetectRequest::new(1, AlgorithmKind::BottomK)).unwrap();
//! assert_eq!(top1.top_k[0].node, NodeId(4));
//!
//! // A follow-up query reuses the session's bounds and sampled worlds.
//! let top2 = detector.detect(&DetectRequest::new(2, AlgorithmKind::BottomK)).unwrap();
//! assert!(top2.engine.bounds_reused);
//!
//! // Concurrent clients share one session through `&self`.
//! let service = Arc::new(detector);
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         let service = Arc::clone(&service);
//!         s.spawn(move || {
//!             service.detect(&DetectRequest::new(2, AlgorithmKind::BottomK)).unwrap()
//!         });
//!     }
//! });
//! ```
//!
//! ## Determinism
//!
//! Results are bit-identical for a given `(graph, config, request)`
//! across thread counts, across repeated calls, across warm vs cold
//! caches, **and across concurrent interleavings**: sample `i` is
//! always drawn from the RNG stream derived from `(seed, i)` and IS the
//! materialized world `PossibleWorld::sample_indexed(graph, seed, i)`,
//! so cached cumulative counts over ids `0..t0` extend to `0..t` by
//! drawing only `t0..t` — exactly what a cold run would have produced.
//! A stream's cache cell is locked across a draw, so concurrent queries
//! on the same stream serialize into the same prefix-extension order a
//! serial run would take; queries on different streams proceed in
//! parallel. Sampling executes on the bit-parallel world-block kernel
//! (64 worlds per block, see `vulnds_sampling::block`); the session
//! cache additionally snapshots counts at 64-aligned block boundaries
//! so prefix extensions resume on whole blocks.
//!
//! Only the *diagnostics* may differ between interleavings: cache
//! counters ([`EngineStats`], [`SessionStats`]) describe which query
//! happened to build or reuse shared state, and wall-clock `elapsed`
//! is wall clock. The answers (`top_k`, `RunStats` budgets/counts) are
//! invariant.
//!
//! ## Batching
//!
//! [`Detector::detect_many`] answers a batch of requests while sharing
//! one sampling pass per stream: requests that sample the same stream
//! (same seed and, for reverse sampling, the same candidate set) are
//! served in ascending budget order, so the whole group draws only
//! `max(tᵢ)` fresh worlds instead of `Σ tᵢ`. Every response is still
//! bit-identical to a lone [`Detector::detect`] call for that request.
//!
//! ## Live updates
//!
//! [`Detector::apply_delta`] commits a batched [`GraphDelta`]
//! (probability recalibrations — topology is immutable) as a new
//! **epoch**: the session's live graph is an `Arc` snapshot that every
//! query pins at entry, so in-flight queries finish bit-identically on
//! the pre-delta snapshot while queries that start after the commit see
//! the new one. Session caches are *revalidated*, not dropped: the coin
//! table re-quantizes only the dirty items, cached bound vectors are
//! repaired through [`IncrementalBounds`] (`O(|dirty z-ball|)` instead
//! of `O(z (n + m))`), and a cached sample stream survives whenever its
//! touch ledger proves no draw ever materialized a dirty edge — all
//! bit-identical to a cold rebuild against the post-delta graph, which
//! the tests assert.

mod algorithms;
mod cache;
mod request;

pub use algorithms::{
    algorithm, Algorithm, BottomKEarlyStop, BoundedSampleReverse, NaiveMonteCarlo, SampleReverse,
    SampledNaive,
};
pub use request::{DetectRequest, DetectResponse, EngineStats, ResolvedRequest};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ugraph::{EdgeId, GraphDelta, NodeId, NodeMap, NodeOrder, UncertainGraph};
use vulnds_sampling::{
    fit_width, parallel_forward_counts_range_width_traced,
    parallel_reverse_counts_range_width_traced, BlockWords, CancelToken, CoinTable, CoinUsage,
    DefaultCounts, Direction, TouchLedger,
};

use crate::algo::AlgorithmKind;
use crate::candidates::{reduce_candidates, CandidateReduction};
use crate::config::{ApproxParams, BoundsMethod, VulnConfig};
use crate::dynamic::IncrementalBounds;
use crate::error::Result;

use cache::{lock_tracked, CoinCache, Flight, FlightMap, MarkerReset, SampleCache, StreamMap};

/// Lower and upper bound vectors, as cached by a session.
pub type BoundsPair = (Vec<f64>, Vec<f64>);

/// Conversion into the shared graph a [`Detector`] session owns.
///
/// Lets [`Detector::builder`] accept every common ownership shape:
///
/// * `Arc<UncertainGraph>` / `&Arc<UncertainGraph>` — shared as-is
///   (this is how a service hands one graph to many sessions without
///   copying it),
/// * `UncertainGraph` — moved into a fresh `Arc`,
/// * `&UncertainGraph` — **cloned** into a fresh `Arc`, so pre-0.4 call
///   sites keep compiling (at the cost of one graph copy — pass the
///   graph by value or by `Arc` to avoid it).
pub trait IntoSharedGraph {
    /// The shared graph the session will own.
    fn into_shared(self) -> Arc<UncertainGraph>;
}

impl IntoSharedGraph for Arc<UncertainGraph> {
    fn into_shared(self) -> Arc<UncertainGraph> {
        self
    }
}

impl IntoSharedGraph for &Arc<UncertainGraph> {
    fn into_shared(self) -> Arc<UncertainGraph> {
        Arc::clone(self)
    }
}

impl IntoSharedGraph for UncertainGraph {
    fn into_shared(self) -> Arc<UncertainGraph> {
        Arc::new(self)
    }
}

impl IntoSharedGraph for &UncertainGraph {
    fn into_shared(self) -> Arc<UncertainGraph> {
        Arc::new(self.clone())
    }
}

/// Builder for a [`Detector`] session.
#[derive(Debug, Clone)]
pub struct DetectorBuilder {
    graph: Arc<UncertainGraph>,
    config: VulnConfig,
    threads: Option<usize>,
    relabel: Option<NodeOrder>,
}

impl DetectorBuilder {
    /// Adopts a full configuration (including its thread count, for
    /// drop-in compatibility with the classic API).
    pub fn config(mut self, config: VulnConfig) -> Self {
        self.threads = Some(config.threads);
        self.config = config;
        self
    }

    /// Session RNG seed (identical seeds give identical results).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Default `(ε, δ)` approximation contract for requests that do not
    /// override it.
    pub fn approx(mut self, approx: ApproxParams) -> Self {
        self.config.approx = approx;
        self
    }

    /// Order `z` of the bound recursions (Algorithms 2–3).
    pub fn bound_order(mut self, z: usize) -> Self {
        self.config.bound_order = z;
        self
    }

    /// Which bound recursion the pruning phase uses.
    pub fn bounds_method(mut self, method: BoundsMethod) -> Self {
        self.config.bounds_method = method;
        self
    }

    /// Bottom-k early-stop parameter for BSRBK.
    pub fn bk(mut self, bk: usize) -> Self {
        self.config.bk = bk;
        self
    }

    /// Fixed budget of the naive `N` baseline.
    pub fn naive_samples(mut self, t: u64) -> Self {
        self.config.naive_samples = t;
        self
    }

    /// Hard cap on any computed sample size.
    pub fn max_samples(mut self, cap: u64) -> Self {
        self.config.max_samples = Some(cap);
        self
    }

    /// Worker threads for the samplers. Defaults to the machine's
    /// available parallelism; results do not depend on the choice.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Pins the samplers' superblock width instead of letting the
    /// engine plan it per pass; results do not depend on the choice
    /// (see [`VulnConfig::block_words`]).
    pub fn block_words(mut self, width: BlockWords) -> Self {
        self.config.block_words = Some(width);
        self
    }

    /// Traversal direction policy for the forward samplers; results do
    /// not depend on the choice (see [`VulnConfig::direction`]).
    pub fn direction(mut self, direction: Direction) -> Self {
        self.config.direction = direction;
        self
    }

    /// Runs the session on a cache-relabeled copy of the graph: nodes
    /// are renumbered by `order` (hubs and BFS-neighbors get adjacent
    /// ids) so the samplers' hot adjacency walks become
    /// cache-sequential, and every query's `top_k` is mapped back to
    /// the caller's original node ids — the API is label-transparent.
    ///
    /// Unlike [`DetectorBuilder::direction`] and
    /// [`DetectorBuilder::block_words`], relabeling is *not*
    /// answer-preserving at the bit level: the relabeled graph has
    /// different canonical edge ids and therefore different coin
    /// streams, so sampled scores differ within the same `(ε, δ)`
    /// contract (see `ugraph::relabel` for the determinism contract —
    /// the relabeling itself is fully deterministic).
    pub fn relabel(mut self, order: NodeOrder) -> Self {
        self.relabel = Some(order);
        self
    }

    /// Builds the session.
    pub fn build(self) -> Result<Detector> {
        let mut config = self.config;
        config.threads = self.threads.unwrap_or_else(default_threads).max(1);
        let (graph, relabel) = match self.relabel {
            None => (self.graph, None),
            Some(order) => {
                let (relabeled, map) = self.graph.relabeled(order);
                (Arc::new(relabeled), Some(map))
            }
        };
        Ok(Detector {
            epochs: GraphEpochs::new(graph),
            config,
            state: EngineState::default(),
            relabel,
        })
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Cumulative cache counters for a whole session.
///
/// Under concurrent use the counters are maintained with relaxed
/// atomics: totals are exact once the session is quiescent, and a
/// snapshot taken mid-traffic is a consistent-enough view for
/// monitoring (each counter is individually accurate; cross-counter
/// invariants may be momentarily off by in-flight queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Queries answered (batch requests count individually).
    pub queries: u64,
    /// Possible worlds freshly sampled.
    pub samples_drawn: u64,
    /// Possible worlds served from cache instead of being re-sampled.
    pub samples_reused: u64,
    /// Bound vectors computed.
    pub bounds_computed: u64,
    /// Bound-vector cache hits.
    pub bounds_reused: u64,
    /// Candidate reductions computed.
    pub reductions_computed: u64,
    /// Candidate-reduction cache hits.
    pub reductions_reused: u64,
    /// Coin tables built, including rebuilds after a probability update
    /// invalidated the cached one.
    pub coin_tables_built: u64,
    /// Uniform 64-bit words synthesized by the counter-RNG coin
    /// generator (the raw materialization cost).
    pub coin_words_synthesized: u64,
    /// Edge lane-words the frontier-lazy materialization never had to
    /// synthesize (the lazy win, in words).
    pub lazy_edge_words_skipped: u64,
    /// Superblocks materialized across all sampling passes (one per
    /// `W·64`-world unit; width-1 blocks count too).
    pub superblocks_evaluated: u64,
    /// Widest superblock (in 64-lane words) any pass of the session ran
    /// on — 0 until a sampling pass executes.
    pub widest_block_words: usize,
    /// Times a query blocked on session state another query was holding
    /// (an in-flight single-flight build, or a sample stream mid-draw).
    /// Best-effort: brief reader/reader contention can count too.
    pub cache_waits: u64,
    /// Builds avoided by single-flight deduplication: the query wanted
    /// a value another query was already computing, waited, and shared
    /// the result instead of redoing the work.
    pub builds_deduped: u64,
    /// Most `detect`/`detect_many` calls ever in flight at once — the
    /// session's observed concurrency level (1 under serial use).
    pub concurrent_peak: u64,
    /// Frontier steps the forward samplers ran as sparse push
    /// expansions (see [`Direction`]).
    pub push_steps: u64,
    /// Frontier steps the forward samplers ran as dense pull sweeps.
    pub pull_steps: u64,
    /// Times an [`Auto`](Direction::Auto) traversal changed direction
    /// between consecutive frontier steps of one superblock.
    pub direction_switches: u64,
    /// Queries that returned a **degraded** answer: a deadline, token,
    /// or explicit `sample_cap` cut sampling short of its ε-derived
    /// budget (see [`DetectResponse::degraded`]).
    pub queries_degraded: u64,
    /// Queries cancelled before a single sample was drawn
    /// ([`VulnError::Cancelled`](crate::VulnError::Cancelled)); these do
    /// not count as `queries`.
    pub queries_cancelled: u64,
    /// Requests a serving layer refused under load instead of queueing
    /// (see [`Detector::note_shed`]).
    pub requests_shed: u64,
    /// Queries in flight at the moment of the snapshot — a gauge, not a
    /// monotone counter.
    pub in_flight: u64,
    /// Whether the session runs on a cache-relabeled copy of the graph
    /// (see [`DetectorBuilder::relabel`]).
    pub relabel_applied: bool,
    /// Current epoch — 0 for the base graph, +1 per committed
    /// [`Detector::apply_delta`]. A gauge, not a counter.
    pub epoch: u64,
    /// Probability version of the current live graph (a gauge; each
    /// delta item bumps it once).
    pub graph_version: u64,
    /// Delta batches committed by [`Detector::apply_delta`].
    pub deltas_applied: u64,
    /// Cached structures that **survived** a delta by being patched or
    /// re-stamped in place: the coin table, repaired bound vectors, and
    /// sample streams whose touch ledger cleared them.
    pub caches_revalidated: u64,
    /// Cached structures a delta dropped because its dirty set touched
    /// them (rebuilt lazily by the next query that needs them).
    pub caches_invalidated: u64,
}

/// Lock-free session totals (the source of [`SessionStats`] snapshots).
#[derive(Debug, Default)]
struct SessionTotals {
    queries: AtomicU64,
    samples_drawn: AtomicU64,
    samples_reused: AtomicU64,
    bounds_computed: AtomicU64,
    bounds_reused: AtomicU64,
    reductions_computed: AtomicU64,
    reductions_reused: AtomicU64,
    coin_tables_built: AtomicU64,
    coin_words_synthesized: AtomicU64,
    lazy_edge_words_skipped: AtomicU64,
    superblocks_evaluated: AtomicU64,
    widest_block_words: AtomicUsize,
    cache_waits: AtomicU64,
    builds_deduped: AtomicU64,
    concurrent_peak: AtomicU64,
    in_flight: AtomicU64,
    push_steps: AtomicU64,
    pull_steps: AtomicU64,
    direction_switches: AtomicU64,
    queries_degraded: AtomicU64,
    queries_cancelled: AtomicU64,
    requests_shed: AtomicU64,
    deltas_applied: AtomicU64,
    caches_revalidated: AtomicU64,
    caches_invalidated: AtomicU64,
}

impl SessionTotals {
    fn add(counter: &AtomicU64, n: u64) {
        // ORDERING: Relaxed — independent monotone stat counters; no
        // reader infers anything from one counter about another.
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Marks a query in flight and tracks the concurrency high-water
    /// mark; the guard un-marks on drop (including error paths).
    fn enter(&self) -> InFlightGuard<'_> {
        // ORDERING: AcqRel — each RMW must observe every prior
        // enter/exit so `now` (and therefore the recorded peak) is the
        // true momentary concurrency, not a stale undercount.
        let now = self.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        self.concurrent_peak.fetch_max(now, Ordering::AcqRel);
        InFlightGuard(self)
    }

    fn snapshot(&self) -> SessionStats {
        SessionStats {
            // ORDERING: Relaxed — the snapshot is advisory; each
            // counter is independently monotone and the stats contract
            // promises no cross-counter consistency.
            queries: self.queries.load(Ordering::Relaxed),
            samples_drawn: self.samples_drawn.load(Ordering::Relaxed),
            samples_reused: self.samples_reused.load(Ordering::Relaxed),
            bounds_computed: self.bounds_computed.load(Ordering::Relaxed),
            bounds_reused: self.bounds_reused.load(Ordering::Relaxed),
            reductions_computed: self.reductions_computed.load(Ordering::Relaxed),
            reductions_reused: self.reductions_reused.load(Ordering::Relaxed),
            coin_tables_built: self.coin_tables_built.load(Ordering::Relaxed),
            coin_words_synthesized: self.coin_words_synthesized.load(Ordering::Relaxed),
            lazy_edge_words_skipped: self.lazy_edge_words_skipped.load(Ordering::Relaxed),
            superblocks_evaluated: self.superblocks_evaluated.load(Ordering::Relaxed),
            widest_block_words: self.widest_block_words.load(Ordering::Relaxed),
            cache_waits: self.cache_waits.load(Ordering::Relaxed),
            builds_deduped: self.builds_deduped.load(Ordering::Relaxed),
            concurrent_peak: self.concurrent_peak.load(Ordering::Relaxed),
            push_steps: self.push_steps.load(Ordering::Relaxed),
            pull_steps: self.pull_steps.load(Ordering::Relaxed),
            direction_switches: self.direction_switches.load(Ordering::Relaxed),
            queries_degraded: self.queries_degraded.load(Ordering::Relaxed),
            queries_cancelled: self.queries_cancelled.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            caches_revalidated: self.caches_revalidated.load(Ordering::Relaxed),
            caches_invalidated: self.caches_invalidated.load(Ordering::Relaxed),
            // ORDERING: Relaxed — a momentary gauge; the monitoring
            // reader draws no cross-thread conclusions from it.
            in_flight: self.in_flight.load(Ordering::Relaxed),
            // Per-session facts and epoch gauges, not atomic counters;
            // `Detector::session_stats` fills them in.
            relabel_applied: false,
            epoch: 0,
            graph_version: 0,
        }
    }
}

struct InFlightGuard<'a>(&'a SessionTotals);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        // ORDERING: AcqRel — pairs with the RMWs in `enter` so the
        // in-flight count stays exact across all interleavings.
        self.0.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Cap on cached bound maintainers (each owns a graph copy plus its
/// level stacks). Keys are `(z, method)` — normally one per session —
/// so the cap only guards hostile per-request `z` diversity.
const MAX_BOUND_MAINTAINERS: usize = 16;

/// Session caches (bounds, reductions, sample streams) plus counters —
/// every cell safe to reach from many query threads at once (see the
/// [`cache`] module docs for the concurrency model).
///
/// The bounds and reduction memo keys lead with the graph's probability
/// version: a committed delta makes every stale entry unreachable by
/// construction, so an old-epoch query racing a commit can never
/// publish a value a new-epoch query would read.
#[derive(Debug, Default)]
struct EngineState {
    bounds: FlightMap<(u64, usize, BoundsMethod), BoundsPair>,
    reductions: FlightMap<(u64, usize, usize, BoundsMethod), CandidateReduction>,
    /// The incremental maintainers behind every cached bounds entry,
    /// keyed `(z, method)`: a delta repairs the dirty z-ball here and
    /// republishes into `bounds` instead of recomputing from scratch.
    inc_bounds: std::sync::Mutex<BTreeMap<(usize, BoundsMethod), IncrementalBounds>>,
    forward: StreamMap<u64>,
    reverse: StreamMap<(u64, Vec<u32>)>,
    coins: std::sync::Mutex<CoinCache>,
    /// True while a query holds `coins` for a table (re)build — lets a
    /// blocked `coin_table` call tell a single-flight join from warm
    /// lock contention (see [`EngineCtx::coin_table`]).
    coins_building: std::sync::atomic::AtomicBool,
    totals: SessionTotals,
}

impl EngineState {
    /// Revalidates every session cache for the committed swap
    /// `prev → next`. Runs under the epoch commit lock; returns
    /// `(revalidated, invalidated)`.
    fn revalidate(
        &self,
        prev: &UncertainGraph,
        next: &UncertainGraph,
        delta: &GraphDelta,
        dirty_nodes: &[u32],
        dirty_edges: &[u32],
    ) -> (u64, u64) {
        let mut revalidated = 0u64;
        let mut invalidated = 0u64;

        // Coin table: thresholds are per-item pure, so only the dirty
        // items re-quantize (bit-identical to a rebuild).
        match lock_tracked(&self.coins).0.patch(prev, next, dirty_nodes, dirty_edges) {
            Some(true) => revalidated += 1,
            Some(false) => invalidated += 1,
            None => {}
        }

        // Bounds: repair each maintainer's dirty z-ball, then republish
        // under the next version's key. Collected first and inserted
        // after the maintainer lock drops — queries acquire slot locks
        // before the maintainer lock, so holding both here could
        // deadlock.
        let mut repaired: Vec<((u64, usize, BoundsMethod), BoundsPair)> = Vec::new();
        {
            let (mut maintainers, _) = lock_tracked(&self.inc_bounds);
            maintainers.retain(|&(z, method), inc| {
                // A maintainer from a lagging old-epoch build cannot be
                // repaired across the unobserved gap; drop it.
                if inc.graph().version() != prev.version() {
                    invalidated += 1;
                    return false;
                }
                let applied = delta
                    .self_risk
                    .iter()
                    .all(|&(v, ps)| inc.update_self_risk(NodeId(v), ps).is_ok())
                    && delta
                        .edge_prob
                        .iter()
                        .all(|&(e, p)| inc.update_edge_prob(EdgeId(e), p).is_ok());
                if !applied {
                    invalidated += 1;
                    return false;
                }
                let pair = (inc.lower().to_vec(), inc.upper().to_vec());
                repaired.push(((next.version(), z, method), pair));
                revalidated += 1;
                true
            });
        }
        let dropped = self.bounds.retain(|&(version, _, _)| version == next.version());
        invalidated += dropped.saturating_sub(repaired.len() as u64);
        for (key, pair) in repaired {
            self.bounds.insert(&key, pair);
        }

        // Reductions are cheap derivations of the bounds: drop stale
        // versions and let the next query rebuild from the repaired
        // vectors.
        invalidated += self.reductions.retain(|&(version, ..)| version == next.version());

        // Sample streams: node coin words are synthesized for every
        // node of every superblock, so any self-risk change invalidates
        // all of them; an edge-only delta keeps exactly the streams
        // whose ledger proves no draw ever materialized a dirty edge.
        // Locking the cell waits out in-flight draws, so the ledger is
        // complete when inspected, and survivors are re-stamped to the
        // next version under the same lock.
        let all_dirty = !dirty_nodes.is_empty();
        let mut verdict = |cell: &Arc<cache::StreamCell>| -> bool {
            let (mut cache, _) = lock_tracked(&cell.cache);
            match cache.graph_version {
                // Never drawn into: nothing to validate or count.
                None => true,
                Some(version)
                    if version == prev.version()
                        && !all_dirty
                        && !cell.ledger_intersects(dirty_edges) =>
                {
                    cache.graph_version = Some(next.version());
                    revalidated += 1;
                    true
                }
                Some(_) => {
                    invalidated += 1;
                    false
                }
            }
        };
        self.forward.retain(&mut verdict);
        self.reverse.retain(&mut verdict);

        (revalidated, invalidated)
    }
}

/// What [`Algorithm`] implementations see of a session: the graph, the
/// resolved configuration, and cache accessors that record usage.
///
/// One `EngineCtx` exists per query, on the query's stack: the
/// mutability (`&mut self` accessors) is the query's own stat
/// accumulator, while all shared session state behind `state` is
/// reached through interior-concurrent cells.
pub struct EngineCtx<'a> {
    graph: &'a UncertainGraph,
    config: &'a VulnConfig,
    state: &'a EngineState,
    request: EngineStats,
    // First-access guards: a request that computes bounds and then reaches
    // them again through the cache did not "reuse" session state.
    bounds_accessed: bool,
    reduction_accessed: bool,
    // False during batch planning: cache traffic that only sizes budgets
    // must not show up in the session or per-request counters.
    record_usage: bool,
    // The request's effective cancellation signal: polled by the stream
    // draws so a deadline can cut a pass at a chunk boundary.
    cancel: Option<CancelToken>,
    // The request's draw cap (see `DetectRequest::sample_cap`): caps the
    // worlds a stream draw materializes without changing any budget.
    sample_cap: Option<u64>,
}

impl<'a> EngineCtx<'a> {
    /// The session's graph.
    pub fn graph(&self) -> &'a UncertainGraph {
        self.graph
    }

    /// The session's resolved configuration.
    pub fn config(&self) -> &VulnConfig {
        self.config
    }

    /// Records a single-flight join (this query waited for another
    /// query's in-flight build and shared its result).
    fn note_join(&mut self) {
        if self.record_usage {
            SessionTotals::add(&self.state.totals.cache_waits, 1);
            SessionTotals::add(&self.state.totals.builds_deduped, 1);
        }
    }

    /// Single-flight lookup accounting shared by every memo layer: a
    /// build counts as computed; a hit (or join) on the request's first
    /// access marks the layer reused; a join additionally counts
    /// wait + dedup. One implementation so the layers cannot drift.
    fn note_flight(&mut self, flight: Flight, first_access: bool, layer: MemoLayer) {
        let state = self.state;
        match flight {
            Flight::Built => {
                let computed = match layer {
                    MemoLayer::Bounds => &state.totals.bounds_computed,
                    MemoLayer::Reductions => &state.totals.reductions_computed,
                };
                SessionTotals::add(computed, 1);
            }
            Flight::Hit | Flight::Joined => {
                if first_access && self.record_usage {
                    match layer {
                        MemoLayer::Bounds => {
                            self.request.bounds_reused = true;
                            SessionTotals::add(&state.totals.bounds_reused, 1);
                        }
                        MemoLayer::Reductions => {
                            self.request.reduction_reused = true;
                            SessionTotals::add(&state.totals.reductions_reused, 1);
                        }
                    }
                }
                if flight == Flight::Joined {
                    self.note_join();
                }
            }
        }
    }

    /// Bound vectors for the session's `(order, method)`, computed once
    /// per epoch (single-flight under concurrent misses).
    ///
    /// The build runs through [`IncrementalBounds`] and parks the
    /// maintainer in the session, so a later [`Detector::apply_delta`]
    /// repairs the dirty z-ball instead of recomputing — and the
    /// repaired vectors are bit-identical to what this cold path would
    /// produce on the post-delta graph.
    pub fn bounds(&mut self) -> Arc<BoundsPair> {
        let first_access = !self.bounds_accessed;
        self.bounds_accessed = true;
        let (z, method) = (self.config.bound_order, self.config.bounds_method);
        let key = (self.graph.version(), z, method);
        let (graph, state) = (self.graph, self.state);
        let (pair, flight) = self.state.bounds.get_or_build(&key, || {
            let inc = IncrementalBounds::new(graph.clone(), z, method);
            let pair = (inc.lower().to_vec(), inc.upper().to_vec());
            let (mut maintainers, _) = lock_tracked(&state.inc_bounds);
            if maintainers.len() < MAX_BOUND_MAINTAINERS || maintainers.contains_key(&(z, method)) {
                maintainers.insert((z, method), inc);
            }
            pair
        });
        self.note_flight(flight, first_access, MemoLayer::Bounds);
        pair
    }

    /// Candidate reduction (Algorithm 4) for `k`, computed once per
    /// epoch and `k` (single-flight under concurrent misses).
    pub fn reduction(&mut self, k: usize) -> Arc<CandidateReduction> {
        let first_access = !self.reduction_accessed;
        self.reduction_accessed = true;
        let key = (self.graph.version(), k, self.config.bound_order, self.config.bounds_method);
        // Probe before touching bounds: a cached reduction must not
        // pull the bound vectors (pre-0.4 behavior, preserved).
        if let Some((hit, joined)) = self.state.reductions.get(&key) {
            let flight = if joined { Flight::Joined } else { Flight::Hit };
            self.note_flight(flight, first_access, MemoLayer::Reductions);
            return hit;
        }
        let bounds = self.bounds();
        let (reduction, flight) =
            self.state.reductions.get_or_build(&key, || reduce_candidates(&bounds.0, &bounds.1, k));
        self.note_flight(flight, first_access, MemoLayer::Reductions);
        reduction
    }

    /// The session's [`CoinTable`], built on first use and rebuilt
    /// whenever the graph's probability version changes (so a stale
    /// table can never serve old thresholds). Concurrent first uses
    /// build once: the cache mutex is held across the build, and the
    /// `coins_building` marker distinguishes "waited on a real build"
    /// (a single-flight join) from warm-lookup lock contention, which
    /// counts as neither a wait nor a dedup.
    pub fn coin_table(&mut self) -> Arc<CoinTable> {
        // ORDERING: Acquire pairs with the Release store below; the
        // marker only classifies a wait as a single-flight join — the
        // table itself is transferred under the cache mutex.
        let build_seen = self.state.coins_building.load(Ordering::Acquire);
        let (mut coins, waited) = lock_tracked(&self.state.coins);
        if let Some(table) = coins.peek(self.graph) {
            drop(coins);
            if waited && build_seen {
                self.note_join();
            }
            return table;
        }
        // ORDERING: Release pairs with the Acquire probe above (see
        // there); the guard clears the marker with the same pairing.
        self.state.coins_building.store(true, Ordering::Release);
        let building_reset = MarkerReset(&self.state.coins_building);
        let (table, _) = coins.get(self.graph);
        drop(building_reset);
        drop(coins);
        SessionTotals::add(&self.state.totals.coin_tables_built, 1);
        table
    }

    /// The superblock width a `budget`-world sampling pass runs on: the
    /// session's [`VulnConfig::block_words`] override if set, otherwise
    /// the budget/thread-aware planner ([`BlockWords::plan`]) — big
    /// fixed-budget passes go wide, small follow-ups stay narrow. Width
    /// never changes counts, only throughput.
    pub fn plan_block_words(&self, budget: u64) -> BlockWords {
        self.config.block_words.unwrap_or_else(|| BlockWords::plan(budget, self.config.threads))
    }

    /// Cumulative forward-sample counts over ids `0..t` for `seed`,
    /// served through the session's prefix-extendable cache. The
    /// stream's cell is locked across the draw, so a concurrent query
    /// wanting the same prefix blocks and then reuses it (single-flight
    /// sampling).
    ///
    /// The request's `sample_cap` truncates `t` here (a capped replay
    /// serves exactly the degraded prefix), and its cancellation token
    /// can cut the draw at a chunk boundary — either way the returned
    /// counts report how many samples they actually cover via
    /// [`DefaultCounts::samples`].
    pub fn forward_counts(&mut self, t: u64, seed: u64) -> Arc<DefaultCounts> {
        let t = self.sample_cap.map_or(t, |cap| t.min(cap));
        let coins = self.coin_table();
        let (graph, threads) = (self.graph, self.config.threads);
        let direction = self.config.direction;
        let cancel = self.cancel.clone();
        let stream = self.state.forward.stream(seed);
        self.stream_counts(&stream, t, |range, fitted, ledger| {
            parallel_forward_counts_range_width_traced(
                graph,
                &coins,
                range,
                seed,
                threads,
                fitted,
                direction,
                cancel.as_ref(),
                ledger,
            )
        })
    }

    /// Cumulative reverse-sample counts over ids `0..t` for
    /// `(seed, candidates)`, served through the session's
    /// prefix-extendable cache (locked across the draw, like
    /// [`EngineCtx::forward_counts`]). Counts are indexed by candidate
    /// position.
    pub fn reverse_counts(
        &mut self,
        candidates: &[NodeId],
        t: u64,
        seed: u64,
    ) -> Arc<DefaultCounts> {
        let t = self.sample_cap.map_or(t, |cap| t.min(cap));
        let coins = self.coin_table();
        let (graph, threads) = (self.graph, self.config.threads);
        let cancel = self.cancel.clone();
        let key = (seed, candidates.iter().map(|v| v.0).collect::<Vec<u32>>());
        let stream = self.state.reverse.stream(key);
        self.stream_counts(&stream, t, |range, fitted, ledger| {
            parallel_reverse_counts_range_width_traced(
                graph,
                &coins,
                candidates,
                range,
                seed,
                threads,
                fitted,
                cancel.as_ref(),
                ledger,
            )
        })
    }

    /// The shared stream-cell protocol behind
    /// [`EngineCtx::forward_counts`]/[`EngineCtx::reverse_counts`]:
    /// probe the `drawing` marker, lock the cell, serve through the
    /// prefix cache, and account waits/coins/width. `draw` materializes
    /// one raw id range at the fitted width.
    ///
    /// Protocol invariants (correctness-sensitive for the wait/dedup
    /// counters, so they live in exactly one place):
    /// * the marker is read *before* the lock — that snapshot is what
    ///   distinguishes "joined an in-flight draw" from warm lock
    ///   contention;
    /// * the marker flips *inside* the serve closure, which only runs
    ///   when worlds are actually materialized, so a warm hit never
    ///   marks;
    /// * the guard clears the marker even on unwind.
    ///
    /// `fit_width` narrows the planned width when a drawn gap is too
    /// small to keep every thread busy (e.g. a short cache extension);
    /// the stats report the width that executed, not the plan.
    ///
    /// Epoch handling: the cell's cached prefix carries the graph
    /// version it is valid for. A query whose pinned snapshot has a
    /// *different* version (it straddles a delta commit) serves itself
    /// from a detached scratch cache instead — its answer stays
    /// bit-identical to a cold run on its snapshot, and it can neither
    /// corrupt the shared prefix nor pollute the survival ledger.
    fn stream_counts(
        &mut self,
        stream: &cache::StreamCell,
        t: u64,
        mut draw: impl FnMut(
            std::ops::Range<u64>,
            BlockWords,
            Option<&TouchLedger>,
        ) -> (DefaultCounts, CoinUsage),
    ) -> Arc<DefaultCounts> {
        let threads = self.config.threads;
        let width = self.plan_block_words(t);
        let (version, num_edges) = (self.graph.version(), self.graph.num_edges());
        // ORDERING: Acquire pairs with the Release store in the serve
        // closure; the marker only classifies this query's wait — all
        // counts are transferred under the cell mutex.
        let draw_in_flight = stream.drawing.load(Ordering::Acquire);
        let (mut cache, waited) = lock_tracked(&stream.cache);
        let stale = cache.graph_version.is_some_and(|v| v != version);
        let ledger = (!stale).then(|| stream.ledger(num_edges));
        let mut scratch = SampleCache::default();
        let serve_cache: &mut SampleCache = if stale {
            &mut scratch
        } else {
            cache.graph_version = Some(version);
            &mut cache
        };
        let mut usage = CoinUsage::default();
        let mut used_width: Option<BlockWords> = None;
        let drawing_reset = MarkerReset(&stream.drawing);
        let (counts, drawn, reused) = serve_cache.serve(t, width.lanes(), |range| {
            // ORDERING: Release pairs with the Acquire probe above —
            // set only when worlds actually materialize.
            stream.drawing.store(true, Ordering::Release);
            let fitted = fit_width(&range, width, threads);
            used_width = Some(used_width.map_or(fitted, |w| w.max(fitted)));
            let (c, u) = draw(range, fitted, ledger);
            usage.merge(&u);
            c
        });
        drop(drawing_reset);
        drop(cache);
        self.note_stream_wait(waited, draw_in_flight, drawn);
        self.note_usage(drawn, reused);
        self.note_coins(&usage);
        if let Some(width) = used_width {
            self.note_width(width);
        }
        counts
    }

    /// Records worlds an algorithm sampled outside the cache (BSRBK's
    /// adaptive pass).
    pub fn note_adaptive_samples(&mut self, drawn: u64) {
        self.note_usage(drawn, 0);
    }

    /// Records coin-materialization cost (words synthesized, lazy edge
    /// words skipped, superblocks evaluated) against the request and
    /// session counters.
    pub fn note_coins(&mut self, usage: &CoinUsage) {
        self.request.coin_words_synthesized += usage.words;
        self.request.lazy_edge_words_skipped += usage.edge_words_skipped;
        self.request.superblocks += usage.superblocks;
        self.request.push_steps += usage.push_steps;
        self.request.pull_steps += usage.pull_steps;
        self.request.direction_switches += usage.direction_switches;
        SessionTotals::add(&self.state.totals.coin_words_synthesized, usage.words);
        SessionTotals::add(&self.state.totals.lazy_edge_words_skipped, usage.edge_words_skipped);
        SessionTotals::add(&self.state.totals.superblocks_evaluated, usage.superblocks);
        SessionTotals::add(&self.state.totals.push_steps, usage.push_steps);
        SessionTotals::add(&self.state.totals.pull_steps, usage.pull_steps);
        SessionTotals::add(&self.state.totals.direction_switches, usage.direction_switches);
    }

    /// Records the superblock width a sampling pass ran on (the widest
    /// pass wins within a request and across the session).
    pub fn note_width(&mut self, width: BlockWords) {
        self.request.block_words = self.request.block_words.max(width.words());
        // ORDERING: Relaxed — a monotone high-water stat; no other
        // memory depends on observing it.
        self.state.totals.widest_block_words.fetch_max(width.words(), Ordering::Relaxed);
    }

    /// Stream-cell contention bookkeeping. `waited` means the query
    /// blocked on the cell lock; a *deduplicated build* is only counted
    /// when the cell's `drawing` marker showed an actual materialization
    /// in flight when this query arrived AND the query then drew
    /// nothing itself — plain lock contention between warm cache hits
    /// counts as a wait, never as a dedup.
    fn note_stream_wait(&mut self, waited: bool, draw_in_flight: bool, drawn: u64) {
        if waited && self.record_usage {
            SessionTotals::add(&self.state.totals.cache_waits, 1);
            if draw_in_flight && drawn == 0 {
                SessionTotals::add(&self.state.totals.builds_deduped, 1);
            }
        }
    }

    fn note_usage(&mut self, drawn: u64, reused: u64) {
        self.request.samples_drawn += drawn;
        self.request.samples_reused += reused;
        SessionTotals::add(&self.state.totals.samples_drawn, drawn);
        SessionTotals::add(&self.state.totals.samples_reused, reused);
    }
}

/// Which single-flight memo layer a lookup touched (for
/// [`EngineCtx::note_flight`]'s shared accounting).
#[derive(Clone, Copy)]
enum MemoLayer {
    Bounds,
    Reductions,
}

/// How a request will sample, for batch planning: requests with equal
/// keys share one stream and extend each other's prefixes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum PlanKey {
    /// Forward sampling over all nodes (N, SN).
    Forward { seed: u64 },
    /// Reverse sampling over a fixed candidate set (SR, BSR).
    Reverse { seed: u64, candidates: Vec<u32> },
    /// Adaptive or sampling-free: nothing to share (BSRBK, degenerate
    /// BSR). The index keeps each solo request in its own group.
    Solo { index: usize },
}

/// The session's live-graph cell: the current epoch's snapshot plus the
/// epoch counter. Queries pin an `Arc` clone at entry and run to
/// completion on it; [`Detector::apply_delta`] swaps the next snapshot
/// in under the cell mutex, which doubles as the session's **commit
/// lock** — held across swap *and* cache revalidation, so deltas
/// serialize and a pin always observes a fully revalidated epoch.
#[derive(Debug)]
struct GraphEpochs {
    live: std::sync::Mutex<Arc<UncertainGraph>>,
    /// Epochs committed: 0 for the base graph, +1 per applied delta.
    epoch: AtomicU64,
}

impl GraphEpochs {
    fn new(graph: Arc<UncertainGraph>) -> Self {
        GraphEpochs { live: std::sync::Mutex::new(graph), epoch: AtomicU64::new(0) }
    }

    /// Pins the current snapshot (a brief lock around an `Arc` clone).
    fn pin(&self) -> Arc<UncertainGraph> {
        Arc::clone(&lock_tracked(&self.live).0)
    }

    /// Pins the current snapshot together with its epoch number. The
    /// epoch is read under the live lock, where `apply_delta` bumps it,
    /// so the pair is always consistent.
    fn pin_with_epoch(&self) -> (Arc<UncertainGraph>, u64) {
        let (live, _) = lock_tracked(&self.live);
        // ORDERING: Acquire pairs with the Release bump in
        // `Detector::apply_delta`; the live lock already serializes
        // against the bump, so this only needs to carry the epoch
        // value, not extra publication.
        (Arc::clone(&live), self.epoch.load(Ordering::Acquire))
    }

    fn epoch(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release bump in
        // `Detector::apply_delta`: an observer that sees epoch `e` also
        // sees every cache revalidation that commit published.
        self.epoch.load(Ordering::Acquire)
    }
}

/// What one [`Detector::apply_delta`] commit did: the new epoch plus
/// the cache-revalidation tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Epoch after the commit (the base graph is epoch 0).
    pub epoch: u64,
    /// Probability version of the new live graph.
    pub graph_version: u64,
    /// Cached structures that survived by being patched or re-stamped
    /// in place (coin table, repaired bounds, surviving streams).
    pub revalidated: u64,
    /// Cached structures dropped because the dirty set touched them.
    pub invalidated: u64,
}

/// A query session that owns one shared graph. See the
/// [module docs](self).
///
/// `Detector` is `Send + Sync`: share one session across threads (via
/// `Arc<Detector>` or scoped borrows) and call [`Detector::detect`] /
/// [`Detector::detect_many`] from all of them — answers are
/// bit-identical to serial execution, and the caches amortize across
/// every client.
#[derive(Debug)]
pub struct Detector {
    epochs: GraphEpochs,
    config: VulnConfig,
    state: EngineState,
    /// Present iff the session runs on a relabeled copy of the caller's
    /// graph: maps caller ids (`old`) to working ids (`new`) and back.
    relabel: Option<NodeMap>,
}

// Compile-time proof of the 0.4 concurrency contract: a `Detector`
// can be shared across threads by reference.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Detector>();
};

impl Detector {
    /// Starts building a session for `graph` — accepts
    /// `&UncertainGraph` (clones), `UncertainGraph` (moves), or
    /// `Arc<UncertainGraph>` (shares); see [`IntoSharedGraph`].
    pub fn builder(graph: impl IntoSharedGraph) -> DetectorBuilder {
        DetectorBuilder {
            graph: graph.into_shared(),
            config: VulnConfig::default(),
            threads: None,
            relabel: None,
        }
    }

    /// A pinned snapshot of the session's current working graph. Under
    /// [`DetectorBuilder::relabel`] this is the *relabeled* copy —
    /// translate ids through [`Detector::node_map`] when comparing
    /// against the caller's original labeling. The snapshot stays
    /// immutable (and valid) even as later [`Detector::apply_delta`]
    /// calls move the session to new epochs.
    pub fn graph(&self) -> Arc<UncertainGraph> {
        self.epochs.pin()
    }

    /// The relabeling permutation, when the session was built with
    /// [`DetectorBuilder::relabel`] (`None` otherwise). `top_k` answers
    /// are already mapped back to original ids; the map is exposed for
    /// callers that inspect the working graph directly.
    pub fn node_map(&self) -> Option<&NodeMap> {
        self.relabel.as_ref()
    }

    /// The session's current graph snapshot, shareable with other
    /// sessions or threads without copying (same as
    /// [`Detector::graph`]).
    pub fn shared_graph(&self) -> Arc<UncertainGraph> {
        self.epochs.pin()
    }

    /// The session's current epoch: 0 for the base graph, +1 per
    /// committed [`Detector::apply_delta`].
    pub fn epoch(&self) -> u64 {
        self.epochs.epoch()
    }

    /// The session's resolved configuration (threads already defaulted).
    pub fn config(&self) -> &VulnConfig {
        &self.config
    }

    /// Cumulative cache counters for the session (a consistent snapshot
    /// of the atomic totals).
    pub fn session_stats(&self) -> SessionStats {
        let mut stats = self.state.totals.snapshot();
        stats.relabel_applied = self.relabel.is_some();
        stats.epoch = self.epochs.epoch();
        stats.graph_version = self.epochs.pin().version();
        stats
    }

    /// Commits a batched probability delta as a new epoch.
    ///
    /// The whole batch validates against the current snapshot before
    /// any item applies — an invalid batch changes nothing (no epoch, no
    /// cache effect). On success the swap is atomic: queries already in
    /// flight finish bit-identically on their pinned pre-delta
    /// snapshot; queries that start afterwards see the new graph and
    /// the *revalidated* caches — the coin table patched in place,
    /// bound vectors repaired through their incremental maintainers,
    /// and every sample stream whose touch ledger proves independence
    /// of the dirty edges carried over. All surviving state is
    /// bit-identical to a cold rebuild against the post-delta graph.
    ///
    /// Deltas address the session's **working graph**: under
    /// [`DetectorBuilder::relabel`], translate node ids through
    /// [`Detector::node_map`] and resolve edge ids against
    /// [`Detector::graph`] first.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<DeltaOutcome> {
        let (mut live, _) = lock_tracked(&self.epochs.live);
        let prev = Arc::clone(&live);
        let mut next = Arc::clone(&live);
        delta.apply(Arc::make_mut(&mut next))?;
        let (dirty_nodes, dirty_edges) = (delta.dirty_nodes(), delta.dirty_edges());
        let (revalidated, invalidated) =
            self.state.revalidate(&prev, &next, delta, &dirty_nodes, &dirty_edges);
        let graph_version = next.version();
        *live = next;
        // ORDERING: Release pairs with the Acquire in `GraphEpochs::epoch`
        // — observers of the new epoch number see the revalidation above.
        let epoch = self.epochs.epoch.fetch_add(1, Ordering::Release) + 1;
        SessionTotals::add(&self.state.totals.deltas_applied, 1);
        SessionTotals::add(&self.state.totals.caches_revalidated, revalidated);
        SessionTotals::add(&self.state.totals.caches_invalidated, invalidated);
        Ok(DeltaOutcome { epoch, graph_version, revalidated, invalidated })
    }

    /// Drops all cached state (bounds, reductions, coin table, sampled
    /// worlds) but keeps the session counters. Subsequent queries
    /// behave like a fresh session — results are identical either way.
    ///
    /// Safe to call while other queries are in flight: an in-flight
    /// query keeps `Arc` snapshots of (and detached cells for) whatever
    /// state it already reached, finishes on them, and returns exactly
    /// what it would have returned without the clear; only queries that
    /// *start* afterwards see a cold cache.
    pub fn clear_cache(&self) {
        self.state.bounds.clear();
        self.state.reductions.clear();
        lock_tracked(&self.state.inc_bounds).0.clear();
        self.state.forward.clear();
        self.state.reverse.clear();
        lock_tracked(&self.state.coins).0.clear();
    }

    /// Precomputes the session's bound vectors (useful before taking
    /// traffic) and returns them.
    pub fn warm_bounds(&self) -> Arc<BoundsPair> {
        let graph = self.epochs.pin();
        self.ctx(&graph).bounds()
    }

    /// A context for one query, borrowing the snapshot the query pinned
    /// at entry (so a concurrent delta commit cannot move the graph out
    /// from under it).
    fn ctx<'a>(&'a self, graph: &'a UncertainGraph) -> EngineCtx<'a> {
        EngineCtx {
            graph,
            config: &self.config,
            state: &self.state,
            request: EngineStats::default(),
            bounds_accessed: false,
            reduction_accessed: false,
            record_usage: true,
            cancel: None,
            sample_cap: None,
        }
    }

    /// A query context carrying one resolved request's cancellation
    /// signal and draw cap into the stream draws.
    fn ctx_for<'a>(
        &'a self,
        graph: &'a UncertainGraph,
        resolved: &ResolvedRequest,
    ) -> EngineCtx<'a> {
        let mut ctx = self.ctx(graph);
        ctx.cancel = resolved.cancel.clone();
        ctx.sample_cap = resolved.sample_cap;
        ctx
    }

    /// Outcome accounting shared by [`Detector::detect`] and
    /// [`Detector::detect_many`]: a completed query counts as a query
    /// (and as degraded when cut short); a query cancelled before any
    /// sample counts only as cancelled.
    fn note_outcome(&self, outcome: &Result<DetectResponse>) {
        match outcome {
            Ok(response) => {
                SessionTotals::add(&self.state.totals.queries, 1);
                if response.degraded {
                    SessionTotals::add(&self.state.totals.queries_degraded, 1);
                }
            }
            Err(crate::VulnError::Cancelled) => {
                SessionTotals::add(&self.state.totals.queries_cancelled, 1);
            }
            Err(_) => {}
        }
    }

    /// Records a request a serving layer refused under load (shed before
    /// ever reaching [`Detector::detect`]), so session stats describe
    /// offered load, not just answered load.
    pub fn note_shed(&self) {
        SessionTotals::add(&self.state.totals.requests_shed, 1);
    }

    /// Maps a request's candidate hint into the working labeling.
    /// Must run *before* [`DetectRequest::resolve`]: the normalized
    /// (sorted, deduplicated) candidate list is part of the
    /// sample-cache key and of the per-sample coin-consumption order,
    /// so it has to be normalized in working ids.
    fn map_request(&self, request: &DetectRequest) -> DetectRequest {
        let mut mapped = request.clone();
        if let (Some(map), Some(hint)) = (&self.relabel, &mut mapped.candidates) {
            for v in hint.iter_mut() {
                if v.index() < map.len() {
                    *v = map.to_new(*v);
                }
                // Out-of-bounds ids pass through untranslated so
                // `resolve` reports the caller's original id.
            }
        }
        mapped
    }

    /// Maps a response's `top_k` back to the caller's original node
    /// ids and stamps the relabel flag.
    fn unmap_response(&self, response: &mut DetectResponse) {
        if let Some(map) = &self.relabel {
            for scored in &mut response.top_k {
                scored.node = map.to_old(scored.node);
            }
            response.engine.relabel_applied = true;
        }
    }

    /// Answers one request. Callable from any number of threads at
    /// once; the answer is bit-identical to a serial run.
    pub fn detect(&self, request: &DetectRequest) -> Result<DetectResponse> {
        let (graph, epoch) = self.epochs.pin_with_epoch();
        let resolved = self.map_request(request).resolve(&graph, &self.config)?;
        let _in_flight = self.state.totals.enter();
        let algo = algorithm(resolved.algorithm);
        let mut ctx = self.ctx_for(&graph, &resolved);
        let outcome = algo.run(&mut ctx, &resolved).map(|mut response| {
            response.engine = ctx.request;
            response.engine.epoch = epoch;
            response.engine.graph_version = graph.version();
            self.unmap_response(&mut response);
            response
        });
        self.note_outcome(&outcome);
        outcome
    }

    /// Answers a batch of requests, sharing one sampling pass per
    /// stream.
    ///
    /// Requests with the same stream (same seed; for reverse sampling
    /// also the same candidate set) are executed in ascending budget
    /// order, so the group draws only `max(tᵢ)` fresh worlds in total.
    /// Responses come back in request order and are bit-identical to
    /// what a lone [`Detector::detect`] call would return.
    ///
    /// Validation is all-or-nothing: if any request is invalid, no
    /// request runs.
    ///
    /// Per-response `bounds_reused`/`reduction_reused` flags describe
    /// session state at the moment each request executes — bounds the
    /// batch planner computed while sizing budgets count as session
    /// state, so even the batch's first reverse-sampling request can
    /// report them reused. Planning itself records no cache usage.
    pub fn detect_many(&self, requests: &[DetectRequest]) -> Result<Vec<DetectResponse>> {
        // One pin for the whole batch: every request (and the planning
        // pass) runs on the same epoch, even mid-commit.
        let (graph, epoch) = self.epochs.pin_with_epoch();
        let resolved: Vec<ResolvedRequest> = requests
            .iter()
            .map(|r| self.map_request(r).resolve(&graph, &self.config))
            .collect::<Result<_>>()?;
        let _in_flight = self.state.totals.enter();

        // Plan each request's stream and budget, then order: groups by
        // first appearance, ascending budget within a group (so later
        // requests extend earlier prefixes instead of redrawing).
        let plans: Vec<(PlanKey, u64)> =
            resolved.iter().enumerate().map(|(i, r)| self.plan(&graph, i, r)).collect();
        let mut first_seen: BTreeMap<&PlanKey, usize> = BTreeMap::new();
        for (i, (key, _)) in plans.iter().enumerate() {
            first_seen.entry(key).or_insert(i);
        }
        let mut order: Vec<usize> = (0..resolved.len()).collect();
        order.sort_by_key(|&i| (first_seen[&plans[i].0], plans[i].1, i));

        let mut responses: Vec<Option<DetectResponse>> = vec![None; resolved.len()];
        for i in order {
            let algo = algorithm(resolved[i].algorithm);
            let mut ctx = self.ctx_for(&graph, &resolved[i]);
            let outcome = algo.run(&mut ctx, &resolved[i]).map(|mut response| {
                response.engine = ctx.request;
                response.engine.epoch = epoch;
                response.engine.graph_version = graph.version();
                self.unmap_response(&mut response);
                response
            });
            self.note_outcome(&outcome);
            responses[i] = Some(outcome?);
        }
        // xlint: allow(panic-hygiene) — the loop above writes `Some`
        // at every index of `order`, a permutation of `0..len`.
        Ok(responses.into_iter().map(|r| r.expect("every request answered")).collect())
    }

    /// Stream key and sample budget for one resolved request. Uses the
    /// session caches (bounds/reductions computed here are reused by the
    /// actual run) but records no usage: planning is bookkeeping, not a
    /// query.
    fn plan(&self, graph: &UncertainGraph, index: usize, req: &ResolvedRequest) -> (PlanKey, u64) {
        let mut ctx = self.ctx(graph);
        ctx.record_usage = false;
        match req.algorithm {
            AlgorithmKind::Naive => {
                (PlanKey::Forward { seed: req.seed }, ctx.config().naive_samples)
            }
            AlgorithmKind::SampledNaive => {
                let t = algorithms::sn_budget(&ctx, req);
                (PlanKey::Forward { seed: req.seed }, t)
            }
            AlgorithmKind::SampleReverse | AlgorithmKind::BoundedSampleReverse => {
                // Same derivation the run will use — see `reverse_plan`.
                let plan = algorithms::reverse_plan(&mut ctx, req);
                if plan.degenerate {
                    return (PlanKey::Solo { index }, 0);
                }
                let ids = plan.candidates.iter().map(|v| v.0).collect();
                (PlanKey::Reverse { seed: req.seed, candidates: ids }, plan.budget)
            }
            AlgorithmKind::BottomK => (PlanKey::Solo { index }, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::VulnError;
    use vulnds_sampling::Xoshiro256pp;

    fn random_graph(n: usize, m: usize, seed: u64) -> UncertainGraph {
        let mut rng = Xoshiro256pp::new(seed);
        let risks: Vec<f64> = (0..n).map(|_| rng.next_f64() * 0.5).collect();
        let mut edges = Vec::with_capacity(m);
        while edges.len() < m {
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            if u != v {
                edges.push((u, v, rng.next_f64() * 0.5));
            }
        }
        ugraph::from_parts(&risks, &edges, ugraph::DuplicateEdgePolicy::KeepMax).unwrap()
    }

    fn session(graph: &UncertainGraph) -> Detector {
        Detector::builder(graph).config(VulnConfig::default().with_seed(77)).build().unwrap()
    }

    #[test]
    fn builder_accepts_every_graph_ownership_shape() {
        let g = random_graph(30, 60, 21);
        let arc = Arc::new(g.clone());
        let by_ref = Detector::builder(&g).seed(1).build().unwrap();
        let by_value = Detector::builder(g.clone()).seed(1).build().unwrap();
        let by_arc = Detector::builder(Arc::clone(&arc)).seed(1).build().unwrap();
        let by_arc_ref = Detector::builder(&arc).seed(1).build().unwrap();
        // Arc-built sessions share the caller's allocation; the others
        // own their own copy.
        assert!(Arc::ptr_eq(&by_arc.shared_graph(), &arc));
        assert!(Arc::ptr_eq(&by_arc_ref.shared_graph(), &arc));
        assert!(!Arc::ptr_eq(&by_ref.shared_graph(), &arc));
        // All four answer identically.
        let req = DetectRequest::new(3, AlgorithmKind::BottomK);
        let reference = by_ref.detect(&req).unwrap();
        for d in [&by_value, &by_arc, &by_arc_ref] {
            assert_eq!(d.detect(&req).unwrap().top_k, reference.top_k);
        }
    }

    #[test]
    fn cold_session_matches_legacy_shims() {
        let g = random_graph(120, 240, 1);
        let cfg = VulnConfig::default().with_seed(77);
        for kind in AlgorithmKind::ALL {
            let legacy = crate::algo::run_one_shot(&g, 6, kind, &cfg);
            let d = session(&g);
            let resp = d.detect(&DetectRequest::new(6, kind)).unwrap();
            assert_eq!(resp.top_k, legacy.top_k, "{kind}");
            assert_eq!(resp.stats.samples_used, legacy.stats.samples_used, "{kind}");
            assert_eq!(resp.stats.sample_budget, legacy.stats.sample_budget, "{kind}");
        }
    }

    #[test]
    fn warm_cache_serves_identical_results_without_redrawing() {
        let g = random_graph(100, 200, 2);
        let d = session(&g);
        for kind in [
            AlgorithmKind::Naive,
            AlgorithmKind::SampledNaive,
            AlgorithmKind::SampleReverse,
            AlgorithmKind::BoundedSampleReverse,
        ] {
            let req = DetectRequest::new(5, kind);
            let cold = d.detect(&req).unwrap();
            let warm = d.detect(&req).unwrap();
            assert_eq!(warm.top_k, cold.top_k, "{kind}");
            assert_eq!(warm.engine.samples_drawn, 0, "{kind}: drew fresh samples when warm");
            assert_eq!(warm.engine.samples_reused, cold.stats.samples_used, "{kind}");
        }
    }

    #[test]
    fn bounds_and_reduction_are_reused_across_k() {
        let g = random_graph(80, 160, 3);
        let d = session(&g);
        let a = d.detect(&DetectRequest::new(3, AlgorithmKind::BoundedSampleReverse)).unwrap();
        assert!(!a.engine.bounds_reused);
        let b = d.detect(&DetectRequest::new(7, AlgorithmKind::BoundedSampleReverse)).unwrap();
        assert!(b.engine.bounds_reused, "bounds must be shared across k");
        assert!(!b.engine.reduction_reused, "different k needs its own reduction");
        let c = d.detect(&DetectRequest::new(7, AlgorithmKind::BottomK)).unwrap();
        assert!(c.engine.reduction_reused, "same k shares the reduction across algorithms");
    }

    #[test]
    fn detect_many_matches_individual_calls_and_draws_fewer_samples() {
        let g = random_graph(100, 200, 4);
        let requests = vec![
            DetectRequest::new(4, AlgorithmKind::SampledNaive),
            DetectRequest::new(8, AlgorithmKind::SampledNaive),
            DetectRequest::new(4, AlgorithmKind::BoundedSampleReverse),
            DetectRequest::new(6, AlgorithmKind::Naive),
        ];
        let batch = session(&g);
        let responses = batch.detect_many(&requests).unwrap();
        assert_eq!(responses.len(), requests.len());

        let mut independent_total = 0u64;
        for (req, resp) in requests.iter().zip(&responses) {
            let solo = session(&g);
            let solo_resp = solo.detect(req).unwrap();
            assert_eq!(solo_resp.top_k, resp.top_k, "batch answer differs for {req:?}");
            independent_total += solo.session_stats().samples_drawn;
        }
        let batch_total = batch.session_stats().samples_drawn;
        assert!(
            batch_total < independent_total,
            "batch drew {batch_total}, independent calls drew {independent_total}"
        );
    }

    #[test]
    fn per_request_overrides_do_not_touch_the_session() {
        let g = random_graph(60, 120, 5);
        let d = session(&g);
        let tight = DetectRequest::new(3, AlgorithmKind::SampledNaive)
            .with_epsilon(0.1)
            .with_delta(0.05)
            .with_seed(123);
        let r1 = d.detect(&tight).unwrap();
        let r2 = d.detect(&DetectRequest::new(3, AlgorithmKind::SampledNaive)).unwrap();
        assert!(r1.stats.sample_budget > r2.stats.sample_budget, "tighter ε must cost more");
        assert_eq!(d.config().seed, 77, "request seed override leaked into the session");
    }

    #[test]
    fn candidate_hint_restricts_reverse_sampling() {
        let g = random_graph(60, 120, 6);
        let d = session(&g);
        let hint: Vec<NodeId> = (0..10).map(NodeId).collect();
        let r = d
            .detect(&DetectRequest::new(2, AlgorithmKind::SampleReverse).with_candidates(hint))
            .unwrap();
        assert!(r.stats.candidates <= 10);
        for s in &r.top_k {
            assert!(s.node.0 < 10, "hint violated: {:?}", s.node);
        }
    }

    #[test]
    fn hint_smaller_than_k_is_rejected() {
        let g = random_graph(60, 120, 11);
        let d = session(&g);
        for kind in [
            AlgorithmKind::SampleReverse,
            AlgorithmKind::BoundedSampleReverse,
            AlgorithmKind::BottomK,
        ] {
            let req = DetectRequest::new(40, kind).with_candidates(vec![NodeId(0), NodeId(1)]);
            assert!(
                matches!(d.detect(&req), Err(VulnError::InvalidParameter(_))),
                "{kind}: undersized hint must be rejected"
            );
            // A hint that covers k (counting bound-verified nodes) still
            // returns exactly k results.
            let ok = DetectRequest::new(2, kind).with_candidates((0..10).map(NodeId).collect());
            assert_eq!(d.detect(&ok).unwrap().top_k.len(), 2, "{kind}");
        }
        // SR has no verified fallback: an empty hint can never cover k.
        let empty = DetectRequest::new(1, AlgorithmKind::SampleReverse).with_candidates(vec![]);
        assert!(matches!(d.detect(&empty), Err(VulnError::InvalidParameter(_))));

        // Hint validation happens at resolve time, so a bad hint anywhere
        // in a batch keeps detect_many all-or-nothing: nothing runs.
        let fresh = session(&g);
        let batch = vec![
            DetectRequest::new(5, AlgorithmKind::SampledNaive),
            DetectRequest::new(5, AlgorithmKind::SampleReverse)
                .with_candidates(vec![NodeId(0), NodeId(1)]),
        ];
        assert!(fresh.detect_many(&batch).is_err());
        assert_eq!(fresh.session_stats().queries, 0);
        assert_eq!(fresh.session_stats().samples_drawn, 0);
    }

    #[test]
    fn unified_errors() {
        let g = random_graph(10, 20, 7);
        let d = session(&g);
        assert!(matches!(
            d.detect(&DetectRequest::new(0, AlgorithmKind::Naive)),
            Err(VulnError::InvalidK { k: 0, n: 10 })
        ));
        assert!(matches!(
            d.detect(&DetectRequest::new(11, AlgorithmKind::Naive)),
            Err(VulnError::InvalidK { k: 11, n: 10 })
        ));
        assert!(matches!(
            d.detect(&DetectRequest::new(2, AlgorithmKind::Naive).with_epsilon(2.0)),
            Err(VulnError::Config(_))
        ));
        assert!(matches!(
            d.detect(
                &DetectRequest::new(2, AlgorithmKind::SampleReverse)
                    .with_candidates(vec![NodeId(99)])
            ),
            Err(VulnError::CandidateOutOfBounds { node: 99, n: 10 })
        ));
        let degenerate =
            Detector::builder(&g).config(VulnConfig::default().with_bk(1)).build().unwrap();
        assert!(matches!(
            degenerate.detect(&DetectRequest::new(2, AlgorithmKind::BottomK)),
            Err(VulnError::InvalidParameter(_))
        ));
        // detect_many is all-or-nothing.
        let d2 = session(&g);
        let reqs = vec![
            DetectRequest::new(2, AlgorithmKind::Naive),
            DetectRequest::new(0, AlgorithmKind::Naive),
        ];
        assert!(d2.detect_many(&reqs).is_err());
        assert_eq!(d2.session_stats().queries, 0, "no request may run on batch failure");
    }

    #[test]
    fn clear_cache_keeps_results_identical() {
        let g = random_graph(80, 160, 8);
        let d = session(&g);
        let req = DetectRequest::new(4, AlgorithmKind::BottomK);
        let a = d.detect(&req).unwrap();
        d.clear_cache();
        let b = d.detect(&req).unwrap();
        assert_eq!(a.top_k, b.top_k);
        assert_eq!(d.session_stats().queries, 2);
        // The second run re-sampled from a cold cache.
        assert_eq!(b.engine.samples_reused, 0);
    }

    #[test]
    fn concurrent_same_stream_queries_draw_once() {
        let g = random_graph(100, 200, 15);
        let d = session(&g);
        let req = DetectRequest::new(5, AlgorithmKind::SampledNaive);
        let solo = session(&g);
        solo.detect(&req).unwrap();
        let expected_drawn = solo.session_stats().samples_drawn;

        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    barrier.wait();
                    d.detect(&req).unwrap();
                });
            }
        });
        let totals = d.session_stats();
        assert_eq!(totals.queries, 8);
        assert_eq!(
            totals.samples_drawn, expected_drawn,
            "concurrent same-stream misses must share one sampling pass"
        );
        assert_eq!(totals.bounds_computed, 0, "SN never touches bounds");
        assert!(totals.concurrent_peak >= 1 && totals.concurrent_peak <= 8);
    }

    #[test]
    fn width_planning_and_counters_are_reported() {
        let g = random_graph(100, 200, 12);
        // Planner-driven session: the naive 20k-world budget goes wide.
        let d = session(&g);
        let r = d.detect(&DetectRequest::new(4, AlgorithmKind::Naive)).unwrap();
        assert_eq!(r.engine.block_words, 8, "20k-world budget must plan the widest superblock");
        assert!(r.engine.superblocks > 0);
        assert_eq!(d.session_stats().widest_block_words, 8);
        assert!(d.session_stats().superblocks_evaluated >= r.engine.superblocks);
        // Warm repeat: nothing sampled, so no width is attributed.
        let warm = d.detect(&DetectRequest::new(4, AlgorithmKind::Naive)).unwrap();
        assert_eq!(warm.engine.block_words, 0, "cache hit must not report a sampling width");
        assert_eq!(warm.engine.superblocks, 0);

        // Pinned session: the override wins over the planner and the
        // answers stay bit-identical.
        let pinned = Detector::builder(&g)
            .config(VulnConfig::default().with_seed(77).with_block_words(BlockWords::W2))
            .build()
            .unwrap();
        let p = pinned.detect(&DetectRequest::new(4, AlgorithmKind::Naive)).unwrap();
        assert_eq!(p.engine.block_words, 2);
        assert_eq!(p.top_k, r.top_k, "width must never change the answer");

        // BSRBK's scattered adaptive pass is single-word by construction.
        let adaptive = session(&g);
        let b = adaptive.detect(&DetectRequest::new(4, AlgorithmKind::BottomK)).unwrap();
        if b.stats.samples_used > 0 {
            assert_eq!(b.engine.block_words, 1, "scattered replay must report width 1");
        }
    }

    #[test]
    fn stats_report_fitted_width_for_small_cache_extensions() {
        let g = random_graph(60, 120, 14);
        let d = Detector::builder(&g)
            .config(VulnConfig::default().with_seed(9))
            .threads(8)
            .build()
            .unwrap();
        let graph = d.graph();
        {
            let mut ctx = d.ctx(&graph);
            let _ = ctx.forward_counts(20_000, 9);
            assert_eq!(ctx.request.block_words, 8, "big cold pass runs wide");
        }
        // A 200-world cache extension still *plans* wide, but fit_width
        // narrows it so 8 threads keep fine-grained chunks — and the
        // stats must report the width that actually executed.
        {
            let mut ctx = d.ctx(&graph);
            let _ = ctx.forward_counts(20_200, 9);
            assert_eq!(ctx.request.samples_drawn, 200);
            assert_eq!(
                ctx.request.block_words, 1,
                "stats must report the fitted width, not the planned one"
            );
        }
    }

    /// A graph whose top-5 is unambiguous at any sane sample budget:
    /// five scattered nodes carry well-separated high self-risks, the
    /// rest are near zero, edges are weak. Lets relabeling tests assert
    /// answer equality across *different* coin streams.
    fn separated_graph() -> UncertainGraph {
        let n = 60;
        let mut risks = vec![0.01; n];
        for (i, r) in [0.95, 0.85, 0.75, 0.65, 0.55].into_iter().enumerate() {
            risks[10 * i + 3] = r;
        }
        let mut rng = Xoshiro256pp::new(0xF00D);
        let mut edges = Vec::new();
        while edges.len() < 120 {
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            if u != v {
                edges.push((u, v, 0.05));
            }
        }
        ugraph::from_parts(&risks, &edges, ugraph::DuplicateEdgePolicy::KeepMax).unwrap()
    }

    #[test]
    fn direction_choice_never_changes_answers() {
        let g = random_graph(100, 200, 16);
        let mut reference: Option<DetectResponse> = None;
        for direction in Direction::ALL {
            let d = Detector::builder(&g)
                .config(VulnConfig::default().with_seed(77).with_direction(direction))
                .build()
                .unwrap();
            let r = d.detect(&DetectRequest::new(5, AlgorithmKind::Naive)).unwrap();
            assert!(r.engine.push_steps + r.engine.pull_steps > 0, "{direction}: no steps");
            match direction {
                Direction::Push => {
                    assert_eq!(r.engine.pull_steps, 0, "pinned push must never pull")
                }
                Direction::Pull => {
                    assert_eq!(r.engine.push_steps, 0, "pinned pull must never push")
                }
                Direction::Auto => {}
            }
            match &reference {
                None => reference = Some(r),
                Some(e) => {
                    assert_eq!(e.top_k, r.top_k, "{direction} changed the answer");
                    assert_eq!(e.stats.samples_used, r.stats.samples_used, "{direction}");
                }
            }
        }
    }

    #[test]
    fn relabeled_session_maps_answers_back_to_original_ids() {
        let g = separated_graph();
        let plain = session(&g);
        for order in [NodeOrder::DegreeDescending, NodeOrder::BfsFromHub] {
            let d = Detector::builder(&g)
                .config(VulnConfig::default().with_seed(77))
                .relabel(order)
                .build()
                .unwrap();
            let map = d.node_map().expect("relabeled session must expose its map");
            assert_eq!(map.len(), g.num_nodes());
            assert!(d.session_stats().relabel_applied);
            assert!(!plain.session_stats().relabel_applied);
            for kind in AlgorithmKind::ALL {
                let req = DetectRequest::new(5, kind);
                let r = d.detect(&req).unwrap();
                assert!(r.engine.relabel_applied, "{order:?}/{kind}");
                // Different coin streams, same answer set: sampled
                // scores differ within (ε, δ), but on this sharply
                // separated graph the detected nodes cannot.
                let mut got = r.node_ids();
                let mut want = plain.detect(&req).unwrap().node_ids();
                got.sort_unstable_by_key(|v| v.0);
                want.sort_unstable_by_key(|v| v.0);
                assert_eq!(got, want, "{order:?}/{kind}");
                for s in &r.top_k {
                    assert!(s.node.index() < g.num_nodes());
                }
            }
        }
    }

    #[test]
    fn relabeled_session_translates_candidate_hints() {
        let g = separated_graph();
        let d = Detector::builder(&g)
            .config(VulnConfig::default().with_seed(77))
            .relabel(NodeOrder::BfsFromHub)
            .build()
            .unwrap();
        // Hint in ORIGINAL ids: the five risky nodes plus background.
        let hint: Vec<NodeId> = vec![3, 13, 23, 33, 43, 0, 1, 2].into_iter().map(NodeId).collect();
        let req = DetectRequest::new(3, AlgorithmKind::SampleReverse).with_candidates(hint.clone());
        let r = d.detect(&req).unwrap();
        for s in &r.top_k {
            assert!(hint.contains(&s.node), "hint violated in original ids: {:?}", s.node);
        }
        // Out-of-bounds hints report the caller's original id.
        let bad =
            DetectRequest::new(1, AlgorithmKind::SampleReverse).with_candidates(vec![NodeId(999)]);
        assert!(matches!(d.detect(&bad), Err(VulnError::CandidateOutOfBounds { node: 999, .. })));
    }

    #[test]
    fn builder_defaults_threads_to_available_parallelism() {
        let g = random_graph(10, 10, 9);
        let d = Detector::builder(&g).build().unwrap();
        assert_eq!(d.config().threads, default_threads());
        let e = Detector::builder(&g).threads(3).build().unwrap();
        assert_eq!(e.config().threads, 3);
        // `.config()` adopts the classic thread semantics wholesale.
        let f = Detector::builder(&g).config(VulnConfig::default()).build().unwrap();
        assert_eq!(f.config().threads, 1);
    }

    #[test]
    fn pre_cancelled_queries_fail_without_counting_as_queries() {
        let g = random_graph(80, 160, 31);
        let d = session(&g);
        let dead = CancelToken::new();
        dead.cancel();
        for kind in
            [AlgorithmKind::SampledNaive, AlgorithmKind::SampleReverse, AlgorithmKind::BottomK]
        {
            let req = DetectRequest::new(4, kind).with_cancel(dead.clone());
            assert!(
                matches!(d.detect(&req), Err(VulnError::Cancelled)),
                "{kind}: pre-cancelled query must report Cancelled"
            );
        }
        let stats = d.session_stats();
        assert_eq!(stats.queries, 0, "cancelled queries must not count as answered");
        assert_eq!(stats.queries_cancelled, 3);
        assert_eq!(stats.queries_degraded, 0);
        assert_eq!(stats.in_flight, 0, "quiescent session must report an empty gauge");
    }

    #[test]
    fn sample_cap_degrades_and_replays_bit_identically() {
        let g = random_graph(100, 200, 32);
        let full = session(&g).detect(&DetectRequest::new(5, AlgorithmKind::SampledNaive)).unwrap();
        assert!(!full.degraded);
        assert_eq!(full.achieved_epsilon, 0.3, "full pass achieves the requested ε");
        let cap = full.stats.samples_used / 2;
        assert!(cap > 0);

        let capped_req = DetectRequest::new(5, AlgorithmKind::SampledNaive).with_sample_cap(cap);
        let capped = session(&g).detect(&capped_req).unwrap();
        assert!(capped.degraded, "a cap below budget must degrade");
        assert_eq!(capped.stats.samples_used, cap);
        assert_eq!(
            capped.stats.sample_budget, full.stats.sample_budget,
            "the ε-derived budget must not change under a cap"
        );
        assert!(
            capped.achieved_epsilon > 0.3,
            "achieved ε must widen: {}",
            capped.achieved_epsilon
        );
        // The replay contract: the same cap reproduces the degraded
        // answer bit-identically, cold or warm, at any thread count.
        let replay = session(&g).detect(&capped_req).unwrap();
        assert_eq!(replay.top_k, capped.top_k);
        let warm = session(&g);
        warm.detect(&DetectRequest::new(5, AlgorithmKind::SampledNaive)).unwrap();
        let warm_replay = warm.detect(&capped_req).unwrap();
        assert_eq!(warm_replay.top_k, capped.top_k, "warm cache changed a degraded answer");
        assert_eq!(warm_replay.stats.samples_used, cap);

        // A cap at or above the budget is not degradation.
        let roomy = DetectRequest::new(5, AlgorithmKind::SampledNaive)
            .with_sample_cap(full.stats.sample_budget);
        let r = session(&g).detect(&roomy).unwrap();
        assert!(!r.degraded);
        assert_eq!(r.top_k, full.top_k);
    }

    #[test]
    fn degraded_queries_are_counted() {
        let g = random_graph(100, 200, 33);
        let d = session(&g);
        let full = d.detect(&DetectRequest::new(4, AlgorithmKind::SampleReverse)).unwrap();
        let cap = (full.stats.samples_used / 2).max(1);
        let req = DetectRequest::new(4, AlgorithmKind::SampleReverse).with_sample_cap(cap);
        let capped = session(&g).detect(&req).unwrap();
        assert!(capped.degraded);
        let counter = session(&g);
        counter.detect(&req).unwrap();
        let stats = counter.session_stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.queries_degraded, 1);
        assert_eq!(stats.queries_cancelled, 0);
    }

    #[test]
    fn shed_requests_are_counted_without_a_query() {
        let g = random_graph(20, 40, 34);
        let d = session(&g);
        d.note_shed();
        d.note_shed();
        let stats = d.session_stats();
        assert_eq!(stats.requests_shed, 2);
        assert_eq!(stats.queries, 0);
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let g = random_graph(90, 180, 10);
        let mut reference: Option<Vec<DetectResponse>> = None;
        for threads in [1usize, 2, 4, 8] {
            let d = Detector::builder(&g)
                .config(VulnConfig::default().with_seed(77))
                .threads(threads)
                .build()
                .unwrap();
            let responses: Vec<DetectResponse> = AlgorithmKind::ALL
                .iter()
                .map(|&kind| d.detect(&DetectRequest::new(5, kind)).unwrap())
                .collect();
            match &reference {
                None => reference = Some(responses),
                Some(expected) => {
                    for (e, r) in expected.iter().zip(&responses) {
                        assert_eq!(e.top_k, r.top_k, "threads = {threads}");
                        assert_eq!(
                            e.stats.samples_used, r.stats.samples_used,
                            "threads = {threads}"
                        );
                    }
                }
            }
        }
    }

    /// Node `n-1` has self-risk 0 and no in-edges, so under push
    /// traversal it never defaults and its single out-edge is never
    /// materialized by any draw — a "dormant" edge a delta can retouch
    /// without perturbing cached sampled state.
    fn dormant_edge_graph() -> (UncertainGraph, EdgeId) {
        let mut risks = vec![0.35; 10];
        risks[9] = 0.0;
        let mut edges: Vec<(u32, u32, f64)> = (0..9u32).map(|v| (v, (v + 1) % 9, 0.4)).collect();
        edges.push((9, 0, 0.9));
        let g = ugraph::from_parts(&risks, &edges, ugraph::DuplicateEdgePolicy::Error).unwrap();
        let dormant = g.find_edge(NodeId(9), NodeId(0)).unwrap();
        (g, dormant)
    }

    #[test]
    fn apply_delta_matches_a_cold_session_bit_for_bit() {
        let g = random_graph(100, 200, 31);
        let warm = session(&g);
        for kind in AlgorithmKind::ALL {
            warm.detect(&DetectRequest::new(5, kind)).unwrap();
        }
        let delta =
            GraphDelta::default().set_self_risk(NodeId(7), 0.45).set_edge_prob(EdgeId(3), 0.41);
        let outcome = warm.apply_delta(&delta).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(warm.epoch(), 1);
        assert!(outcome.revalidated >= 1, "coin table and bounds should be patched in place");

        let mut post = g.clone();
        delta.apply(&mut post).unwrap();
        let cold = session(&post);
        for kind in AlgorithmKind::ALL {
            let req = DetectRequest::new(5, kind);
            let w = warm.detect(&req).unwrap();
            let c = cold.detect(&req).unwrap();
            assert_eq!(w.top_k, c.top_k, "{kind}");
            assert_eq!(w.stats.samples_used, c.stats.samples_used, "{kind}");
        }
        // Bounds were repaired through the incremental maintainer and
        // re-published under the new graph version, so the first
        // post-delta pruned query finds them warm.
        let pruned = warm.detect(&DetectRequest::new(5, AlgorithmKind::SampleReverse)).unwrap();
        assert!(pruned.engine.bounds_reused, "repaired bounds must be served from cache");
    }

    #[test]
    fn small_edge_delta_preserves_cached_sampled_state() {
        let (g, dormant) = dormant_edge_graph();
        let build = |graph: &UncertainGraph| {
            Detector::builder(graph)
                .seed(77)
                .naive_samples(2_000)
                .direction(Direction::Push)
                .build()
                .unwrap()
        };
        let d = build(&g);
        for s in 0..10u64 {
            d.detect(&DetectRequest::new(3, AlgorithmKind::Naive).with_seed(s)).unwrap();
        }
        let drawn_before = d.session_stats().samples_drawn;

        let outcome = d.apply_delta(&GraphDelta::default().set_edge_prob(dormant, 0.01)).unwrap();
        // 10 sample streams + the coin table survive; nothing is dropped.
        assert!(outcome.revalidated >= 11, "revalidated only {}", outcome.revalidated);
        assert_eq!(outcome.invalidated, 0);
        assert!(
            outcome.revalidated * 10 >= (outcome.revalidated + outcome.invalidated) * 9,
            "a <=1% delta must preserve >=90% of cached sampled state"
        );

        let mut post = g.clone();
        GraphDelta::default().set_edge_prob(dormant, 0.01).apply(&mut post).unwrap();
        let cold = build(&post);
        for s in 0..10u64 {
            let req = DetectRequest::new(3, AlgorithmKind::Naive).with_seed(s);
            assert_eq!(d.detect(&req).unwrap().top_k, cold.detect(&req).unwrap().top_k);
        }
        assert_eq!(
            d.session_stats().samples_drawn,
            drawn_before,
            "replaying warm queries after the delta must not redraw"
        );
        let stats = d.session_stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.deltas_applied, 1);
        assert!(stats.caches_revalidated >= 11);
        assert_eq!(stats.caches_invalidated, 0);
    }

    #[test]
    fn self_risk_delta_drops_streams_but_stays_bit_identical() {
        let g = random_graph(60, 120, 5);
        let build = |graph: &UncertainGraph| {
            Detector::builder(graph).seed(77).naive_samples(2_000).build().unwrap()
        };
        let d = build(&g);
        for s in 0..3u64 {
            d.detect(&DetectRequest::new(3, AlgorithmKind::Naive).with_seed(s)).unwrap();
        }
        let delta = GraphDelta::default().set_self_risk(NodeId(0), 0.9);
        let outcome = d.apply_delta(&delta).unwrap();
        // Self-risk coins are materialized for every node in every
        // block, so all sample streams must go.
        assert!(outcome.invalidated >= 3, "invalidated only {}", outcome.invalidated);

        let drawn_before = d.session_stats().samples_drawn;
        let mut post = g.clone();
        delta.apply(&mut post).unwrap();
        let cold = build(&post);
        for s in 0..3u64 {
            let req = DetectRequest::new(3, AlgorithmKind::Naive).with_seed(s);
            assert_eq!(d.detect(&req).unwrap().top_k, cold.detect(&req).unwrap().top_k);
        }
        assert!(
            d.session_stats().samples_drawn > drawn_before,
            "invalidated streams must be redrawn"
        );
    }

    #[test]
    fn invalid_delta_is_rejected_without_side_effects() {
        let g = random_graph(20, 40, 6);
        let d = session(&g);
        let req = DetectRequest::new(2, AlgorithmKind::SampledNaive);
        let before = d.detect(&req).unwrap();
        let bad =
            GraphDelta::default().set_edge_prob(EdgeId(0), 0.2).set_self_risk(NodeId(999), 0.5);
        assert!(d.apply_delta(&bad).is_err());
        assert_eq!(d.epoch(), 0);
        assert_eq!(d.session_stats().deltas_applied, 0);
        let after = d.detect(&req).unwrap();
        assert_eq!(before.top_k, after.top_k);
        assert_eq!(after.engine.samples_drawn, 0, "caches must be untouched");
    }

    #[test]
    fn pinned_snapshots_survive_later_epochs() {
        let g = random_graph(30, 60, 8);
        let d = session(&g);
        let pre = d.graph();
        let stats = d.session_stats();
        assert_eq!((stats.epoch, stats.graph_version), (0, pre.version()));

        d.apply_delta(&GraphDelta::default().set_self_risk(NodeId(0), 0.9)).unwrap();
        let post = d.graph();
        assert!(!Arc::ptr_eq(&pre, &post), "a committed delta must publish a new snapshot");
        assert_eq!(pre.self_risk(NodeId(0)), g.self_risk(NodeId(0)));
        assert_eq!(post.self_risk(NodeId(0)), 0.9);
        let stats = d.session_stats();
        assert_eq!((stats.epoch, stats.graph_version), (1, post.version()));
    }
}
