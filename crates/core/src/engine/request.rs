//! Typed queries and answers for the [`Detector`](super::Detector)
//! engine.

use std::time::{Duration, Instant};

use crate::algo::{AlgorithmKind, RunStats};
use crate::config::ApproxParams;
use crate::error::{Result, VulnError};
use crate::topk::ScoredNode;
use ugraph::{NodeId, UncertainGraph};
use vulnds_sampling::CancelToken;

use super::VulnConfig;

/// One detection query against a [`Detector`](super::Detector) session.
///
/// Only `k` and `algorithm` are required; everything else defaults to the
/// session's [`VulnConfig`]. Overrides are per-request: they do not
/// mutate the session.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectRequest {
    /// How many nodes to return.
    pub k: usize,
    /// Which of the paper's five algorithms answers the query.
    pub algorithm: AlgorithmKind,
    /// Per-request accuracy override (`ε` of Definition 2).
    pub epsilon: Option<f64>,
    /// Per-request failure-probability override (`δ` of Definition 2).
    pub delta: Option<f64>,
    /// Per-request RNG seed override. Requests with equal seeds share
    /// sampled worlds through the session cache.
    pub seed: Option<u64>,
    /// Candidate hint for the reverse-sampling algorithms (SR, BSR,
    /// BSRBK): replaces the bound-derived candidate set `B`. Nodes the
    /// bound phase verifies into the top-k are excluded automatically.
    /// Ignored by the forward-sampling algorithms (N, SN), which always
    /// estimate every node. Use when a previous query or external
    /// knowledge already narrowed the plausible top-k.
    pub candidates: Option<Vec<NodeId>>,
    /// Soft deadline for the sampling passes, in milliseconds from the
    /// moment the request is resolved. When it expires mid-pass the
    /// query returns the block-aligned sample prefix it completed as a
    /// **degraded** answer (`degraded = true`, `achieved_epsilon`
    /// widened accordingly) — or [`VulnError::Cancelled`] if not a
    /// single sample was drawn. The bound/verification phases are not
    /// interruptible; only sampling is.
    pub timeout_ms: Option<u64>,
    /// Exact cap on the worlds the sampling pass may draw, *without*
    /// changing the ε-derived budget (which also seeds BSRBK's sample
    /// order). This is the replay knob for degraded answers: re-running
    /// a degraded query with its reported `samples_used` as the cap
    /// reproduces the degraded answer bit-identically.
    pub sample_cap: Option<u64>,
    /// External cancellation token (e.g. a server's per-request child of
    /// its drain token). Combined with `timeout_ms` when both are set.
    pub cancel: Option<CancelToken>,
}

impl DetectRequest {
    /// A request with session defaults for everything but `k` and the
    /// algorithm.
    pub fn new(k: usize, algorithm: AlgorithmKind) -> Self {
        DetectRequest {
            k,
            algorithm,
            epsilon: None,
            delta: None,
            seed: None,
            candidates: None,
            timeout_ms: None,
            sample_cap: None,
            cancel: None,
        }
    }

    /// Per-request `ε` override.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Per-request `δ` override.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Per-request seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Candidate hint (see [`DetectRequest::candidates`]).
    pub fn with_candidates(mut self, candidates: Vec<NodeId>) -> Self {
        self.candidates = Some(candidates);
        self
    }

    /// Soft sampling deadline (see [`DetectRequest::timeout_ms`]).
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.timeout_ms = Some(timeout_ms);
        self
    }

    /// Exact draw cap for degraded-answer replay (see
    /// [`DetectRequest::sample_cap`]).
    pub fn with_sample_cap(mut self, cap: u64) -> Self {
        self.sample_cap = Some(cap);
        self
    }

    /// External cancellation token (see [`DetectRequest::cancel`]).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Validates the request against a graph and session configuration,
    /// producing the fully-resolved form the [`Algorithm`](super::Algorithm)
    /// implementations run on.
    pub(crate) fn resolve(
        &self,
        graph: &UncertainGraph,
        config: &VulnConfig,
    ) -> Result<ResolvedRequest> {
        let n = graph.num_nodes();
        if self.k == 0 || self.k > n {
            return Err(VulnError::InvalidK { k: self.k, n });
        }
        let approx = match (self.epsilon, self.delta) {
            (None, None) => config.approx,
            (eps, delta) => ApproxParams::new(
                eps.unwrap_or_else(|| config.approx.epsilon()),
                delta.unwrap_or_else(|| config.approx.delta()),
            )?,
        };
        if self.algorithm == AlgorithmKind::BottomK && config.bk < 2 {
            return Err(VulnError::InvalidParameter(
                "bottom-k parameter must be at least 2".into(),
            ));
        }
        let candidates = match &self.candidates {
            None => None,
            Some(hint) => {
                let mut ids: Vec<NodeId> = Vec::with_capacity(hint.len());
                for &v in hint {
                    if v.index() >= n {
                        return Err(VulnError::CandidateOutOfBounds { node: v.0, n });
                    }
                    ids.push(v);
                }
                // Normalize: ascending ids, deduplicated — candidate order
                // is part of the sample-cache key and of the per-sample
                // coin-consumption order.
                ids.sort_unstable_by_key(|v| v.0);
                ids.dedup();
                // A hint must contain at least k nodes or the response
                // could not hold k entries (every caller is promised
                // `top_k.len() == k`). Checked here, not at run time, so
                // `detect_many` stays all-or-nothing.
                if ids.len() < self.k {
                    return Err(VulnError::InvalidParameter(format!(
                        "candidate hint has {} distinct nodes but k = {}",
                        ids.len(),
                        self.k
                    )));
                }
                Some(ids)
            }
        };
        // The effective cancellation signal: the caller's token, a
        // deadline token, or a deadline child of the caller's token.
        // The deadline clock starts here, at resolve time.
        let cancel = match (&self.cancel, self.timeout_ms) {
            (None, None) => None,
            (Some(token), None) => Some(token.clone()),
            (token, Some(ms)) => {
                // xlint: allow(no-wall-clock) — sanctioned deadline
                // anchor: the monotonic clock only decides where a
                // sampling prefix ends, never any sampled value (see
                // vulnds_sampling::cancel).
                let deadline = Instant::now().checked_add(Duration::from_millis(ms));
                match (token, deadline) {
                    (Some(t), Some(d)) => Some(t.child_with_deadline(d)),
                    (Some(t), None) => Some(t.clone()),
                    // A deadline too far out to represent can never
                    // fire; treat it as absent.
                    (None, Some(d)) => Some(CancelToken::with_deadline(d)),
                    (None, None) => None,
                }
            }
        };
        Ok(ResolvedRequest {
            k: self.k,
            algorithm: self.algorithm,
            approx,
            seed: self.seed.unwrap_or(config.seed),
            candidates,
            sample_cap: self.sample_cap,
            cancel,
        })
    }
}

/// A validated request with all session defaults applied. This is what
/// [`Algorithm`](super::Algorithm) implementations receive.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedRequest {
    /// How many nodes to return.
    pub k: usize,
    /// Which algorithm runs.
    pub algorithm: AlgorithmKind,
    /// Fully-resolved approximation contract.
    pub approx: ApproxParams,
    /// Fully-resolved RNG seed.
    pub seed: u64,
    /// Normalized candidate hint (ascending ids, deduplicated).
    pub candidates: Option<Vec<NodeId>>,
    /// Exact draw cap for degraded-answer replay (see
    /// [`DetectRequest::sample_cap`]).
    pub sample_cap: Option<u64>,
    /// Effective cancellation signal: the caller's token and/or the
    /// request deadline, anchored at resolve time.
    pub cancel: Option<CancelToken>,
}

/// What the session cache contributed to one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Possible worlds freshly sampled for this query.
    pub samples_drawn: u64,
    /// Possible worlds served from the session cache instead of being
    /// re-sampled.
    pub samples_reused: u64,
    /// Whether the bound vectors were already cached.
    pub bounds_reused: bool,
    /// Whether the candidate reduction was already cached.
    pub reduction_reused: bool,
    /// Uniform 64-bit words the counter-RNG coin generator synthesized
    /// for this query (the raw materialization cost).
    pub coin_words_synthesized: u64,
    /// Edge lane-words the frontier-lazy materialization skipped for
    /// this query (edges no traversal touched).
    pub lazy_edge_words_skipped: u64,
    /// Widest superblock (in 64-lane words) this query's sampling
    /// passes ran on — 0 when the query drew entirely from cache or
    /// never sampled. Width never changes results, only throughput.
    pub block_words: usize,
    /// Superblocks this query materialized (one per `W·64`-world unit).
    pub superblocks: u64,
    /// Frontier steps the forward sampler ran as sparse push
    /// expansions (see [`Direction`](vulnds_sampling::Direction)).
    pub push_steps: u64,
    /// Frontier steps the forward sampler ran as dense pull sweeps.
    pub pull_steps: u64,
    /// Times an `Auto` traversal changed direction between consecutive
    /// frontier steps of one superblock.
    pub direction_switches: u64,
    /// Whether this query ran on a cache-relabeled copy of the graph
    /// (see [`DetectorBuilder::relabel`](super::DetectorBuilder::relabel)).
    pub relabel_applied: bool,
    /// Epoch of the snapshot this query ran on (0 = base graph). A
    /// query pins its snapshot at entry, so under live updates this
    /// names the exact graph the answer is bit-reproducible against.
    pub epoch: u64,
    /// Probability version of the pinned snapshot.
    pub graph_version: u64,
}

/// Answer to one [`DetectRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectResponse {
    /// The k detected nodes, most vulnerable first.
    pub top_k: Vec<ScoredNode>,
    /// Algorithm-level diagnostics (budget, candidates, verification,
    /// early stop — same shape as the classic API).
    pub stats: RunStats,
    /// Session-cache diagnostics for this query.
    pub engine: EngineStats,
    /// True when cancellation (deadline, token, or an explicit
    /// `sample_cap` below the budget) cut the sampling pass short of its
    /// ε-derived budget. The answer is still a valid `(ε', δ)` answer at
    /// the wider [`achieved_epsilon`](DetectResponse::achieved_epsilon),
    /// and replaying the request with `stats.samples_used` as its
    /// `sample_cap` reproduces it bit-identically. BSRBK's early stop is
    /// *not* degradation: stopping early with a satisfied contract keeps
    /// `degraded = false`.
    pub degraded: bool,
    /// The `ε` the request's `δ` guarantee holds at, given the samples
    /// actually used: the requested `ε` for a full pass, the inverted
    /// Hoeffding/union bound (Eq. 3/4 solved for `ε` at
    /// `stats.samples_used`) for a degraded one. Not meaningful for
    /// fixed-budget `N` runs, which have no requested contract; the
    /// inversion is still reported against the session's `(ε, δ)`.
    pub achieved_epsilon: f64,
}

impl DetectResponse {
    /// Just the node ids, in rank order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.top_k.iter().map(|s| s.node).collect()
    }

    /// Converts to the classic [`DetectionResult`](crate::DetectionResult)
    /// shape (drops the engine stats).
    pub fn into_detection_result(self) -> crate::algo::DetectionResult {
        crate::algo::DetectionResult { top_k: self.top_k, stats: self.stats }
    }
}
