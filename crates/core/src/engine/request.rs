//! Typed queries and answers for the [`Detector`](super::Detector)
//! engine.

use crate::algo::{AlgorithmKind, RunStats};
use crate::config::ApproxParams;
use crate::error::{Result, VulnError};
use crate::topk::ScoredNode;
use ugraph::{NodeId, UncertainGraph};

use super::VulnConfig;

/// One detection query against a [`Detector`](super::Detector) session.
///
/// Only `k` and `algorithm` are required; everything else defaults to the
/// session's [`VulnConfig`]. Overrides are per-request: they do not
/// mutate the session.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectRequest {
    /// How many nodes to return.
    pub k: usize,
    /// Which of the paper's five algorithms answers the query.
    pub algorithm: AlgorithmKind,
    /// Per-request accuracy override (`ε` of Definition 2).
    pub epsilon: Option<f64>,
    /// Per-request failure-probability override (`δ` of Definition 2).
    pub delta: Option<f64>,
    /// Per-request RNG seed override. Requests with equal seeds share
    /// sampled worlds through the session cache.
    pub seed: Option<u64>,
    /// Candidate hint for the reverse-sampling algorithms (SR, BSR,
    /// BSRBK): replaces the bound-derived candidate set `B`. Nodes the
    /// bound phase verifies into the top-k are excluded automatically.
    /// Ignored by the forward-sampling algorithms (N, SN), which always
    /// estimate every node. Use when a previous query or external
    /// knowledge already narrowed the plausible top-k.
    pub candidates: Option<Vec<NodeId>>,
}

impl DetectRequest {
    /// A request with session defaults for everything but `k` and the
    /// algorithm.
    pub fn new(k: usize, algorithm: AlgorithmKind) -> Self {
        DetectRequest { k, algorithm, epsilon: None, delta: None, seed: None, candidates: None }
    }

    /// Per-request `ε` override.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Per-request `δ` override.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Per-request seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Candidate hint (see [`DetectRequest::candidates`]).
    pub fn with_candidates(mut self, candidates: Vec<NodeId>) -> Self {
        self.candidates = Some(candidates);
        self
    }

    /// Validates the request against a graph and session configuration,
    /// producing the fully-resolved form the [`Algorithm`](super::Algorithm)
    /// implementations run on.
    pub(crate) fn resolve(
        &self,
        graph: &UncertainGraph,
        config: &VulnConfig,
    ) -> Result<ResolvedRequest> {
        let n = graph.num_nodes();
        if self.k == 0 || self.k > n {
            return Err(VulnError::InvalidK { k: self.k, n });
        }
        let approx = match (self.epsilon, self.delta) {
            (None, None) => config.approx,
            (eps, delta) => ApproxParams::new(
                eps.unwrap_or_else(|| config.approx.epsilon()),
                delta.unwrap_or_else(|| config.approx.delta()),
            )?,
        };
        if self.algorithm == AlgorithmKind::BottomK && config.bk < 2 {
            return Err(VulnError::InvalidParameter(
                "bottom-k parameter must be at least 2".into(),
            ));
        }
        let candidates = match &self.candidates {
            None => None,
            Some(hint) => {
                let mut ids: Vec<NodeId> = Vec::with_capacity(hint.len());
                for &v in hint {
                    if v.index() >= n {
                        return Err(VulnError::CandidateOutOfBounds { node: v.0, n });
                    }
                    ids.push(v);
                }
                // Normalize: ascending ids, deduplicated — candidate order
                // is part of the sample-cache key and of the per-sample
                // coin-consumption order.
                ids.sort_unstable_by_key(|v| v.0);
                ids.dedup();
                // A hint must contain at least k nodes or the response
                // could not hold k entries (every caller is promised
                // `top_k.len() == k`). Checked here, not at run time, so
                // `detect_many` stays all-or-nothing.
                if ids.len() < self.k {
                    return Err(VulnError::InvalidParameter(format!(
                        "candidate hint has {} distinct nodes but k = {}",
                        ids.len(),
                        self.k
                    )));
                }
                Some(ids)
            }
        };
        Ok(ResolvedRequest {
            k: self.k,
            algorithm: self.algorithm,
            approx,
            seed: self.seed.unwrap_or(config.seed),
            candidates,
        })
    }
}

/// A validated request with all session defaults applied. This is what
/// [`Algorithm`](super::Algorithm) implementations receive.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedRequest {
    /// How many nodes to return.
    pub k: usize,
    /// Which algorithm runs.
    pub algorithm: AlgorithmKind,
    /// Fully-resolved approximation contract.
    pub approx: ApproxParams,
    /// Fully-resolved RNG seed.
    pub seed: u64,
    /// Normalized candidate hint (ascending ids, deduplicated).
    pub candidates: Option<Vec<NodeId>>,
}

/// What the session cache contributed to one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Possible worlds freshly sampled for this query.
    pub samples_drawn: u64,
    /// Possible worlds served from the session cache instead of being
    /// re-sampled.
    pub samples_reused: u64,
    /// Whether the bound vectors were already cached.
    pub bounds_reused: bool,
    /// Whether the candidate reduction was already cached.
    pub reduction_reused: bool,
    /// Uniform 64-bit words the counter-RNG coin generator synthesized
    /// for this query (the raw materialization cost).
    pub coin_words_synthesized: u64,
    /// Edge lane-words the frontier-lazy materialization skipped for
    /// this query (edges no traversal touched).
    pub lazy_edge_words_skipped: u64,
    /// Widest superblock (in 64-lane words) this query's sampling
    /// passes ran on — 0 when the query drew entirely from cache or
    /// never sampled. Width never changes results, only throughput.
    pub block_words: usize,
    /// Superblocks this query materialized (one per `W·64`-world unit).
    pub superblocks: u64,
    /// Frontier steps the forward sampler ran as sparse push
    /// expansions (see [`Direction`](vulnds_sampling::Direction)).
    pub push_steps: u64,
    /// Frontier steps the forward sampler ran as dense pull sweeps.
    pub pull_steps: u64,
    /// Times an `Auto` traversal changed direction between consecutive
    /// frontier steps of one superblock.
    pub direction_switches: u64,
    /// Whether this query ran on a cache-relabeled copy of the graph
    /// (see [`DetectorBuilder::relabel`](super::DetectorBuilder::relabel)).
    pub relabel_applied: bool,
}

/// Answer to one [`DetectRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectResponse {
    /// The k detected nodes, most vulnerable first.
    pub top_k: Vec<ScoredNode>,
    /// Algorithm-level diagnostics (budget, candidates, verification,
    /// early stop — same shape as the classic API).
    pub stats: RunStats,
    /// Session-cache diagnostics for this query.
    pub engine: EngineStats,
}

impl DetectResponse {
    /// Just the node ids, in rank order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.top_k.iter().map(|s| s.node).collect()
    }

    /// Converts to the classic [`DetectionResult`](crate::DetectionResult)
    /// shape (drops the engine stats).
    pub fn into_detection_result(self) -> crate::algo::DetectionResult {
        crate::algo::DetectionResult { top_k: self.top_k, stats: self.stats }
    }
}
