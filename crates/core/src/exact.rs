//! Ground-truth oracles.
//!
//! * [`exact_default_probabilities`] — full possible-world enumeration,
//!   exponential, only for graphs with at most 24 coins. The reference for
//!   unit tests.
//! * [`ground_truth`] — the paper's experimental convention: 20,000
//!   forward Monte-Carlo samples (§4.1) define the "true" ranking that
//!   precision is measured against.

use ugraph::UncertainGraph;
use vulnds_sampling::{parallel_forward_counts, WorldEnumerator};

/// Number of samples the paper uses to define ground truth (§4.1).
pub const PAPER_GROUND_TRUTH_SAMPLES: u64 = 20_000;

/// Exact default probability of every node by enumerating all
/// `2^(n+m)` possible worlds.
///
/// # Panics
/// Panics if `n + m > 24`.
pub fn exact_default_probabilities(graph: &UncertainGraph) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut p = vec![0.0f64; n];
    for world in WorldEnumerator::new(graph) {
        let pw = world.probability(graph);
        if pw == 0.0 {
            continue;
        }
        for (v, &defaulted) in world.defaulted_nodes(graph).iter().enumerate() {
            if defaulted {
                p[v] += pw;
            }
        }
    }
    p
}

/// Monte-Carlo ground truth: per-node default-probability estimates from
/// `samples` forward samples.
pub fn ground_truth(graph: &UncertainGraph, samples: u64, seed: u64, threads: usize) -> Vec<f64> {
    parallel_forward_counts(graph, samples, seed, threads).estimates()
}

/// Ground truth with the paper's sample budget.
pub fn paper_ground_truth(graph: &UncertainGraph, seed: u64, threads: usize) -> Vec<f64> {
    ground_truth(graph, PAPER_GROUND_TRUTH_SAMPLES, seed, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId};

    fn figure3() -> UncertainGraph {
        let mut b = UncertainGraph::builder(5);
        for v in 0..5 {
            b.set_self_risk(NodeId(v), 0.2).unwrap();
        }
        for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
            b.add_edge(NodeId(u), NodeId(v), 0.2).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn example1_exact_values() {
        let g = from_parts(&[0.2, 0.2], &[(0, 1, 0.2)], DuplicateEdgePolicy::Error).unwrap();
        let p = exact_default_probabilities(&g);
        assert!((p[0] - 0.2).abs() < 1e-12);
        assert!((p[1] - 0.232).abs() < 1e-12);
    }

    #[test]
    fn figure3_exact_ranking() {
        // E has three upstream sources; it must be the most vulnerable.
        let g = figure3();
        let p = exact_default_probabilities(&g);
        let max = p.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(p[4], max, "E must rank first: {p:?}");
        // A is a source: p(A) = ps = 0.2 exactly.
        assert!((p[0] - 0.2).abs() < 1e-12);
        // Monotone along the chain A < B (B has A upstream).
        assert!(p[1] > p[0] - 1e-12);
    }

    #[test]
    fn enumeration_matches_monte_carlo() {
        let g = figure3();
        let exact = exact_default_probabilities(&g);
        let mc = ground_truth(&g, 60_000, 9, 2);
        for v in 0..5 {
            assert!((exact[v] - mc[v]).abs() < 0.01, "v={v}: {} vs {}", exact[v], mc[v]);
        }
    }

    #[test]
    fn deterministic_graph_exact() {
        let g =
            from_parts(&[1.0, 0.0, 0.0], &[(0, 1, 1.0), (1, 2, 0.0)], DuplicateEdgePolicy::Error)
                .unwrap();
        let p = exact_default_probabilities(&g);
        assert_eq!(p, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn ground_truth_is_reproducible() {
        let g = figure3();
        assert_eq!(ground_truth(&g, 1000, 5, 4), ground_truth(&g, 1000, 5, 1));
    }
}
