//! The workspace-wide error type.
//!
//! Every fallible public operation in the VulnDS system — graph
//! construction and I/O (`ugraph`), configuration validation, engine
//! queries, and the CLI — funnels into [`VulnError`], so callers handle
//! one enum instead of per-layer stringly errors.

use std::fmt;
use ugraph::GraphError;

use crate::config::ConfigError;

/// Unified error for the VulnDS workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum VulnError {
    /// Graph construction, validation or I/O failed (wraps
    /// [`ugraph::GraphError`], including its parse and I/O variants).
    Graph(GraphError),
    /// A configuration parameter was invalid (wraps
    /// [`ConfigError`]).
    Config(ConfigError),
    /// `k` was zero or exceeded the number of nodes.
    InvalidK {
        /// The requested `k`.
        k: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A request parameter other than `k` was out of range (e.g. the
    /// bottom-k parameter below 2).
    InvalidParameter(String),
    /// A candidate hint referenced a node outside the graph.
    CandidateOutOfBounds {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A graph file could not be read or written; carries the path the
    /// underlying [`GraphError`] lacks.
    File {
        /// Path of the file involved.
        path: String,
        /// The underlying graph/I-O error.
        error: GraphError,
    },
    /// A command-line invocation could not be parsed or executed.
    Usage(String),
    /// Durable state failed an integrity check (a WAL record or
    /// snapshot with a bad checksum or torn frame). Kept distinct from
    /// [`VulnError::Usage`] so tooling can exit with a dedicated
    /// status: corruption is a property of the data, not the command.
    Corrupt(String),
    /// The query was cancelled (deadline or explicit token) before any
    /// samples were drawn, so not even a degraded answer exists. A
    /// cancellation that lands *after* some samples were drawn is not an
    /// error: the query succeeds with `degraded = true`.
    Cancelled,
}

impl fmt::Display for VulnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VulnError::Graph(e) => write!(f, "{e}"),
            VulnError::Config(e) => write!(f, "{e}"),
            VulnError::InvalidK { k, n } => {
                write!(f, "k = {k} out of range: must be in 1..={n}")
            }
            VulnError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            VulnError::CandidateOutOfBounds { node, n } => {
                write!(f, "candidate node {node} out of bounds for graph with {n} nodes")
            }
            VulnError::File { path, error } => write!(f, "{path}: {error}"),
            VulnError::Usage(msg) => f.write_str(msg),
            VulnError::Corrupt(msg) => write!(f, "corrupt: {msg}"),
            VulnError::Cancelled => f.write_str("query cancelled before any samples were drawn"),
        }
    }
}

impl std::error::Error for VulnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VulnError::Graph(e) => Some(e),
            VulnError::Config(e) => Some(e),
            VulnError::File { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<GraphError> for VulnError {
    fn from(e: GraphError) -> Self {
        VulnError::Graph(e)
    }
}

impl From<ConfigError> for VulnError {
    fn from(e: ConfigError) -> Self {
        VulnError::Config(e)
    }
}

impl From<std::io::Error> for VulnError {
    fn from(e: std::io::Error) -> Self {
        VulnError::Graph(GraphError::from(e))
    }
}

/// Convenience result alias for engine and CLI code.
pub type Result<T> = std::result::Result<T, VulnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = VulnError::InvalidK { k: 9, n: 5 };
        assert!(e.to_string().contains("1..=5"), "{e}");
        let e = VulnError::CandidateOutOfBounds { node: 7, n: 3 };
        assert!(e.to_string().contains("node 7"), "{e}");
        let e = VulnError::InvalidParameter("bk must be at least 2".into());
        assert!(e.to_string().contains("bk"), "{e}");
    }

    #[test]
    fn wraps_layer_errors() {
        let g: VulnError = GraphError::SelfLoop { node: 3 }.into();
        assert!(matches!(g, VulnError::Graph(_)));
        assert!(std::error::Error::source(&g).is_some());

        let c: VulnError = ConfigError("epsilon".into()).into();
        assert!(matches!(c, VulnError::Config(_)));

        let io: VulnError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(matches!(io, VulnError::Graph(GraphError::Io(_))));
    }

    #[test]
    fn file_variant_names_the_path() {
        let e = VulnError::File {
            path: "graphs/g.txt".into(),
            error: GraphError::Io("No such file".into()),
        };
        assert!(e.to_string().contains("graphs/g.txt"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
