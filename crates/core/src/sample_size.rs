//! Sample-size theory: Hoeffding tail bounds and the paper's Equations 3
//! and 4.

use crate::config::ApproxParams;

/// Hoeffding tail for the mean of `t` i.i.d. variables with range width 2
/// (the pairwise estimator `p_u − p_v` of Theorem 3):
/// `Pr[estimate − truth ≥ ε] ≤ exp(−t ε² / 2)`.
pub fn pairwise_tail(t: u64, epsilon: f64) -> f64 {
    (-(t as f64) * epsilon * epsilon / 2.0).exp()
}

/// Hoeffding tail for a single `[0, 1]` mean (range width 1):
/// `Pr[|estimate − truth| ≥ ε] ≤ 2 exp(−2 t ε²)`.
pub fn single_mean_tail(t: u64, epsilon: f64) -> f64 {
    2.0 * (-2.0 * t as f64 * epsilon * epsilon).exp()
}

/// Equation 3: sample size for the basic sampling algorithm,
/// `t = (2/ε²) · ln(k (n − k) / δ)`, bounding the order of the
/// `k (n − k)` node pairs straddling the top-k boundary.
///
/// Degenerate inputs (`k = 0` or `k ≥ n`) need no pairwise ordering at
/// all and return 0.
pub fn basic_sample_size(n: usize, k: usize, approx: ApproxParams) -> u64 {
    pair_bound_sample_size(k as u64, (n.saturating_sub(k)) as u64, approx)
}

/// Equation 4: sample size after pruning,
/// `t = (2/ε²) · ln((k − k') (|B| − k + k') / δ)`.
///
/// `k_rem = k − k'` is the number of result slots still open and
/// `b = |B|` the surviving candidate count.
pub fn reduced_sample_size(b: usize, k_rem: usize, approx: ApproxParams) -> u64 {
    pair_bound_sample_size(k_rem as u64, (b.saturating_sub(k_rem)) as u64, approx)
}

/// Shared form: `t = (2/ε²) · ln(pairs / δ)` with `pairs = a · b`,
/// rounded up. Zero when there are no pairs to order.
fn pair_bound_sample_size(a: u64, b: u64, approx: ApproxParams) -> u64 {
    let pairs = (a as f64) * (b as f64);
    if pairs < 1.0 {
        return 0;
    }
    let eps = approx.epsilon();
    let t = 2.0 / (eps * eps) * (pairs / approx.delta()).ln();
    if t <= 0.0 {
        0
    } else {
        t.ceil() as u64
    }
}

/// Inverse view used in tests and docs: with `t` samples, the per-pair
/// failure probability is `exp(−t ε² / 2)`; with `pairs` pairs the union
/// bound gives the overall failure probability.
pub fn failure_probability(t: u64, pairs: u64, epsilon: f64) -> f64 {
    (pairs as f64 * pairwise_tail(t, epsilon)).min(1.0)
}

/// Inverts the Eq. 3/4 bound at the samples actually drawn: the `ε` the
/// same `δ` guarantee still holds at after `t_used` of the budgeted
/// samples. A degraded (cancelled mid-pass) Monte-Carlo answer is a
/// valid answer at this wider `ε`, which is what makes deadline-driven
/// degradation principled rather than lossy.
///
/// `a · b` is the pair count of the bound (`k (n − k)` for Eq. 3,
/// `(k − k') (|B| − k + k')` for Eq. 4). Returns 0 when there are no
/// pairs to order (the answer is exact regardless of samples) and
/// `+∞` when `t_used` is 0 (no samples, no guarantee — the engine
/// reports such queries as cancelled, not degraded).
pub fn achieved_epsilon(a: u64, b: u64, delta: f64, t_used: u64) -> f64 {
    let pairs = (a as f64) * (b as f64);
    if pairs < 1.0 {
        return 0.0;
    }
    if t_used == 0 {
        return f64::INFINITY;
    }
    (2.0 * (pairs / delta).ln() / t_used as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> ApproxParams {
        ApproxParams::paper_defaults()
    }

    #[test]
    fn eq3_matches_formula() {
        // n = 1000, k = 10, eps = 0.3, delta = 0.1:
        // t = 2/0.09 · ln(10·990/0.1) = 22.22… · ln(99000) ≈ 255.7 → 256.
        let t = basic_sample_size(1000, 10, paper());
        let expected = (2.0 / 0.09 * (9_900.0f64 / 0.1f64).ln()).ceil() as u64;
        assert_eq!(t, expected);
        assert_eq!(t, 256);
    }

    #[test]
    fn eq4_shrinks_with_pruning() {
        let full = basic_sample_size(10_000, 100, paper());
        // After pruning: 150 candidates, 40 slots already verified.
        let reduced = reduced_sample_size(150, 60, paper());
        assert!(reduced < full, "reduced {reduced} !< full {full}");
    }

    #[test]
    fn degenerate_cases_are_zero() {
        assert_eq!(basic_sample_size(10, 0, paper()), 0);
        assert_eq!(basic_sample_size(10, 10, paper()), 0);
        assert_eq!(basic_sample_size(10, 12, paper()), 0);
        assert_eq!(reduced_sample_size(5, 0, paper()), 0);
        assert_eq!(reduced_sample_size(5, 5, paper()), 0);
    }

    #[test]
    fn sample_size_monotone_in_accuracy() {
        let loose = basic_sample_size(1000, 10, ApproxParams::new(0.3, 0.1).unwrap());
        let tight_eps = basic_sample_size(1000, 10, ApproxParams::new(0.1, 0.1).unwrap());
        let tight_delta = basic_sample_size(1000, 10, ApproxParams::new(0.3, 0.01).unwrap());
        assert!(tight_eps > loose);
        assert!(tight_delta > loose);
    }

    #[test]
    fn tails_decrease_with_samples() {
        assert!(pairwise_tail(100, 0.3) > pairwise_tail(1000, 0.3));
        assert!(single_mean_tail(100, 0.3) > single_mean_tail(1000, 0.3));
        assert!(pairwise_tail(0, 0.3) == 1.0);
    }

    #[test]
    fn eq3_sample_size_achieves_delta() {
        // Plugging Eq. 3's t back into the union bound must give ≤ δ.
        let n = 5000;
        let k = 50;
        let t = basic_sample_size(n, k, paper());
        let fail = failure_probability(t, (k * (n - k)) as u64, 0.3);
        assert!(fail <= 0.1 + 1e-9, "fail = {fail}");
    }

    #[test]
    fn pair_count_below_one_rounds_to_zero() {
        // a·b = 0 ⇒ no ordering constraints.
        assert_eq!(reduced_sample_size(0, 0, paper()), 0);
    }

    #[test]
    fn tiny_pair_counts_still_positive() {
        // Even a single pair needs samples under the paper's parameters.
        let t = pair_bound_sample_size_public(1, 1);
        assert!(t > 0);
    }

    fn pair_bound_sample_size_public(a: u64, b: u64) -> u64 {
        super::pair_bound_sample_size(a, b, paper())
    }

    #[test]
    fn achieved_epsilon_inverts_the_budget() {
        // Running the full Eq. 3 budget achieves (about) the requested ε;
        // the ceil() in the budget makes the achieved value slightly
        // tighter, never looser.
        let t = basic_sample_size(1000, 10, paper());
        let eps = achieved_epsilon(10, 990, 0.1, t);
        assert!(eps <= 0.3 + 1e-12, "achieved {eps} looser than requested");
        assert!(eps > 0.29, "achieved {eps} implausibly tight");
        // Fewer samples → wider ε, monotonically.
        assert!(achieved_epsilon(10, 990, 0.1, t / 2) > eps);
        assert!(achieved_epsilon(10, 990, 0.1, t / 10) > achieved_epsilon(10, 990, 0.1, t / 2));
    }

    #[test]
    fn achieved_epsilon_degenerate_cases() {
        assert_eq!(achieved_epsilon(0, 990, 0.1, 100), 0.0, "no pairs → exact");
        assert_eq!(achieved_epsilon(10, 0, 0.1, 100), 0.0);
        assert!(achieved_epsilon(10, 990, 0.1, 0).is_infinite(), "no samples → no guarantee");
    }
}
