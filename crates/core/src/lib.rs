//! # vulnds-core — top-k vulnerable nodes detection in uncertain graphs
//!
//! Reference implementation of *Efficient Top-k Vulnerable Nodes Detection
//! in Uncertain Graphs* (Cheng, Chen, Wang, Xiang — ICDE 2022 /
//! arXiv:1912.12383): given a directed uncertain graph with self-risk and
//! diffusion probabilities, find the `k` nodes with the highest default
//! probability under possible-world semantics, a #P-hard quantity that is
//! estimated by sampling with `(ε, δ)` guarantees.
//!
//! The crate provides the paper's five algorithms (N, SN, SR, BSR, BSRBK),
//! the iterative lower/upper bounds used for pruning (Algorithms 2–3), the
//! candidate reduction of Algorithm 4, sample-size theory (Equations 3–4),
//! exact oracles for tiny graphs, and the precision metrics used in the
//! evaluation.
//!
//! The primary entry point is the session-oriented [`engine::Detector`]:
//! build one per graph, then issue typed requests — repeated queries
//! amortize bound computation, candidate reduction, and sampled worlds
//! through the session cache, and [`engine::Detector::detect_many`]
//! shares one sampling pass across a whole batch.
//!
//! ```
//! use ugraph::{UncertainGraph, NodeId};
//! use vulnds_core::engine::{DetectRequest, Detector};
//! use vulnds_core::AlgorithmKind;
//!
//! // The toy guaranteed-loan network of the paper's Figure 3.
//! let mut b = UncertainGraph::builder(5);
//! for v in 0..5 {
//!     b.set_self_risk(NodeId(v), 0.2).unwrap();
//! }
//! for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
//!     b.add_edge(NodeId(u), NodeId(v), 0.2).unwrap();
//! }
//! let g = b.build().unwrap();
//!
//! let mut detector = Detector::builder(&g).seed(7).build().unwrap();
//! let result = detector.detect(&DetectRequest::new(1, AlgorithmKind::BottomK)).unwrap();
//! // Node E (id 4) has three upstream guarantors: most vulnerable.
//! assert_eq!(result.top_k[0].node, NodeId(4));
//!
//! // Follow-up queries on the same session reuse its cached state.
//! let again = detector.detect(&DetectRequest::new(2, AlgorithmKind::BottomK)).unwrap();
//! assert!(again.engine.bounds_reused);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algo;
pub mod bounds;
pub mod candidates;
pub mod conditional;
pub mod config;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod exact;
pub mod precision;
pub mod sample_size;
pub mod scoring;
pub mod topk;
pub mod what_if;

pub use algo::{AlgorithmKind, DetectionResult, RunStats};
pub use bounds::{compute_bounds, lower_bounds_paper, lower_bounds_safe, upper_bounds};
pub use candidates::{reduce_candidates, CandidateReduction};
pub use conditional::{conditional_scores, intervention_scores, ConditionalScores};
pub use config::{ApproxParams, BoundsMethod, ConfigError, VulnConfig};
pub use dynamic::IncrementalBounds;
pub use engine::{
    DeltaOutcome, DetectRequest, DetectResponse, Detector, DetectorBuilder, EngineStats,
    IntoSharedGraph, SessionStats,
};
pub use error::VulnError;
pub use exact::{exact_default_probabilities, ground_truth, paper_ground_truth};
pub use precision::{precision_at_k, precision_with_ties, satisfies_epsilon_contract};
pub use sample_size::{basic_sample_size, reduced_sample_size};
pub use scoring::{score_nodes_bottomk, score_nodes_mc};
pub use topk::{select_top_k, select_top_k_dense, ScoredNode};
pub use ugraph::{NodeMap, NodeOrder};
pub use vulnds_sampling::{BlockWords, Direction};
pub use what_if::{
    apply_interventions, evaluate_interventions, greedy_hardening, Intervention, WhatIfReport,
};
