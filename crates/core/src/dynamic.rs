//! Incremental bound maintenance under probability updates.
//!
//! A deployed risk system (paper §5: "we detect all loans monthly")
//! recalibrates probabilities far more often than topology changes. A
//! self-risk or edge-probability update only affects nodes reachable
//! within `z` hops downstream of the change, so the order-`z` bounds of
//! Algorithms 2–3 can be repaired locally instead of recomputed from
//! scratch — `O(|affected z-ball| · z)` instead of `O(z (n + m))`.
//!
//! Design: the maintainer caches every *level* of the bound recursions
//! (`z` vectors each). An update dirties the changed node at level 1;
//! dirtiness then flows along out-edges one level per round, exactly
//! mirroring how the batch recursion consumes level `i−1` to produce
//! level `i`. Repaired values are therefore bit-identical to a full
//! recomputation, which the tests assert.

use crate::bounds::{best_path_step, equation1};
use crate::config::BoundsMethod;
use ugraph::{EdgeId, GraphError, NodeId, UncertainGraph};

/// Maintains order-`z` lower/upper bounds across probability updates.
#[derive(Debug, Clone)]
pub struct IncrementalBounds {
    graph: UncertainGraph,
    z: usize,
    method: BoundsMethod,
    /// `lower_levels[i]` — the lower recursion after `i+1` "orders"
    /// (level 0 is `ps`, matching Algorithm 2 order 1).
    lower_levels: Vec<Vec<f64>>,
    /// `upper_levels[i]` — the upper recursion after `i+1` applications
    /// of Equation 1 (level 0 is Eq. 1 with all-ones neighbors,
    /// matching Algorithm 3 order 1).
    upper_levels: Vec<Vec<f64>>,
}

impl IncrementalBounds {
    /// Computes initial bounds of order `z` (≥ 1).
    pub fn new(graph: UncertainGraph, z: usize, method: BoundsMethod) -> Self {
        assert!(z >= 1, "bound order must be at least 1");
        let n = graph.num_nodes();
        let mut lower_levels: Vec<Vec<f64>> = Vec::with_capacity(z);
        lower_levels.push(graph.nodes().map(|v| graph.self_risk(v)).collect());
        for i in 1..z {
            let prev = &lower_levels[i - 1];
            let next: Vec<f64> =
                graph.nodes().map(|v| lower_step(method, &graph, v, prev)).collect();
            lower_levels.push(next);
        }
        let ones = vec![1.0f64; n];
        let mut upper_levels: Vec<Vec<f64>> = Vec::with_capacity(z);
        upper_levels.push(graph.nodes().map(|v| equation1(&graph, v, &ones)).collect());
        for i in 1..z {
            let prev = &upper_levels[i - 1];
            let next: Vec<f64> = graph.nodes().map(|v| equation1(&graph, v, prev)).collect();
            upper_levels.push(next);
        }
        IncrementalBounds { graph, z, method, lower_levels, upper_levels }
    }

    /// The maintained graph.
    pub fn graph(&self) -> &UncertainGraph {
        &self.graph
    }

    /// The bound order `z`.
    pub fn order(&self) -> usize {
        self.z
    }

    /// Current (final-level) lower bounds.
    pub fn lower(&self) -> &[f64] {
        // xlint: allow(panic-hygiene) — the constructor rejects
        // `z == 0`, so both level stacks are never empty.
        self.lower_levels.last().expect("z >= 1")
    }

    /// Current (final-level) upper bounds.
    pub fn upper(&self) -> &[f64] {
        // xlint: allow(panic-hygiene) — same `z >= 1` construction
        // invariant as `lower`.
        self.upper_levels.last().expect("z >= 1")
    }

    /// Updates a node's self-risk and repairs the bounds. Returns the
    /// number of (node, level) cells recomputed — the cost witness used
    /// by tests and benchmarks.
    pub fn update_self_risk(&mut self, v: NodeId, ps: f64) -> Result<usize, GraphError> {
        self.graph.set_self_risk(v, ps)?;
        Ok(self.repair(&[v], true))
    }

    /// Updates an edge's diffusion probability and repairs the bounds.
    pub fn update_edge_prob(&mut self, e: EdgeId, prob: f64) -> Result<usize, GraphError> {
        self.graph.set_edge_prob(e, prob)?;
        let (_, target) = self.graph.edge_endpoints(e);
        // The edge probability enters every level's step at the target,
        // but not the lower level-0 seed (which is ps only).
        Ok(self.repair(&[target], false))
    }

    /// Repairs all cached levels given the set of directly-touched nodes.
    /// `touch_seed` says whether level 0 of the lower recursion (the `ps`
    /// seeds) changed at those nodes.
    fn repair(&mut self, touched: &[NodeId], touch_seed: bool) -> usize {
        let n = self.graph.num_nodes();
        let mut recomputed = 0usize;

        let _ = n;
        // --- lower recursion ---
        // `changed` holds the nodes whose level-(i−1) value changed; the
        // level-i candidates are their out-neighbors plus the touched
        // nodes (whose own step inputs changed at every level).
        let mut changed: Vec<u32> = Vec::new();
        if touch_seed {
            for &v in touched {
                let ps = self.graph.self_risk(v);
                if self.lower_levels[0][v.index()] != ps {
                    self.lower_levels[0][v.index()] = ps;
                    changed.push(v.0);
                    recomputed += 1;
                }
            }
        }
        for i in 1..self.z {
            let (before, rest) = self.lower_levels.split_at_mut(i);
            let prev = &before[i - 1];
            let cur = &mut rest[0];
            let mut candidates: Vec<u32> = touched.iter().map(|v| v.0).collect();
            for &c in &changed {
                candidates.extend(self.graph.out_neighbors(NodeId(c)));
            }
            candidates.sort_unstable();
            candidates.dedup();
            let mut next_changed = Vec::new();
            for &v in &candidates {
                let val = lower_step(self.method, &self.graph, NodeId(v), prev);
                recomputed += 1;
                if val != cur[v as usize] {
                    cur[v as usize] = val;
                    next_changed.push(v);
                }
            }
            changed = next_changed;
        }

        // --- upper recursion --- (level 0 is already one Eq.1 step, so
        // touched nodes are dirty at level 0 too).
        let ones = vec![1.0f64; self.graph.num_nodes()];
        let mut changed: Vec<u32> = Vec::new();
        for &v in touched {
            let val = equation1(&self.graph, v, &ones);
            recomputed += 1;
            if val != self.upper_levels[0][v.index()] {
                self.upper_levels[0][v.index()] = val;
                changed.push(v.0);
            }
        }
        for i in 1..self.z {
            let (before, rest) = self.upper_levels.split_at_mut(i);
            let prev = &before[i - 1];
            let cur = &mut rest[0];
            let mut candidates: Vec<u32> = touched.iter().map(|v| v.0).collect();
            for &c in &changed {
                candidates.extend(self.graph.out_neighbors(NodeId(c)));
            }
            candidates.sort_unstable();
            candidates.dedup();
            let mut next_changed = Vec::new();
            for &v in &candidates {
                let val = equation1(&self.graph, NodeId(v), prev);
                recomputed += 1;
                if val != cur[v as usize] {
                    cur[v as usize] = val;
                    next_changed.push(v);
                }
            }
            changed = next_changed;
        }
        recomputed
    }
}

#[inline]
fn lower_step(method: BoundsMethod, graph: &UncertainGraph, v: NodeId, prev: &[f64]) -> f64 {
    match method {
        BoundsMethod::Paper => equation1(graph, v, prev),
        BoundsMethod::Safe => best_path_step(graph, v, prev),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::compute_bounds;
    use ugraph::{from_parts, DuplicateEdgePolicy};
    use vulnds_sampling::Xoshiro256pp;

    fn random_graph(n: usize, m: usize, seed: u64) -> UncertainGraph {
        let mut rng = Xoshiro256pp::new(seed);
        let risks: Vec<f64> = (0..n).map(|_| rng.next_f64() * 0.5).collect();
        let mut edges = Vec::new();
        while edges.len() < m {
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            if u != v {
                edges.push((u, v, rng.next_f64() * 0.5));
            }
        }
        from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap()
    }

    fn assert_matches_batch(inc: &IncrementalBounds) {
        let (l, u) = compute_bounds(inc.graph(), inc.order(), inc.method);
        for v in 0..inc.graph().num_nodes() {
            assert!(
                (inc.lower()[v] - l[v]).abs() < 1e-12,
                "lower mismatch at {v}: {} vs {}",
                inc.lower()[v],
                l[v]
            );
            assert!(
                (inc.upper()[v] - u[v]).abs() < 1e-12,
                "upper mismatch at {v}: {} vs {}",
                inc.upper()[v],
                u[v]
            );
        }
    }

    #[test]
    fn initial_bounds_match_batch() {
        let g = random_graph(50, 120, 1);
        for method in [BoundsMethod::Paper, BoundsMethod::Safe] {
            for z in 1..=4 {
                let inc = IncrementalBounds::new(g.clone(), z, method);
                assert_matches_batch(&inc);
            }
        }
    }

    #[test]
    fn self_risk_update_matches_batch() {
        let g = random_graph(60, 150, 2);
        for method in [BoundsMethod::Paper, BoundsMethod::Safe] {
            let mut inc = IncrementalBounds::new(g.clone(), 2, method);
            for (i, &v) in [3u32, 17, 42, 3].iter().enumerate() {
                inc.update_self_risk(NodeId(v), 0.1 + 0.2 * i as f64).unwrap();
                assert_matches_batch(&inc);
            }
        }
    }

    #[test]
    fn edge_update_matches_batch() {
        let g = random_graph(60, 150, 3);
        let last = g.num_edges() as u32 - 1; // duplicates may shrink m
        let mut inc = IncrementalBounds::new(g, 3, BoundsMethod::Paper);
        for e in [0u32, 5, 60, last] {
            inc.update_edge_prob(EdgeId(e), 0.33).unwrap();
            assert_matches_batch(&inc);
        }
    }

    #[test]
    fn repeated_updates_stay_exact() {
        let g = random_graph(40, 100, 4);
        let mut inc = IncrementalBounds::new(g, 4, BoundsMethod::Paper);
        let mut rng = Xoshiro256pp::new(99);
        for _ in 0..25 {
            if rng.bernoulli(0.5) {
                let v = NodeId(rng.next_bounded(40) as u32);
                inc.update_self_risk(v, rng.next_f64()).unwrap();
            } else {
                let e = EdgeId(rng.next_bounded(inc.graph().num_edges() as u64) as u32);
                inc.update_edge_prob(e, rng.next_f64()).unwrap();
            }
        }
        assert_matches_batch(&inc);
    }

    #[test]
    fn chain_update_cost_is_local() {
        // On a long chain with z = 2, an update should recompute a
        // handful of cells, not O(n·z).
        let n = 10_000;
        let edges: Vec<(u32, u32, f64)> = (0..n as u32 - 1).map(|v| (v, v + 1, 0.5)).collect();
        let g = from_parts(&vec![0.2; n], &edges, DuplicateEdgePolicy::Error).unwrap();
        let mut inc = IncrementalBounds::new(g, 2, BoundsMethod::Paper);
        let tail_before = inc.lower()[n - 1];
        let cells = inc.update_self_risk(NodeId(0), 0.9).unwrap();
        assert!(cells <= 8, "recomputed {cells} cells on a chain");
        assert_eq!(inc.lower()[n - 1], tail_before, "tail must be untouched");
        assert!(inc.lower()[1] > 0.2, "successor must feel the update");
    }

    #[test]
    fn no_op_update_recomputes_but_changes_nothing() {
        let g = random_graph(30, 60, 5);
        let mut inc = IncrementalBounds::new(g.clone(), 2, BoundsMethod::Paper);
        let before = (inc.lower().to_vec(), inc.upper().to_vec());
        inc.update_self_risk(NodeId(0), g.self_risk(NodeId(0))).unwrap();
        assert_eq!(inc.lower(), &before.0[..]);
        assert_eq!(inc.upper(), &before.1[..]);
        assert_matches_batch(&inc);
    }

    #[test]
    fn invalid_updates_are_rejected() {
        let g = random_graph(10, 20, 6);
        let mut inc = IncrementalBounds::new(g, 2, BoundsMethod::Paper);
        assert!(inc.update_self_risk(NodeId(99), 0.5).is_err());
        assert!(inc.update_self_risk(NodeId(0), 1.5).is_err());
        assert!(inc.update_edge_prob(EdgeId(999), 0.5).is_err());
        assert_matches_batch(&inc);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_order_rejected() {
        let g = random_graph(5, 8, 7);
        IncrementalBounds::new(g, 0, BoundsMethod::Paper);
    }
}
