//! Precision@k — the effectiveness metric of the paper's Figures 4 and 7.

use crate::topk::{select_top_k_dense, ScoredNode};
use ugraph::NodeId;

/// Strict precision: `|returned ∩ true top-k| / k`.
///
/// `truth` is the ground-truth score of every node; the true top-k is
/// taken with the same deterministic tie-breaking as the algorithms.
pub fn precision_at_k(returned: &[ScoredNode], truth: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let true_top = select_top_k_dense(truth, k);
    let mut in_top = vec![false; truth.len()];
    for s in &true_top {
        in_top[s.node.index()] = true;
    }
    let hits = returned.iter().take(k).filter(|s| in_top[s.node.index()]).count();
    hits as f64 / k as f64
}

/// Tie-tolerant precision: a returned node counts as correct when its
/// *true* score is at least `Pk − tol`, where `Pk` is the true k-th
/// score. With many boundary ties, strict set intersection punishes
/// arbitrary (but equally valid) tie-breaking; this variant does not.
pub fn precision_with_ties(returned: &[ScoredNode], truth: &[f64], k: usize, tol: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let pk = crate::topk::kth_largest(truth, k.min(truth.len())).unwrap_or(0.0);
    let hits = returned.iter().take(k).filter(|s| truth[s.node.index()] >= pk - tol).count();
    hits as f64 / k as f64
}

/// Checks the `(ε, δ)` contract of Definition 2 for one run (the "did it
/// hold this time" event, not the probability): every returned node has
/// true score `≥ Pk − ε` and every non-returned node `< Pk + ε`.
pub fn satisfies_epsilon_contract(
    returned: &[ScoredNode],
    truth: &[f64],
    k: usize,
    epsilon: f64,
) -> bool {
    let pk = match crate::topk::kth_largest(truth, k) {
        Some(p) => p,
        None => return true,
    };
    let mut in_returned = vec![false; truth.len()];
    for s in returned.iter().take(k) {
        in_returned[s.node.index()] = true;
    }
    for (v, &p) in truth.iter().enumerate() {
        if in_returned[v] {
            if p < pk - epsilon {
                return false;
            }
        } else if p >= pk + epsilon {
            return false;
        }
    }
    true
}

/// Convenience: wraps raw node ids as unit-scored entries, for metrics
/// over baseline rankings that carry no calibrated scores.
pub fn as_scored(nodes: &[NodeId]) -> Vec<ScoredNode> {
    nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| ScoredNode { node, score: 1.0 - i as f64 * 1e-9 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(ids: &[u32]) -> Vec<ScoredNode> {
        ids.iter()
            .enumerate()
            .map(|(i, &n)| ScoredNode { node: NodeId(n), score: 1.0 - i as f64 * 0.01 })
            .collect()
    }

    #[test]
    fn perfect_precision() {
        let truth = [0.9, 0.8, 0.1, 0.0];
        assert_eq!(precision_at_k(&scored(&[0, 1]), &truth, 2), 1.0);
        assert_eq!(precision_at_k(&scored(&[1, 0]), &truth, 2), 1.0); // order-free
    }

    #[test]
    fn partial_precision() {
        let truth = [0.9, 0.8, 0.1, 0.0];
        assert_eq!(precision_at_k(&scored(&[0, 2]), &truth, 2), 0.5);
        assert_eq!(precision_at_k(&scored(&[2, 3]), &truth, 2), 0.0);
    }

    #[test]
    fn k_zero_is_vacuously_perfect() {
        assert_eq!(precision_at_k(&[], &[0.5], 0), 1.0);
        assert_eq!(precision_with_ties(&[], &[0.5], 0, 0.0), 1.0);
    }

    #[test]
    fn tie_tolerant_forgives_boundary_swaps() {
        // Nodes 1 and 2 tie at the k = 2 boundary.
        let truth = [0.9, 0.5, 0.5, 0.1];
        let strict_a = precision_at_k(&scored(&[0, 2]), &truth, 2);
        // Strict counts node 2 as a miss (tie broken toward node 1)...
        assert_eq!(strict_a, 0.5);
        // ...but the tie-tolerant metric accepts either.
        assert_eq!(precision_with_ties(&scored(&[0, 2]), &truth, 2, 1e-9), 1.0);
        // A genuinely wrong node is still wrong.
        assert_eq!(precision_with_ties(&scored(&[0, 3]), &truth, 2, 1e-9), 0.5);
    }

    #[test]
    fn epsilon_contract() {
        let truth = [0.9, 0.6, 0.5, 0.1];
        // Pk for k=2 is 0.6. Returning {0, 2} violates nothing at ε=0.2
        // (0.5 ≥ 0.6 − 0.2, and excluded node 1 has 0.6 < 0.6 + 0.2).
        assert!(satisfies_epsilon_contract(&scored(&[0, 2]), &truth, 2, 0.2));
        // At ε = 0.05, returning node 3 (0.1 < 0.55) violates.
        assert!(!satisfies_epsilon_contract(&scored(&[0, 3]), &truth, 2, 0.05));
        // Excluding a node far above Pk + ε violates.
        assert!(!satisfies_epsilon_contract(&scored(&[2, 3]), &truth, 2, 0.05));
    }

    #[test]
    fn as_scored_preserves_order() {
        let s = as_scored(&[NodeId(7), NodeId(3)]);
        assert_eq!(s[0].node, NodeId(7));
        assert!(s[0].score > s[1].score);
    }
}
