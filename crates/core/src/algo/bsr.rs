//! `BSR` — bounds + verification + reverse sampling with the reduced
//! sample size of Equation 4 (Theorem 5).

use super::reverse_common::{assemble_result, merge_verified, prune};
use super::{validate_k, AlgorithmKind, DetectionResult, RunStats};
use crate::config::VulnConfig;
use crate::sample_size::reduced_sample_size;
use crate::topk::{select_top_k, ScoredNode};
use std::time::Instant;
use ugraph::UncertainGraph;
use vulnds_sampling::{parallel_reverse_counts, reverse_counts};

/// Runs BSR: Algorithm 2 + 3 bounds, Algorithm 4 reduction, then reverse
/// sampling over `B` with `t = (2/ε²) ln((k−k')(|B|−k+k')/δ)`.
pub fn detect_bsr(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
    validate_k(graph, k);
    let start = Instant::now();
    let pruned = prune(graph, k, config);
    let k_verified = pruned.reduction.verified_count();
    let k_rem = k - k_verified.min(k);
    let candidates = pruned.reduction.candidates.clone();

    // Degenerate cases: everything decided by the bounds alone.
    if k_rem == 0 || candidates.len() <= k_rem {
        let chosen = select_top_k(
            candidates
                .iter()
                .map(|&node| ScoredNode { node, score: pruned.midpoint_score(node) }),
            k_rem,
        );
        let top_k = merge_verified(&pruned, chosen, k);
        return DetectionResult {
            top_k,
            stats: RunStats {
                algorithm: AlgorithmKind::BoundedSampleReverse,
                sample_budget: 0,
                samples_used: 0,
                candidates: candidates.len(),
                verified: k_verified,
                early_stopped: false,
                elapsed: start.elapsed(),
            },
        };
    }

    let t = config
        .cap_samples(reduced_sample_size(candidates.len(), k_rem, config.approx))
        .max(1);
    let counts = if config.threads > 1 {
        parallel_reverse_counts(graph, &candidates, t, config.seed, config.threads)
    } else {
        reverse_counts(graph, &candidates, t, config.seed)
    };
    let top_k = assemble_result(&pruned, &candidates, &counts, k);
    DetectionResult {
        top_k,
        stats: RunStats {
            algorithm: AlgorithmKind::BoundedSampleReverse,
            sample_budget: t,
            samples_used: t,
            candidates: candidates.len(),
            verified: k_verified,
            early_stopped: false,
            elapsed: start.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_size::basic_sample_size;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId};

    fn skewed() -> UncertainGraph {
        // One dominant node, a mid-tier pair, a long tail of safe nodes.
        let mut risks = vec![0.95, 0.5, 0.45];
        risks.extend(std::iter::repeat_n(0.01, 30));
        let edges: Vec<(u32, u32, f64)> =
            (3..32).map(|v| (0u32, v as u32, 0.02)).collect();
        from_parts(&risks, &edges, DuplicateEdgePolicy::Error).unwrap()
    }

    #[test]
    fn finds_dominant_nodes() {
        let g = skewed();
        let r = detect_bsr(&g, 3, &VulnConfig::default().with_seed(2));
        let mut ids = r.node_ids();
        ids.sort_unstable_by_key(|v| v.0);
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn budget_not_larger_than_sn() {
        // Equation 4 is the point of BSR: with pruning, never more samples
        // than Equation 3.
        let g = skewed();
        let cfg = VulnConfig::default();
        let r = detect_bsr(&g, 3, &cfg);
        let sn_budget = basic_sample_size(g.num_nodes(), 3, cfg.approx);
        assert!(
            r.stats.sample_budget <= sn_budget,
            "bsr {} > sn {sn_budget}",
            r.stats.sample_budget
        );
    }

    #[test]
    fn pruning_shrinks_candidates() {
        let g = skewed();
        let r = detect_bsr(&g, 3, &VulnConfig::default());
        assert!(
            r.stats.candidates < g.num_nodes(),
            "no pruning happened: {} candidates",
            r.stats.candidates
        );
    }

    #[test]
    fn zero_sampling_when_bounds_decide() {
        // Distinct deterministic risks and no edges: bounds are exact and
        // everything is verified.
        let g = from_parts(&[0.9, 0.7, 0.5, 0.3], &[], DuplicateEdgePolicy::Error).unwrap();
        let r = detect_bsr(&g, 2, &VulnConfig::default());
        assert_eq!(r.stats.samples_used, 0);
        assert_eq!(r.node_ids(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(r.stats.verified, 2);
    }

    #[test]
    fn result_always_has_k_entries() {
        let g = skewed();
        for k in [1, 2, 5, 10, 33] {
            let r = detect_bsr(&g, k, &VulnConfig::default());
            assert_eq!(r.top_k.len(), k, "k = {k}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = skewed();
        let seq = detect_bsr(&g, 3, &VulnConfig::default().with_seed(4));
        let par = detect_bsr(&g, 3, &VulnConfig::default().with_seed(4).with_threads(4));
        assert_eq!(seq.top_k, par.top_k);
    }
}
