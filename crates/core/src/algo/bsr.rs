//! `BSR` — bounds + verification + reverse sampling with the reduced
//! sample size of Equation 4 (Theorem 5).
//!
//! The implementation lives in
//! [`engine::BoundedSampleReverse`](crate::engine::BoundedSampleReverse);
//! this module holds its behavioral test suite (the 0.2.0 free-function
//! shim was removed in 0.3.0).

#[cfg(test)]
mod tests {
    use crate::algo::{run_one_shot, AlgorithmKind, DetectionResult};
    use crate::config::VulnConfig;
    use crate::sample_size::basic_sample_size;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId, UncertainGraph};

    fn detect_bsr(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
        run_one_shot(graph, k, AlgorithmKind::BoundedSampleReverse, config)
    }

    fn skewed() -> UncertainGraph {
        // One dominant node, a mid-tier pair, a long tail of safe nodes.
        let mut risks = vec![0.95, 0.5, 0.45];
        risks.extend(std::iter::repeat_n(0.01, 30));
        let edges: Vec<(u32, u32, f64)> = (3..32).map(|v| (0u32, v as u32, 0.02)).collect();
        from_parts(&risks, &edges, DuplicateEdgePolicy::Error).unwrap()
    }

    #[test]
    fn finds_dominant_nodes() {
        let g = skewed();
        let r = detect_bsr(&g, 3, &VulnConfig::default().with_seed(2));
        let mut ids = r.node_ids();
        ids.sort_unstable_by_key(|v| v.0);
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn budget_not_larger_than_sn() {
        // Equation 4 is the point of BSR: with pruning, never more samples
        // than Equation 3.
        let g = skewed();
        let cfg = VulnConfig::default();
        let r = detect_bsr(&g, 3, &cfg);
        let sn_budget = basic_sample_size(g.num_nodes(), 3, cfg.approx);
        assert!(
            r.stats.sample_budget <= sn_budget,
            "bsr {} > sn {sn_budget}",
            r.stats.sample_budget
        );
    }

    #[test]
    fn pruning_shrinks_candidates() {
        let g = skewed();
        let r = detect_bsr(&g, 3, &VulnConfig::default());
        assert!(
            r.stats.candidates < g.num_nodes(),
            "no pruning happened: {} candidates",
            r.stats.candidates
        );
    }

    #[test]
    fn zero_sampling_when_bounds_decide() {
        // Distinct deterministic risks and no edges: bounds are exact and
        // everything is verified.
        let g = from_parts(&[0.9, 0.7, 0.5, 0.3], &[], DuplicateEdgePolicy::Error).unwrap();
        let r = detect_bsr(&g, 2, &VulnConfig::default());
        assert_eq!(r.stats.samples_used, 0);
        assert_eq!(r.node_ids(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(r.stats.verified, 2);
    }

    #[test]
    fn result_always_has_k_entries() {
        let g = skewed();
        for k in [1, 2, 5, 10, 33] {
            let r = detect_bsr(&g, k, &VulnConfig::default());
            assert_eq!(r.top_k.len(), k, "k = {k}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = skewed();
        let seq = detect_bsr(&g, 3, &VulnConfig::default().with_seed(4));
        let par = detect_bsr(&g, 3, &VulnConfig::default().with_seed(4).with_threads(4));
        assert_eq!(seq.top_k, par.top_k);
    }
}
