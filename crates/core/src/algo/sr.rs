//! `SR` — reverse sampling over the candidate set derived with the
//! *second* rule of Lemma 1 only (no verification).
//!
//! The implementation lives in
//! [`engine::SampleReverse`](crate::engine::SampleReverse); this module
//! holds its behavioral test suite (the 0.2.0 free-function shim was
//! removed in 0.3.0).

#[cfg(test)]
mod tests {
    use crate::algo::{run_one_shot, AlgorithmKind, DetectionResult};
    use crate::config::VulnConfig;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId, UncertainGraph};

    fn detect_sr(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
        run_one_shot(graph, k, AlgorithmKind::SampleReverse, config)
    }

    fn graph() -> UncertainGraph {
        from_parts(
            &[0.8, 0.1, 0.05, 0.02, 0.01],
            &[(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.3), (3, 4, 0.1)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn finds_clear_top2() {
        // p ≈ (0.8, 0.748, 0.4, 0.13, 0.02).
        let g = graph();
        let r = detect_sr(&g, 2, &VulnConfig::default().with_seed(5));
        assert_eq!(r.node_ids(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(r.stats.verified, 0, "SR never verifies");
    }

    #[test]
    fn candidate_set_is_at_most_n() {
        let g = graph();
        let r = detect_sr(&g, 2, &VulnConfig::default());
        assert!(r.stats.candidates <= 5);
        assert!(r.stats.candidates >= 2);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = graph();
        let seq = detect_sr(&g, 2, &VulnConfig::default().with_seed(9));
        let par = detect_sr(&g, 2, &VulnConfig::default().with_seed(9).with_threads(3));
        assert_eq!(seq.top_k, par.top_k);
    }

    #[test]
    fn sample_cap_respected() {
        let g = graph();
        let r = detect_sr(&g, 2, &VulnConfig::default().with_max_samples(7));
        assert!(r.stats.sample_budget <= 7);
    }
}
