//! `SR` — reverse sampling over the candidate set derived with the
//! *second* rule of Lemma 1 only (no verification).

use super::reverse_common::{assemble_result, prune, Pruned};
use super::{validate_k, AlgorithmKind, DetectionResult, RunStats};
use crate::candidates::CandidateReduction;
use crate::config::VulnConfig;
use crate::sample_size::reduced_sample_size;
use std::time::Instant;
use ugraph::UncertainGraph;
use vulnds_sampling::{parallel_reverse_counts, reverse_counts};

/// Runs SR: prune with rule 2, reverse-sample the survivors with
/// `t = (2/ε²) ln(k(|B|−k)/δ)`, return the top-k estimates.
pub fn detect_sr(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
    validate_k(graph, k);
    let start = Instant::now();
    let full = prune(graph, k, config);
    // Rule 2 only: fold the verified nodes back into the candidate pool.
    let mut candidates = full.reduction.verified.clone();
    candidates.extend(full.reduction.candidates.iter().copied());
    candidates.sort_unstable_by_key(|v| v.0);
    let pruned = Pruned {
        lower: full.lower,
        upper: full.upper,
        reduction: CandidateReduction {
            verified: Vec::new(),
            candidates: candidates.clone(),
            t_lower: full.reduction.t_lower,
            t_upper: full.reduction.t_upper,
        },
    };

    let t = config
        .cap_samples(reduced_sample_size(candidates.len(), k, config.approx))
        .max(1);
    let counts = if config.threads > 1 {
        parallel_reverse_counts(graph, &candidates, t, config.seed, config.threads)
    } else {
        reverse_counts(graph, &candidates, t, config.seed)
    };
    let top_k = assemble_result(&pruned, &candidates, &counts, k);
    DetectionResult {
        top_k,
        stats: RunStats {
            algorithm: AlgorithmKind::SampleReverse,
            sample_budget: t,
            samples_used: t,
            candidates: candidates.len(),
            verified: 0,
            early_stopped: false,
            elapsed: start.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId};

    fn graph() -> UncertainGraph {
        from_parts(
            &[0.8, 0.1, 0.05, 0.02, 0.01],
            &[(0, 1, 0.9), (1, 2, 0.5), (2, 3, 0.3), (3, 4, 0.1)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn finds_clear_top2() {
        // p ≈ (0.8, 0.748, 0.4, 0.13, 0.02).
        let g = graph();
        let r = detect_sr(&g, 2, &VulnConfig::default().with_seed(5));
        assert_eq!(r.node_ids(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(r.stats.verified, 0, "SR never verifies");
    }

    #[test]
    fn candidate_set_is_at_most_n() {
        let g = graph();
        let r = detect_sr(&g, 2, &VulnConfig::default());
        assert!(r.stats.candidates <= 5);
        assert!(r.stats.candidates >= 2);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = graph();
        let seq = detect_sr(&g, 2, &VulnConfig::default().with_seed(9));
        let par = detect_sr(&g, 2, &VulnConfig::default().with_seed(9).with_threads(3));
        assert_eq!(seq.top_k, par.top_k);
    }

    #[test]
    fn sample_cap_respected() {
        let g = graph();
        let r = detect_sr(&g, 2, &VulnConfig::default().with_max_samples(7));
        assert!(r.stats.sample_budget <= 7);
    }
}
