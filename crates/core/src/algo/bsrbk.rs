//! `BSRBK` — BSR plus the bottom-k early-stopping rule (paper §3.3).
//!
//! The implementation lives in
//! [`engine::BottomKEarlyStop`](crate::engine::BottomKEarlyStop); this
//! module holds its behavioral test suite (the 0.2.0 free-function shim
//! was removed in 0.3.0). See the engine type for the algorithm
//! description (hash-ordered samples, Theorem-6 stopping rule, BSR-style
//! fallback when the budget runs out).

#[cfg(test)]
mod tests {
    use crate::algo::{run_one_shot, AlgorithmKind, DetectionResult};
    use crate::config::VulnConfig;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId, UncertainGraph};
    use vulnds_sampling::Xoshiro256pp;

    fn detect_bsrbk(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
        run_one_shot(graph, k, AlgorithmKind::BottomK, config)
    }

    fn detect_bsr(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
        run_one_shot(graph, k, AlgorithmKind::BoundedSampleReverse, config)
    }

    /// A random sparse graph whose order-2 bounds are genuinely loose
    /// (every node sits on a cycle-ish mesh, so intervals overlap and
    /// sampling is actually required).
    fn random_graph(n: usize, m: usize, seed: u64) -> UncertainGraph {
        let mut rng = Xoshiro256pp::new(seed);
        let risks: Vec<f64> = (0..n).map(|_| rng.next_f64() * 0.5).collect();
        let mut edges = Vec::with_capacity(m);
        while edges.len() < m {
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            if u != v {
                edges.push((u, v, rng.next_f64() * 0.5));
            }
        }
        from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap()
    }

    #[test]
    fn early_stops_when_sampling_is_needed() {
        let g = random_graph(300, 600, 3);
        let r = detect_bsrbk(&g, 5, &VulnConfig::default().with_seed(3));
        assert!(r.stats.candidates > 0, "bounds resolved everything; test graph too easy");
        assert!(r.stats.early_stopped, "expected early stop; stats: {:?}", r.stats);
        assert!(r.stats.samples_used < r.stats.sample_budget);
        assert_eq!(r.top_k.len(), 5);
    }

    #[test]
    fn uses_fewer_samples_than_bsr() {
        let g = random_graph(400, 800, 5);
        let cfg = VulnConfig::default().with_seed(5);
        let bsr = detect_bsr(&g, 10, &cfg);
        let bk = detect_bsrbk(&g, 10, &cfg);
        assert!(
            bk.stats.samples_used <= bsr.stats.samples_used,
            "bsrbk {} > bsr {}",
            bk.stats.samples_used,
            bsr.stats.samples_used
        );
    }

    #[test]
    fn falls_back_gracefully_on_tiny_budget() {
        // Cap far below what bk saturation needs: must not early-stop, and
        // must still return k nodes.
        let g = random_graph(100, 200, 7);
        let cfg = VulnConfig::default().with_seed(7).with_max_samples(5).with_bk(16);
        let r = detect_bsrbk(&g, 3, &cfg);
        assert!(!r.stats.early_stopped);
        assert_eq!(r.top_k.len(), 3);
        assert_eq!(r.stats.samples_used, r.stats.sample_budget);
    }

    #[test]
    fn deterministic() {
        let g = random_graph(150, 300, 11);
        let cfg = VulnConfig::default().with_seed(11);
        assert_eq!(detect_bsrbk(&g, 3, &cfg).top_k, detect_bsrbk(&g, 3, &cfg).top_k);
    }

    #[test]
    fn returned_nodes_are_near_the_true_boundary() {
        // BSRBK has no tight per-run guarantee, but every returned node's
        // true probability should sit near or above the true k-th value —
        // the paper reports a ≤ 3% precision gap on its (skewed) datasets
        // and our tolerance of 0.15 on a crowded uniform boundary reflects
        // the bk = 16 sketch CV of ~27%.
        let g = random_graph(300, 600, 13);
        let cfg = VulnConfig::default().with_seed(13);
        let k = 15;
        let truth = crate::exact::ground_truth(&g, 20_000, 999, 1);
        let r = detect_bsrbk(&g, k, &cfg);
        let p = crate::precision::precision_with_ties(&r.top_k, &truth, k, 0.15);
        assert!(p >= 0.8, "tolerant precision {p} too low");
    }

    #[test]
    fn high_precision_on_skewed_risks() {
        // Financial-style skew (a few clearly risky nodes): BSRBK should
        // match the true top-k almost exactly, as in the paper's Figure 7.
        let n = 300usize;
        let mut rng = Xoshiro256pp::new(29);
        let risks: Vec<f64> = (0..n)
            .map(|_| {
                let r = rng.next_f64();
                0.9 * r * r * r // cubic skew: most tiny, a few large
            })
            .collect();
        let mut edges = Vec::new();
        while edges.len() < 500 {
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            if u != v {
                edges.push((u, v, rng.next_f64() * 0.3));
            }
        }
        let g = from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap();
        let truth = crate::exact::ground_truth(&g, 20_000, 777, 1);
        let k = 10;
        let r = detect_bsrbk(&g, k, &VulnConfig::default().with_seed(29));
        let p = crate::precision::precision_with_ties(&r.top_k, &truth, k, 0.02);
        assert!(p >= 0.7, "precision {p} too low on skewed risks");
    }

    #[test]
    fn verified_nodes_always_included() {
        let mut risks = vec![0.99];
        risks.extend(std::iter::repeat_n(0.2, 50));
        let edges: Vec<(u32, u32, f64)> = (1..=50).map(|v| (v as u32, 0u32, 0.1)).collect();
        let g = from_parts(&risks, &edges, DuplicateEdgePolicy::Error).unwrap();
        let r = detect_bsrbk(&g, 3, &VulnConfig::default().with_seed(1));
        assert!(r.node_ids().contains(&NodeId(0)), "dominant node missing");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_bk() {
        let g = random_graph(10, 20, 1);
        detect_bsrbk(&g, 2, &VulnConfig::default().with_bk(1));
    }

    #[test]
    fn larger_bk_uses_more_samples() {
        let g = random_graph(300, 600, 17);
        let small = detect_bsrbk(&g, 5, &VulnConfig::default().with_seed(17).with_bk(4));
        let large = detect_bsrbk(&g, 5, &VulnConfig::default().with_seed(17).with_bk(32));
        assert!(
            small.stats.samples_used <= large.stats.samples_used,
            "bk=4 used {}, bk=32 used {}",
            small.stats.samples_used,
            large.stats.samples_used
        );
    }
}
