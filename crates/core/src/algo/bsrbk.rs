//! `BSRBK` — BSR plus the bottom-k early-stopping rule (paper §3.3).
//!
//! Sample ids `0..t` are assigned hash values in `(0, 1)` and visited in
//! ascending hash order. Each candidate counts the samples in which it
//! defaults; the moment `k − k'` candidates have reached `bk` hits, the
//! run stops. By Theorem 6 the candidates that saturate first are exactly
//! those with the largest bottom-k estimates
//! `p̂(v) = (bk − 1) / (h_bk(v) · t)`, where `h_bk(v)` is the hash of the
//! sample in which `v` scored its `bk`-th hit.
//!
//! If the budget is exhausted before the stop condition fires, the
//! algorithm degrades to plain BSR ranking: unsaturated candidates are
//! ranked by `count / samples`, saturated ones by their sketch estimate
//! (their raw counts are frozen at `bk` because saturated candidates are
//! skipped — the sketch estimate is the unbiased continuation).

use super::reverse_common::{merge_verified, prune};
use super::{validate_k, AlgorithmKind, DetectionResult, RunStats};
use crate::config::VulnConfig;
use crate::sample_size::reduced_sample_size;
use crate::topk::{select_top_k, ScoredNode};
use std::time::Instant;
use ugraph::UncertainGraph;
use vulnds_sampling::{ReverseSampler, Xoshiro256pp};
use vulnds_sketch::{bottomk_default_probability, hash_order, UnitHasher};

/// Seed domain separator so the sample-order hash never correlates with
/// the possible-world RNG streams.
const HASH_DOMAIN: u64 = 0xB077_0A6B_5EED_0001;

/// Runs BSRBK. See the module docs.
pub fn detect_bsrbk(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
    validate_k(graph, k);
    assert!(config.bk >= 2, "bottom-k parameter must be at least 2");
    let start = Instant::now();
    let pruned = prune(graph, k, config);
    let k_verified = pruned.reduction.verified_count();
    let k_rem = k - k_verified.min(k);
    let candidates = pruned.reduction.candidates.clone();

    if k_rem == 0 || candidates.len() <= k_rem {
        let chosen = select_top_k(
            candidates
                .iter()
                .map(|&node| ScoredNode { node, score: pruned.midpoint_score(node) }),
            k_rem,
        );
        let top_k = merge_verified(&pruned, chosen, k);
        return DetectionResult {
            top_k,
            stats: RunStats {
                algorithm: AlgorithmKind::BottomK,
                sample_budget: 0,
                samples_used: 0,
                candidates: candidates.len(),
                verified: k_verified,
                early_stopped: false,
                elapsed: start.elapsed(),
            },
        };
    }

    let t = config
        .cap_samples(reduced_sample_size(candidates.len(), k_rem, config.approx))
        .max(1);
    let hasher = UnitHasher::new(config.seed ^ HASH_DOMAIN);
    let order = hash_order(&hasher, t as usize);

    let mut sampler = ReverseSampler::new(graph);
    let mut counters = vec![0u32; candidates.len()];
    let mut kth_hash = vec![0.0f64; candidates.len()];
    let mut saturated = vec![false; candidates.len()];
    let mut saturated_count = 0usize;
    let mut samples_used = 0u64;
    let mut early_stopped = false;

    'outer: for &sample_id in &order {
        let h = hasher.hash_unit(sample_id as u64);
        let mut rng = Xoshiro256pp::for_sample(config.seed, sample_id as u64);
        sampler.begin_sample();
        samples_used += 1;
        for (i, &v) in candidates.iter().enumerate() {
            if saturated[i] {
                continue;
            }
            if sampler.is_influenced(graph, v, &mut rng) {
                counters[i] += 1;
                if counters[i] as usize == config.bk {
                    saturated[i] = true;
                    kth_hash[i] = h;
                    saturated_count += 1;
                }
            }
        }
        if saturated_count >= k_rem {
            early_stopped = true;
            break 'outer;
        }
    }

    let chosen = if early_stopped {
        // Rank the saturated candidates by their sketch estimates; more
        // than k_rem can saturate in the final sample, so select.
        select_top_k(
            candidates.iter().enumerate().filter(|(i, _)| saturated[*i]).map(|(i, &node)| {
                ScoredNode {
                    node,
                    score: bottomk_default_probability(config.bk, kth_hash[i], t as usize),
                }
            }),
            k_rem,
        )
    } else {
        // Budget exhausted: BSR-style ranking.
        select_top_k(
            candidates.iter().enumerate().map(|(i, &node)| ScoredNode {
                node,
                score: if saturated[i] {
                    bottomk_default_probability(config.bk, kth_hash[i], t as usize)
                } else {
                    counters[i] as f64 / samples_used as f64
                },
            }),
            k_rem,
        )
    };
    let top_k = merge_verified(&pruned, chosen, k);

    DetectionResult {
        top_k,
        stats: RunStats {
            algorithm: AlgorithmKind::BottomK,
            sample_budget: t,
            samples_used,
            candidates: candidates.len(),
            verified: k_verified,
            early_stopped,
            elapsed: start.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId};

    /// A random sparse graph whose order-2 bounds are genuinely loose
    /// (every node sits on a cycle-ish mesh, so intervals overlap and
    /// sampling is actually required).
    fn random_graph(n: usize, m: usize, seed: u64) -> UncertainGraph {
        let mut rng = Xoshiro256pp::new(seed);
        let risks: Vec<f64> = (0..n).map(|_| rng.next_f64() * 0.5).collect();
        let mut edges = Vec::with_capacity(m);
        while edges.len() < m {
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            if u != v {
                edges.push((u, v, rng.next_f64() * 0.5));
            }
        }
        from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap()
    }

    #[test]
    fn early_stops_when_sampling_is_needed() {
        let g = random_graph(300, 600, 3);
        let r = detect_bsrbk(&g, 5, &VulnConfig::default().with_seed(3));
        assert!(r.stats.candidates > 0, "bounds resolved everything; test graph too easy");
        assert!(r.stats.early_stopped, "expected early stop; stats: {:?}", r.stats);
        assert!(r.stats.samples_used < r.stats.sample_budget);
        assert_eq!(r.top_k.len(), 5);
    }

    #[test]
    fn uses_fewer_samples_than_bsr() {
        let g = random_graph(400, 800, 5);
        let cfg = VulnConfig::default().with_seed(5);
        let bsr = super::super::detect_bsr(&g, 10, &cfg);
        let bk = detect_bsrbk(&g, 10, &cfg);
        assert!(
            bk.stats.samples_used <= bsr.stats.samples_used,
            "bsrbk {} > bsr {}",
            bk.stats.samples_used,
            bsr.stats.samples_used
        );
    }

    #[test]
    fn falls_back_gracefully_on_tiny_budget() {
        // Cap far below what bk saturation needs: must not early-stop, and
        // must still return k nodes.
        let g = random_graph(100, 200, 7);
        let cfg = VulnConfig::default().with_seed(7).with_max_samples(5).with_bk(16);
        let r = detect_bsrbk(&g, 3, &cfg);
        assert!(!r.stats.early_stopped);
        assert_eq!(r.top_k.len(), 3);
        assert_eq!(r.stats.samples_used, r.stats.sample_budget);
    }

    #[test]
    fn deterministic() {
        let g = random_graph(150, 300, 11);
        let cfg = VulnConfig::default().with_seed(11);
        assert_eq!(detect_bsrbk(&g, 3, &cfg).top_k, detect_bsrbk(&g, 3, &cfg).top_k);
    }

    #[test]
    fn returned_nodes_are_near_the_true_boundary() {
        // BSRBK has no tight per-run guarantee, but every returned node's
        // true probability should sit near or above the true k-th value —
        // the paper reports a ≤ 3% precision gap on its (skewed) datasets
        // and our tolerance of 0.15 on a crowded uniform boundary reflects
        // the bk = 16 sketch CV of ~27%.
        let g = random_graph(300, 600, 13);
        let cfg = VulnConfig::default().with_seed(13);
        let k = 15;
        let truth = crate::exact::ground_truth(&g, 20_000, 999, 1);
        let r = detect_bsrbk(&g, k, &cfg);
        let p = crate::precision::precision_with_ties(&r.top_k, &truth, k, 0.15);
        assert!(p >= 0.8, "tolerant precision {p} too low");
    }

    #[test]
    fn high_precision_on_skewed_risks() {
        // Financial-style skew (a few clearly risky nodes): BSRBK should
        // match the true top-k almost exactly, as in the paper's Figure 7.
        let n = 300usize;
        let mut rng = Xoshiro256pp::new(29);
        let risks: Vec<f64> = (0..n)
            .map(|_| {
                let r = rng.next_f64();
                0.9 * r * r * r // cubic skew: most tiny, a few large
            })
            .collect();
        let mut edges = Vec::new();
        while edges.len() < 500 {
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            if u != v {
                edges.push((u, v, rng.next_f64() * 0.3));
            }
        }
        let g = from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap();
        let truth = crate::exact::ground_truth(&g, 20_000, 777, 1);
        let k = 10;
        let r = detect_bsrbk(&g, k, &VulnConfig::default().with_seed(29));
        let p = crate::precision::precision_with_ties(&r.top_k, &truth, k, 0.02);
        assert!(p >= 0.7, "precision {p} too low on skewed risks");
    }

    #[test]
    fn verified_nodes_always_included() {
        let mut risks = vec![0.99];
        risks.extend(std::iter::repeat_n(0.2, 50));
        let edges: Vec<(u32, u32, f64)> = (1..=50).map(|v| (v as u32, 0u32, 0.1)).collect();
        let g = from_parts(&risks, &edges, DuplicateEdgePolicy::Error).unwrap();
        let r = detect_bsrbk(&g, 3, &VulnConfig::default().with_seed(1));
        assert!(r.node_ids().contains(&NodeId(0)), "dominant node missing");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_bk() {
        let g = random_graph(10, 20, 1);
        detect_bsrbk(&g, 2, &VulnConfig::default().with_bk(1));
    }

    #[test]
    fn larger_bk_uses_more_samples() {
        let g = random_graph(300, 600, 17);
        let small = detect_bsrbk(&g, 5, &VulnConfig::default().with_seed(17).with_bk(4));
        let large = detect_bsrbk(&g, 5, &VulnConfig::default().with_seed(17).with_bk(32));
        assert!(
            small.stats.samples_used <= large.stats.samples_used,
            "bk=4 used {}, bk=32 used {}",
            small.stats.samples_used,
            large.stats.samples_used
        );
    }
}
