//! The five detection algorithms evaluated in the paper:
//!
//! | Name | Paper label | Ingredients |
//! |------|-------------|-------------|
//! | [`AlgorithmKind::Naive`] | N | Algorithm 1, fixed sample size |
//! | [`AlgorithmKind::SampledNaive`] | SN | Algorithm 1, Eq. 3 sample size |
//! | [`AlgorithmKind::SampleReverse`] | SR | reverse sampling + Lemma 1 rule 2 |
//! | [`AlgorithmKind::BoundedSampleReverse`] | BSR | + verification (rule 1) + Eq. 4 |
//! | [`AlgorithmKind::BottomK`] | BSRBK | + bottom-k early stop (Thm. 6) |

mod bsr;
mod bsrbk;
mod naive;
pub(crate) mod reverse_common;
mod sn;
mod sr;

use crate::config::VulnConfig;
use crate::topk::ScoredNode;
use std::time::Duration;
use ugraph::UncertainGraph;

/// Which algorithm to run; see the module table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// `N` — basic sampling with a fixed budget.
    Naive,
    /// `SN` — basic sampling sized by Equation 3.
    SampledNaive,
    /// `SR` — reverse sampling over rule-2 candidates.
    SampleReverse,
    /// `BSR` — bounds, verification, reverse sampling sized by Equation 4.
    BoundedSampleReverse,
    /// `BSRBK` — BSR plus the bottom-k early-stopping rule.
    BottomK,
}

impl AlgorithmKind {
    /// All five, in the paper's presentation order.
    pub const ALL: [AlgorithmKind; 5] = [
        AlgorithmKind::Naive,
        AlgorithmKind::SampledNaive,
        AlgorithmKind::SampleReverse,
        AlgorithmKind::BoundedSampleReverse,
        AlgorithmKind::BottomK,
    ];

    /// The paper's short label (N, SN, SR, BSR, BSRBK).
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::Naive => "N",
            AlgorithmKind::SampledNaive => "SN",
            AlgorithmKind::SampleReverse => "SR",
            AlgorithmKind::BoundedSampleReverse => "BSR",
            AlgorithmKind::BottomK => "BSRBK",
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Diagnostics of one detection run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Which algorithm produced the result.
    pub algorithm: AlgorithmKind,
    /// Sample budget computed from theory (Eq. 3 / Eq. 4) or configuration.
    pub sample_budget: u64,
    /// Samples actually consumed (< budget only for BSRBK, whose
    /// early stop can cut a world block short).
    pub samples_used: u64,
    /// Candidate-set size `|B|` after pruning (n for N/SN).
    pub candidates: usize,
    /// Verified nodes `k'` (0 for everything but BSR/BSRBK).
    pub verified: usize,
    /// `true` if BSRBK's stop condition fired before the budget ran out.
    pub early_stopped: bool,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// Result of a detection run: the top-k nodes (descending score) plus
/// diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionResult {
    /// The k detected nodes, most vulnerable first.
    pub top_k: Vec<ScoredNode>,
    /// Run diagnostics.
    pub stats: RunStats,
}

impl DetectionResult {
    /// Just the node ids, in rank order.
    pub fn node_ids(&self) -> Vec<ugraph::NodeId> {
        self.top_k.iter().map(|s| s.node).collect()
    }
}

/// Validates `k` against the graph size.
pub(crate) fn validate_k(graph: &UncertainGraph, k: usize) {
    assert!(k >= 1, "k must be positive");
    assert!(k <= graph.num_nodes(), "k = {k} exceeds the number of nodes ({})", graph.num_nodes());
}

/// One-shot run through a throwaway engine session — the harness behind
/// the per-algorithm behavioral test suites, the benches, and the
/// what-if module. Produces results identical to a cold
/// [`Detector`](crate::engine::Detector) session (it *is* one). The
/// 0.2.0 deprecated free-function shims (`detect`,
/// `detect_naive`/`_sn`/`_sr`/`_bsr`/`_bsrbk`) that wrapped this were
/// removed in 0.3.0 — build a session instead.
///
/// Takes any [`IntoSharedGraph`](crate::engine::IntoSharedGraph) shape;
/// callers that loop (e.g. `greedy_hardening`) should pass an `Arc` so
/// each call shares the graph instead of cloning it.
pub(crate) fn run_one_shot(
    graph: impl crate::engine::IntoSharedGraph,
    k: usize,
    algorithm: AlgorithmKind,
    config: &VulnConfig,
) -> DetectionResult {
    let graph = graph.into_shared();
    validate_k(&graph, k);
    let detector = crate::engine::Detector::builder(graph)
        .config(config.clone())
        .build()
        // xlint: allow(panic-hygiene) — the one-shot API documents
        // that it panics on invalid input (see the match arm below);
        // fallible callers use the `Detector` API instead.
        .expect("session configuration is valid");
    match detector.detect(&crate::engine::DetectRequest::new(k, algorithm)) {
        Ok(response) => response.into_detection_result(),
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = AlgorithmKind::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["N", "SN", "SR", "BSR", "BSRBK"]);
        assert_eq!(AlgorithmKind::BottomK.to_string(), "BSRBK");
    }
}
