//! `SN` — Algorithm 1 with the sample size of Equation 3, making it an
//! `(ε, δ)`-approximation (Theorem 4).
//!
//! The implementation lives in
//! [`engine::SampledNaive`](crate::engine::SampledNaive); this module
//! keeps the classic free-function entry point as a deprecated shim over
//! a throwaway session.

use super::{run_one_shot, AlgorithmKind, DetectionResult};
use crate::config::VulnConfig;
use ugraph::UncertainGraph;

/// Runs SN: `t = (2/ε²) ln(k(n−k)/δ)` forward samples, then top-k.
#[deprecated(
    since = "0.2.0",
    note = "build a reusable `engine::Detector` session and request `AlgorithmKind::SampledNaive`"
)]
pub fn detect_sn(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
    run_one_shot(graph, k, AlgorithmKind::SampledNaive, config)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::sample_size::basic_sample_size;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId};

    fn graph() -> UncertainGraph {
        from_parts(
            &[0.7, 0.05, 0.05, 0.05, 0.05],
            &[(0, 1, 0.8), (1, 2, 0.8), (2, 3, 0.2), (3, 4, 0.2)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn uses_equation3_budget() {
        let g = graph();
        let cfg = VulnConfig::default();
        let r = detect_sn(&g, 2, &cfg);
        assert_eq!(r.stats.sample_budget, basic_sample_size(5, 2, cfg.approx));
        assert_eq!(r.stats.algorithm, AlgorithmKind::SampledNaive);
    }

    #[test]
    fn finds_clear_winner() {
        let g = graph();
        let r = detect_sn(&g, 1, &VulnConfig::default().with_seed(11));
        assert_eq!(r.node_ids(), vec![NodeId(0)]);
    }

    #[test]
    fn respects_sample_cap() {
        let g = graph();
        let r = detect_sn(&g, 2, &VulnConfig::default().with_max_samples(10));
        assert_eq!(r.stats.sample_budget, 10);
    }

    #[test]
    fn k_equals_n_needs_one_sample_only() {
        // Eq. 3 is 0 for k = n (no pairs to order); the implementation
        // clamps to ≥ 1 sample so estimates exist.
        let g = graph();
        let r = detect_sn(&g, 5, &VulnConfig::default());
        assert_eq!(r.stats.sample_budget, 1);
        assert_eq!(r.top_k.len(), 5);
    }
}
