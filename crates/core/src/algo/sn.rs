//! `SN` — Algorithm 1 with the sample size of Equation 3, making it an
//! `(ε, δ)`-approximation (Theorem 4).
//!
//! The implementation lives in
//! [`engine::SampledNaive`](crate::engine::SampledNaive); this module
//! holds its behavioral test suite (the 0.2.0 free-function shim was
//! removed in 0.3.0).

#[cfg(test)]
mod tests {
    use crate::algo::{run_one_shot, AlgorithmKind, DetectionResult};
    use crate::config::VulnConfig;
    use crate::sample_size::basic_sample_size;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId, UncertainGraph};

    fn detect_sn(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
        run_one_shot(graph, k, AlgorithmKind::SampledNaive, config)
    }

    fn graph() -> UncertainGraph {
        from_parts(
            &[0.7, 0.05, 0.05, 0.05, 0.05],
            &[(0, 1, 0.8), (1, 2, 0.8), (2, 3, 0.2), (3, 4, 0.2)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn uses_equation3_budget() {
        let g = graph();
        let cfg = VulnConfig::default();
        let r = detect_sn(&g, 2, &cfg);
        assert_eq!(r.stats.sample_budget, basic_sample_size(5, 2, cfg.approx));
        assert_eq!(r.stats.algorithm, AlgorithmKind::SampledNaive);
    }

    #[test]
    fn finds_clear_winner() {
        let g = graph();
        let r = detect_sn(&g, 1, &VulnConfig::default().with_seed(11));
        assert_eq!(r.node_ids(), vec![NodeId(0)]);
    }

    #[test]
    fn respects_sample_cap() {
        let g = graph();
        let r = detect_sn(&g, 2, &VulnConfig::default().with_max_samples(10));
        assert_eq!(r.stats.sample_budget, 10);
    }

    #[test]
    fn k_equals_n_needs_one_sample_only() {
        // Eq. 3 is 0 for k = n (no pairs to order); the implementation
        // clamps to ≥ 1 sample so estimates exist.
        let g = graph();
        let r = detect_sn(&g, 5, &VulnConfig::default());
        assert_eq!(r.stats.sample_budget, 1);
        assert_eq!(r.top_k.len(), 5);
    }
}
