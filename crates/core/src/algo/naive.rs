//! `N` — Algorithm 1 with a fixed sample budget.
//!
//! The implementation lives in
//! [`engine::NaiveMonteCarlo`](crate::engine::NaiveMonteCarlo); this
//! module holds its behavioral test suite (the 0.2.0 free-function shim
//! was removed in 0.3.0).

#[cfg(test)]
mod tests {
    use crate::algo::{run_one_shot, AlgorithmKind, DetectionResult};
    use crate::config::VulnConfig;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId, UncertainGraph};

    fn detect_naive(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
        run_one_shot(graph, k, AlgorithmKind::Naive, config)
    }

    fn chain() -> UncertainGraph {
        from_parts(&[0.6, 0.0, 0.0], &[(0, 1, 0.9), (1, 2, 0.9)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn finds_obvious_ranking() {
        // p = (0.6, 0.54, 0.486): ranking 0 > 1 > 2.
        let g = chain();
        let cfg = VulnConfig::default().with_seed(1);
        let r = detect_naive(&g, 2, &cfg);
        assert_eq!(r.node_ids(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(r.stats.samples_used, cfg.naive_samples);
        assert_eq!(r.stats.candidates, 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = chain();
        let cfg = VulnConfig::default().with_seed(7);
        assert_eq!(detect_naive(&g, 2, &cfg).top_k, detect_naive(&g, 2, &cfg).top_k);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = chain();
        let seq = detect_naive(&g, 2, &VulnConfig::default().with_seed(3));
        let par = detect_naive(&g, 2, &VulnConfig::default().with_seed(3).with_threads(4));
        assert_eq!(seq.top_k, par.top_k);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        detect_naive(&chain(), 0, &VulnConfig::default());
    }

    #[test]
    #[should_panic(expected = "exceeds the number of nodes")]
    fn rejects_oversized_k() {
        detect_naive(&chain(), 4, &VulnConfig::default());
    }
}
