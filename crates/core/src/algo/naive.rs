//! `N` — Algorithm 1 with a fixed sample budget.

use super::{validate_k, AlgorithmKind, DetectionResult, RunStats};
use crate::config::VulnConfig;
use crate::topk::select_top_k_dense;
use std::time::Instant;
use ugraph::UncertainGraph;
use vulnds_sampling::{forward_counts, parallel_forward_counts};

/// Shared by N and SN: forward-sample `t` worlds, estimate every node's
/// default probability, return the top-k.
pub(super) fn forward_detect(
    graph: &UncertainGraph,
    k: usize,
    t: u64,
    algorithm: AlgorithmKind,
    config: &VulnConfig,
) -> DetectionResult {
    validate_k(graph, k);
    let start = Instant::now();
    let counts = if config.threads > 1 {
        parallel_forward_counts(graph, t, config.seed, config.threads)
    } else {
        forward_counts(graph, t, config.seed)
    };
    let top_k = select_top_k_dense(&counts.estimates(), k);
    DetectionResult {
        top_k,
        stats: RunStats {
            algorithm,
            sample_budget: t,
            samples_used: t,
            candidates: graph.num_nodes(),
            verified: 0,
            early_stopped: false,
            elapsed: start.elapsed(),
        },
    }
}

/// Runs the naive baseline with the configured fixed budget
/// (`config.naive_samples`).
pub fn detect_naive(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> DetectionResult {
    forward_detect(graph, k, config.naive_samples, AlgorithmKind::Naive, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy, NodeId};

    fn chain() -> UncertainGraph {
        from_parts(&[0.6, 0.0, 0.0], &[(0, 1, 0.9), (1, 2, 0.9)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn finds_obvious_ranking() {
        // p = (0.6, 0.54, 0.486): ranking 0 > 1 > 2.
        let g = chain();
        let cfg = VulnConfig::default().with_seed(1);
        let r = detect_naive(&g, 2, &cfg);
        assert_eq!(r.node_ids(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(r.stats.samples_used, cfg.naive_samples);
        assert_eq!(r.stats.candidates, 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = chain();
        let cfg = VulnConfig::default().with_seed(7);
        assert_eq!(detect_naive(&g, 2, &cfg).top_k, detect_naive(&g, 2, &cfg).top_k);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = chain();
        let seq = detect_naive(&g, 2, &VulnConfig::default().with_seed(3));
        let par = detect_naive(&g, 2, &VulnConfig::default().with_seed(3).with_threads(4));
        assert_eq!(seq.top_k, par.top_k);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        detect_naive(&chain(), 0, &VulnConfig::default());
    }

    #[test]
    #[should_panic(expected = "exceeds the number of nodes")]
    fn rejects_oversized_k() {
        detect_naive(&chain(), 4, &VulnConfig::default());
    }
}
