//! Plumbing shared by the reverse-sampling algorithms (SR, BSR, BSRBK):
//! a borrowed view over the bound/reduction phase plus final-ranking
//! assembly. The engine owns the cached bounds and reductions; these
//! helpers only borrow them.

use crate::candidates::CandidateReduction;
use crate::topk::{select_top_k, ScoredNode};
use ugraph::NodeId;
use vulnds_sampling::DefaultCounts;

/// Borrowed view of the pruning phase: bound vectors plus the candidate
/// reduction built from them.
pub(crate) struct Pruned<'a> {
    pub lower: &'a [f64],
    pub upper: &'a [f64],
    pub reduction: &'a CandidateReduction,
}

impl Pruned<'_> {
    /// Score assigned to nodes that skip estimation (verified nodes, and
    /// candidates auto-included when `|B| ≤ k − k'`): the bound-interval
    /// midpoint, which is the best available point estimate without
    /// sampling.
    pub fn midpoint_score(&self, v: NodeId) -> f64 {
        0.5 * (self.lower[v.index()] + self.upper[v.index()])
    }
}

/// Assembles the final ranking: verified nodes first (scored by their
/// bound midpoints, clamped to dominate), then the best `k − k'`
/// estimated candidates.
pub(crate) fn assemble_result(
    pruned: &Pruned<'_>,
    candidates: &[NodeId],
    estimates: &DefaultCounts,
    k: usize,
) -> Vec<ScoredNode> {
    let k_rem = k - pruned.reduction.verified.len().min(k);
    let chosen = select_top_k(
        candidates
            .iter()
            .enumerate()
            .map(|(i, &node)| ScoredNode { node, score: estimates.estimate(i) }),
        k_rem,
    );
    merge_verified(pruned, chosen, k)
}

/// Places verified nodes ahead of the estimated selection, preserving both
/// orders, truncated to `k`.
pub(crate) fn merge_verified(
    pruned: &Pruned<'_>,
    chosen: Vec<ScoredNode>,
    k: usize,
) -> Vec<ScoredNode> {
    let mut out: Vec<ScoredNode> = pruned
        .reduction
        .verified
        .iter()
        .map(|&node| ScoredNode { node, score: pruned.midpoint_score(node) })
        .collect();
    out.extend(chosen);
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::compute_bounds;
    use crate::candidates::reduce_candidates;
    use crate::config::VulnConfig;
    use ugraph::{from_parts, DuplicateEdgePolicy, UncertainGraph};

    fn prune(g: &UncertainGraph, k: usize) -> (Vec<f64>, Vec<f64>, CandidateReduction) {
        let cfg = VulnConfig::default();
        let (lower, upper) = compute_bounds(g, cfg.bound_order, cfg.bounds_method);
        let reduction = reduce_candidates(&lower, &upper, k);
        (lower, upper, reduction)
    }

    #[test]
    fn prune_produces_consistent_reduction() {
        let g = from_parts(
            &[0.9, 0.1, 0.1, 0.05],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let (lower, upper, reduction) = prune(&g, 2);
        assert_eq!(lower.len(), 4);
        assert_eq!(upper.len(), 4);
        // Verified + candidates never exceeds n, covers at least k.
        let total = reduction.verified_count() + reduction.candidate_count();
        assert!(total >= 2);
        assert!(total <= 4);
    }

    #[test]
    fn assemble_orders_verified_first() {
        let g = from_parts(&[0.9, 0.2, 0.1], &[(0, 1, 0.9)], DuplicateEdgePolicy::Error).unwrap();
        let (lower, upper, reduction) = prune(&g, 2);
        let pruned = Pruned { lower: &lower, upper: &upper, reduction: &reduction };
        let cands = reduction.candidates.clone();
        let mut est = DefaultCounts::new(cands.len());
        est.begin_sample();
        for i in 0..cands.len() {
            est.bump(i);
        }
        let out = assemble_result(&pruned, &cands, &est, 2);
        assert_eq!(out.len(), 2);
        // Any verified node must appear before non-verified ones.
        for (i, v) in reduction.verified.iter().enumerate() {
            assert_eq!(out[i].node, *v);
        }
    }
}
