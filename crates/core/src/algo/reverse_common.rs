//! Plumbing shared by the reverse-sampling algorithms (SR, BSR, BSRBK).

use crate::bounds::compute_bounds;
use crate::candidates::{reduce_candidates, CandidateReduction};
use crate::config::VulnConfig;
use crate::topk::{select_top_k, ScoredNode};
use ugraph::{NodeId, UncertainGraph};
use vulnds_sampling::DefaultCounts;

/// Bound computation + Algorithm 4, as configured.
pub(super) fn prune(graph: &UncertainGraph, k: usize, config: &VulnConfig) -> Pruned {
    let (lower, upper) = compute_bounds(graph, config.bound_order, config.bounds_method);
    let reduction = reduce_candidates(&lower, &upper, k);
    Pruned { lower, upper, reduction }
}

/// Bounds plus the candidate reduction built from them.
pub(super) struct Pruned {
    pub lower: Vec<f64>,
    pub upper: Vec<f64>,
    pub reduction: CandidateReduction,
}

impl Pruned {
    /// Score assigned to nodes that skip estimation (verified nodes, and
    /// candidates auto-included when `|B| ≤ k − k'`): the bound-interval
    /// midpoint, which is the best available point estimate without
    /// sampling.
    pub fn midpoint_score(&self, v: NodeId) -> f64 {
        0.5 * (self.lower[v.index()] + self.upper[v.index()])
    }
}

/// Assembles the final ranking: verified nodes first (scored by their
/// bound midpoints, clamped to dominate), then the best `k − k'`
/// estimated candidates.
pub(super) fn assemble_result(
    pruned: &Pruned,
    candidates: &[NodeId],
    estimates: &DefaultCounts,
    k: usize,
) -> Vec<ScoredNode> {
    let k_rem = k - pruned.reduction.verified.len().min(k);
    let chosen = select_top_k(
        candidates
            .iter()
            .enumerate()
            .map(|(i, &node)| ScoredNode { node, score: estimates.estimate(i) }),
        k_rem,
    );
    merge_verified(pruned, chosen, k)
}

/// Places verified nodes ahead of the estimated selection, preserving both
/// orders, truncated to `k`.
pub(super) fn merge_verified(
    pruned: &Pruned,
    chosen: Vec<ScoredNode>,
    k: usize,
) -> Vec<ScoredNode> {
    let mut out: Vec<ScoredNode> = pruned
        .reduction
        .verified
        .iter()
        .map(|&node| ScoredNode { node, score: pruned.midpoint_score(node) })
        .collect();
    out.extend(chosen);
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VulnConfig;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    #[test]
    fn prune_produces_consistent_reduction() {
        let g = from_parts(
            &[0.9, 0.1, 0.1, 0.05],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let p = prune(&g, 2, &VulnConfig::default());
        assert_eq!(p.lower.len(), 4);
        assert_eq!(p.upper.len(), 4);
        // Verified + candidates never exceeds n, covers at least k.
        let total = p.reduction.verified_count() + p.reduction.candidate_count();
        assert!(total >= 2);
        assert!(total <= 4);
    }

    #[test]
    fn assemble_orders_verified_first() {
        let g = from_parts(&[0.9, 0.2, 0.1], &[(0, 1, 0.9)], DuplicateEdgePolicy::Error).unwrap();
        let pruned = prune(&g, 2, &VulnConfig::default());
        let cands = pruned.reduction.candidates.clone();
        let mut est = DefaultCounts::new(cands.len());
        est.begin_sample();
        for i in 0..cands.len() {
            est.bump(i);
        }
        let out = assemble_result(&pruned, &cands, &est, 2);
        assert_eq!(out.len(), 2);
        // Any verified node must appear before non-verified ones.
        for (i, v) in pruned.reduction.verified.iter().enumerate() {
            assert_eq!(out[i].node, *v);
        }
    }
}
