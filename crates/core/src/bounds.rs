//! Iterative lower/upper bounds on default probabilities — Algorithms 2
//! and 3 of the paper, plus a provably-safe lower-bound variant.
//!
//! Both recursions iterate Equation 1,
//! `p(v) = 1 − (1 − ps(v)) · ∏_{x ∈ N(v)} (1 − p(v|x) p(x))`,
//! starting from `p(x) = ps(x)` (lower) or `p(x) = 1` (upper). Higher
//! order `z` tightens the interval at `O(z (n + m))` cost; the paper's
//! Figure 5 shows order 2 suffices on its datasets.
//!
//! **Validity caveat (documented in DESIGN.md):** the upper recursion is a
//! true upper bound on every graph — default indicators are increasing
//! functions of independent coins, so by positive association (FKG) the
//! probability that no in-neighbor transmits is at least the product of
//! per-neighbor non-transmission probabilities, making Equation 1 with
//! over-estimated neighbor probabilities an over-estimate. The lower
//! recursion of Algorithm 2 is exact on in-trees but can overshoot the
//! truth when converging paths share ancestors (the product form assumes
//! independence). [`lower_bounds_safe`] replaces the product with the best
//! single in-neighbor term, which is a valid lower bound on every graph.

use crate::config::BoundsMethod;
use ugraph::{NodeId, UncertainGraph};

/// One round of Equation 1 for node `v` with neighbor estimates `prev`.
/// Exposed to the incremental maintainer in [`crate::dynamic`].
#[inline]
pub(crate) fn equation1(graph: &UncertainGraph, v: NodeId, prev: &[f64]) -> f64 {
    let mut no_transmit = 1.0f64;
    for e in graph.in_edges(v) {
        no_transmit *= 1.0 - e.prob * prev[e.source.index()];
    }
    if no_transmit == 1.0 {
        // No (effective) in-neighbor contribution: exactly ps(v), without
        // the rounding of 1 − (1 − ps).
        return graph.self_risk(v);
    }
    1.0 - (1.0 - graph.self_risk(v)) * no_transmit
}

/// One round of the best-single-path alternative for node `v`:
/// `pl(v) = max(ps(v), max_x p(v|x) · pl(x))`.
///
/// Inductively, `pl` after `i` rounds is the maximum over walks of length
/// `< i` ending at `v` of `ps(start) · ∏ edge probs` — a walk event (the
/// start self-defaults and every edge fires) whose coins are all distinct,
/// so its probability lower-bounds `p(v)` on *every* graph, cycles
/// included. Note the combination `1 − (1 − ps)(1 − best)` would **not**
/// be safe: on a cycle the best incoming walk can start at `v` itself,
/// double-counting `v`'s self coin (caught by the system property tests).
#[inline]
pub(crate) fn best_path_step(graph: &UncertainGraph, v: NodeId, prev: &[f64]) -> f64 {
    let mut best = graph.self_risk(v);
    for e in graph.in_edges(v) {
        best = best.max(e.prob * prev[e.source.index()]);
    }
    best
}

/// Algorithm 2: order-`z` lower bounds.
///
/// Iteration 1 sets `pl(v) = ps(v)`; each further iteration feeds the
/// previous values through Equation 1. The change-propagation trick of
/// the pseudocode ("only update if an in-neighbor changed") is realized
/// with a dirty flag per node.
pub fn lower_bounds_paper(graph: &UncertainGraph, z: usize) -> Vec<f64> {
    iterate(graph, z, equation1, |g, v| g.self_risk(v))
}

/// Safe lower bounds: same shape as Algorithm 2 but combining in-neighbor
/// contributions by `max` instead of noisy-or, which never overshoots.
pub fn lower_bounds_safe(graph: &UncertainGraph, z: usize) -> Vec<f64> {
    iterate(graph, z, best_path_step, |g, v| g.self_risk(v))
}

/// Algorithm 3: order-`z` upper bounds. The first iteration evaluates
/// Equation 1 with all in-neighbor probabilities set to 1.
pub fn upper_bounds(graph: &UncertainGraph, z: usize) -> Vec<f64> {
    iterate(graph, z, equation1, |_, _| 1.0)
}

/// Dispatch on the configured method, returning `(lower, upper)`.
pub fn compute_bounds(
    graph: &UncertainGraph,
    z: usize,
    method: BoundsMethod,
) -> (Vec<f64>, Vec<f64>) {
    let lower = match method {
        BoundsMethod::Paper => lower_bounds_paper(graph, z),
        BoundsMethod::Safe => lower_bounds_safe(graph, z),
    };
    (lower, upper_bounds(graph, z))
}

/// Shared iteration engine. `init(g, v)` seeds the neighbor estimates used
/// by the first application of `step`; `z` counts iterations in the
/// paper's convention (order 1 = seed values for the lower bound, one
/// application for the upper bound).
fn iterate(
    graph: &UncertainGraph,
    z: usize,
    step: impl Fn(&UncertainGraph, NodeId, &[f64]) -> f64,
    init: impl Fn(&UncertainGraph, NodeId) -> f64,
) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut prev: Vec<f64> = graph.nodes().map(|v| init(graph, v)).collect();
    if z <= 1 {
        // Order 1: lower bound returns the seeds (ps); upper bound's first
        // iteration already applies the step once with neighbors at 1.
        // We normalize both to "apply step z−0 times with a minimum of one
        // application for the all-ones seed", matching Algorithms 2 and 3:
        // Algorithm 2 order 1 = ps(v); Algorithm 3 order 1 = Eq.1 with 1s.
        let all_init_one = (0..n).all(|i| prev[i] == 1.0) && n > 0;
        if all_init_one {
            let cur: Vec<f64> = graph.nodes().map(|v| step(graph, v, &prev)).collect();
            return cur;
        }
        return prev;
    }
    // Dirty-flag propagation: recompute v only if some in-neighbor changed
    // in the previous round (all nodes are dirty in round 2).
    let mut dirty = vec![true; n];
    let mut rounds = z - 1;
    let all_init_one = n > 0 && prev.iter().all(|&x| x == 1.0);
    if all_init_one {
        // Upper bound: order z means z applications of Eq. 1 (the first
        // with all-ones neighbors).
        rounds = z;
    }
    let mut cur = prev.clone();
    for _ in 0..rounds {
        let mut next_dirty = vec![false; n];
        let mut changed_any = false;
        for v in graph.nodes() {
            if !dirty[v.index()] {
                continue;
            }
            let val = step(graph, v, &prev);
            if (val - cur[v.index()]).abs() > 1e-15 {
                cur[v.index()] = val;
                changed_any = true;
                for e in graph.out_edges(v) {
                    next_dirty[e.target.index()] = true;
                }
            }
        }
        prev.copy_from_slice(&cur);
        dirty = next_dirty;
        if !changed_any {
            break;
        }
    }
    cur
}

/// Interval sanity check used by tests and debug assertions: every lower
/// value ≤ its upper value, everything in `[0, 1]`.
pub fn check_interval(lower: &[f64], upper: &[f64]) -> bool {
    lower.len() == upper.len()
        && lower
            .iter()
            .zip(upper)
            .all(|(&l, &u)| (0.0..=1.0).contains(&l) && (0.0..=1.0).contains(&u) && l <= u + 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    /// S → {B, C} → T with certain edges: true p(T) = ps(S) = 0.5.
    fn diamond() -> UncertainGraph {
        from_parts(
            &[0.5, 0.0, 0.0, 0.0],
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn order1_lower_is_self_risk() {
        let g = chain();
        assert_eq!(lower_bounds_paper(&g, 1), vec![0.5, 0.0, 0.0]);
        assert_eq!(lower_bounds_safe(&g, 1), vec![0.5, 0.0, 0.0]);
    }

    #[test]
    fn order1_upper_uses_all_ones() {
        let g = chain();
        let u = upper_bounds(&g, 1);
        // p(0) = ps = 0.5; p(1) = 1 − (1−0)(1 − 0.5·1) = 0.5; same for 2.
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 0.5).abs() < 1e-12);
        assert!((u[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn chain_bounds_tighten_with_order() {
        // Exact chain probabilities: 0.5, 0.25, 0.125.
        let g = chain();
        let exact = [0.5, 0.25, 0.125];
        let mut prev_gap = f64::INFINITY;
        for z in 1..=5 {
            let l = lower_bounds_paper(&g, z);
            let u = upper_bounds(&g, z);
            assert!(check_interval(&l, &u));
            for v in 0..3 {
                assert!(l[v] <= exact[v] + 1e-12, "z={z} v={v} l={}", l[v]);
                assert!(u[v] >= exact[v] - 1e-12, "z={z} v={v} u={}", u[v]);
            }
            let gap: f64 = (0..3).map(|v| u[v] - l[v]).sum();
            assert!(gap <= prev_gap + 1e-12, "gap grew at z={z}");
            prev_gap = gap;
        }
        // High order converges to exact on a chain (a tree).
        let l = lower_bounds_paper(&g, 10);
        let u = upper_bounds(&g, 10);
        for v in 0..3 {
            assert!((l[v] - exact[v]).abs() < 1e-9);
            assert!((u[v] - exact[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_lower_overshoots_on_diamond_but_safe_does_not() {
        // Documents the known caveat: p(T) = 0.5 exactly, the paper
        // recursion converges to 0.75 on the sink.
        let g = diamond();
        let paper = lower_bounds_paper(&g, 5);
        assert!(paper[3] > 0.5 + 0.1, "expected overshoot, got {}", paper[3]);
        let safe = lower_bounds_safe(&g, 5);
        assert!(safe[3] <= 0.5 + 1e-12, "safe bound must hold, got {}", safe[3]);
    }

    #[test]
    fn upper_bound_valid_on_diamond() {
        let g = diamond();
        let u = upper_bounds(&g, 5);
        assert!(u[3] >= 0.5 - 1e-12);
    }

    #[test]
    fn safe_lower_below_upper_everywhere() {
        let g = diamond();
        for z in 1..=5 {
            let l = lower_bounds_safe(&g, z);
            let u = upper_bounds(&g, z);
            assert!(check_interval(&l, &u), "z = {z}");
        }
    }

    #[test]
    fn bounds_on_cyclic_graph_stay_in_unit_interval() {
        let g = from_parts(
            &[0.3, 0.2, 0.1],
            &[(0, 1, 0.9), (1, 2, 0.9), (2, 0, 0.9)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        for z in 1..=6 {
            let (l, u) = compute_bounds(&g, z, BoundsMethod::Paper);
            assert!(check_interval(&l, &u), "paper z={z}");
            let (l, u) = compute_bounds(&g, z, BoundsMethod::Safe);
            assert!(check_interval(&l, &u), "safe z={z}");
        }
    }

    #[test]
    fn isolated_nodes_keep_self_risk() {
        let g = from_parts(&[0.42, 0.17], &[], DuplicateEdgePolicy::Error).unwrap();
        for z in 1..=3 {
            assert_eq!(lower_bounds_paper(&g, z), vec![0.42, 0.17]);
            assert_eq!(upper_bounds(&g, z), vec![0.42, 0.17]);
        }
    }

    #[test]
    fn dirty_propagation_matches_full_recompute() {
        // Recompute bounds without the dirty-flag shortcut and compare.
        let g = from_parts(
            &[0.2, 0.3, 0.1, 0.4, 0.05],
            &[(0, 1, 0.5), (1, 2, 0.4), (2, 3, 0.3), (3, 4, 0.6), (0, 4, 0.2), (1, 3, 0.7)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        for z in 2..=4 {
            let fast = lower_bounds_paper(&g, z);
            // Naive reference: z−1 full sweeps from ps.
            let mut prev: Vec<f64> = g.nodes().map(|v| g.self_risk(v)).collect();
            for _ in 0..z - 1 {
                let next: Vec<f64> = g.nodes().map(|v| super::equation1(&g, v, &prev)).collect();
                prev = next;
            }
            for v in 0..5 {
                assert!((fast[v] - prev[v]).abs() < 1e-12, "z={z} v={v}");
            }
        }
    }

    #[test]
    fn figure3_example_bounds() {
        // Paper Example 1 checks p(B) = 0.232 at order 2 on Figure 3.
        let mut b = UncertainGraph::builder(5);
        for v in 0..5 {
            b.set_self_risk(NodeId(v), 0.2).unwrap();
        }
        for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
            b.add_edge(NodeId(u), NodeId(v), 0.2).unwrap();
        }
        let g = b.build().unwrap();
        let l = lower_bounds_paper(&g, 2);
        assert!((l[1] - 0.232).abs() < 1e-12, "p(B) = {}", l[1]);
    }
}
