//! Run configuration shared by all detection algorithms.

use std::fmt;

use vulnds_sampling::{BlockWords, Direction};

/// Error for invalid configuration parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// The `(ε, δ)` approximation contract of Definition 2: with probability
/// at least `1 − δ`, every returned node has `p(v) ≥ Pk − ε` and every
/// non-returned node has `p(v) < Pk + ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxParams {
    epsilon: f64,
    delta: f64,
}

impl ApproxParams {
    /// Creates the parameter pair; both must lie in the open `(0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, ConfigError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(ConfigError(format!("epsilon = {epsilon} must be in (0, 1)")));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(ConfigError(format!("delta = {delta} must be in (0, 1)")));
        }
        Ok(ApproxParams { epsilon, delta })
    }

    /// The paper's experimental setting: `ε = 0.3`, `δ = 0.1` (§4.1).
    pub fn paper_defaults() -> Self {
        ApproxParams { epsilon: 0.3, delta: 0.1 }
    }

    /// Accuracy slack `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Failure probability `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

/// Which lower/upper bound recursion the pruning phase uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum BoundsMethod {
    /// Algorithms 2 and 3 verbatim. The upper bound is provably valid (the
    /// default indicators are increasing functions of independent coins,
    /// so by positive association the probability that *no* in-neighbor
    /// transmits is at least the product of the per-neighbor
    /// probabilities). The lower bound is exact on in-trees but can
    /// overshoot on converging paths (shared ancestors violate the
    /// independence the product form assumes); the paper's near-tree
    /// financial networks make this rare in practice.
    #[default]
    Paper,
    /// Provably safe variant: the same Algorithm 3 upper bound, paired
    /// with a best-single-path lower bound
    /// `pl(v) = max(ps(v), max_x p(v|x) · pl(x))`,
    /// which is a true lower bound on every graph (it is the probability
    /// of the single strongest walk event into `v`).
    Safe,
}

/// Full configuration of a detection run.
#[derive(Debug, Clone, PartialEq)]
pub struct VulnConfig {
    /// Approximation contract (used to size samples by Eqs. 3 and 4).
    pub approx: ApproxParams,
    /// RNG seed; identical seeds give identical results.
    pub seed: u64,
    /// Order `z` of the lower/upper bound recursions (paper tunes to 2).
    pub bound_order: usize,
    /// Which bound recursion to use for pruning.
    pub bounds_method: BoundsMethod,
    /// Bottom-k early-stop parameter for BSRBK (paper tunes to 16).
    pub bk: usize,
    /// Fixed sample size for the naive `N` baseline (the paper runs `N`
    /// with a "large fixed sample size"; 20,000 matches its ground-truth
    /// convention).
    pub naive_samples: u64,
    /// Worker threads for the samplers (1 = sequential).
    pub threads: usize,
    /// Hard cap on any computed sample size, to keep adversarial
    /// `(ε, δ)` choices from running forever. `None` disables the cap.
    pub max_samples: Option<u64>,
    /// Superblock width override for the samplers. `None` lets the
    /// engine plan the width per pass from the sample budget and thread
    /// count ([`BlockWords::plan`]); a fixed width pins every pass.
    /// Counts are bit-identical at every width — this is purely a
    /// performance knob.
    pub block_words: Option<BlockWords>,
    /// Traversal direction policy for the forward samplers. [`Auto`]
    /// switches per frontier step on measured occupancy; `Push` and
    /// `Pull` pin one strategy. Counts are bit-identical under every
    /// choice — like [`VulnConfig::block_words`], purely a performance
    /// knob.
    ///
    /// [`Auto`]: Direction::Auto
    pub direction: Direction,
}

impl Default for VulnConfig {
    fn default() -> Self {
        VulnConfig {
            approx: ApproxParams::paper_defaults(),
            seed: 0x5EED,
            bound_order: 2,
            bounds_method: BoundsMethod::Paper,
            bk: 16,
            naive_samples: 20_000,
            threads: 1,
            max_samples: None,
            block_words: None,
            direction: Direction::Auto,
        }
    }
}

impl VulnConfig {
    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style approximation override.
    pub fn with_approx(mut self, approx: ApproxParams) -> Self {
        self.approx = approx;
        self
    }

    /// Builder-style bound order override.
    pub fn with_bound_order(mut self, z: usize) -> Self {
        self.bound_order = z;
        self
    }

    /// Builder-style bottom-k override.
    pub fn with_bk(mut self, bk: usize) -> Self {
        self.bk = bk;
        self
    }

    /// Builder-style thread count override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style bounds-method override.
    pub fn with_bounds_method(mut self, method: BoundsMethod) -> Self {
        self.bounds_method = method;
        self
    }

    /// Builder-style sample cap override.
    pub fn with_max_samples(mut self, cap: u64) -> Self {
        self.max_samples = Some(cap);
        self
    }

    /// Builder-style superblock-width override (see
    /// [`VulnConfig::block_words`]).
    pub fn with_block_words(mut self, width: BlockWords) -> Self {
        self.block_words = Some(width);
        self
    }

    /// Builder-style traversal-direction override (see
    /// [`VulnConfig::direction`]).
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Applies the configured cap to a computed sample size.
    pub fn cap_samples(&self, t: u64) -> u64 {
        match self.max_samples {
            Some(cap) => t.min(cap),
            None => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = ApproxParams::paper_defaults();
        assert_eq!(p.epsilon(), 0.3);
        assert_eq!(p.delta(), 0.1);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(ApproxParams::new(0.0, 0.1).is_err());
        assert!(ApproxParams::new(0.3, 0.0).is_err());
        assert!(ApproxParams::new(1.0, 0.1).is_err());
        assert!(ApproxParams::new(0.3, 1.0).is_err());
        assert!(ApproxParams::new(f64::NAN, 0.1).is_err());
        assert!(ApproxParams::new(0.3, 0.1).is_ok());
    }

    #[test]
    fn builder_chain() {
        let c = VulnConfig::default()
            .with_seed(1)
            .with_bound_order(3)
            .with_bk(8)
            .with_threads(4)
            .with_max_samples(100);
        assert_eq!(c.seed, 1);
        assert_eq!(c.bound_order, 3);
        assert_eq!(c.bk, 8);
        assert_eq!(c.threads, 4);
        assert_eq!(c.cap_samples(500), 100);
        assert_eq!(VulnConfig::default().cap_samples(500), 500);
    }

    #[test]
    fn config_error_displays() {
        let e = ApproxParams::new(2.0, 0.1).unwrap_err();
        assert!(e.to_string().contains("epsilon"));
    }
}
