//! Top-k selection with deterministic tie-breaking.

use ugraph::NodeId;

/// A node with its (estimated or exact) default probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredNode {
    /// The node.
    pub node: NodeId,
    /// Default-probability score in `[0, 1]`.
    pub score: f64,
}

impl ScoredNode {
    /// Sort key: descending score, ascending node id on ties. Total order
    /// because scores are finite probabilities.
    fn key(&self) -> (std::cmp::Reverse<OrderedF64>, u32) {
        (std::cmp::Reverse(OrderedF64(self.score)), self.node.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Selects the `k` highest-scored nodes from `(node, score)` pairs, sorted
/// descending (ties by ascending id). `O(n log n)` via sort — selection
/// runs once per query, far from the hot path.
pub fn select_top_k(scores: impl IntoIterator<Item = ScoredNode>, k: usize) -> Vec<ScoredNode> {
    let mut all: Vec<ScoredNode> = scores.into_iter().collect();
    all.sort_unstable_by_key(|s| s.key());
    all.truncate(k);
    all
}

/// Selects the top-k from a dense score vector indexed by node id.
pub fn select_top_k_dense(scores: &[f64], k: usize) -> Vec<ScoredNode> {
    select_top_k(
        scores.iter().enumerate().map(|(i, &score)| ScoredNode { node: NodeId(i as u32), score }),
        k,
    )
}

/// The `k`-th largest value in `values` (1-based: `kth_largest(v, 1)` is
/// the maximum). Returns `None` if `k == 0` or `k > values.len()`.
///
/// Used for the thresholds `Tl` and `Tu` of Lemma 1. `O(n)` average via
/// quickselect (`select_nth_unstable`).
pub fn kth_largest(values: &[f64], k: usize) -> Option<f64> {
    if k == 0 || k > values.len() {
        return None;
    }
    let mut v = values.to_vec();
    let idx = k - 1;
    let (_, kth, _) = v.select_nth_unstable_by(idx, |a, b| b.total_cmp(a));
    Some(*kth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(pairs: &[(u32, f64)]) -> Vec<ScoredNode> {
        pairs.iter().map(|&(n, s)| ScoredNode { node: NodeId(n), score: s }).collect()
    }

    #[test]
    fn selects_highest() {
        let top = select_top_k(scored(&[(0, 0.1), (1, 0.9), (2, 0.5)]), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].node, NodeId(1));
        assert_eq!(top[1].node, NodeId(2));
    }

    #[test]
    fn ties_break_by_id() {
        let top = select_top_k(scored(&[(5, 0.5), (1, 0.5), (3, 0.5)]), 2);
        assert_eq!(top[0].node, NodeId(1));
        assert_eq!(top[1].node, NodeId(3));
    }

    #[test]
    fn k_larger_than_input() {
        let top = select_top_k(scored(&[(0, 0.1)]), 5);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(select_top_k(scored(&[(0, 0.1)]), 0).is_empty());
    }

    #[test]
    fn dense_selection() {
        let top = select_top_k_dense(&[0.3, 0.9, 0.1, 0.9], 3);
        let ids: Vec<u32> = top.iter().map(|s| s.node.0).collect();
        assert_eq!(ids, vec![1, 3, 0]);
    }

    #[test]
    fn kth_largest_values() {
        let v = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(kth_largest(&v, 1), Some(0.9));
        assert_eq!(kth_largest(&v, 2), Some(0.7));
        assert_eq!(kth_largest(&v, 4), Some(0.1));
        assert_eq!(kth_largest(&v, 0), None);
        assert_eq!(kth_largest(&v, 5), None);
    }

    #[test]
    fn kth_largest_with_duplicates() {
        let v = [0.5, 0.5, 0.5];
        assert_eq!(kth_largest(&v, 2), Some(0.5));
    }

    #[test]
    fn selection_is_stable_under_permutation() {
        let a = select_top_k(scored(&[(0, 0.2), (1, 0.8), (2, 0.5)]), 2);
        let b = select_top_k(scored(&[(2, 0.5), (0, 0.2), (1, 0.8)]), 2);
        assert_eq!(a, b);
    }
}
