//! Conditional vulnerability queries: *given that some nodes are observed
//! to have defaulted, which nodes are now most at risk?*
//!
//! This is the operational question after an actual default event (the
//! paper's deployment monitors live loan status). Two semantics are
//! provided, and they differ:
//!
//! * [`intervention_scores`] — *do(X defaults)*: force the evidence nodes
//!   to default (set `ps = 1`) and re-estimate. Answers "what does X's
//!   default **cause** downstream"; upstream nodes are unaffected.
//! * [`conditional_scores`] — *P(v defaults | X defaulted)*: true Bayesian
//!   conditioning by rejection sampling over possible worlds. Evidence
//!   also flows **backwards** (X defaulting makes its likely infectors
//!   more suspect) — the difference the tests demonstrate.

use crate::config::VulnConfig;
use ugraph::{NodeId, UncertainGraph};
use vulnds_sampling::{BlockKernel, CoinTable, WorldBlock, LANES};

/// Result of a conditional estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionalScores {
    /// Estimated conditional default probability per node (evidence nodes
    /// report 1).
    pub scores: Vec<f64>,
    /// Worlds consistent with the evidence, out of `samples_drawn`.
    pub accepted: u64,
    /// Total worlds drawn.
    pub samples_drawn: u64,
}

impl ConditionalScores {
    /// Acceptance rate of the rejection sampler; low values mean the
    /// evidence is improbable under the model and estimates are noisy.
    pub fn acceptance_rate(&self) -> f64 {
        if self.samples_drawn == 0 {
            0.0
        } else {
            self.accepted as f64 / self.samples_drawn as f64
        }
    }
}

/// Causal intervention: force `evidence` to default and re-estimate all
/// marginals with `t` forward samples.
pub fn intervention_scores(
    graph: &UncertainGraph,
    evidence: &[NodeId],
    t: u64,
    config: &VulnConfig,
) -> Vec<f64> {
    let mut g = graph.clone();
    for &v in evidence {
        // xlint: allow(panic-hygiene) — evidence ids come from the
        // same graph per this function's contract; 1.0 is always a
        // valid probability.
        g.set_self_risk(v, 1.0).expect("evidence node must exist");
    }
    vulnds_sampling::parallel_forward_counts(&g, t, config.seed, config.threads.max(1)).estimates()
}

/// Bayesian conditioning by rejection: draw worlds until `accept_target`
/// worlds consistent with the evidence are found (or `max_draws` is
/// spent), and average default indicators over the accepted worlds.
///
/// Rejection sampling is where the bit-parallel block kernel shines:
/// 64 candidate worlds are evaluated per traversal pass, the acceptance
/// test collapses to an AND of the evidence nodes' lane masks, and
/// rejected worlds cost nothing beyond their coins. Results are
/// bit-identical to drawing worlds one at a time in id order.
pub fn conditional_scores(
    graph: &UncertainGraph,
    evidence: &[NodeId],
    accept_target: u64,
    max_draws: u64,
    config: &VulnConfig,
) -> ConditionalScores {
    assert!(!evidence.is_empty(), "conditioning requires at least one evidence node");
    let n = graph.num_nodes();
    for &v in evidence {
        assert!(v.index() < n, "evidence node {v} out of bounds");
    }
    let coins = CoinTable::new(graph);
    let mut block = WorldBlock::new(graph);
    let mut kernel = BlockKernel::new(graph);
    let mut counts = vec![0u64; n];
    let mut accepted = 0u64;
    let mut drawn = 0u64;
    while accepted < accept_target && drawn < max_draws {
        let lanes = (LANES as u64).min(max_draws - drawn) as usize;
        block.materialize(graph, &coins, config.seed, drawn, lanes);
        let words = kernel.forward_defaults(graph, &coins, &mut block);
        // Lanes whose world is consistent with every evidence node.
        let mut accept_word = block.lane_mask();
        for &v in evidence {
            accept_word &= words[v.index()];
        }
        // Replay lanes in sample order, stopping the moment the target
        // is reached — `drawn` counts exactly the worlds a sequential
        // run would have looked at.
        let mut taken = 0u64;
        for lane in 0..lanes {
            drawn += 1;
            if accept_word >> lane & 1 == 1 {
                accepted += 1;
                taken |= 1u64 << lane;
                if accepted == accept_target {
                    break;
                }
            }
        }
        if taken != 0 {
            for (c, &w) in counts.iter_mut().zip(words) {
                *c += u64::from((w & taken).count_ones());
            }
        }
    }
    let scores = counts
        .iter()
        .map(|&c| if accepted == 0 { 0.0 } else { c as f64 / accepted as f64 })
        .collect();
    ConditionalScores { scores, accepted, samples_drawn: drawn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_default_probabilities;
    use ugraph::{from_parts, DuplicateEdgePolicy};
    use vulnds_sampling::WorldEnumerator;

    /// Exact conditional probabilities by enumeration (reference).
    fn exact_conditional(g: &UncertainGraph, evidence: &[NodeId]) -> Vec<f64> {
        let n = g.num_nodes();
        let mut joint = vec![0.0f64; n];
        let mut z = 0.0f64;
        for w in WorldEnumerator::new(g) {
            let d = w.defaulted_nodes(g);
            if evidence.iter().all(|v| d[v.index()]) {
                let pw = w.probability(g);
                z += pw;
                for (acc, &def) in joint.iter_mut().zip(&d) {
                    if def {
                        *acc += pw;
                    }
                }
            }
        }
        joint.iter().map(|&j| if z == 0.0 { 0.0 } else { j / z }).collect()
    }

    fn chain() -> UncertainGraph {
        // 0 → 1 → 2 with moderate probabilities everywhere.
        from_parts(&[0.3, 0.2, 0.1], &[(0, 1, 0.6), (1, 2, 0.6)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn conditional_matches_enumeration() {
        let g = chain();
        let evidence = [NodeId(1)];
        let exact = exact_conditional(&g, &evidence);
        let cfg = VulnConfig::default().with_seed(3);
        let est = conditional_scores(&g, &evidence, 4_000, 200_000, &cfg);
        assert!(est.accepted >= 4_000, "only {} accepted", est.accepted);
        for (v, &truth) in exact.iter().enumerate() {
            assert!(
                (est.scores[v] - truth).abs() < 0.03,
                "node {v}: est {} exact {truth}",
                est.scores[v],
            );
        }
        // Evidence node reports probability 1.
        assert_eq!(est.scores[1], 1.0);
    }

    #[test]
    fn conditioning_flows_backwards_but_intervention_does_not() {
        let g = chain();
        let prior = exact_default_probabilities(&g);
        let cfg = VulnConfig::default().with_seed(5);

        // Conditioning on node 1's default raises suspicion of node 0
        // (its most likely infector)...
        let cond = conditional_scores(&g, &[NodeId(1)], 6_000, 400_000, &cfg);
        assert!(
            cond.scores[0] > prior[0] + 0.1,
            "conditional upstream {} vs prior {}",
            cond.scores[0],
            prior[0]
        );

        // ...while intervening on node 1 leaves node 0's marginal alone.
        let intv = intervention_scores(&g, &[NodeId(1)], 40_000, &cfg);
        assert!(
            (intv[0] - prior[0]).abs() < 0.02,
            "intervention upstream {} vs prior {}",
            intv[0],
            prior[0]
        );
        // Both raise the downstream node.
        assert!(cond.scores[2] > prior[2]);
        assert!(intv[2] > prior[2] + 0.2);
    }

    #[test]
    fn impossible_evidence_reports_zero_acceptance() {
        let g = from_parts(&[0.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let cfg = VulnConfig::default().with_seed(7);
        let est = conditional_scores(&g, &[NodeId(1)], 100, 5_000, &cfg);
        assert_eq!(est.accepted, 0);
        assert_eq!(est.acceptance_rate(), 0.0);
        assert!(est.scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn acceptance_rate_reflects_evidence_probability() {
        let g = chain();
        let cfg = VulnConfig::default().with_seed(9);
        // Node 0 defaults with probability 0.3: acceptance ≈ 0.3.
        let est = conditional_scores(&g, &[NodeId(0)], 3_000, 100_000, &cfg);
        assert!((est.acceptance_rate() - 0.3).abs() < 0.03, "{}", est.acceptance_rate());
    }

    #[test]
    fn multi_evidence_conditioning() {
        let g = chain();
        let exact = exact_conditional(&g, &[NodeId(0), NodeId(2)]);
        let cfg = VulnConfig::default().with_seed(11);
        let est = conditional_scores(&g, &[NodeId(0), NodeId(2)], 2_000, 500_000, &cfg);
        for (v, &truth) in exact.iter().enumerate() {
            assert!(
                (est.scores[v] - truth).abs() < 0.05,
                "node {v}: est {} exact {truth}",
                est.scores[v],
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one evidence node")]
    fn empty_evidence_rejected() {
        let g = chain();
        conditional_scores(&g, &[], 10, 100, &VulnConfig::default());
    }

    #[test]
    fn deterministic() {
        let g = chain();
        let cfg = VulnConfig::default().with_seed(13);
        assert_eq!(
            conditional_scores(&g, &[NodeId(1)], 500, 50_000, &cfg),
            conditional_scores(&g, &[NodeId(1)], 500, 50_000, &cfg)
        );
    }
}
