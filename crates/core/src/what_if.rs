//! What-if analysis: evaluate risk-mitigation interventions before
//! committing to them.
//!
//! The paper's deployment (§5) feeds VulnDS output to an evaluation
//! module that decides loan amounts and limits; the natural question a
//! risk manager asks next is *"if we de-risk these enterprises, how much
//! does systemic vulnerability drop?"*. This module answers it by
//! re-running detection on a modified copy of the graph.

use std::sync::Arc;

use crate::algo::{run_one_shot, AlgorithmKind, DetectionResult};
use crate::config::VulnConfig;
use crate::engine::IntoSharedGraph;
use ugraph::{EdgeId, GraphError, NodeId, UncertainGraph};

/// One modification to the uncertain graph's probabilities.
///
/// Structure-preserving only: topology changes go through a rebuild with
/// [`ugraph::GraphBuilder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Intervention {
    /// Set a node's self-risk (e.g. a capital injection lowers it).
    SetSelfRisk(NodeId, f64),
    /// Scale a node's self-risk by a factor (clamped into `[0, 1]`).
    ScaleSelfRisk(NodeId, f64),
    /// Set an edge's diffusion probability (e.g. restructure a guarantee).
    SetEdgeProb(EdgeId, f64),
    /// Neutralize an edge: diffusion probability 0 (contract dissolved).
    CutEdge(EdgeId),
}

/// Applies interventions to a copy of the graph.
pub fn apply_interventions(
    graph: &UncertainGraph,
    interventions: &[Intervention],
) -> Result<UncertainGraph, GraphError> {
    let mut g = graph.clone();
    for &iv in interventions {
        match iv {
            Intervention::SetSelfRisk(v, p) => g.set_self_risk(v, p)?,
            Intervention::ScaleSelfRisk(v, f) => {
                let p = (g.self_risk(v) * f).clamp(0.0, 1.0);
                g.set_self_risk(v, p)?;
            }
            Intervention::SetEdgeProb(e, p) => g.set_edge_prob(e, p)?,
            Intervention::CutEdge(e) => g.set_edge_prob(e, 0.0)?,
        }
    }
    Ok(g)
}

/// Before/after comparison of an intervention package.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfReport {
    /// Detection on the unmodified graph.
    pub before: DetectionResult,
    /// Detection on the intervened graph.
    pub after: DetectionResult,
}

impl WhatIfReport {
    /// Mean top-k score before the intervention.
    pub fn risk_before(&self) -> f64 {
        mean_score(&self.before)
    }

    /// Mean top-k score after the intervention.
    pub fn risk_after(&self) -> f64 {
        mean_score(&self.after)
    }

    /// Relative reduction of the mean top-k score (`0.25` = 25% lower).
    pub fn risk_reduction(&self) -> f64 {
        let b = self.risk_before();
        if b <= 0.0 {
            0.0
        } else {
            1.0 - self.risk_after() / b
        }
    }
}

fn mean_score(r: &DetectionResult) -> f64 {
    if r.top_k.is_empty() {
        return 0.0;
    }
    r.top_k.iter().map(|s| s.score).sum::<f64>() / r.top_k.len() as f64
}

/// Runs detection before and after an intervention package.
///
/// Takes the graph in any ownership shape ([`IntoSharedGraph`]); pass
/// it by value or by `Arc` for a zero-copy `before` run (`&graph`
/// clones once, like every 0.4 borrowed call site).
pub fn evaluate_interventions(
    graph: impl IntoSharedGraph,
    k: usize,
    interventions: &[Intervention],
    algorithm: AlgorithmKind,
    config: &VulnConfig,
) -> Result<WhatIfReport, GraphError> {
    let graph = graph.into_shared();
    let before = run_one_shot(Arc::clone(&graph), k, algorithm, config);
    let modified = apply_interventions(&graph, interventions)?;
    // `modified` moves into its session — no second graph copy.
    let after = run_one_shot(modified, k, algorithm, config);
    Ok(WhatIfReport { before, after })
}

/// Greedy hardening: repeatedly halve the self-risk of the currently
/// most vulnerable node, `budget` times, re-detecting after each step.
/// Returns the hardened nodes in order plus the final report against the
/// original graph.
pub fn greedy_hardening(
    graph: impl IntoSharedGraph,
    k: usize,
    budget: usize,
    algorithm: AlgorithmKind,
    config: &VulnConfig,
) -> (Vec<NodeId>, WhatIfReport) {
    let graph = graph.into_shared();
    let before = run_one_shot(Arc::clone(&graph), k, algorithm, config);
    // The working copy shares the caller's allocation until the first
    // hardening step: each detection call hands its throwaway session
    // an `Arc` clone, and `Arc::make_mut` copies the graph exactly once
    // (when the original is still referenced) and mutates in place
    // afterwards (the per-iteration session is dropped by then).
    let mut current = Arc::clone(&graph);
    let mut hardened = Vec::with_capacity(budget);
    for _ in 0..budget {
        let r = run_one_shot(Arc::clone(&current), k, algorithm, config);
        // Most vulnerable node not yet hardened.
        let Some(target) = r.top_k.iter().map(|s| s.node).find(|v| !hardened.contains(v)) else {
            break;
        };
        let p = current.self_risk(target) * 0.5;
        // xlint: allow(panic-hygiene) — `target` came out of this
        // graph's top-k, and halving a valid probability keeps it in
        // `[0, 1]`.
        Arc::make_mut(&mut current).set_self_risk(target, p).expect("halving keeps validity");
        hardened.push(target);
    }
    let after = run_one_shot(current, k, algorithm, config);
    (hardened, WhatIfReport { before, after })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn g() -> UncertainGraph {
        from_parts(
            &[0.8, 0.1, 0.1, 0.1],
            &[(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    fn cfg() -> VulnConfig {
        VulnConfig::default().with_seed(5)
    }

    #[test]
    fn apply_all_intervention_kinds() {
        let base = g();
        let e = base.find_edge(NodeId(0), NodeId(1)).unwrap();
        let m = apply_interventions(
            &base,
            &[
                Intervention::SetSelfRisk(NodeId(0), 0.2),
                Intervention::ScaleSelfRisk(NodeId(1), 2.0),
                Intervention::SetEdgeProb(e, 0.5),
                Intervention::CutEdge(base.find_edge(NodeId(2), NodeId(3)).unwrap()),
            ],
        )
        .unwrap();
        assert_eq!(m.self_risk(NodeId(0)), 0.2);
        assert_eq!(m.self_risk(NodeId(1)), 0.2);
        assert_eq!(m.edge_prob(e), 0.5);
        assert_eq!(m.edge_prob(base.find_edge(NodeId(2), NodeId(3)).unwrap()), 0.0);
        // Original untouched.
        assert_eq!(base.self_risk(NodeId(0)), 0.8);
    }

    #[test]
    fn scale_clamps_to_one() {
        let m = apply_interventions(&g(), &[Intervention::ScaleSelfRisk(NodeId(0), 10.0)]).unwrap();
        assert_eq!(m.self_risk(NodeId(0)), 1.0);
    }

    #[test]
    fn invalid_intervention_errors() {
        assert!(apply_interventions(&g(), &[Intervention::SetSelfRisk(NodeId(0), 2.0)]).is_err());
        assert!(apply_interventions(&g(), &[Intervention::SetSelfRisk(NodeId(9), 0.1)]).is_err());
    }

    #[test]
    fn derisking_the_source_reduces_systemic_risk() {
        let report = evaluate_interventions(
            g(),
            2,
            &[Intervention::SetSelfRisk(NodeId(0), 0.05)],
            AlgorithmKind::SampledNaive,
            &cfg(),
        )
        .unwrap();
        assert!(
            report.risk_after() < report.risk_before(),
            "before {} after {}",
            report.risk_before(),
            report.risk_after()
        );
        assert!(report.risk_reduction() > 0.3, "reduction {}", report.risk_reduction());
    }

    #[test]
    fn cutting_the_contagion_edge_protects_downstream() {
        let base = g();
        let e = base.find_edge(NodeId(0), NodeId(1)).unwrap();
        let report = evaluate_interventions(
            &base,
            3,
            &[Intervention::CutEdge(e)],
            AlgorithmKind::Naive,
            &cfg(),
        )
        .unwrap();
        assert!(report.risk_after() < report.risk_before());
    }

    #[test]
    fn greedy_hardening_targets_the_hotspot_first() {
        let (hardened, report) = greedy_hardening(g(), 2, 2, AlgorithmKind::SampledNaive, &cfg());
        assert_eq!(hardened.len(), 2);
        assert_eq!(hardened[0], NodeId(0), "must harden the source first");
        assert!(report.risk_reduction() > 0.0);
    }

    #[test]
    fn zero_budget_hardening_changes_nothing() {
        let (hardened, report) = greedy_hardening(g(), 2, 0, AlgorithmKind::Naive, &cfg());
        assert!(hardened.is_empty());
        assert!((report.risk_reduction()).abs() < 1e-9);
    }

    /// The snapshot a live session exposes after `apply_delta` is the
    /// same input as a from-scratch graph with the delta applied.
    fn delta_updated_and_fresh() -> (std::sync::Arc<UncertainGraph>, UncertainGraph) {
        use ugraph::{EdgeId, GraphDelta};
        let base = g();
        let delta =
            GraphDelta::default().set_self_risk(NodeId(2), 0.55).set_edge_prob(EdgeId(1), 0.35);
        let session = crate::Detector::builder(&base).build().expect("session builds");
        // Warm the session first so the delta path exercises cache
        // revalidation, not a cold swap.
        let _ = session.detect(&crate::DetectRequest::new(2, AlgorithmKind::SampledNaive));
        session.apply_delta(&delta).expect("delta applies");
        let mut fresh = base;
        delta.apply(&mut fresh).expect("delta applies to the copy");
        (session.graph(), fresh)
    }

    fn same_result(a: &DetectionResult, b: &DetectionResult) {
        let pairs = |r: &DetectionResult| {
            r.top_k.iter().map(|s| (s.node, s.score.to_bits())).collect::<Vec<_>>()
        };
        assert_eq!(pairs(a), pairs(b), "top-k diverged");
        assert_eq!(a.stats.samples_used, b.stats.samples_used);
    }

    #[test]
    fn interventions_on_a_delta_updated_graph_match_a_fresh_graph() {
        let (updated, fresh) = delta_updated_and_fresh();
        let package = [
            Intervention::SetSelfRisk(NodeId(0), 0.1),
            Intervention::CutEdge(fresh.find_edge(NodeId(1), NodeId(2)).unwrap()),
        ];
        let warm =
            evaluate_interventions(updated, 2, &package, AlgorithmKind::SampledNaive, &cfg())
                .unwrap();
        let cold = evaluate_interventions(fresh, 2, &package, AlgorithmKind::SampledNaive, &cfg())
            .unwrap();
        same_result(&warm.before, &cold.before);
        same_result(&warm.after, &cold.after);
        assert_eq!(warm.risk_reduction().to_bits(), cold.risk_reduction().to_bits());
    }

    #[test]
    fn hardening_on_a_delta_updated_graph_matches_a_fresh_graph() {
        let (updated, fresh) = delta_updated_and_fresh();
        let (warm_nodes, warm) =
            greedy_hardening(updated, 2, 2, AlgorithmKind::SampledNaive, &cfg());
        let (cold_nodes, cold) = greedy_hardening(fresh, 2, 2, AlgorithmKind::SampledNaive, &cfg());
        assert_eq!(warm_nodes, cold_nodes, "hardening order diverged");
        same_result(&warm.before, &cold.before);
        same_result(&warm.after, &cold.after);
    }
}
