//! Error types for graph construction and I/O.

use std::fmt;

/// Errors produced while building or loading an uncertain graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A probability was outside the closed interval `[0, 1]` or not finite.
    InvalidProbability {
        /// Human-readable description of where the probability was used.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A node id referenced a node that does not exist.
    NodeOutOfBounds {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph.
        len: u32,
    },
    /// An edge id referenced an edge that does not exist.
    EdgeOutOfBounds {
        /// The offending canonical edge id.
        edge: u32,
        /// Number of edges in the graph.
        len: u32,
    },
    /// A self-loop `(v, v)` was inserted; a node's default cannot diffuse to
    /// itself under the paper's model.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: u32,
    },
    /// A duplicate edge was inserted while the builder policy was
    /// [`DuplicateEdgePolicy::Error`](crate::builder::DuplicateEdgePolicy::Error).
    DuplicateEdge {
        /// Source of the duplicate edge.
        source: u32,
        /// Target of the duplicate edge.
        target: u32,
    },
    /// The number of nodes or edges would exceed the `u32` index space.
    CapacityExceeded {
        /// What overflowed ("nodes" or "edges").
        what: &'static str,
    },
    /// A parse error while reading a graph from text.
    Parse {
        /// 1-based line number of the malformed input.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An underlying I/O error, stringified to keep the error type `Clone`.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidProbability { context, value } => {
                write!(f, "invalid probability {value} for {context}: must be in [0, 1]")
            }
            GraphError::NodeOutOfBounds { node, len } => {
                write!(f, "node id {node} out of bounds for graph with {len} nodes")
            }
            GraphError::EdgeOutOfBounds { edge, len } => {
                write!(f, "edge id {edge} out of bounds for graph with {len} edges")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            GraphError::DuplicateEdge { source, target } => {
                write!(f, "duplicate edge ({source}, {target})")
            }
            GraphError::CapacityExceeded { what } => {
                write!(f, "number of {what} exceeds u32 index space")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Validates that `value` is a finite probability in `[0, 1]`.
pub(crate) fn check_probability(value: f64, context: &'static str) -> Result<f64> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(GraphError::InvalidProbability { context, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_probabilities() {
        assert_eq!(check_probability(0.0, "t").unwrap(), 0.0);
        assert_eq!(check_probability(1.0, "t").unwrap(), 1.0);
        assert_eq!(check_probability(0.5, "t").unwrap(), 0.5);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(check_probability(-0.1, "t").is_err());
        assert!(check_probability(1.1, "t").is_err());
    }

    #[test]
    fn rejects_non_finite() {
        assert!(check_probability(f64::NAN, "t").is_err());
        assert!(check_probability(f64::INFINITY, "t").is_err());
        assert!(check_probability(f64::NEG_INFINITY, "t").is_err());
    }

    #[test]
    fn display_is_informative() {
        let e = GraphError::InvalidProbability { context: "edge (1, 2)", value: 1.5 };
        let s = e.to_string();
        assert!(s.contains("1.5"));
        assert!(s.contains("edge (1, 2)"));

        let e = GraphError::Parse { line: 7, message: "bad token".into() };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
