//! The core uncertain-graph storage type.
//!
//! [`UncertainGraph`] is an immutable directed graph in compressed sparse
//! row (CSR) form with **both** forward and reverse adjacency, so that the
//! reverse sampler (Algorithm 5 of the paper) can traverse in-neighbors
//! without building a transposed copy. Every edge has one *canonical* id
//! (its position in the out-CSR arrays); the reverse adjacency stores a
//! mapping back to canonical ids so a coin flipped for edge `e` during a
//! possible-world materialization is observed consistently from both
//! directions.

use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, NodeId};

/// A reference to one directed edge, yielded by adjacency iterators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Canonical edge id.
    pub id: EdgeId,
    /// Source node (the defaulting upstream node).
    pub source: NodeId,
    /// Target node (the node the default diffuses to).
    pub target: NodeId,
    /// Diffusion probability `p(target | source)`.
    pub prob: f64,
}

/// A directed uncertain graph.
///
/// Each node `v` carries a self-risk probability `ps(v)`; each edge
/// `(u, v)` carries a diffusion probability `p(v | u)`. See the crate-level
/// documentation for the semantics.
///
/// Construct via [`GraphBuilder`](crate::builder::GraphBuilder) or
/// [`UncertainGraph::builder`].
#[derive(Debug, Clone)]
pub struct UncertainGraph {
    pub(crate) self_risk: Vec<f64>,
    // Forward CSR. Edge id `e` has source `edge_sources[e]`, target
    // `out_targets[e]`, probability `edge_prob[e]`.
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<u32>,
    pub(crate) edge_prob: Vec<f64>,
    pub(crate) edge_sources: Vec<u32>,
    // Reverse CSR; `in_edge_ids` maps positions back to canonical edge ids.
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_sources: Vec<u32>,
    pub(crate) in_edge_ids: Vec<u32>,
    // Probability version: bumped by every in-place probability update so
    // caches keyed on the graph's probabilities (e.g. coin tables) can
    // detect staleness. Not part of structural equality.
    pub(crate) version: u64,
}

impl PartialEq for UncertainGraph {
    fn eq(&self, other: &Self) -> bool {
        self.self_risk == other.self_risk
            && self.out_offsets == other.out_offsets
            && self.out_targets == other.out_targets
            && self.edge_prob == other.edge_prob
            && self.edge_sources == other.edge_sources
            && self.in_offsets == other.in_offsets
            && self.in_sources == other.in_sources
            && self.in_edge_ids == other.in_edge_ids
    }
}

impl UncertainGraph {
    /// Starts building a graph with `n` nodes, all with self-risk `0.0`.
    pub fn builder(n: usize) -> crate::builder::GraphBuilder {
        crate::builder::GraphBuilder::new(n)
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.self_risk.len()
    }

    /// Number of edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.self_risk.is_empty()
    }

    /// Iterator over all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over all canonical edge ids `0..m`.
    #[inline]
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeId> {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Self-risk probability `ps(v)`.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn self_risk(&self, v: NodeId) -> f64 {
        self.self_risk[v.index()]
    }

    /// Checked variant of [`self_risk`](Self::self_risk).
    pub fn try_self_risk(&self, v: NodeId) -> Result<f64> {
        self.self_risk
            .get(v.index())
            .copied()
            .ok_or(GraphError::NodeOutOfBounds { node: v.0, len: self.num_nodes() as u32 })
    }

    /// Diffusion probability of the edge with canonical id `e`.
    #[inline]
    pub fn edge_prob(&self, e: EdgeId) -> f64 {
        self.edge_prob[e.index()]
    }

    /// Source and target of the edge with canonical id `e`.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        (NodeId(self.edge_sources[e.index()]), NodeId(self.out_targets[e.index()]))
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.out_offsets[i + 1] - self.out_offsets[i]) as usize
    }

    /// In-degree of `v` (size of `N(v)` in the paper's notation).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.in_offsets[i + 1] - self.in_offsets[i]) as usize
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Iterator over the out-edges of `v` in canonical-id order.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> OutEdges<'_> {
        let i = v.index();
        OutEdges { graph: self, source: v, range: self.out_offsets[i]..self.out_offsets[i + 1] }
    }

    /// Iterator over the in-edges of `v` (edges `(u, v)`).
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> InEdges<'_> {
        let i = v.index();
        InEdges { graph: self, target: v, range: self.in_offsets[i]..self.in_offsets[i + 1] }
    }

    /// Out-neighbor node ids of `v` as a slice (no probabilities).
    #[inline(always)]
    pub fn out_neighbors(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.out_targets[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// In-neighbor node ids of `v` as a slice (no probabilities).
    #[inline(always)]
    pub fn in_neighbors(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.in_sources[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Canonical edge ids of the out-edges of `v`, as an index range.
    ///
    /// Out-edges of one node occupy a contiguous run of canonical ids, so
    /// `out_edge_range(v).zip(out_neighbors(v))` walks `(edge id, target)`
    /// pairs without constructing [`EdgeRef`]s — the form the bit-parallel
    /// world-block kernel consumes.
    #[inline(always)]
    pub fn out_edge_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let i = v.index();
        self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize
    }

    /// Canonical edge ids of the in-edges of `v`, parallel to
    /// [`in_neighbors`](Self::in_neighbors): position `p` of both slices
    /// describes the same edge `(in_neighbors(v)[p], v)`.
    #[inline(always)]
    pub fn in_edge_ids(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.in_edge_ids[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Returns the canonical id of edge `(u, v)` if present.
    ///
    /// Runs in `O(log out_degree(u))` thanks to CSR target ordering.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u.index() >= self.num_nodes() {
            return None;
        }
        let lo = self.out_offsets[u.index()] as usize;
        let hi = self.out_offsets[u.index() + 1] as usize;
        let slice = &self.out_targets[lo..hi];
        slice.binary_search(&v.0).ok().map(|pos| EdgeId((lo + pos) as u32))
    }

    /// Returns `true` if edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Builds the transposed graph: every edge `(u, v)` becomes `(v, u)`
    /// with the same diffusion probability; self-risks are kept.
    ///
    /// The reverse sampler does not need this (it walks
    /// [`in_edges`](Self::in_edges) directly), but the transpose is useful
    /// for algorithms written against forward adjacency only.
    pub fn transpose(&self) -> UncertainGraph {
        let mut b = crate::builder::GraphBuilder::new(self.num_nodes());
        for v in self.nodes() {
            // xlint: allow(panic-hygiene) — every id and probability
            // re-inserted here was validated when this graph was built.
            b.set_self_risk(v, self.self_risk(v)).expect("existing risk is valid");
        }
        for e in self.edges() {
            let (u, v) = self.edge_endpoints(e);
            // xlint: allow(panic-hygiene) — same revalidation argument
            // as the self-risks above.
            b.add_edge(v, u, self.edge_prob(e)).expect("existing edge is valid");
        }
        // xlint: allow(panic-hygiene) — a valid graph's transpose
        // satisfies every builder invariant.
        b.build().expect("transpose of a valid graph is valid")
    }

    /// Sum of all self-risk probabilities (expected number of seed
    /// defaults per possible world). Useful for workload characterization.
    pub fn total_self_risk(&self) -> f64 {
        self.self_risk.iter().sum()
    }

    /// Probability version of the graph: starts at 0 and is bumped by
    /// every [`set_self_risk`](Self::set_self_risk) /
    /// [`set_edge_prob`](Self::set_edge_prob) call (successful ones
    /// only). Caches derived from the graph's probabilities compare
    /// versions to detect staleness instead of re-hashing `n + m`
    /// floats.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Updates a node's self-risk probability in place.
    ///
    /// Probability updates preserve the CSR structure, so they are `O(1)`
    /// — this is the common monthly-recalibration path in a risk system,
    /// unlike topology changes which require a rebuild.
    pub fn set_self_risk(&mut self, v: NodeId, ps: f64) -> Result<()> {
        let ps = crate::error::check_probability(ps, "node self-risk")?;
        let len = self.num_nodes() as u32;
        let slot = self
            .self_risk
            .get_mut(v.index())
            .ok_or(GraphError::NodeOutOfBounds { node: v.0, len })?;
        *slot = ps;
        self.version = self.version.wrapping_add(1);
        Ok(())
    }

    /// Updates an edge's diffusion probability in place (`O(1)`).
    pub fn set_edge_prob(&mut self, e: EdgeId, prob: f64) -> Result<()> {
        let prob = crate::error::check_probability(prob, "edge diffusion probability")?;
        let len = self.num_edges() as u32;
        let slot = self
            .edge_prob
            .get_mut(e.index())
            .ok_or(GraphError::EdgeOutOfBounds { edge: e.0, len })?;
        *slot = prob;
        self.version = self.version.wrapping_add(1);
        Ok(())
    }

    /// Validates internal CSR invariants. Used by tests and `debug_assert!`
    /// callers; a graph built through [`GraphBuilder`](crate::builder::GraphBuilder) always passes.
    pub fn check_invariants(&self) -> Result<()> {
        let n = self.num_nodes();
        let m = self.num_edges();
        if self.out_offsets.len() != n + 1 || self.in_offsets.len() != n + 1 {
            return Err(GraphError::Parse { line: 0, message: "offset length".into() });
        }
        if self.out_offsets[n] as usize != m || self.in_offsets[n] as usize != m {
            return Err(GraphError::Parse { line: 0, message: "offset totals".into() });
        }
        if self.edge_prob.len() != m || self.edge_sources.len() != m {
            return Err(GraphError::Parse { line: 0, message: "edge array length".into() });
        }
        for w in self.out_offsets.windows(2).chain(self.in_offsets.windows(2)) {
            if w[0] > w[1] {
                return Err(GraphError::Parse { line: 0, message: "offsets not monotone".into() });
            }
        }
        for e in 0..m {
            let src = self.edge_sources[e] as usize;
            if src >= n || (self.out_targets[e] as usize) >= n {
                return Err(GraphError::NodeOutOfBounds {
                    node: self.edge_sources[e].max(self.out_targets[e]),
                    len: n as u32,
                });
            }
            let lo = self.out_offsets[src] as usize;
            let hi = self.out_offsets[src + 1] as usize;
            if !(lo..hi).contains(&e) {
                return Err(GraphError::Parse { line: 0, message: "edge source mismatch".into() });
            }
        }
        // Reverse CSR must be a permutation of canonical edge ids, and each
        // in-edge of v must indeed target v.
        let mut seen = vec![false; m];
        for v in 0..n {
            let lo = self.in_offsets[v] as usize;
            let hi = self.in_offsets[v + 1] as usize;
            for pos in lo..hi {
                let e = self.in_edge_ids[pos] as usize;
                if e >= m || seen[e] {
                    return Err(GraphError::Parse {
                        line: 0,
                        message: "in_edge_ids invalid".into(),
                    });
                }
                seen[e] = true;
                if self.out_targets[e] as usize != v {
                    return Err(GraphError::Parse { line: 0, message: "in-edge target".into() });
                }
                if self.in_sources[pos] != self.edge_sources[e] {
                    return Err(GraphError::Parse { line: 0, message: "in-edge source".into() });
                }
            }
        }
        Ok(())
    }
}

/// Iterator over out-edges of one node. See [`UncertainGraph::out_edges`].
#[derive(Debug, Clone)]
pub struct OutEdges<'a> {
    graph: &'a UncertainGraph,
    source: NodeId,
    range: std::ops::Range<u32>,
}

impl Iterator for OutEdges<'_> {
    type Item = EdgeRef;

    #[inline]
    fn next(&mut self) -> Option<EdgeRef> {
        let e = self.range.next()? as usize;
        Some(EdgeRef {
            id: EdgeId(e as u32),
            source: self.source,
            target: NodeId(self.graph.out_targets[e]),
            prob: self.graph.edge_prob[e],
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for OutEdges<'_> {}

/// Iterator over in-edges of one node. See [`UncertainGraph::in_edges`].
#[derive(Debug, Clone)]
pub struct InEdges<'a> {
    graph: &'a UncertainGraph,
    target: NodeId,
    range: std::ops::Range<u32>,
}

impl Iterator for InEdges<'_> {
    type Item = EdgeRef;

    #[inline]
    fn next(&mut self) -> Option<EdgeRef> {
        let pos = self.range.next()? as usize;
        let e = self.graph.in_edge_ids[pos] as usize;
        Some(EdgeRef {
            id: EdgeId(e as u32),
            source: NodeId(self.graph.in_sources[pos]),
            target: self.target,
            prob: self.graph.edge_prob[e],
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for InEdges<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 5-node toy network of the paper's Figure 3:
    /// A→B, A→C, B→D, B→E, C→E, D→E with uniform probabilities 0.2.
    pub(crate) fn figure3() -> UncertainGraph {
        let mut b = UncertainGraph::builder(5);
        for v in 0..5u32 {
            b.set_self_risk(NodeId(v), 0.2).unwrap();
        }
        for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
            b.add_edge(NodeId(u), NodeId(v), 0.2).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = figure3();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 6);
        assert!(!g.is_empty());
        g.check_invariants().unwrap();
    }

    #[test]
    fn degrees_match_figure3() {
        let g = figure3();
        assert_eq!(g.out_degree(NodeId(0)), 2); // A
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.in_degree(NodeId(4)), 3); // E ← B, C, D
        assert_eq!(g.out_degree(NodeId(4)), 0);
        assert_eq!(g.degree(NodeId(1)), 3); // B: in A, out D, E
    }

    #[test]
    fn out_edges_yield_canonical_ids() {
        let g = figure3();
        let edges: Vec<EdgeRef> = g.out_edges(NodeId(0)).collect();
        assert_eq!(edges.len(), 2);
        for e in &edges {
            assert_eq!(e.source, NodeId(0));
            let (s, t) = g.edge_endpoints(e.id);
            assert_eq!(s, e.source);
            assert_eq!(t, e.target);
            assert_eq!(g.edge_prob(e.id), e.prob);
        }
    }

    #[test]
    fn in_edges_agree_with_out_edges() {
        let g = figure3();
        // Collect all edges from the out-side and in-side; the multisets of
        // (id, source, target) must match.
        let mut from_out: Vec<(u32, u32, u32)> = g
            .nodes()
            .flat_map(|v| g.out_edges(v))
            .map(|e| (e.id.0, e.source.0, e.target.0))
            .collect();
        let mut from_in: Vec<(u32, u32, u32)> = g
            .nodes()
            .flat_map(|v| g.in_edges(v))
            .map(|e| (e.id.0, e.source.0, e.target.0))
            .collect();
        from_out.sort_unstable();
        from_in.sort_unstable();
        assert_eq!(from_out, from_in);
    }

    #[test]
    fn csr_slice_accessors_agree_with_iterators() {
        let g = figure3();
        for v in g.nodes() {
            let ids: Vec<u32> = g.out_edge_range(v).map(|e| e as u32).collect();
            let from_iter: Vec<u32> = g.out_edges(v).map(|e| e.id.0).collect();
            assert_eq!(ids, from_iter, "out ids of {v}");
            let targets: Vec<u32> = g.out_neighbors(v).to_vec();
            let iter_targets: Vec<u32> = g.out_edges(v).map(|e| e.target.0).collect();
            assert_eq!(targets, iter_targets, "out targets of {v}");

            let in_ids: Vec<u32> = g.in_edge_ids(v).to_vec();
            let in_iter: Vec<u32> = g.in_edges(v).map(|e| e.id.0).collect();
            assert_eq!(in_ids, in_iter, "in ids of {v}");
            let in_srcs: Vec<u32> = g.in_neighbors(v).to_vec();
            let in_iter_srcs: Vec<u32> = g.in_edges(v).map(|e| e.source.0).collect();
            assert_eq!(in_srcs, in_iter_srcs, "in sources of {v}");
        }
    }

    #[test]
    fn find_edge_works() {
        let g = figure3();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(3), NodeId(4)));
        assert!(!g.has_edge(NodeId(4), NodeId(3)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
        let e = g.find_edge(NodeId(1), NodeId(4)).unwrap();
        assert_eq!(g.edge_endpoints(e), (NodeId(1), NodeId(4)));
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = figure3();
        let t = g.transpose();
        t.check_invariants().unwrap();
        assert_eq!(t.num_nodes(), g.num_nodes());
        assert_eq!(t.num_edges(), g.num_edges());
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e);
            assert!(t.has_edge(v, u));
        }
        // Self-risks preserved.
        for v in g.nodes() {
            assert_eq!(t.self_risk(v), g.self_risk(v));
        }
        // Double transpose is the original up to edge ordering.
        let tt = t.transpose();
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e);
            let id = tt.find_edge(u, v).expect("edge survives double transpose");
            assert_eq!(tt.edge_prob(id), g.edge_prob(e));
        }
    }

    #[test]
    fn try_self_risk_bounds_check() {
        let g = figure3();
        assert!(g.try_self_risk(NodeId(4)).is_ok());
        assert!(g.try_self_risk(NodeId(5)).is_err());
    }

    #[test]
    fn total_self_risk_sums() {
        let g = figure3();
        assert!((g.total_self_risk() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::builder(0).build().unwrap();
        assert!(g.is_empty());
        assert_eq!(g.num_edges(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn in_place_probability_updates() {
        let mut g = figure3();
        assert_eq!(g.version(), 0);
        g.set_self_risk(NodeId(0), 0.9).unwrap();
        assert_eq!(g.self_risk(NodeId(0)), 0.9);
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        g.set_edge_prob(e, 0.75).unwrap();
        assert_eq!(g.edge_prob(e), 0.75);
        assert_eq!(g.version(), 2, "each successful update bumps the probability version");
        g.check_invariants().unwrap();
        // Invalid updates are rejected and leave the graph untouched,
        // each with the matching out-of-bounds variant.
        assert!(g.set_self_risk(NodeId(0), 1.5).is_err());
        assert!(matches!(
            g.set_self_risk(NodeId(99), 0.5),
            Err(GraphError::NodeOutOfBounds { node: 99, .. })
        ));
        assert!(matches!(
            g.set_edge_prob(EdgeId(99), 0.5),
            Err(GraphError::EdgeOutOfBounds { edge: 99, .. })
        ));
        assert_eq!(g.self_risk(NodeId(0)), 0.9);
        assert_eq!(g.version(), 2, "failed updates must not bump the version");
    }

    #[test]
    fn node_without_edges() {
        let g = UncertainGraph::builder(3).build().unwrap();
        assert_eq!(g.out_degree(NodeId(1)), 0);
        assert_eq!(g.in_degree(NodeId(1)), 0);
        assert_eq!(g.out_edges(NodeId(1)).count(), 0);
    }
}
