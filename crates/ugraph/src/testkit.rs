//! Minimal deterministic property-testing support.
//!
//! The workspace builds with no external dependencies, so the randomized
//! ("property") tests that would normally use `proptest` run on this tiny
//! kit instead: a SplitMix64 generator plus a random-graph builder shared
//! by the crates' test suites. Cases are seeded deterministically, so a
//! failure report (`case i`) is always reproducible.

use crate::builder::{from_parts, DuplicateEdgePolicy};
use crate::graph::UncertainGraph;

/// SplitMix64 — tiny, seedable, good enough to drive test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator for `seed` (any value is fine, including 0).
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        lo + self.next_bounded((hi - lo + 1) as u64) as usize
    }
}

/// A random valid uncertain graph with `2..=max_n` nodes and up to
/// `max_m` edges. Edge targets are built as `(u + d) mod n` with
/// `d ∈ 1..n`, so self-loops are impossible by construction; duplicates
/// collapse under [`DuplicateEdgePolicy::KeepMax`].
pub fn random_graph(rng: &mut TestRng, max_n: usize, max_m: usize) -> UncertainGraph {
    let n = rng.range_usize(2, max_n.max(2));
    let risks: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let m = rng.range_usize(0, max_m);
    let edges: Vec<(u32, u32, f64)> = (0..m)
        .map(|_| {
            let u = rng.next_bounded(n as u64) as u32;
            let d = 1 + rng.next_bounded(n as u64 - 1) as u32;
            (u, (u + d) % n as u32, rng.next_f64())
        })
        .collect();
    // xlint: allow(panic-hygiene) — test-support generator: ids are
    // reduced mod `n` and probabilities drawn from `[0, 1)`, so the
    // parts are always valid.
    from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).expect("valid parts")
}

/// Runs `cases` deterministic property cases: each case gets its own
/// seeded [`TestRng`], and a panic inside the property is re-raised with
/// the case number so it can be replayed in isolation.
pub fn check(cases: u64, mut property: impl FnMut(&mut TestRng)) {
    for case in 0..cases {
        let mut rng = TestRng::new(0xC0FFEE ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        if let Err(panic) = result {
            eprintln!("property failed at case {case} (seed derivation is deterministic)");
            std::panic::resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn random_graph_is_valid() {
        let mut rng = TestRng::new(7);
        for _ in 0..16 {
            let g = random_graph(&mut rng, 20, 60);
            g.check_invariants().unwrap();
            assert!(g.num_nodes() >= 2);
        }
    }

    #[test]
    fn check_runs_all_cases() {
        let mut count = 0;
        check(10, |_| count += 1);
        assert_eq!(count, 10);
    }
}
