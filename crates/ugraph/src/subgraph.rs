//! Induced subgraphs and neighborhood extraction.
//!
//! Risk managers drill into one guarantee circle or one hub's
//! neighborhood; these helpers carve out the corresponding uncertain
//! subgraph with probabilities preserved and a mapping back to the
//! original node ids.

use crate::builder::GraphBuilder;
use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use crate::traversal::{Bfs, Direction};

/// A subgraph together with the id mapping back to its parent graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Subgraph {
    /// The induced uncertain graph with dense ids `0..len`.
    pub graph: UncertainGraph,
    /// `original[i]` — the parent-graph id of subgraph node `i`.
    pub original: Vec<NodeId>,
}

impl Subgraph {
    /// Maps a subgraph node id back to the parent graph.
    pub fn to_original(&self, v: NodeId) -> NodeId {
        self.original[v.index()]
    }

    /// Maps a parent-graph id into the subgraph, if present. `O(log n)`.
    pub fn from_original(&self, v: NodeId) -> Option<NodeId> {
        // `original` is ascending by construction.
        self.original.binary_search(&v).ok().map(|i| NodeId(i as u32))
    }
}

/// Builds the subgraph induced by `nodes`: those nodes, their self-risks,
/// and every edge with both endpoints inside. Duplicate ids are merged;
/// the result's id order follows ascending original ids.
pub fn induced_subgraph(graph: &UncertainGraph, nodes: &[NodeId]) -> Subgraph {
    let mut original: Vec<NodeId> = nodes.to_vec();
    original.sort_unstable();
    original.dedup();

    let mut remap = vec![u32::MAX; graph.num_nodes()];
    for (i, v) in original.iter().enumerate() {
        remap[v.index()] = i as u32;
    }

    let mut b = GraphBuilder::new(original.len());
    for (i, &v) in original.iter().enumerate() {
        // xlint: allow(panic-hygiene) — ids are the compacted `0..len`
        // range and probabilities were validated by the source graph.
        b.set_self_risk(NodeId(i as u32), graph.self_risk(v)).expect("existing risk is valid");
    }
    for &v in &original {
        for e in graph.out_edges(v) {
            let t = remap[e.target.index()];
            if t != u32::MAX {
                // xlint: allow(panic-hygiene) — same remap argument as
                // the self-risks above.
                b.add_edge(NodeId(remap[v.index()]), NodeId(t), e.prob)
                    .expect("existing edge is valid");
            }
        }
    }
    // xlint: allow(panic-hygiene) — an induced subgraph of a valid
    // graph satisfies every builder invariant.
    Subgraph { graph: b.build().expect("induced subgraph is valid"), original }
}

/// The `radius`-hop neighborhood of `center` following `direction`
/// (upstream contagion sources use `Reverse`), as an induced subgraph.
pub fn neighborhood(
    graph: &UncertainGraph,
    center: NodeId,
    radius: u32,
    direction: Direction,
) -> Subgraph {
    let nodes: Vec<NodeId> = Bfs::new(graph, center, direction)
        .take_while(|&(_, d)| d <= radius)
        .map(|(v, _)| v)
        .collect();
    induced_subgraph(graph, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_parts, DuplicateEdgePolicy};

    fn g() -> UncertainGraph {
        // 0 → 1 → 2 → 3, plus 0 → 3 shortcut.
        from_parts(
            &[0.1, 0.2, 0.3, 0.4],
            &[(0, 1, 0.5), (1, 2, 0.6), (2, 3, 0.7), (0, 3, 0.8)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let s = induced_subgraph(&g(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(s.graph.num_nodes(), 3);
        assert_eq!(s.graph.num_edges(), 2); // 0→1, 1→2; both 3-edges cut
        assert_eq!(s.graph.self_risk(NodeId(2)), 0.3);
        let e = s.graph.find_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(s.graph.edge_prob(e), 0.6);
    }

    #[test]
    fn id_mapping_roundtrips() {
        let s = induced_subgraph(&g(), &[NodeId(3), NodeId(1)]);
        assert_eq!(s.original, vec![NodeId(1), NodeId(3)]);
        assert_eq!(s.to_original(NodeId(0)), NodeId(1));
        assert_eq!(s.from_original(NodeId(3)), Some(NodeId(1)));
        assert_eq!(s.from_original(NodeId(0)), None);
    }

    #[test]
    fn duplicates_in_selection_are_merged() {
        let s = induced_subgraph(&g(), &[NodeId(1), NodeId(1), NodeId(1)]);
        assert_eq!(s.graph.num_nodes(), 1);
        assert_eq!(s.graph.num_edges(), 0);
    }

    #[test]
    fn forward_neighborhood() {
        let s = neighborhood(&g(), NodeId(0), 1, Direction::Forward);
        // 0 plus its 1-hop targets {1, 3}.
        assert_eq!(s.original, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert!(s.graph.has_edge(NodeId(0), NodeId(1)));
        assert!(s.graph.has_edge(NodeId(0), NodeId(2))); // 0→3 remapped
    }

    #[test]
    fn reverse_neighborhood_finds_contagion_sources() {
        let s = neighborhood(&g(), NodeId(3), 1, Direction::Reverse);
        // 3 plus in-neighbors {0, 2}.
        assert_eq!(s.original, vec![NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn radius_zero_is_singleton() {
        let s = neighborhood(&g(), NodeId(2), 0, Direction::Forward);
        assert_eq!(s.original, vec![NodeId(2)]);
        assert_eq!(s.graph.num_edges(), 0);
    }

    #[test]
    fn empty_selection() {
        let s = induced_subgraph(&g(), &[]);
        assert_eq!(s.graph.num_nodes(), 0);
    }
}
