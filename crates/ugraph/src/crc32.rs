//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! checksum guarding binary snapshots and write-ahead-log records.
//!
//! Zero-dependency, table-driven, byte-at-a-time. Matches the classic
//! zlib `crc32()` so external tools can verify our files.

/// Per-byte lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state. Feed bytes with [`Crc32::update`], read the
/// final checksum with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (equivalent to checksumming the empty string).
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final checksum over everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot checksum of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib crc32() implementation.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 31 % 251) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 7, 500, 999, 1000] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"vulnds wal record payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "missed flip at {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
