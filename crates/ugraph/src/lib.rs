//! # ugraph — directed uncertain graphs
//!
//! Storage substrate for the VulnDS system (Cheng et al., *Efficient Top-k
//! Vulnerable Nodes Detection in Uncertain Graphs*, ICDE 2022).
//!
//! An [`UncertainGraph`] is a directed graph where
//!
//! * every node `v` carries a **self-risk probability** `ps(v)` — the
//!   chance that `v` defaults because of its own factors, and
//! * every edge `(u, v)` carries a **diffusion probability** `p(v|u)` —
//!   the chance that `u`'s default causes `v`'s default.
//!
//! A *possible world* is drawn by sampling each node's self-default and
//! each edge's survival independently; a node defaults in that world iff it
//! is reachable from a self-defaulted node through surviving edges (or
//! self-defaulted itself). The **default probability** `p(v)` is the
//! probability that `v` defaults in a random possible world; computing it
//! exactly is #P-hard, which is what the sampling algorithms in
//! `vulnds-core` are for.
//!
//! The graph is stored in compressed-sparse-row form with both forward and
//! reverse adjacency and canonical edge ids shared between the two, so
//! possible-world coin flips can be memoized per edge regardless of
//! traversal direction.
//!
//! ```
//! use ugraph::{UncertainGraph, NodeId};
//!
//! // The toy guaranteed-loan network of the paper's Figure 3.
//! let mut b = UncertainGraph::builder(5);
//! for v in 0..5 {
//!     b.set_self_risk(NodeId(v), 0.2).unwrap();
//! }
//! for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
//!     b.add_edge(NodeId(u), NodeId(v), 0.2).unwrap();
//! }
//! let g = b.build().unwrap();
//! assert_eq!(g.num_nodes(), 5);
//! assert_eq!(g.in_degree(NodeId(4)), 3); // E is guaranteed by B, C, D
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod crc32;
pub mod delta;
pub mod error;
pub mod graph;
pub mod ids;
pub mod io;
pub mod io_binary;
pub mod relabel;
pub mod scc;
pub mod stats;
pub mod subgraph;
pub mod testkit;
pub mod traversal;

pub use builder::{from_parts, DuplicateEdgePolicy, GraphBuilder};
pub use crc32::{crc32, Crc32};
pub use delta::GraphDelta;
pub use error::{GraphError, Result};
pub use graph::{EdgeRef, InEdges, OutEdges, UncertainGraph};
pub use ids::{EdgeId, NodeId};
pub use relabel::{NodeMap, NodeOrder};
pub use scc::{strongly_connected_components, SccDecomposition};
pub use stats::{DegreeHistogram, GraphStats};
pub use subgraph::{induced_subgraph, neighborhood, Subgraph};
pub use traversal::{Bfs, Direction};
