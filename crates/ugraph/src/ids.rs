//! Strongly-typed node and edge identifiers.
//!
//! Indices are `u32` internally: the paper's largest graph (P2P) has 62,586
//! nodes and 147,892 edges, far below `u32::MAX`, and halving index size
//! keeps the CSR arrays cache-friendly.

use std::fmt;

/// Identifier of a node in an [`UncertainGraph`](crate::UncertainGraph).
///
/// Node ids are dense: a graph with `n` nodes has ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// Identifier of a directed edge.
///
/// Edge ids are dense and canonical: they index the out-CSR edge arrays, so
/// the same id is observed whether an edge is reached through forward or
/// reverse adjacency. Samplers rely on this to memoize one coin flip per
/// edge per possible world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl From<EdgeId> for u32 {
    fn from(v: EdgeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from(42u32);
        assert_eq!(n.index(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(n.to_string(), "n42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from(7u32);
        assert_eq!(e.index(), 7);
        assert_eq!(u32::from(e), 7);
        assert_eq!(e.to_string(), "e7");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(9) > EdgeId(3));
    }
}
