//! Batched probability deltas — the unit of live graph mutation.
//!
//! A [`GraphDelta`] is an ordered batch of self-risk and edge-probability
//! changes that is validated as a whole and applied atomically: either
//! every change lands on the target graph or none does. Deltas carry a
//! canonical byte encoding (used verbatim by the write-ahead log) so a
//! batch can be persisted, checksummed, and replayed bit-identically.
//!
//! Topology never changes — the paper's deployment recalibrates
//! probabilities monthly while the loan network itself is stable — so a
//! delta addresses existing nodes and edges by id only.

use crate::error::{GraphError, Result};
use crate::graph::UncertainGraph;
use crate::ids::{EdgeId, NodeId};

/// A validated-as-a-whole, applied-atomically batch of probability
/// changes. Later entries for the same item win (last-writer-wins
/// within a batch), matching sequential `set_*` call semantics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    /// `(node index, new self-risk)` pairs, in application order.
    pub self_risk: Vec<(u32, f64)>,
    /// `(edge index, new diffusion probability)` pairs, in application order.
    pub edge_prob: Vec<(u32, f64)>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a self-risk change.
    pub fn set_self_risk(mut self, v: NodeId, ps: f64) -> Self {
        self.self_risk.push((v.0, ps));
        self
    }

    /// Queues an edge-probability change.
    pub fn set_edge_prob(mut self, e: EdgeId, prob: f64) -> Self {
        self.edge_prob.push((e.0, prob));
        self
    }

    /// True when the batch contains no changes.
    pub fn is_empty(&self) -> bool {
        self.self_risk.is_empty() && self.edge_prob.is_empty()
    }

    /// Total number of queued changes (not deduplicated).
    pub fn len(&self) -> usize {
        self.self_risk.len() + self.edge_prob.len()
    }

    /// Checks every change against `graph` without mutating it: ids must
    /// be in bounds and probabilities in `[0, 1]`. Returns the first
    /// offending change's error.
    pub fn validate(&self, graph: &UncertainGraph) -> Result<()> {
        let n = graph.num_nodes() as u32;
        let m = graph.num_edges() as u32;
        for &(v, ps) in &self.self_risk {
            if v >= n {
                return Err(GraphError::NodeOutOfBounds { node: v, len: n });
            }
            crate::error::check_probability(ps, "node self-risk")?;
        }
        for &(e, prob) in &self.edge_prob {
            if e >= m {
                return Err(GraphError::EdgeOutOfBounds { edge: e, len: m });
            }
            crate::error::check_probability(prob, "edge diffusion probability")?;
        }
        Ok(())
    }

    /// Validates the whole batch, then applies every change in order.
    /// On error the graph is untouched (atomicity); on success the
    /// graph's probability `version()` has advanced at least once.
    pub fn apply(&self, graph: &mut UncertainGraph) -> Result<()> {
        self.validate(graph)?;
        for &(v, ps) in &self.self_risk {
            graph.set_self_risk(NodeId(v), ps)?;
        }
        for &(e, prob) in &self.edge_prob {
            graph.set_edge_prob(EdgeId(e), prob)?;
        }
        Ok(())
    }

    /// Canonical byte encoding — the WAL record payload:
    ///
    /// ```text
    /// n_risk  u32 LE
    /// n_edge  u32 LE
    /// n_risk × (node u32 LE, ps f64 LE)
    /// n_edge × (edge u32 LE, prob f64 LE)
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 12 * (self.self_risk.len() + self.edge_prob.len()));
        out.extend_from_slice(&(self.self_risk.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.edge_prob.len() as u32).to_le_bytes());
        for &(v, ps) in &self.self_risk {
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&ps.to_le_bytes());
        }
        for &(e, prob) in &self.edge_prob {
            out.extend_from_slice(&e.to_le_bytes());
            out.extend_from_slice(&prob.to_le_bytes());
        }
        out
    }

    /// Decodes a payload produced by [`GraphDelta::encode`]. The payload
    /// must be exactly consumed; anything else is a parse error.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let bad = |msg: &str| GraphError::Parse { line: 0, message: msg.into() };
        if bytes.len() < 8 {
            return Err(bad("delta payload shorter than its header"));
        }
        let take_u32 = |b: &[u8]| u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        let n_risk = take_u32(&bytes[0..4]) as usize;
        let n_edge = take_u32(&bytes[4..8]) as usize;
        let want = 8usize
            .checked_add(n_risk.checked_mul(12).ok_or_else(|| bad("delta count overflow"))?)
            .and_then(|x| x.checked_add(n_edge * 12))
            .ok_or_else(|| bad("delta count overflow"))?;
        if bytes.len() != want {
            return Err(bad("delta payload length mismatch"));
        }
        let mut off = 8;
        let mut read_pair = |bytes: &[u8]| {
            let id = take_u32(&bytes[off..off + 4]);
            let mut f = [0u8; 8];
            f.copy_from_slice(&bytes[off + 4..off + 12]);
            off += 12;
            (id, f64::from_le_bytes(f))
        };
        let self_risk = (0..n_risk).map(|_| read_pair(bytes)).collect();
        let edge_prob = (0..n_edge).map(|_| read_pair(bytes)).collect();
        Ok(Self { self_risk, edge_prob })
    }

    /// Deduplicated, sorted node indices this delta touches.
    pub fn dirty_nodes(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.self_risk.iter().map(|&(i, _)| i).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Deduplicated, sorted edge indices this delta touches.
    pub fn dirty_edges(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.edge_prob.iter().map(|&(i, _)| i).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_parts, DuplicateEdgePolicy};

    fn sample() -> UncertainGraph {
        from_parts(
            &[0.1, 0.2, 0.3, 0.4],
            &[(0, 1, 0.5), (1, 2, 0.25), (0, 2, 0.75), (2, 3, 0.6)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn apply_matches_sequential_sets() {
        let mut via_delta = sample();
        let delta = GraphDelta::new()
            .set_self_risk(NodeId(1), 0.9)
            .set_edge_prob(EdgeId(2), 0.05)
            .set_self_risk(NodeId(1), 0.8); // last writer wins
        delta.apply(&mut via_delta).unwrap();

        let mut via_sets = sample();
        via_sets.set_self_risk(NodeId(1), 0.9).unwrap();
        via_sets.set_edge_prob(EdgeId(2), 0.05).unwrap();
        via_sets.set_self_risk(NodeId(1), 0.8).unwrap();
        assert_eq!(via_delta, via_sets);
        assert_eq!(via_delta.self_risk(NodeId(1)), 0.8);
    }

    #[test]
    fn invalid_batch_leaves_graph_untouched() {
        let mut g = sample();
        let before = g.clone();
        let version = g.version();
        for delta in [
            GraphDelta::new().set_self_risk(NodeId(0), 0.5).set_self_risk(NodeId(99), 0.5),
            GraphDelta::new().set_edge_prob(EdgeId(0), 0.5).set_edge_prob(EdgeId(99), 0.5),
            GraphDelta::new().set_self_risk(NodeId(0), 1.5),
            GraphDelta::new().set_edge_prob(EdgeId(0), -0.1),
            GraphDelta::new().set_edge_prob(EdgeId(0), f64::NAN),
        ] {
            assert!(delta.apply(&mut g).is_err());
            assert_eq!(g, before, "failed batch must not partially apply");
            assert_eq!(g.version(), version, "failed batch must not bump the version");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for delta in [
            GraphDelta::new(),
            GraphDelta::new().set_self_risk(NodeId(3), 0.125),
            GraphDelta::new()
                .set_self_risk(NodeId(0), 0.0)
                .set_self_risk(NodeId(2), 1.0)
                .set_edge_prob(EdgeId(1), 0.333)
                .set_edge_prob(EdgeId(3), 0.999),
        ] {
            let bytes = delta.encode();
            assert_eq!(GraphDelta::decode(&bytes).unwrap(), delta);
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let good = GraphDelta::new().set_self_risk(NodeId(1), 0.5).encode();
        assert!(GraphDelta::decode(&good[..good.len() - 1]).is_err(), "truncated");
        let mut long = good.clone();
        long.push(0);
        assert!(GraphDelta::decode(&long).is_err(), "trailing byte");
        assert!(GraphDelta::decode(&[]).is_err(), "empty");
        // A header promising more pairs than the payload holds.
        let mut lying = good;
        lying[0..4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(GraphDelta::decode(&lying).is_err(), "short body");
    }

    #[test]
    fn dirty_sets_are_sorted_and_deduped() {
        let delta = GraphDelta::new()
            .set_self_risk(NodeId(3), 0.1)
            .set_self_risk(NodeId(1), 0.2)
            .set_self_risk(NodeId(3), 0.3)
            .set_edge_prob(EdgeId(2), 0.4)
            .set_edge_prob(EdgeId(0), 0.5)
            .set_edge_prob(EdgeId(2), 0.6);
        assert_eq!(delta.dirty_nodes(), vec![1, 3]);
        assert_eq!(delta.dirty_edges(), vec![0, 2]);
        assert_eq!(delta.len(), 6);
        assert!(!delta.is_empty());
        assert!(GraphDelta::new().is_empty());
    }
}
