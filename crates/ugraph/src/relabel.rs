//! Cache-conscious node relabeling.
//!
//! CSR adjacency walks are only cache-sequential when topologically
//! close nodes have close ids. Real edge lists arrive in arbitrary
//! ingestion order, so hot kernels (the bit-parallel samplers of
//! `vulnds-sampling`, the bound recursions of `vulnds-core`) can spend
//! most of their time waiting on scattered `defaulted[target]` loads.
//! This module computes a **permutation** of the node ids — a
//! [`NodeOrder`] realized as a [`NodeMap`] — and rebuilds the graph
//! under it ([`UncertainGraph::relabeled`]), so frequently co-traversed
//! nodes land on adjacent cache lines.
//!
//! # Determinism contract
//!
//! A relabeled graph is a *different graph object*: canonical edge ids
//! are positions in the sorted `(source, target)` out-CSR, so the
//! permutation renumbers edges too, and the stateless coin generator of
//! `vulnds-sampling` (keyed by `(seed, block, item)`) therefore draws
//! **different coin streams** for the same logical network. Estimates
//! on the relabeled graph carry the same `(ε, δ)` guarantee and the
//! relabeling itself is fully deterministic — same graph, same order,
//! same permutation — but per-world outcomes are *not* bit-identical
//! to the original labeling (unlike width, direction, and thread
//! count, which never change a drawn world).

use crate::builder::GraphBuilder;
use crate::graph::UncertainGraph;
use crate::ids::NodeId;

/// Which permutation [`UncertainGraph::relabeled`] applies. Both are
/// deterministic functions of the graph's structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeOrder {
    /// Nodes sorted by total degree, descending (ties by old id).
    /// Packs the hubs — the nodes every traversal keeps touching —
    /// into the first few cache lines of every per-node array.
    DegreeDescending,
    /// Breadth-first visit order seeded at the highest-degree node,
    /// restarting at the highest-degree unvisited node until every
    /// component is covered. Neighbors get adjacent ids, so frontier
    /// expansion walks nearly-sequential memory. The default.
    #[default]
    BfsFromHub,
}

/// A node-id permutation and its inverse, produced by
/// [`UncertainGraph::relabeled`]. Maps ids between the original
/// labeling (`old`) and the relabeled one (`new`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMap {
    to_new: Vec<u32>,
    to_old: Vec<u32>,
}

impl NodeMap {
    /// Builds the map from a visit order: `to_old[new] = old`.
    fn from_visit_order(to_old: Vec<u32>) -> Self {
        let mut to_new = vec![0u32; to_old.len()];
        for (new, &old) in to_old.iter().enumerate() {
            to_new[old as usize] = new as u32;
        }
        NodeMap { to_new, to_old }
    }

    /// The relabeled id of original node `old`.
    #[inline]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        NodeId(self.to_new[old.index()])
    }

    /// The original id of relabeled node `new`.
    #[inline]
    pub fn to_old(&self, new: NodeId) -> NodeId {
        NodeId(self.to_old[new.index()])
    }

    /// Number of nodes the permutation covers.
    pub fn len(&self) -> usize {
        self.to_old.len()
    }

    /// `true` for the empty graph's (empty) permutation.
    pub fn is_empty(&self) -> bool {
        self.to_old.is_empty()
    }
}

/// Node ids sorted by total degree descending, ties by ascending id —
/// the deterministic hub ranking both orders build on.
fn degree_ranked(graph: &UncertainGraph) -> Vec<u32> {
    let mut ranked: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    ranked.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(NodeId(v))), v));
    ranked
}

/// BFS visit order over the union of out- and in-adjacency (both in
/// CSR order), seeded and re-seeded from `ranked`.
fn bfs_order(graph: &UncertainGraph, ranked: &[u32]) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for &seed in ranked {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let vid = NodeId(v);
            for &w in graph.out_neighbors(vid).iter().chain(graph.in_neighbors(vid)) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order
}

impl UncertainGraph {
    /// Rebuilds the graph under the permutation of `order`, returning
    /// the relabeled graph and the [`NodeMap`] that translates ids in
    /// both directions. Self-risk and diffusion probabilities are
    /// preserved edge for edge; only the labeling (and therefore the
    /// CSR layout and the canonical edge ids) changes. See the
    /// [module docs](self) for the determinism contract.
    pub fn relabeled(&self, order: NodeOrder) -> (UncertainGraph, NodeMap) {
        let ranked = degree_ranked(self);
        let visit = match order {
            NodeOrder::DegreeDescending => ranked,
            NodeOrder::BfsFromHub => bfs_order(self, &ranked),
        };
        let map = NodeMap::from_visit_order(visit);
        (self.relabeled_with(&map), map)
    }

    /// Rebuilds the graph under an existing permutation (see
    /// [`UncertainGraph::relabeled`]).
    pub fn relabeled_with(&self, map: &NodeMap) -> UncertainGraph {
        assert_eq!(map.len(), self.num_nodes(), "permutation size mismatch");
        let mut b = GraphBuilder::new(self.num_nodes());
        for v in self.nodes() {
            // xlint: allow(panic-hygiene) — every id and probability
            // re-inserted here was validated when this graph was built,
            // and a bijection cannot introduce self-loops or duplicates.
            b.set_self_risk(map.to_new(v), self.self_risk(v)).expect("existing risk is valid");
        }
        for e in self.edges() {
            let (u, v) = self.edge_endpoints(e);
            // xlint: allow(panic-hygiene) — same revalidation argument
            // as the self-risks above.
            b.add_edge(map.to_new(u), map.to_new(v), self.edge_prob(e))
                .expect("existing edge is valid");
        }
        // xlint: allow(panic-hygiene) — a valid graph stays valid under
        // any bijective relabeling.
        b.build().expect("relabeling of a valid graph is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_parts, DuplicateEdgePolicy};
    use crate::ids::EdgeId;

    fn star_and_chain() -> UncertainGraph {
        // Node 5 is the hub (degree 4); 0→1→2 is a separate chain.
        from_parts(
            &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
            &[(5, 3, 0.5), (5, 4, 0.4), (6, 5, 0.3), (3, 6, 0.2), (0, 1, 0.9), (1, 2, 0.8)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn maps_are_inverse_permutations() {
        let g = star_and_chain();
        for order in [NodeOrder::DegreeDescending, NodeOrder::BfsFromHub] {
            let (r, map) = g.relabeled(order);
            r.check_invariants().unwrap();
            assert_eq!(map.len(), g.num_nodes());
            let mut seen = vec![false; g.num_nodes()];
            for v in g.nodes() {
                let new = map.to_new(v);
                assert_eq!(map.to_old(new), v, "{order:?}: inverse round-trip");
                assert!(!seen[new.index()], "{order:?}: {new:?} assigned twice");
                seen[new.index()] = true;
            }
        }
    }

    #[test]
    fn degree_descending_ranks_hubs_first() {
        let g = star_and_chain();
        let (_, map) = g.relabeled(NodeOrder::DegreeDescending);
        // Node 5 has the highest degree, so it becomes node 0.
        assert_eq!(map.to_old(NodeId(0)), NodeId(5));
        // Degrees are non-increasing along the new labeling.
        let degs: Vec<usize> =
            (0..g.num_nodes() as u32).map(|new| g.degree(map.to_old(NodeId(new)))).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degrees not descending: {degs:?}");
    }

    #[test]
    fn bfs_order_starts_at_hub_and_covers_components() {
        let g = star_and_chain();
        let (_, map) = g.relabeled(NodeOrder::BfsFromHub);
        assert_eq!(map.to_old(NodeId(0)), NodeId(5), "BFS must seed at the hub");
        // The hub's component (3, 4, 5, 6) is labeled before the chain
        // component (0, 1, 2).
        for new in 0..4u32 {
            assert!(map.to_old(NodeId(new)).0 >= 3, "hub component first");
        }
        for new in 4..7u32 {
            assert!(map.to_old(NodeId(new)).0 < 3, "chain component second");
        }
    }

    #[test]
    fn probabilities_survive_relabeling() {
        let g = star_and_chain();
        for order in [NodeOrder::DegreeDescending, NodeOrder::BfsFromHub] {
            let (r, map) = g.relabeled(order);
            for v in g.nodes() {
                assert_eq!(r.self_risk(map.to_new(v)), g.self_risk(v), "{order:?}");
            }
            assert_eq!(r.num_edges(), g.num_edges());
            for e in g.edges() {
                let (u, v) = g.edge_endpoints(e);
                let re = r
                    .find_edge(map.to_new(u), map.to_new(v))
                    .unwrap_or_else(|| panic!("{order:?}: edge {u:?}→{v:?} lost"));
                assert_eq!(r.edge_prob(re), g.edge_prob(e), "{order:?}");
            }
        }
    }

    #[test]
    fn transpose_commutes_with_relabeling() {
        let g = star_and_chain();
        let (_, map) = g.relabeled(NodeOrder::BfsFromHub);
        // Structural equality ignores the probability version, so the
        // two construction orders must agree exactly.
        assert_eq!(g.relabeled_with(&map).transpose(), g.transpose().relabeled_with(&map));
    }

    #[test]
    fn identity_permutation_reproduces_the_graph() {
        let g = star_and_chain();
        let identity = NodeMap::from_visit_order((0..g.num_nodes() as u32).collect());
        assert_eq!(g.relabeled_with(&identity), g);
        assert!(!identity.is_empty());
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let empty = UncertainGraph::builder(0).build().unwrap();
        let (r, map) = empty.relabeled(NodeOrder::BfsFromHub);
        assert_eq!(r.num_nodes(), 0);
        assert!(map.is_empty());
        let one = from_parts(&[0.5], &[], DuplicateEdgePolicy::Error).unwrap();
        let (r1, m1) = one.relabeled(NodeOrder::DegreeDescending);
        assert_eq!(r1.self_risk(NodeId(0)), 0.5);
        assert_eq!(m1.to_new(NodeId(0)), NodeId(0));
    }

    #[test]
    fn relabeling_renumbers_canonical_edge_ids() {
        // The determinism-contract hinge: edge ids are CSR positions,
        // so a nontrivial permutation reorders them (different coin
        // streams on the relabeled graph).
        let g = star_and_chain();
        let (r, map) = g.relabeled(NodeOrder::DegreeDescending);
        let old0 = g.edge_endpoints(EdgeId(0));
        let new0 = r.edge_endpoints(EdgeId(0));
        assert_ne!(
            (map.to_new(old0.0), map.to_new(old0.1)),
            new0,
            "expected edge 0 to move under the hub-first permutation"
        );
    }
}
