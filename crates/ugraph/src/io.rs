//! Plain-text serialization of uncertain graphs.
//!
//! Format (whitespace-separated, `#`-prefixed comment lines allowed):
//!
//! ```text
//! # optional comments
//! n m
//! <node_id> <self_risk>          (n lines)
//! <source> <target> <diffusion>  (m lines)
//! ```
//!
//! Node lines may appear in any order but each of `0..n` must appear
//! exactly once.

use crate::builder::{DuplicateEdgePolicy, GraphBuilder};
use crate::error::{GraphError, Result};
use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

fn parse_err(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::Parse { line, message: message.into() }
}

/// Reads a graph in the crate's text format from any buffered reader.
pub fn read_graph<R: BufRead>(reader: R) -> Result<UncertainGraph> {
    let mut lines = reader.lines().enumerate().map(|(i, l)| (i + 1, l)).filter(|(_, l)| match l {
        Ok(s) => {
            let t = s.trim();
            !t.is_empty() && !t.starts_with('#')
        }
        Err(_) => true,
    });

    let (lineno, header) = lines.next().ok_or_else(|| parse_err(0, "missing header"))?;
    let header = header?;
    let mut it = header.split_whitespace();
    let n: usize = it
        .next()
        .ok_or_else(|| parse_err(lineno, "missing node count"))?
        .parse()
        .map_err(|_| parse_err(lineno, "node count is not an integer"))?;
    let m: usize = it
        .next()
        .ok_or_else(|| parse_err(lineno, "missing edge count"))?
        .parse()
        .map_err(|_| parse_err(lineno, "edge count is not an integer"))?;
    if it.next().is_some() {
        return Err(parse_err(lineno, "trailing tokens in header"));
    }

    let mut builder = GraphBuilder::new(n);
    let mut seen = vec![false; n];
    for _ in 0..n {
        let (lineno, line) =
            lines.next().ok_or_else(|| parse_err(0, "unexpected EOF in node section"))?;
        let line = line?;
        let mut it = line.split_whitespace();
        let id: u32 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing node id"))?
            .parse()
            .map_err(|_| parse_err(lineno, "node id is not an integer"))?;
        let ps: f64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing self-risk"))?
            .parse()
            .map_err(|_| parse_err(lineno, "self-risk is not a number"))?;
        if it.next().is_some() {
            return Err(parse_err(lineno, "trailing tokens in node line"));
        }
        if (id as usize) >= n {
            return Err(parse_err(lineno, format!("node id {id} >= n = {n}")));
        }
        if seen[id as usize] {
            return Err(parse_err(lineno, format!("node id {id} repeated")));
        }
        seen[id as usize] = true;
        builder.set_self_risk(NodeId(id), ps).map_err(|e| parse_err(lineno, e.to_string()))?;
    }

    for _ in 0..m {
        let (lineno, line) =
            lines.next().ok_or_else(|| parse_err(0, "unexpected EOF in edge section"))?;
        let line = line?;
        let mut it = line.split_whitespace();
        let u: u32 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing edge source"))?
            .parse()
            .map_err(|_| parse_err(lineno, "edge source is not an integer"))?;
        let v: u32 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing edge target"))?
            .parse()
            .map_err(|_| parse_err(lineno, "edge target is not an integer"))?;
        let p: f64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing edge probability"))?
            .parse()
            .map_err(|_| parse_err(lineno, "edge probability is not a number"))?;
        if it.next().is_some() {
            return Err(parse_err(lineno, "trailing tokens in edge line"));
        }
        builder.add_edge(NodeId(u), NodeId(v), p).map_err(|e| parse_err(lineno, e.to_string()))?;
    }

    if let Some((lineno, _)) = lines.next() {
        return Err(parse_err(lineno, "trailing content after edge section"));
    }
    builder.build()
}

/// Writes a graph in the crate's text format.
pub fn write_graph<W: Write>(g: &UncertainGraph, mut writer: W) -> Result<()> {
    writeln!(writer, "# vulnds uncertain graph v1")?;
    writeln!(writer, "{} {}", g.num_nodes(), g.num_edges())?;
    for v in g.nodes() {
        writeln!(writer, "{} {}", v.0, g.self_risk(v))?;
    }
    for e in g.edges() {
        let (u, v) = g.edge_endpoints(e);
        writeln!(writer, "{} {} {}", u.0, v.0, g.edge_prob(e))?;
    }
    Ok(())
}

/// Loads a graph from a file path.
pub fn load_from_path(path: impl AsRef<Path>) -> Result<UncertainGraph> {
    let file = std::fs::File::open(path)?;
    read_graph(BufReader::new(file))
}

/// Saves a graph to a file path, overwriting any existing file.
pub fn save_to_path(g: &UncertainGraph, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_graph(g, std::io::BufWriter::new(file))
}

/// Reads a bare `u v` edge list (e.g. a SNAP download) and assigns every
/// node self-risk `default_self_risk` and every edge probability
/// `default_edge_prob`. Node ids are compacted to `0..n` in first-seen
/// order. Duplicate edges are merged with [`DuplicateEdgePolicy::KeepMax`].
pub fn read_edge_list<R: BufRead>(
    reader: R,
    default_self_risk: f64,
    default_edge_prob: f64,
) -> Result<UncertainGraph> {
    let mut remap: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing source"))?
            .parse()
            .map_err(|_| parse_err(lineno, "source is not an integer"))?;
        let v: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing target"))?
            .parse()
            .map_err(|_| parse_err(lineno, "target is not an integer"))?;
        let next_id = remap.len() as u32;
        let iu = *remap.entry(u).or_insert(next_id);
        let next_id = remap.len() as u32;
        let iv = *remap.entry(v).or_insert(next_id);
        if iu != iv {
            edges.push((iu, iv));
        }
    }
    let n = remap.len();
    let mut b = GraphBuilder::new(n).with_duplicate_policy(DuplicateEdgePolicy::KeepMax);
    for v in 0..n as u32 {
        b.set_self_risk(NodeId(v), default_self_risk)?;
    }
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v), default_edge_prob)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_parts;

    fn sample() -> UncertainGraph {
        from_parts(
            &[0.1, 0.2, 0.3],
            &[(0, 1, 0.5), (1, 2, 0.25), (0, 2, 0.75)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_through_text() {
        let g = sample();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_through_file() {
        let g = sample();
        let dir = std::env::temp_dir().join("ugraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        save_to_path(&g, &path).unwrap();
        let g2 = load_from_path(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header comment\n\n3 1\n0 0.1\n# node comment\n1 0.2\n2 0.3\n\n0 1 0.5\n";
        let g = read_graph(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn node_lines_in_any_order() {
        let text = "3 0\n2 0.3\n0 0.1\n1 0.2\n";
        let g = read_graph(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.self_risk(NodeId(2)), 0.3);
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",                             // no header
            "2\n",                          // missing edge count
            "2 0\n0 0.1\n",                 // missing node line
            "1 0\n0 0.1 extra\n",           // trailing token
            "1 0\n0 nope\n",                // bad float
            "2 0\n0 0.1\n0 0.2\n",          // duplicate node id
            "2 0\n0 0.1\n5 0.2\n",          // node id out of range
            "2 1\n0 0.1\n1 0.2\n0 1 2.0\n", // probability out of range
            "1 0\n0 0.1\nleftover\n",       // trailing content
        ] {
            assert!(read_graph(std::io::Cursor::new(bad)).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parse_error_reports_line_number() {
        let text = "2 1\n0 0.1\n1 0.2\n0 1 notafloat\n";
        match read_graph(std::io::Cursor::new(text)) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn edge_list_import_compacts_ids() {
        let text = "# snap style\n100 200\n200 300\n100 300\n100 100\n";
        let g = read_edge_list(std::io::Cursor::new(text), 0.1, 0.2).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3); // self-loop dropped
        assert_eq!(g.self_risk(NodeId(0)), 0.1);
    }

    #[test]
    fn edge_list_merges_duplicates() {
        let text = "1 2\n1 2\n";
        let g = read_edge_list(std::io::Cursor::new(text), 0.0, 0.5).unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
