//! Degree and probability statistics (reproduces the paper's Table 2).

use crate::graph::UncertainGraph;
use crate::ids::NodeId;

/// Summary statistics of an uncertain graph, as reported in Table 2 of the
/// paper: node count, edge count, average degree (`m / n`) and maximum
/// total degree.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of edges `m`.
    pub edges: usize,
    /// Average degree `m / n` (0 for the empty graph).
    pub avg_degree: f64,
    /// Maximum total (in + out) degree over all nodes.
    pub max_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Mean self-risk probability.
    pub mean_self_risk: f64,
    /// Mean edge diffusion probability.
    pub mean_edge_prob: f64,
}

impl GraphStats {
    /// Computes statistics in one pass over the graph.
    pub fn compute(g: &UncertainGraph) -> GraphStats {
        let n = g.num_nodes();
        let m = g.num_edges();
        let mut max_degree = 0;
        let mut max_in = 0;
        let mut max_out = 0;
        for v in g.nodes() {
            let din = g.in_degree(v);
            let dout = g.out_degree(v);
            max_in = max_in.max(din);
            max_out = max_out.max(dout);
            max_degree = max_degree.max(din + dout);
        }
        let mean_self_risk = if n == 0 { 0.0 } else { g.total_self_risk() / n as f64 };
        let mean_edge_prob =
            if m == 0 { 0.0 } else { g.edges().map(|e| g.edge_prob(e)).sum::<f64>() / m as f64 };
        GraphStats {
            nodes: n,
            edges: m,
            avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            max_degree,
            max_in_degree: max_in,
            max_out_degree: max_out,
            mean_self_risk,
            mean_edge_prob,
        }
    }
}

/// Histogram of total degrees, used to validate that synthetic datasets
/// reproduce the degree shape of the originals.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeHistogram {
    /// `counts[d]` = number of nodes with total degree `d`.
    pub counts: Vec<usize>,
}

impl DegreeHistogram {
    /// Builds the histogram of total (in + out) degrees.
    pub fn total(g: &UncertainGraph) -> DegreeHistogram {
        let mut counts = Vec::new();
        for v in g.nodes() {
            let d = g.degree(v);
            if d >= counts.len() {
                counts.resize(d + 1, 0);
            }
            counts[d] += 1;
        }
        DegreeHistogram { counts }
    }

    /// Fraction of nodes with degree at least `d`: the complementary CDF.
    pub fn ccdf(&self, d: usize) -> f64 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let at_least: usize = self.counts.iter().skip(d).sum();
        at_least as f64 / total as f64
    }

    /// Estimates the power-law exponent `alpha` by the Clauset–Shalizi–Newman
    /// continuous MLE over degrees `>= d_min`:
    /// `alpha = 1 + n / Σ ln(d_i / (d_min - 0.5))`.
    ///
    /// Returns `None` when fewer than two nodes have degree `>= d_min`.
    pub fn power_law_alpha_mle(&self, d_min: usize) -> Option<f64> {
        let d_min = d_min.max(1);
        let mut n = 0usize;
        let mut log_sum = 0.0;
        for (d, &c) in self.counts.iter().enumerate().skip(d_min) {
            if c == 0 {
                continue;
            }
            n += c;
            log_sum += c as f64 * (d as f64 / (d_min as f64 - 0.5)).ln();
        }
        if n < 2 || log_sum <= 0.0 {
            return None;
        }
        Some(1.0 + n as f64 / log_sum)
    }
}

/// Per-node degree triple, convenient for feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeTriple {
    /// In-degree of the node.
    pub in_deg: u32,
    /// Out-degree of the node.
    pub out_deg: u32,
}

/// Collects `(in_degree, out_degree)` for every node.
pub fn degree_triples(g: &UncertainGraph) -> Vec<DegreeTriple> {
    g.nodes()
        .map(|v| DegreeTriple { in_deg: g.in_degree(v) as u32, out_deg: g.out_degree(v) as u32 })
        .collect()
}

/// Returns the node with the maximum total degree (ties broken by id), or
/// `None` for an empty graph.
pub fn max_degree_node(g: &UncertainGraph) -> Option<NodeId> {
    g.nodes().max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_parts, DuplicateEdgePolicy};

    fn star() -> UncertainGraph {
        // hub 0 → 1..=4
        from_parts(
            &[0.5, 0.1, 0.1, 0.1, 0.1],
            &[(0, 1, 0.2), (0, 2, 0.4), (0, 3, 0.6), (0, 4, 0.8)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn stats_on_star() {
        let s = GraphStats::compute(&star());
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 4);
        assert!((s.avg_degree - 0.8).abs() < 1e-12);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.max_out_degree, 4);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.mean_self_risk - 0.18).abs() < 1e-12);
        assert!((s.mean_edge_prob - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = UncertainGraph::builder(0).build().unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.mean_self_risk, 0.0);
    }

    #[test]
    fn histogram_on_star() {
        let h = DegreeHistogram::total(&star());
        // Four leaves with degree 1, hub with degree 4.
        assert_eq!(h.counts[1], 4);
        assert_eq!(h.counts[4], 1);
        assert!((h.ccdf(1) - 1.0).abs() < 1e-12);
        assert!((h.ccdf(2) - 0.2).abs() < 1e-12);
        assert_eq!(h.ccdf(5), 0.0);
    }

    #[test]
    fn ccdf_is_monotone() {
        let h = DegreeHistogram::total(&star());
        let mut prev = f64::INFINITY;
        for d in 0..8 {
            let c = h.ccdf(d);
            assert!(c <= prev + 1e-15);
            prev = c;
        }
    }

    #[test]
    fn alpha_mle_recovers_heavy_tail_direction() {
        // A graph with all equal degrees has no heavy tail; the MLE should
        // still return a finite alpha > 1 when defined.
        let g = from_parts(
            &[0.0; 4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (3, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let h = DegreeHistogram::total(&g);
        let alpha = h.power_law_alpha_mle(1).unwrap();
        assert!(alpha > 1.0);
    }

    #[test]
    fn max_degree_node_is_hub() {
        assert_eq!(max_degree_node(&star()), Some(NodeId(0)));
        let empty = UncertainGraph::builder(0).build().unwrap();
        assert_eq!(max_degree_node(&empty), None);
    }

    #[test]
    fn degree_triples_match() {
        let t = degree_triples(&star());
        assert_eq!(t[0].out_deg, 4);
        assert_eq!(t[0].in_deg, 0);
        assert_eq!(t[3].in_deg, 1);
    }
}
