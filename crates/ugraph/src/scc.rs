//! Strongly-connected components (iterative Tarjan).
//!
//! Guarantee networks are studied per "guarantee circle" — the mutual
//! backing groups the paper's introduction describes are exactly the
//! non-trivial SCCs of the graph. The condensation (SCC DAG) also lets
//! callers check where the tree-exactness of the Algorithm-2 bounds
//! breaks down.

use crate::graph::UncertainGraph;
use crate::ids::NodeId;

/// Result of an SCC decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    /// `component[v]` — id of the component containing node `v`.
    /// Component ids are in **reverse topological order** of the
    /// condensation (a Tarjan property: a component is numbered after
    /// everything it can reach).
    pub component: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl SccDecomposition {
    /// Sizes of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.count];
        for &c in &self.component {
            s[c as usize] += 1;
        }
        s
    }

    /// Ids of components with more than one node — the "guarantee
    /// circles" of the paper's motivating domain.
    pub fn non_trivial(&self) -> Vec<u32> {
        self.sizes().iter().enumerate().filter(|(_, &s)| s > 1).map(|(i, _)| i as u32).collect()
    }

    /// Members of component `c`, in ascending node-id order.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.component
            .iter()
            .enumerate()
            .filter(|(_, &cc)| cc == c)
            .map(|(v, _)| NodeId(v as u32))
            .collect()
    }

    /// `true` when every component is a single node (the graph is a DAG).
    pub fn is_dag(&self) -> bool {
        self.count == self.component.len()
    }
}

/// Computes SCCs with an iterative Tarjan (explicit stack, no recursion —
/// safe on deep chains like 60k-node P2P graphs).
pub fn strongly_connected_components(graph: &UncertainGraph) -> SccDecomposition {
    let n = graph.num_nodes();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;

    // Explicit DFS frames: (node, next out-neighbor position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let neigh = graph.out_neighbors(NodeId(v));
            if *pos < neigh.len() {
                let w = neigh[*pos];
                *pos += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v roots a component: pop it off the Tarjan stack.
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        component[w as usize] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    SccDecomposition { component, count: count as usize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_parts, DuplicateEdgePolicy};

    #[test]
    fn dag_has_singleton_components() {
        let g = from_parts(
            &[0.0; 4],
            &[(0, 1, 0.5), (1, 2, 0.5), (0, 3, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 4);
        assert!(scc.is_dag());
        assert!(scc.non_trivial().is_empty());
    }

    #[test]
    fn cycle_is_one_component() {
        let g = from_parts(
            &[0.0; 3],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 1);
        assert!(!scc.is_dag());
        assert_eq!(scc.sizes(), vec![3]);
        assert_eq!(scc.members(0).len(), 3);
    }

    #[test]
    fn guarantee_circle_plus_tail() {
        // Circle {0,1,2} with a tail 2 → 3 → 4.
        let g = from_parts(
            &[0.0; 5],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5), (2, 3, 0.5), (3, 4, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 3);
        let nt = scc.non_trivial();
        assert_eq!(nt.len(), 1);
        let circle = scc.members(nt[0]);
        assert_eq!(circle, vec![NodeId(0), NodeId(1), NodeId(2)]);
        // Reverse topological: the circle can reach 3 and 4, so its
        // component id is larger.
        assert!(scc.component[0] > scc.component[3]);
        assert!(scc.component[3] > scc.component[4]);
    }

    #[test]
    fn two_disjoint_cycles() {
        let g = from_parts(
            &[0.0; 4],
            &[(0, 1, 0.5), (1, 0, 0.5), (2, 3, 0.5), (3, 2, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 2);
        assert_eq!(scc.sizes(), vec![2, 2]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 50,000-node chain: the iterative implementation must not blow
        // the call stack.
        let n = 50_000;
        let edges: Vec<(u32, u32, f64)> = (0..n as u32 - 1).map(|v| (v, v + 1, 0.5)).collect();
        let g = from_parts(&vec![0.0; n], &edges, DuplicateEdgePolicy::Error).unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, n);
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::builder(0).build().unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 0);
        assert!(scc.is_dag());
    }
}
