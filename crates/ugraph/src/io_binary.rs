//! Compact binary serialization — for large graphs where text parsing
//! dominates load time (the paper's P2P graph is 4 MB as text, loads
//! ~10× faster in the binary form).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   [u8; 8]  = b"VULNDSG1"
//! n       u64
//! m       u64
//! risks   n × f64
//! sources m × u32     (canonical edge order)
//! targets m × u32
//! probs   m × f64
//! version u8       = 2            (format revision, v2 trailer)
//! crc32   u32 LE                  (over every preceding byte)
//! ```
//!
//! The 5-byte trailer was added in format revision 2 so corrupt or
//! torn snapshot files are rejected instead of silently loading
//! garbage — a prerequisite for WAL compaction, where a snapshot
//! written during a crash window must be detectably incomplete.
//! Readers still accept trailer-less v1 files; any other trailing
//! length is an error.

use crate::builder::{DuplicateEdgePolicy, GraphBuilder};
use crate::crc32::Crc32;
use crate::error::{GraphError, Result};
use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"VULNDSG1";

/// Current format revision, written in the trailer's version byte.
pub const BINARY_FORMAT_VERSION: u8 = 2;

/// Trailer length in bytes: version byte + CRC-32.
const TRAILER_LEN: usize = 5;

fn bad(message: impl Into<String>) -> GraphError {
    GraphError::Parse { line: 0, message: message.into() }
}

/// A writer shim that folds every written byte into a CRC-32.
struct ChecksumWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> ChecksumWriter<W> {
    fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.crc.update(bytes);
        self.inner.write_all(bytes)
    }
}

/// Writes the binary form (current revision, with the v2 trailer).
pub fn write_binary<W: Write>(g: &UncertainGraph, w: W) -> Result<()> {
    let mut w = ChecksumWriter { inner: w, crc: Crc32::new() };
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for v in g.nodes() {
        w.write_all(&g.self_risk(v).to_le_bytes())?;
    }
    for e in g.edges() {
        let (u, _) = g.edge_endpoints(e);
        w.write_all(&u.0.to_le_bytes())?;
    }
    for e in g.edges() {
        let (_, v) = g.edge_endpoints(e);
        w.write_all(&v.0.to_le_bytes())?;
    }
    for e in g.edges() {
        w.write_all(&g.edge_prob(e).to_le_bytes())?;
    }
    w.write_all(&[BINARY_FORMAT_VERSION])?;
    let crc = w.crc.finish();
    w.inner.write_all(&crc.to_le_bytes())?;
    Ok(())
}

/// A reader shim that folds every read byte into a CRC-32.
struct ChecksumReader<R: Read> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> ChecksumReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> std::io::Result<()> {
        self.inner.read_exact(buf)?;
        self.crc.update(buf);
        Ok(())
    }
}

/// Reads the binary form, validating magic, counts, probabilities, and
/// — for revision-2 files — the trailing checksum. Trailer-less v1
/// files are still accepted; any other trailing length is an error.
pub fn read_binary<R: Read>(r: R) -> Result<UncertainGraph> {
    let mut r = ChecksumReader { inner: r, crc: Crc32::new() };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic: not a vulnds binary graph"));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    // Sanity caps before allocating (corrupted headers must not OOM).
    if n > (1 << 33) || m > (1 << 35) {
        return Err(bad(format!("implausible header: n = {n}, m = {m}")));
    }

    let mut b = GraphBuilder::new(n).with_duplicate_policy(DuplicateEdgePolicy::Error);
    for v in 0..n as u32 {
        let ps = read_f64(&mut r)?;
        b.set_self_risk(NodeId(v), ps).map_err(|e| bad(e.to_string()))?;
    }
    let mut sources = Vec::with_capacity(m);
    for _ in 0..m {
        sources.push(read_u32(&mut r)?);
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(read_u32(&mut r)?);
    }
    for i in 0..m {
        let p = read_f64(&mut r)?;
        b.add_edge(NodeId(sources[i]), NodeId(targets[i]), p).map_err(|e| bad(e.to_string()))?;
    }
    // Everything after the edge section must be absent (legacy v1) or
    // exactly the 5-byte trailer. Read up to one byte more than the
    // trailer so concatenated files are caught too.
    let mut tail = [0u8; TRAILER_LEN + 1];
    let mut got = 0;
    loop {
        let k = r.inner.read(&mut tail[got..])?;
        if k == 0 {
            break;
        }
        got += k;
        if got == tail.len() {
            break;
        }
    }
    match got {
        0 => b.build(),
        TRAILER_LEN => {
            let version = tail[0];
            if version != BINARY_FORMAT_VERSION {
                return Err(bad(format!("unsupported binary format version {version}")));
            }
            r.crc.update(&tail[..1]);
            let stored = u32::from_le_bytes([tail[1], tail[2], tail[3], tail[4]]);
            if r.crc.finish() != stored {
                return Err(bad("checksum mismatch: snapshot is corrupt or truncated"));
            }
            b.build()
        }
        _ => Err(bad("trailing bytes after edge section")),
    }
}

/// Saves to a file path in binary form.
pub fn save_binary(g: &UncertainGraph, path: impl AsRef<Path>) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_binary(g, std::io::BufWriter::new(f))
}

/// Loads from a file path in binary form.
pub fn load_binary(path: impl AsRef<Path>) -> Result<UncertainGraph> {
    let f = std::fs::File::open(path)?;
    read_binary(std::io::BufReader::new(f))
}

fn read_u64<R: Read>(r: &mut ChecksumReader<R>) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut ChecksumReader<R>) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f64<R: Read>(r: &mut ChecksumReader<R>) -> Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_parts;

    fn sample() -> UncertainGraph {
        from_parts(
            &[0.1, 0.2, 0.3],
            &[(0, 1, 0.5), (1, 2, 0.25), (0, 2, 0.75)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = UncertainGraph::builder(0).build().unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(std::io::Cursor::new(buf)).unwrap(), g);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(std::io::Cursor::new(b"NOTAMAGC".to_vec())).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn rejects_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        for cut in [9, 20, buf.len() - 1] {
            assert!(
                read_binary(std::io::Cursor::new(buf[..cut].to_vec())).is_err(),
                "accepted truncation at {cut}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.push(0xFF);
        let err = read_binary(std::io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_corrupted_probability() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Overwrite the last f64 (an edge probability) with 7.0.
        let last = buf.len() - TRAILER_LEN - 8;
        buf[last..last + 8].copy_from_slice(&7.0f64.to_le_bytes());
        assert!(read_binary(std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn checksum_catches_silent_bit_rot() {
        let g = sample();
        let mut clean = Vec::new();
        write_binary(&g, &mut clean).unwrap();
        // Flip the lowest mantissa bit of the first self-risk: still a
        // perfectly valid probability, only the CRC can catch it.
        let mut buf = clean.clone();
        buf[24] ^= 1;
        let err = read_binary(std::io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        assert!(matches!(err, GraphError::Parse { line: 0, .. }));
        // A corrupted stored CRC is caught the same way.
        let mut buf = clean;
        let last = buf.len() - 1;
        buf[last] ^= 0x80;
        assert!(read_binary(std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn accepts_legacy_v1_files_without_trailer() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - TRAILER_LEN);
        assert_eq!(read_binary(std::io::Cursor::new(buf)).unwrap(), g);
    }

    #[test]
    fn rejects_unknown_format_version() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let version_at = buf.len() - TRAILER_LEN;
        buf[version_at] = 9;
        let err = read_binary(std::io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn rejects_implausible_header() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary(std::io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("ugraph_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        save_binary(&g, &path).unwrap();
        assert_eq!(load_binary(&path).unwrap(), g);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_is_smaller_than_text_for_large_graphs() {
        let edges: Vec<(u32, u32, f64)> = (0..999u32).map(|v| (v, v + 1, 0.123456789)).collect();
        let g = from_parts(&vec![0.5; 1000], &edges, DuplicateEdgePolicy::Error).unwrap();
        let mut bin = Vec::new();
        write_binary(&g, &mut bin).unwrap();
        let mut txt = Vec::new();
        crate::io::write_graph(&g, &mut txt).unwrap();
        assert!(bin.len() < txt.len(), "binary {} !< text {}", bin.len(), txt.len());
    }
}
