//! Mutable construction of [`UncertainGraph`]s.

use crate::error::{check_probability, GraphError, Result};
use crate::graph::UncertainGraph;
use crate::ids::{EdgeId, NodeId};

/// What to do when the same `(u, v)` edge is added more than once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicateEdgePolicy {
    /// Fail with [`GraphError::DuplicateEdge`]. The default: duplicates in
    /// financial edge lists usually indicate a data bug.
    #[default]
    Error,
    /// Keep the larger diffusion probability (conservative risk estimate).
    KeepMax,
    /// Combine as independent channels: `1 − (1−p₁)(1−p₂)`. Appropriate
    /// when parallel edges represent independent guarantee contracts.
    NoisyOr,
}

/// Incremental builder for [`UncertainGraph`].
///
/// ```
/// use ugraph::{UncertainGraph, NodeId};
///
/// let mut b = UncertainGraph::builder(3);
/// b.set_self_risk(NodeId(0), 0.1).unwrap();
/// b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
/// b.add_edge(NodeId(1), NodeId(2), 0.25).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    self_risk: Vec<f64>,
    edges: Vec<(u32, u32, f64)>,
    policy: DuplicateEdgePolicy,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes, all self-risk `0.0`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            self_risk: vec![0.0; n],
            edges: Vec::new(),
            policy: DuplicateEdgePolicy::default(),
        }
    }

    /// Sets the duplicate-edge policy, consuming and returning the builder
    /// for chaining.
    pub fn with_duplicate_policy(mut self, policy: DuplicateEdgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.self_risk.len()
    }

    /// Number of edges added so far (before duplicate resolution).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Appends a new node with self-risk `ps` and returns its id.
    pub fn add_node(&mut self, ps: f64) -> Result<NodeId> {
        let ps = check_probability(ps, "node self-risk")?;
        if self.self_risk.len() >= u32::MAX as usize {
            return Err(GraphError::CapacityExceeded { what: "nodes" });
        }
        let id = NodeId(self.self_risk.len() as u32);
        self.self_risk.push(ps);
        Ok(id)
    }

    /// Sets the self-risk probability of an existing node.
    pub fn set_self_risk(&mut self, v: NodeId, ps: f64) -> Result<()> {
        let ps = check_probability(ps, "node self-risk")?;
        let len = self.self_risk.len() as u32;
        let slot = self
            .self_risk
            .get_mut(v.index())
            .ok_or(GraphError::NodeOutOfBounds { node: v.0, len })?;
        *slot = ps;
        Ok(())
    }

    /// Adds the directed edge `(u, v)` with diffusion probability `p(v|u)`.
    ///
    /// Self-loops are rejected: under the paper's model a node's own default
    /// is captured by `ps(v)`, not by an edge.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, prob: f64) -> Result<()> {
        let prob = check_probability(prob, "edge diffusion probability")?;
        let len = self.self_risk.len() as u32;
        if u.0 >= len {
            return Err(GraphError::NodeOutOfBounds { node: u.0, len });
        }
        if v.0 >= len {
            return Err(GraphError::NodeOutOfBounds { node: v.0, len });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u.0 });
        }
        if self.edges.len() >= u32::MAX as usize {
            return Err(GraphError::CapacityExceeded { what: "edges" });
        }
        self.edges.push((u.0, v.0, prob));
        Ok(())
    }

    /// Finalizes into an immutable CSR graph.
    ///
    /// Runs in `O(n + m log m)`; duplicate edges are resolved according to
    /// the configured [`DuplicateEdgePolicy`].
    pub fn build(self) -> Result<UncertainGraph> {
        let n = self.self_risk.len();
        let mut edges = self.edges;
        // Sort by (source, target) so the out-CSR has ordered targets, which
        // `find_edge` relies on for binary search.
        edges.sort_unstable_by_key(|a| (a.0, a.1));

        // Resolve duplicates in place.
        let mut resolved: Vec<(u32, u32, f64)> = Vec::with_capacity(edges.len());
        for (u, v, p) in edges {
            match resolved.last_mut() {
                Some(last) if last.0 == u && last.1 == v => match self.policy {
                    DuplicateEdgePolicy::Error => {
                        return Err(GraphError::DuplicateEdge { source: u, target: v });
                    }
                    DuplicateEdgePolicy::KeepMax => {
                        last.2 = last.2.max(p);
                    }
                    DuplicateEdgePolicy::NoisyOr => {
                        last.2 = 1.0 - (1.0 - last.2) * (1.0 - p);
                    }
                },
                _ => resolved.push((u, v, p)),
            }
        }

        let m = resolved.len();
        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &resolved {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }

        let mut out_targets = Vec::with_capacity(m);
        let mut edge_prob = Vec::with_capacity(m);
        let mut edge_sources = Vec::with_capacity(m);
        for &(u, v, p) in &resolved {
            out_targets.push(v);
            edge_prob.push(p);
            edge_sources.push(u);
        }

        // Reverse CSR by counting sort on target.
        let mut in_offsets = vec![0u32; n + 1];
        for &t in &out_targets {
            in_offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0u32; m];
        let mut in_edge_ids = vec![0u32; m];
        for (e, (&src, &tgt)) in edge_sources.iter().zip(out_targets.iter()).enumerate() {
            let pos = cursor[tgt as usize] as usize;
            in_sources[pos] = src;
            in_edge_ids[pos] = e as u32;
            cursor[tgt as usize] += 1;
        }

        let g = UncertainGraph {
            self_risk: self.self_risk,
            out_offsets,
            out_targets,
            edge_prob,
            edge_sources,
            in_offsets,
            in_sources,
            in_edge_ids,
            version: 0,
        };
        debug_assert!(g.check_invariants().is_ok());
        Ok(g)
    }
}

/// Builds a graph from parallel arrays: `self_risk[v]` for each node and
/// `(u, v, p)` triples for edges. Convenience for tests and generators.
pub fn from_parts(
    self_risk: &[f64],
    edges: &[(u32, u32, f64)],
    policy: DuplicateEdgePolicy,
) -> Result<UncertainGraph> {
    let mut b = GraphBuilder::new(self_risk.len()).with_duplicate_policy(policy);
    for (i, &ps) in self_risk.iter().enumerate() {
        b.set_self_risk(NodeId(i as u32), ps)?;
    }
    for &(u, v, p) in edges {
        b.add_edge(NodeId(u), NodeId(v), p)?;
    }
    b.build()
}

/// Returns the canonical [`EdgeId`] assigned to the `i`-th edge (in sorted
/// `(source, target)` order) of a freshly built graph. Mostly useful in
/// tests that need stable ids.
pub fn canonical_edge_id(i: usize) -> EdgeId {
    EdgeId(i as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_node_returns_sequential_ids() {
        let mut b = GraphBuilder::new(0);
        assert_eq!(b.add_node(0.1).unwrap(), NodeId(0));
        assert_eq!(b.add_node(0.2).unwrap(), NodeId(1));
        assert_eq!(b.num_nodes(), 2);
    }

    #[test]
    fn rejects_invalid_self_risk() {
        let mut b = GraphBuilder::new(1);
        assert!(b.set_self_risk(NodeId(0), 1.5).is_err());
        assert!(b.set_self_risk(NodeId(0), f64::NAN).is_err());
        assert!(b.set_self_risk(NodeId(1), 0.5).is_err()); // out of bounds
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(0), 0.5),
            Err(GraphError::SelfLoop { node: 0 })
        ));
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(2), 0.5),
            Err(GraphError::NodeOutOfBounds { node: 2, .. })
        ));
        assert!(b.add_edge(NodeId(0), NodeId(1), -0.5).is_err());
    }

    #[test]
    fn duplicate_policy_error() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.3).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.4).unwrap();
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge { source: 0, target: 1 })));
    }

    #[test]
    fn duplicate_policy_keep_max() {
        let g = from_parts(
            &[0.0, 0.0],
            &[(0, 1, 0.3), (0, 1, 0.7), (0, 1, 0.5)],
            DuplicateEdgePolicy::KeepMax,
        )
        .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_prob(EdgeId(0)), 0.7);
    }

    #[test]
    fn duplicate_policy_noisy_or() {
        let g = from_parts(&[0.0, 0.0], &[(0, 1, 0.5), (0, 1, 0.5)], DuplicateEdgePolicy::NoisyOr)
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!((g.edge_prob(EdgeId(0)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn csr_targets_are_sorted_per_source() {
        let g = from_parts(
            &[0.0; 4],
            &[(2, 1, 0.1), (0, 3, 0.2), (0, 1, 0.3), (2, 3, 0.4), (0, 2, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        g.check_invariants().unwrap();
        let targets: Vec<u32> = g.out_neighbors(NodeId(0)).to_vec();
        assert_eq!(targets, vec![1, 2, 3]);
        // Probabilities follow the sorted order.
        let probs: Vec<f64> = g.out_edges(NodeId(0)).map(|e| e.prob).collect();
        assert_eq!(probs, vec![0.3, 0.5, 0.2]);
    }

    #[test]
    fn from_parts_roundtrip() {
        let edges = [(0u32, 1u32, 0.5f64), (1, 2, 0.25)];
        let g = from_parts(&[0.1, 0.2, 0.3], &edges, DuplicateEdgePolicy::Error).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.self_risk(NodeId(2)), 0.3);
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn builder_is_cloneable_for_what_if_analysis() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        let b2 = b.clone();
        let g1 = b.build().unwrap();
        let g2 = b2.build().unwrap();
        assert_eq!(g1, g2);
    }
}
