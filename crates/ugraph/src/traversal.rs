//! Deterministic (probability-blind) traversals over the graph structure.
//!
//! The samplers in `vulnds-sampling` implement their own probabilistic
//! BFS; the traversals here treat every edge as present and are used by
//! dataset generators, statistics, and baselines (e.g. connectivity
//! checks, reachability counts).

use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Direction of a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges `(v, ·)`.
    Forward,
    /// Follow in-edges `(·, v)`.
    Reverse,
}

/// Breadth-first traversal from a set of roots, yielding `(node, depth)`.
#[derive(Debug)]
pub struct Bfs<'a> {
    graph: &'a UncertainGraph,
    direction: Direction,
    queue: VecDeque<(NodeId, u32)>,
    visited: Vec<bool>,
}

impl<'a> Bfs<'a> {
    /// Starts a BFS from a single root.
    pub fn new(graph: &'a UncertainGraph, root: NodeId, direction: Direction) -> Self {
        Self::from_roots(graph, std::iter::once(root), direction)
    }

    /// Starts a BFS from several roots at depth 0.
    pub fn from_roots(
        graph: &'a UncertainGraph,
        roots: impl IntoIterator<Item = NodeId>,
        direction: Direction,
    ) -> Self {
        let mut visited = vec![false; graph.num_nodes()];
        let mut queue = VecDeque::new();
        for r in roots {
            if !visited[r.index()] {
                visited[r.index()] = true;
                queue.push_back((r, 0));
            }
        }
        Bfs { graph, direction, queue, visited }
    }
}

impl Iterator for Bfs<'_> {
    type Item = (NodeId, u32);

    fn next(&mut self) -> Option<(NodeId, u32)> {
        let (v, d) = self.queue.pop_front()?;
        let neigh: &[u32] = match self.direction {
            Direction::Forward => self.graph.out_neighbors(v),
            Direction::Reverse => self.graph.in_neighbors(v),
        };
        for &w in neigh {
            if !self.visited[w as usize] {
                self.visited[w as usize] = true;
                self.queue.push_back((NodeId(w), d + 1));
            }
        }
        Some((v, d))
    }
}

/// Returns the set of nodes reachable from `root` (inclusive) following
/// `direction`, as a boolean mask.
pub fn reachable_mask(graph: &UncertainGraph, root: NodeId, direction: Direction) -> Vec<bool> {
    let mut mask = vec![false; graph.num_nodes()];
    for (v, _) in Bfs::new(graph, root, direction) {
        mask[v.index()] = true;
    }
    mask
}

/// Counts nodes reachable from `root` (inclusive).
pub fn reachable_count(graph: &UncertainGraph, root: NodeId, direction: Direction) -> usize {
    Bfs::new(graph, root, direction).count()
}

/// Number of weakly-connected components (edges treated as undirected).
pub fn weakly_connected_components(graph: &UncertainGraph) -> usize {
    let n = graph.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = count;
        stack.push(s as u32);
        while let Some(v) = stack.pop() {
            let v = NodeId(v);
            for &w in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                if comp[w as usize] == usize::MAX {
                    comp[w as usize] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    count
}

/// Topological order of the nodes if the graph is a DAG, `None` otherwise
/// (Kahn's algorithm). The exact default-probability evaluator uses this to
/// decide whether the closed-form recursion of Definition 1 applies.
pub fn topological_order(graph: &UncertainGraph) -> Option<Vec<NodeId>> {
    let n = graph.num_nodes();
    let mut indeg: Vec<u32> = (0..n).map(|v| graph.in_degree(NodeId(v as u32)) as u32).collect();
    let mut queue: VecDeque<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(NodeId(v));
        for &w in graph.out_neighbors(NodeId(v)) {
            indeg[w as usize] -= 1;
            if indeg[w as usize] == 0 {
                queue.push_back(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        // 0 → 1 → 2 → 3
        from_parts(&[0.0; 4], &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    fn diamond() -> UncertainGraph {
        // 0 → {1, 2} → 3
        from_parts(
            &[0.0; 4],
            &[(0, 1, 0.5), (0, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn bfs_depths_on_chain() {
        let g = chain();
        let order: Vec<(u32, u32)> =
            Bfs::new(&g, NodeId(0), Direction::Forward).map(|(v, d)| (v.0, d)).collect();
        assert_eq!(order, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn reverse_bfs_on_chain() {
        let g = chain();
        let order: Vec<u32> =
            Bfs::new(&g, NodeId(3), Direction::Reverse).map(|(v, _)| v.0).collect();
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn bfs_visits_each_node_once_on_diamond() {
        let g = diamond();
        let visited: Vec<u32> =
            Bfs::new(&g, NodeId(0), Direction::Forward).map(|(v, _)| v.0).collect();
        assert_eq!(visited.len(), 4);
        let depth3: u32 = Bfs::new(&g, NodeId(0), Direction::Forward)
            .find(|&(v, _)| v == NodeId(3))
            .map(|(_, d)| d)
            .unwrap();
        assert_eq!(depth3, 2);
    }

    #[test]
    fn multi_root_bfs_dedups_roots() {
        let g = chain();
        let visited: Vec<u32> =
            Bfs::from_roots(&g, [NodeId(1), NodeId(1), NodeId(2)], Direction::Forward)
                .map(|(v, _)| v.0)
                .collect();
        assert_eq!(visited, vec![1, 2, 3]);
    }

    #[test]
    fn reachability_helpers() {
        let g = diamond();
        assert_eq!(reachable_count(&g, NodeId(0), Direction::Forward), 4);
        assert_eq!(reachable_count(&g, NodeId(3), Direction::Forward), 1);
        assert_eq!(reachable_count(&g, NodeId(3), Direction::Reverse), 4);
        let mask = reachable_mask(&g, NodeId(1), Direction::Forward);
        assert_eq!(mask, vec![false, true, false, true]);
    }

    #[test]
    fn wcc_counts() {
        let g =
            from_parts(&[0.0; 5], &[(0, 1, 0.5), (2, 3, 0.5)], DuplicateEdgePolicy::Error).unwrap();
        assert_eq!(weakly_connected_components(&g), 3); // {0,1}, {2,3}, {4}
    }

    #[test]
    fn topo_order_on_dag() {
        let g = diamond();
        let order = topological_order(&g).expect("diamond is a DAG");
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn topo_order_rejects_cycle() {
        let g = from_parts(
            &[0.0; 3],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        assert!(topological_order(&g).is_none());
    }
}
