//! Randomized property tests for the graph substrate (in-repo test kit;
//! the workspace builds offline with no external dependencies).

use ugraph::testkit::{check, random_graph};
use ugraph::{io, GraphStats, NodeId};

#[test]
fn invariants_hold() {
    check(64, |rng| {
        let g = random_graph(rng, 40, 200);
        g.check_invariants().unwrap();
    });
}

#[test]
fn degree_sums_match_edge_count() {
    check(64, |rng| {
        let g = random_graph(rng, 40, 200);
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        assert_eq!(out_sum, g.num_edges());
        assert_eq!(in_sum, g.num_edges());
    });
}

#[test]
fn transpose_is_involution_on_structure() {
    check(64, |rng| {
        let g = random_graph(rng, 25, 100);
        let tt = g.transpose().transpose();
        assert_eq!(tt.num_nodes(), g.num_nodes());
        assert_eq!(tt.num_edges(), g.num_edges());
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e);
            let id = tt.find_edge(u, v);
            assert!(id.is_some());
            let diff = (tt.edge_prob(id.unwrap()) - g.edge_prob(e)).abs();
            assert!(diff < 1e-12);
        }
    });
}

#[test]
fn io_roundtrip_preserves_graph() {
    check(64, |rng| {
        let g = random_graph(rng, 25, 100);
        let mut buf = Vec::new();
        io::write_graph(&g, &mut buf).unwrap();
        let g2 = io::read_graph(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    });
}

#[test]
fn find_edge_agrees_with_iteration() {
    check(64, |rng| {
        let g = random_graph(rng, 20, 80);
        for u in g.nodes() {
            for e in g.out_edges(u) {
                assert_eq!(g.find_edge(u, e.target), Some(e.id));
            }
        }
        // A few absent pairs.
        for u in g.nodes().take(5) {
            for v in g.nodes().take(5) {
                if u != v && !g.out_neighbors(u).contains(&v.0) {
                    assert_eq!(g.find_edge(u, v), None);
                }
            }
        }
    });
}

#[test]
fn stats_are_consistent() {
    check(64, |rng| {
        let g = random_graph(rng, 40, 200);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, g.num_nodes());
        assert_eq!(s.edges, g.num_edges());
        assert!(s.max_degree >= s.max_in_degree);
        assert!(s.max_degree >= s.max_out_degree);
        assert!(s.max_degree <= s.max_in_degree + s.max_out_degree);
        assert!((0.0..=1.0).contains(&s.mean_self_risk));
        if g.num_edges() > 0 {
            assert!((0.0..=1.0).contains(&s.mean_edge_prob));
        }
        let hand_max = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0);
        assert_eq!(s.max_degree, hand_max);
    });
}

#[test]
fn bfs_visits_no_node_twice() {
    use ugraph::{Bfs, Direction};
    check(64, |rng| {
        let g = random_graph(rng, 30, 150);
        let root = NodeId(0);
        let visited: Vec<u32> = Bfs::new(&g, root, Direction::Forward).map(|(v, _)| v.0).collect();
        let mut dedup = visited.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), visited.len());
    });
}
