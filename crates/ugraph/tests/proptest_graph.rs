//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use ugraph::{from_parts, io, DuplicateEdgePolicy, GraphStats, NodeId, UncertainGraph};

/// Strategy: a random valid uncertain graph with up to `max_n` nodes.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_n.max(2)).prop_flat_map(move |n| {
        let risks = proptest::collection::vec(0.0f64..=1.0, n);
        // Build (u, v) pairs with v = (u + d) mod n, d in 1..n, so
        // self-loops are impossible by construction.
        let edges = proptest::collection::vec(
            (0..n as u32, 1..n as u32, 0.0f64..=1.0)
                .prop_map(move |(u, d, p)| (u, (u + d) % n as u32, p)),
            0..=max_m,
        );
        (risks, edges).prop_map(|(risks, edges)| {
            from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).expect("valid parts")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold(g in arb_graph(40, 200)) {
        g.check_invariants().unwrap();
    }

    #[test]
    fn degree_sums_match_edge_count(g in arb_graph(40, 200)) {
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
    }

    #[test]
    fn transpose_is_involution_on_structure(g in arb_graph(25, 100)) {
        let tt = g.transpose().transpose();
        prop_assert_eq!(tt.num_nodes(), g.num_nodes());
        prop_assert_eq!(tt.num_edges(), g.num_edges());
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e);
            let id = tt.find_edge(u, v);
            prop_assert!(id.is_some());
            let diff = (tt.edge_prob(id.unwrap()) - g.edge_prob(e)).abs();
            prop_assert!(diff < 1e-12);
        }
    }

    #[test]
    fn io_roundtrip_preserves_graph(g in arb_graph(25, 100)) {
        let mut buf = Vec::new();
        io::write_graph(&g, &mut buf).unwrap();
        let g2 = io::read_graph(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn find_edge_agrees_with_iteration(g in arb_graph(20, 80)) {
        for u in g.nodes() {
            for e in g.out_edges(u) {
                prop_assert_eq!(g.find_edge(u, e.target), Some(e.id));
            }
        }
        // A few absent pairs.
        for u in g.nodes().take(5) {
            for v in g.nodes().take(5) {
                if u != v && !g.out_neighbors(u).contains(&v.0) {
                    prop_assert_eq!(g.find_edge(u, v), None);
                }
            }
        }
    }

    #[test]
    fn stats_are_consistent(g in arb_graph(40, 200)) {
        let s = GraphStats::compute(&g);
        prop_assert_eq!(s.nodes, g.num_nodes());
        prop_assert_eq!(s.edges, g.num_edges());
        prop_assert!(s.max_degree >= s.max_in_degree);
        prop_assert!(s.max_degree >= s.max_out_degree);
        prop_assert!(s.max_degree <= s.max_in_degree + s.max_out_degree);
        prop_assert!((0.0..=1.0).contains(&s.mean_self_risk));
        if g.num_edges() > 0 {
            prop_assert!((0.0..=1.0).contains(&s.mean_edge_prob));
        }
        let hand_max = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0);
        prop_assert_eq!(s.max_degree, hand_max);
    }

    #[test]
    fn bfs_visits_no_node_twice(g in arb_graph(30, 150)) {
        use ugraph::{Bfs, Direction};
        let root = NodeId(0);
        let visited: Vec<u32> = Bfs::new(&g, root, Direction::Forward).map(|(v, _)| v.0).collect();
        let mut dedup = visited.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), visited.len());
    }
}
