//! `cargo run -p vulnds-xlint` — walk the workspace, run every rule,
//! print findings as `file:line: [rule] message` plus the rule's
//! rationale, and exit nonzero on any violation.
//!
//! Flags:
//! * `--waivers` — print the waiver registry (every deliberate
//!   exception with its reason) and exit 0.
//! * `--list-rules` — print the ruleset with rationales and exit 0.
//! * `--root <dir>` — workspace root (defaults to the workspace this
//!   binary was built from, falling back to the current directory).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vulnds_xlint::{check_source, FileClass, Violation, Waiver, RULES};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut list_waivers = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--waivers" => list_waivers = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if list_rules {
        for rule in RULES {
            println!("{}: {}", rule.name, rule.rationale);
        }
        return ExitCode::SUCCESS;
    }
    let root = root.unwrap_or_else(default_root);
    let files = match source_files(&root) {
        Ok(files) => files,
        Err(e) => return usage(&format!("cannot walk {}: {e}", root.display())),
    };

    let mut violations: Vec<Violation> = Vec::new();
    let mut registry: Vec<(String, Waiver)> = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let source = match std::fs::read_to_string(&file.path) {
            Ok(s) => s,
            Err(e) => return usage(&format!("cannot read {}: {e}", file.path.display())),
        };
        checked += 1;
        let (mut found, waivers) = check_source(&file.rel, &source, &file.class);
        violations.append(&mut found);
        registry.extend(waivers.into_iter().map(|w| (file.rel.clone(), w)));
    }

    if list_waivers {
        for (file, w) in &registry {
            let scope = if w.file_level { " [file-wide]" } else { "" };
            println!("{file}:{}: [{}]{scope} {}", w.line, w.rule, w.reason);
        }
        println!("xlint: {} waiver(s) in the registry", registry.len());
        return ExitCode::SUCCESS;
    }

    for v in &violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        if let Some(rule) = vulnds_xlint::rules::rule(v.rule) {
            println!("    rule: {}", rule.rationale);
        }
    }
    if violations.is_empty() {
        println!(
            "xlint: clean — {checked} files checked, {} waiver(s) in the registry",
            registry.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xlint: {} violation(s) in {checked} files ({} waiver(s) active)",
            violations.len(),
            registry.len()
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("vulnds-xlint: {msg}");
    ExitCode::from(2)
}

/// The workspace root: two levels above this crate's manifest when the
/// binary runs under cargo, else the current directory.
fn default_root() -> PathBuf {
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(manifest);
        if let Some(root) = manifest.ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

struct SourceFile {
    path: PathBuf,
    rel: String,
    class: FileClass,
}

/// Every `src/**/*.rs` of the root package and of each `crates/*`
/// member, in sorted order so reports are deterministic. `tests/`,
/// `benches/`, and `examples/` are test-adjacent code and out of scope.
fn source_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut src_dirs: Vec<(PathBuf, String)> = Vec::new();
    let root_pkg = package_name(&root.join("Cargo.toml")).unwrap_or_else(|| "root".to_string());
    src_dirs.push((root.join("src"), root_pkg));
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            let manifest = member.join("Cargo.toml");
            if let Some(name) = package_name(&manifest) {
                src_dirs.push((member.join("src"), name));
            }
        }
    }
    let mut files = Vec::new();
    for (dir, package) in src_dirs {
        let mut found = Vec::new();
        collect_rs(&dir, &mut found)?;
        found.sort();
        for path in found {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let is_bin = rel.contains("/bin/");
            files.push(SourceFile {
                path,
                rel,
                class: FileClass { package: package.clone(), is_bin },
            });
        }
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The `name = "…"` of a manifest's `[package]` section.
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}
