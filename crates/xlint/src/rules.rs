//! The ruleset: each rule is a lexical invariant of this workspace,
//! with a one-line rationale that the reporter prints next to every
//! violation.
//!
//! Rules fire on the masked code channel produced by [`crate::lex`],
//! never on comments, string literals, doc examples, or `#[cfg(test)]`
//! items. Per-site exceptions are granted by waivers (see
//! [`crate::waiver`]), which must carry a written reason.

use crate::lex::SourceMap;

/// A rule's identity and the one-line rationale printed with each of
/// its findings.
pub struct Rule {
    /// Stable kebab-case name, used in waivers.
    pub name: &'static str,
    /// Why the invariant exists, in one line.
    pub rationale: &'static str,
}

/// Every rule the tool knows, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-wall-clock",
        rationale: "answers must be pure functions of (graph, config, request); a clock read in \
                    an answer path breaks bit-for-bit reproducibility. Monotonic `Instant` reads \
                    that only decide where work *stops* (deadlines, elapsed diagnostics) are \
                    waivable with a written justification; calendar time (`SystemTime`, \
                    `UNIX_EPOCH`) is banned everywhere and cannot be waived",
    },
    Rule {
        name: "no-sleep",
        rationale: "sleeping encodes timing assumptions that make behavior interleaving- and \
                    load-dependent; synchronize with locks or channels instead",
    },
    Rule {
        name: "no-hash-order",
        rationale: "HashMap/HashSet iteration order is randomized per process; any traversal \
                    that can reach an answer must use BTreeMap/BTreeSet or sorted access",
    },
    Rule {
        name: "ordering-comment",
        rationale: "every atomic memory-ordering choice must carry an adjacent `// ORDERING:` \
                    comment justifying why that strength is sufficient",
    },
    Rule {
        name: "lock-nesting",
        rationale: "holding one lock while acquiring another is how this codebase would \
                    deadlock; keep lock scopes disjoint or waive with a lock-order proof",
    },
    Rule {
        name: "panic-hygiene",
        rationale: "library code must not decide to abort the caller: return a typed error, \
                    restructure so the case is impossible, or waive with a proof it cannot fire",
    },
    Rule {
        name: "unsafe-block",
        rationale: "every unsafe block needs an adjacent `// SAFETY:` comment stating the \
                    invariant that makes it sound",
    },
    Rule {
        name: "waiver-hygiene",
        rationale: "waivers are the registry of deliberate exceptions; each must name a known \
                    rule, carry a reason, and actually suppress something",
    },
];

/// Looks up a rule by name.
pub fn rule(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Where a file sits in the workspace, for rule scoping.
pub struct FileClass {
    /// The owning package (e.g. `vulnds-core`).
    pub package: String,
    /// True for `src/bin/**` sources (binary entry points).
    pub is_bin: bool,
}

/// A finding before waivers are applied.
pub struct RawViolation {
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// What fired, specifically.
    pub message: String,
    /// Whether an inline `// xlint: allow(...)` waiver may suppress
    /// this finding. Most can; a few patterns (wall-clock reads via
    /// `SystemTime`/`UNIX_EPOCH`) are banned outright because no
    /// written justification makes them deterministic.
    pub waivable: bool,
}

/// The bench harness measures wall-clock time by design; holding it to
/// the determinism clock rules would only breed waivers.
fn timing_exempt(class: &FileClass) -> bool {
    class.package == "vulnds-bench"
}

/// Panic hygiene covers library code: the bench harness and binary
/// entry points may abort on setup errors like any CLI tool.
fn panic_exempt(class: &FileClass) -> bool {
    class.package == "vulnds-bench" || class.is_bin
}

/// Runs every rule over one masked file.
pub fn check(map: &SourceMap, class: &FileClass) -> Vec<RawViolation> {
    let mut out = Vec::new();
    for line in 0..map.lines() {
        if map.test[line] {
            continue;
        }
        let code = &map.code[line];
        // Wall-clock splits by determinism blast radius. The monotonic
        // `Instant` can legitimately bound *when work stops* (deadline
        // checks, elapsed diagnostics) without touching what a prefix
        // contains, so it is waivable with a written justification.
        // `SystemTime`/`UNIX_EPOCH` read calendar time, which has no
        // deterministic use in an answer path at all — unwaivable, and
        // banned even in the timing-exempt bench harness.
        for pat in ["SystemTime", "UNIX_EPOCH"] {
            if has_token(code, pat) {
                push_unwaivable(
                    &mut out,
                    line,
                    "no-wall-clock",
                    format!("`{pat}` reads calendar time (banned everywhere, not waivable)"),
                );
            }
        }
        if !timing_exempt(class) {
            if has_token(code, "Instant::now") {
                push(
                    &mut out,
                    line,
                    "no-wall-clock",
                    "`Instant::now` in an answer path (waivable for deadline/elapsed use)"
                        .to_string(),
                );
            }
            for pat in ["thread::sleep", "park_timeout"] {
                if has_token(code, pat) {
                    push(&mut out, line, "no-sleep", format!("`{pat}` in non-test code"));
                }
            }
        }
        for pat in ["HashMap", "HashSet"] {
            if has_token(code, pat) {
                push(
                    &mut out,
                    line,
                    "no-hash-order",
                    format!("`{pat}` in non-test code (use BTreeMap/BTreeSet or waive)"),
                );
            }
        }
        if !panic_exempt(class) {
            for pat in [".unwrap()", ".expect("] {
                if has_token(code, pat) {
                    push(
                        &mut out,
                        line,
                        "panic-hygiene",
                        format!("`{}` in library code", pat.trim_end_matches('(')),
                    );
                }
            }
        }
        if has_token(code, "unsafe") && !safety_documented(map, line) {
            push(
                &mut out,
                line,
                "unsafe-block",
                "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            );
        }
    }
    check_ordering_comments(map, &mut out);
    check_lock_nesting(map, &mut out);
    out.sort_by_key(|v| v.line);
    out
}

fn push(out: &mut Vec<RawViolation>, line: usize, rule: &'static str, message: String) {
    out.push(RawViolation { line: line + 1, rule, message, waivable: true });
}

fn push_unwaivable(out: &mut Vec<RawViolation>, line: usize, rule: &'static str, message: String) {
    out.push(RawViolation { line: line + 1, rule, message, waivable: false });
}

/// Token search with identifier-boundary checks on whichever ends of
/// the pattern are identifier characters.
pub fn has_token(hay: &str, pat: &str) -> bool {
    let hay_bytes = hay.as_bytes();
    let pat_bytes = pat.as_bytes();
    let head_ident = pat_bytes.first().is_some_and(|&b| ident(b));
    let tail_ident = pat_bytes.last().is_some_and(|&b| ident(b));
    let mut from = 0;
    while let Some(pos) = hay[from..].find(pat) {
        let at = from + pos;
        let before_ok = !head_ident || at == 0 || !ident(hay_bytes[at - 1]);
        let end = at + pat.len();
        let after_ok = !tail_ident || end >= hay_bytes.len() || !ident(hay_bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

fn ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `// SAFETY:` on the same line or within the three preceding lines.
fn safety_documented(map: &SourceMap, line: usize) -> bool {
    (line.saturating_sub(3)..=line).any(|l| map.comments[l].contains("SAFETY:"))
}

const ATOMIC_ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

fn has_atomic_ordering(code: &str) -> bool {
    ATOMIC_ORDERINGS.iter().any(|pat| has_token(code, pat))
}

/// Every atomic-ordering token needs a covering `// ORDERING:` comment.
///
/// Coverage: a comment line (or trailing comment) containing
/// `ORDERING:` covers its own line and the next line; coverage then
/// extends through a contiguous run of lines that each carry an atomic
/// ordering token, so one justification can cover a block of related
/// operations (e.g. a stats snapshot of many relaxed loads).
fn check_ordering_comments(map: &SourceMap, out: &mut Vec<RawViolation>) {
    let n = map.lines();
    let mut marked: Vec<bool> = (0..n).map(|l| map.comments[l].contains("ORDERING:")).collect();
    // A mark flows down a contiguous comment-only block, so a
    // multi-line justification covers the code that follows it.
    for l in 1..n {
        if marked[l - 1] && map.code[l].trim().is_empty() && !map.comments[l].trim().is_empty() {
            marked[l] = true;
        }
    }
    let atomic: Vec<bool> = (0..n).map(|l| has_atomic_ordering(&map.code[l])).collect();
    let mut covered = marked.clone();
    for l in 0..n {
        if covered[l] && l + 1 < n && atomic[l + 1] && (marked[l] || atomic[l]) {
            covered[l + 1] = true;
        }
    }
    for l in 0..n {
        if atomic[l] && !covered[l] && !map.test[l] {
            push(
                out,
                l,
                "ordering-comment",
                "atomic memory ordering without a covering `// ORDERING:` comment".to_string(),
            );
        }
    }
}

/// Heuristic lock-nesting audit: a `let`-bound guard from `.lock(…)` or
/// `lock_tracked(…)` is live until `drop(guard)` or the close of the
/// block it was declared in; any further lock acquisition while one is
/// live is flagged.
///
/// Temporaries (`x.lock().unwrap().field`) are not tracked as guards —
/// they die at the end of their statement — but they *are* checked as
/// acquisitions against live `let`-bound guards.
fn check_lock_nesting(map: &SourceMap, out: &mut Vec<RawViolation>) {
    struct Guard {
        names: Vec<String>,
        depth: usize,
        line: usize,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    for l in 0..map.lines() {
        let code = &map.code[l];
        let line_base = depth;
        // Depth at each column, so a guard declared inside `{ … }` on a
        // partially-braced line gets the right scope.
        let depth_at = |col: usize| {
            let mut d = line_base;
            for b in code.as_bytes()[..col].iter() {
                match b {
                    b'{' => d += 1,
                    b'}' => d = d.saturating_sub(1),
                    _ => {}
                }
            }
            d
        };
        let mut min_depth = line_base;
        {
            let mut d = line_base;
            for b in code.as_bytes() {
                match b {
                    b'{' => d += 1,
                    b'}' => {
                        d = d.saturating_sub(1);
                        min_depth = min_depth.min(d);
                    }
                    _ => {}
                }
            }
            depth = d;
        }
        // Close out guards whose block ended on this line.
        guards.retain(|g| g.depth <= min_depth);
        // Explicit drops release guards mid-block.
        if let Some(pos) = code.find("drop(") {
            let arg: String = code[pos + 5..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            guards.retain(|g| !g.names.contains(&arg));
        }
        let acquisition = ["lock_tracked(", ".lock("].iter().filter_map(|pat| code.find(pat)).min();
        if let Some(col) = acquisition {
            if !map.test[l] {
                if let Some(live) = guards.first() {
                    push(
                        out,
                        l,
                        "lock-nesting",
                        format!(
                            "lock acquired while guard from line {} is still live",
                            live.line + 1
                        ),
                    );
                }
            }
            if let Some(let_col) = code.find("let ") {
                if let_col < col {
                    let pattern = &code[let_col + 4..col];
                    let names: Vec<String> = split_idents(pattern)
                        .into_iter()
                        .filter(|n| n != "mut" && n != "_")
                        .collect();
                    if !names.is_empty() {
                        guards.push(Guard { names, depth: depth_at(let_col), line: l });
                    }
                }
            }
        }
    }
}

fn split_idents(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
        if c == '=' {
            // The pattern ends at `=`; whatever follows is the
            // initializer expression.
            break;
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}
