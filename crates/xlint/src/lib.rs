//! # vulnds-xlint — the workspace's own static-analysis pass
//!
//! Everything this system promises — `(ε, δ)`-guaranteed top-k answers
//! that are bit-identical across seeds, widths, thread counts, and
//! concurrent interleavings — rests on invariants no off-the-shelf
//! linter knows about: no clock reads or hash-iteration order in
//! answer paths, a written justification next to every atomic
//! memory-ordering choice, no nested lock acquisition, no panics in
//! library code, and a `SAFETY:` comment on every unsafe block. This
//! crate machine-checks those invariants over the workspace source and
//! gates CI on them.
//!
//! The analysis is lexical by design (see [`lex`]): a zero-dependency
//! byte classifier that understands comments, strings, raw strings,
//! char-vs-lifetime quotes, and `#[cfg(test)]` extents is enough to
//! evaluate every rule, keeps the tool inside the workspace's
//! zero-external-deps rule, and makes `cargo run -p vulnds-xlint` fast
//! enough to run on every commit.
//!
//! Deliberate exceptions are written down as waivers (see [`waiver`])
//! and double as a greppable registry: `cargo run -p vulnds-xlint --
//! --waivers` lists every exception in the codebase with its reason.

#![forbid(unsafe_code)]

pub mod lex;
pub mod rules;
pub mod waiver;

pub use rules::{FileClass, RawViolation, Rule, RULES};
pub use waiver::Waiver;

/// A confirmed finding in one file.
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name.
    pub rule: &'static str,
    /// What fired.
    pub message: String,
}

/// Checks one file's source text: lex, run every rule, apply waivers.
/// Returns the surviving violations and the file's waiver registry
/// entries (with their `used` flags resolved).
pub fn check_source(file: &str, source: &str, class: &FileClass) -> (Vec<Violation>, Vec<Waiver>) {
    let map = lex::scan(source);
    let raw = rules::check(&map, class);
    let (mut waivers, mut malformed) = waiver::collect(&map);
    let mut surviving = waiver::apply(&map, raw, &mut waivers);
    surviving.append(&mut malformed);
    surviving.sort_by_key(|v| v.line);
    let violations = surviving
        .into_iter()
        .map(|v| Violation {
            file: file.to_string(),
            line: v.line,
            rule: v.rule,
            message: v.message,
        })
        .collect();
    (violations, waivers)
}
