//! Waivers: per-site (and per-file) exceptions with written reasons.
//!
//! Syntax, in a regular (non-doc) comment:
//!
//! ```text
//! // xlint: allow(rule-name) — reason the exception is sound
//! // xlint: allow-file(rule-name) — reason covering the whole file
//! ```
//!
//! The separator may be an em dash, en dash, one or two hyphens, or a
//! colon; the reason is mandatory. A same-line waiver covers its own
//! line; a waiver on a comment-only line covers the next code line
//! (through any further comment-only lines). Waivers that name an
//! unknown rule, omit the reason, or suppress nothing are themselves
//! violations (`waiver-hygiene`), so the registry can never rot.

use crate::lex::SourceMap;
use crate::rules::{self, RawViolation};

/// One parsed waiver.
pub struct Waiver {
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// The rule being waived.
    pub rule: String,
    /// True for `allow-file(...)`: covers the whole file.
    pub file_level: bool,
    /// The written justification.
    pub reason: String,
    /// Set during application when the waiver suppressed a finding.
    pub used: bool,
}

/// Scans the comment channel for waivers. Malformed ones are returned
/// as `waiver-hygiene` violations instead.
pub fn collect(map: &SourceMap) -> (Vec<Waiver>, Vec<RawViolation>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for (l, comment) in map.comments.iter().enumerate() {
        let Some(at) = comment.find("xlint:") else { continue };
        let rest = comment[at + "xlint:".len()..].trim_start();
        let (file_level, rest) = match rest.strip_prefix("allow-file(") {
            Some(r) => (true, r),
            None => match rest.strip_prefix("allow(") {
                Some(r) => (false, r),
                None => {
                    bad.push(hygiene(l, "unrecognized `xlint:` directive (want `allow(...)`)"));
                    continue;
                }
            },
        };
        let Some(close) = rest.find(')') else {
            bad.push(hygiene(l, "unterminated `allow(` in waiver"));
            continue;
        };
        let names: Vec<&str> = rest[..close].split(',').map(str::trim).collect();
        let reason = strip_separator(rest[close + 1..].trim());
        for name in names {
            if rules::rule(name).is_none() {
                bad.push(hygiene(l, &format!("waiver names unknown rule `{name}`")));
                continue;
            }
            match reason {
                Some(reason) if !reason.is_empty() => waivers.push(Waiver {
                    line: l + 1,
                    rule: name.to_string(),
                    file_level,
                    reason: reason.to_string(),
                    used: false,
                }),
                _ => bad.push(hygiene(
                    l,
                    &format!("waiver for `{name}` has no reason (want `allow({name}) — why`)"),
                )),
            }
        }
    }
    (waivers, bad)
}

fn hygiene(line: usize, msg: &str) -> RawViolation {
    RawViolation {
        line: line + 1,
        rule: "waiver-hygiene",
        message: msg.to_string(),
        waivable: true,
    }
}

/// Strips the reason separator: em/en dash, `--`, `-`, or `:`.
fn strip_separator(text: &str) -> Option<&str> {
    for sep in ["—", "–", "--", "-", ":"] {
        if let Some(rest) = text.strip_prefix(sep) {
            return Some(rest.trim());
        }
    }
    None
}

/// Applies `waivers` to `violations`: suppressed findings are removed,
/// matched waivers are marked used, and unused waivers become
/// `waiver-hygiene` findings appended to the result.
pub fn apply(
    map: &SourceMap,
    mut violations: Vec<RawViolation>,
    waivers: &mut [Waiver],
) -> Vec<RawViolation> {
    violations.retain(|v| {
        // Unwaivable findings survive untouched; a waiver aimed at one
        // stays unused and is flagged below, so the ban cannot be
        // argued around in a comment.
        if !v.waivable {
            return true;
        }
        for w in waivers.iter_mut() {
            if w.rule == v.rule && (w.file_level || covers(map, w.line, v.line)) {
                w.used = true;
                return false;
            }
        }
        true
    });
    for w in waivers.iter().filter(|w| !w.used) {
        violations.push(hygiene(
            w.line - 1,
            &format!("waiver for `{}` suppresses nothing — remove it", w.rule),
        ));
    }
    violations.sort_by_key(|v| v.line);
    violations
}

/// A waiver at `w` (1-based) covers a violation at `v` (1-based) when
/// they share a line, or when the waiver sits on a comment-only line
/// and `v` belongs to the next statement: comment-only/blank lines are
/// skipped, then coverage extends through the statement's continuation
/// lines until one ends it (trailing `;`, `,`, `{`, or `}` — so a
/// match arm or struct field is covered alone, not its successors).
fn covers(map: &SourceMap, w: usize, v: usize) -> bool {
    if w == v {
        return true;
    }
    if w > v {
        return false;
    }
    let code = |line_1: usize| map.code[line_1 - 1].trim();
    if !code(w).is_empty() {
        return false; // trailing waiver on a code line covers that line only
    }
    let mut l = w + 1;
    while l < v && code(l).is_empty() {
        l += 1;
    }
    while l < v {
        if [";", ",", "{", "}"].iter().any(|t| code(l).ends_with(t)) {
            return false; // the covered statement ended before `v`
        }
        l += 1;
    }
    true
}
