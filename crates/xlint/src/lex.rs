//! The masking lexer: classifies every byte of a Rust source file as
//! code, regular comment, doc comment, or literal, then resolves
//! `#[cfg(test)]` / `#[test]` item extents — so rules match on exactly
//! the channel they mean to and never fire on a pattern that only
//! appears inside a string, a doc example, or a unit test.
//!
//! This is deliberately not a parser: no syntax tree, no macro
//! expansion, no `syn`. The rules this tool enforces are lexical
//! properties (a token in production code, a justification comment next
//! to it), and a byte classifier that understands comments, string
//! escapes, raw strings, char-vs-lifetime quotes, and attribute extents
//! is enough to evaluate them without any dependency.

/// Which channel a byte belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Chan {
    /// Compiled, non-literal source text.
    Code,
    /// A regular `//` or `/* */` comment — where waivers and
    /// justification markers live.
    Comment,
    /// A `///`, `//!`, `/** */` or `/*! */` doc comment. Excluded from
    /// both channels: doc prose and doc examples are not production
    /// code, and waiver syntax shown in documentation must not register
    /// as a live waiver.
    Doc,
    /// String, raw-string, byte-string, or char literal content.
    Literal,
}

/// A source file split into per-line rule-matching channels.
pub struct SourceMap {
    /// Per line: source text with comments and literal contents blanked
    /// to spaces. Token searches run against this.
    pub code: Vec<String>,
    /// Per line: regular-comment text (doc comments excluded), blanked
    /// elsewhere. Waivers, `SAFETY:` and `ORDERING:` markers are read
    /// from this.
    pub comments: Vec<String>,
    /// Per line: true when the line is inside a `#[cfg(test)]` or
    /// `#[test]` item (the attribute itself included).
    pub test: Vec<bool>,
}

impl SourceMap {
    /// Number of lines in the file.
    pub fn lines(&self) -> usize {
        self.code.len()
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Classifies `source` into channels and resolves test-item extents.
pub fn scan(source: &str) -> SourceMap {
    let bytes = source.as_bytes();
    let mut chan = vec![Chan::Code; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                i = scan_line_comment(bytes, &mut chan, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i = scan_block_comment(bytes, &mut chan, i);
            }
            b'"' => {
                i = scan_string(bytes, &mut chan, i);
            }
            b'\'' => {
                i = scan_quote(bytes, &mut chan, i);
            }
            b'r' | b'b' if i == 0 || !is_ident_byte(bytes[i - 1]) => {
                match scan_prefixed_literal(bytes, &mut chan, i) {
                    Some(end) => i = end,
                    None => i += 1,
                }
            }
            _ => i += 1,
        }
    }

    let code = channel_text(source, &chan, Chan::Code);
    let comments = channel_text(source, &chan, Chan::Comment);
    let code_lines: Vec<String> = code.lines().map(str::to_string).collect();
    let comment_lines: Vec<String> = comments.lines().map(str::to_string).collect();
    let test = test_lines(&code, code_lines.len());
    SourceMap { code: code_lines, comments: comment_lines, test }
}

/// `//` comment to end of line; `///`/`//!` are doc comments, while
/// `////…` banners count as regular comments again.
fn scan_line_comment(bytes: &[u8], chan: &mut [Chan], start: usize) -> usize {
    let third = bytes.get(start + 2);
    let doc = (third == Some(&b'/') && bytes.get(start + 3) != Some(&b'/')) || third == Some(&b'!');
    let c = if doc { Chan::Doc } else { Chan::Comment };
    let mut i = start;
    while i < bytes.len() && bytes[i] != b'\n' {
        chan[i] = c;
        i += 1;
    }
    i
}

/// `/* */` with nesting; `/**`/`/*!` are doc comments (but `/**/` is an
/// empty regular comment).
fn scan_block_comment(bytes: &[u8], chan: &mut [Chan], start: usize) -> usize {
    let third = bytes.get(start + 2);
    let doc = (third == Some(&b'*') && bytes.get(start + 3) != Some(&b'/')) || third == Some(&b'!');
    let c = if doc { Chan::Doc } else { Chan::Comment };
    let mut depth = 0usize;
    let mut i = start;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            chan[i] = c;
            chan[i + 1] = c;
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth = depth.saturating_sub(1);
            chan[i] = c;
            chan[i + 1] = c;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            if bytes[i] != b'\n' {
                chan[i] = c;
            }
            i += 1;
        }
    }
    i
}

/// A `"…"` string with `\` escapes. Returns the index after the
/// closing quote.
fn scan_string(bytes: &[u8], chan: &mut [Chan], start: usize) -> usize {
    chan[start] = Chan::Literal;
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                chan[i] = Chan::Literal;
                if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                    chan[i + 1] = Chan::Literal;
                }
                i += 2;
            }
            b'"' => {
                chan[i] = Chan::Literal;
                return i + 1;
            }
            b'\n' => i += 1,
            _ => {
                chan[i] = Chan::Literal;
                i += 1;
            }
        }
    }
    i
}

/// A `'` that may open a char literal (`'x'`, `'\n'`, `'é'`) or be a
/// lifetime (`'a`). Lifetimes stay in the code channel.
fn scan_quote(bytes: &[u8], chan: &mut [Chan], start: usize) -> usize {
    let next = match bytes.get(start + 1) {
        Some(&b) => b,
        None => return start + 1,
    };
    let lifetime = is_ident_byte(next) && next < 0x80 && bytes.get(start + 2) != Some(&b'\'');
    if lifetime {
        return start + 1;
    }
    // Char literal: mark through the closing quote (escapes skip the
    // byte after the backslash so `'\''` terminates correctly).
    chan[start] = Chan::Literal;
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                chan[i] = Chan::Literal;
                if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                    chan[i + 1] = Chan::Literal;
                }
                i += 2;
            }
            b'\'' => {
                chan[i] = Chan::Literal;
                return i + 1;
            }
            b'\n' => return i, // stray quote; never a literal
            _ => {
                chan[i] = Chan::Literal;
                i += 1;
            }
        }
    }
    i
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` — prefixed literals.
/// Returns `None` when `start` is a plain identifier character.
fn scan_prefixed_literal(bytes: &[u8], chan: &mut [Chan], start: usize) -> Option<usize> {
    let mut i = start + 1;
    if bytes[start] == b'b' {
        match bytes.get(i) {
            Some(&b'"') => {
                chan[start] = Chan::Literal;
                return Some(scan_string(bytes, chan, i));
            }
            Some(&b'\'') => {
                chan[start] = Chan::Literal;
                return Some(scan_quote(bytes, chan, i));
            }
            Some(&b'r') => i += 1,
            _ => return None,
        }
    }
    // Raw string: hashes then a quote.
    let hash_start = i;
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    let hashes = i - hash_start;
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    for c in chan.iter_mut().take(i + 1).skip(start) {
        *c = Chan::Literal;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            for c in chan.iter_mut().take(i + 1 + hashes).skip(i) {
                *c = Chan::Literal;
            }
            return Some(i + 1 + hashes);
        }
        if bytes[i] != b'\n' {
            chan[i] = Chan::Literal;
        }
        i += 1;
    }
    Some(i)
}

/// Extracts one channel as a same-shape string: bytes owned by `want`
/// are copied, newlines are preserved, everything else is a space.
fn channel_text(source: &str, chan: &[Chan], want: Chan) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' || chan[i] == want {
            out.push(if b == b'\n' { b'\n' } else { b });
        } else {
            out.push(b' ');
        }
    }
    // Replacing non-channel bytes with spaces can split a multi-byte
    // sequence only when a literal/comment boundary lands inside one,
    // which classified Rust never produces; lossy conversion is a
    // safety net, not an expected path.
    String::from_utf8_lossy(&out).into_owned()
}

/// Marks the lines covered by `#[cfg(test)]` / `#[test]` items in the
/// masked code text.
fn test_lines(code: &str, line_count: usize) -> Vec<bool> {
    let bytes = code.as_bytes();
    let mut test = vec![false; line_count.max(1)];
    let line_of = |pos: usize| bytes[..pos].iter().filter(|&&b| b == b'\n').count();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let Some((content, after)) = attribute_at(bytes, i) else {
            i += 1;
            continue;
        };
        if !is_test_attribute(&content) {
            i = after;
            continue;
        }
        // Skip any further attributes between the test marker and the
        // item itself (`#[cfg(test)] #[allow(…)] mod tests { … }`).
        let mut k = after;
        loop {
            let ws = skip_ws(bytes, k);
            match attribute_at(bytes, ws) {
                Some((_, next)) => k = next,
                None => break,
            }
        }
        let end = item_end(bytes, k);
        let (from, to) = (line_of(i), line_of(end.min(bytes.len().saturating_sub(1))));
        for flag in test.iter_mut().take(to + 1).skip(from) {
            *flag = true;
        }
        i = end.max(i + 1);
    }
    test.truncate(line_count.max(1));
    test
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while matches!(bytes.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        i += 1;
    }
    i
}

/// If an attribute `#[…]` starts at `i`, returns its bracket content
/// and the index just past the closing `]`.
fn attribute_at(bytes: &[u8], i: usize) -> Option<(String, usize)> {
    if bytes.get(i) != Some(&b'#') {
        return None;
    }
    let mut j = skip_ws(bytes, i + 1);
    if bytes.get(j) == Some(&b'!') {
        // Inner attributes (`#![…]`) configure the enclosing scope, not
        // a following item; they never open a test region.
        return None;
    }
    if bytes.get(j) != Some(&b'[') {
        return None;
    }
    let mut depth = 0usize;
    let start = j + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    let content = String::from_utf8_lossy(&bytes[start..j]).into_owned();
                    return Some((content, j + 1));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not
/// `#[cfg(not(test))]` (production-only) or `#[cfg_attr(test, …)]`
/// (conditional attribute on a production item).
fn is_test_attribute(content: &str) -> bool {
    let t = content.trim();
    if t == "test" {
        return true;
    }
    t.starts_with("cfg(") && contains_word(t, "test") && !t.contains("not(test")
}

fn contains_word(hay: &str, word: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// From `i`, the end of the item: the first `;` at brace depth zero, or
/// the matching `}` of the first `{`.
fn item_end(bytes: &[u8], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < bytes.len() {
        match bytes[j] {
            b';' if depth == 0 => return j + 1,
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}
