//! Fixture tests: every rule has at least one firing and one
//! non-firing snippet, waivers round-trip through the registry, and
//! the lexer's masking (comments, strings, `#[cfg(test)]` extents)
//! keeps rules off non-code channels.

use vulnds_xlint::{check_source, FileClass, RULES};

/// Lints a fixture as library code of a non-exempt package.
fn lint(source: &str) -> Vec<(usize, &'static str)> {
    lint_as(source, "vulnds-core", false)
}

fn lint_as(source: &str, package: &str, is_bin: bool) -> Vec<(usize, &'static str)> {
    let class = FileClass { package: package.to_string(), is_bin };
    let (violations, _) = check_source("fixture.rs", source, &class);
    violations.into_iter().map(|v| (v.line, v.rule)).collect()
}

fn fired(source: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint(source).into_iter().map(|(_, r)| r).collect();
    rules.dedup();
    rules
}

#[test]
fn every_rule_has_a_rationale() {
    for rule in RULES {
        assert!(!rule.rationale.is_empty(), "{} has no rationale", rule.name);
    }
}

#[test]
fn no_wall_clock_fires_and_spares() {
    let firing = r#"
fn f() {
    let t = std::time::Instant::now();
}
"#;
    assert_eq!(fired(firing), ["no-wall-clock"]);
    // The same read inside a #[test] item is out of scope.
    let test_only = r#"
#[test]
fn timing() {
    let t = std::time::Instant::now();
}
"#;
    assert_eq!(fired(test_only), [""; 0]);
    // The bench harness is exempt by package.
    assert_eq!(lint_as(firing, "vulnds-bench", false), []);
}

#[test]
fn instant_is_waivable_but_calendar_time_is_not() {
    // A justified waiver suppresses the monotonic deadline pattern …
    let deadline = r#"
fn expired(deadline: std::time::Instant) -> bool {
    // xlint: allow(no-wall-clock) — deadline check; decides only when
    // sampling stops, never what it returns.
    std::time::Instant::now() >= deadline
}
"#;
    assert_eq!(fired(deadline), [""; 0]);
    // … but the identical waiver shape cannot argue away calendar
    // time: the violation survives AND the waiver is flagged as
    // suppressing nothing.
    let calendar = r#"
fn stamp() -> u64 {
    // xlint: allow(no-wall-clock) — we promise it is fine.
    std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs()
}
"#;
    let mut rules = fired(calendar);
    rules.sort_unstable();
    assert!(rules.contains(&"no-wall-clock"), "SystemTime must survive a waiver: {rules:?}");
    assert!(rules.contains(&"waiver-hygiene"), "the useless waiver must be flagged: {rules:?}");
    // A file-level waiver is equally powerless.
    let file_level = r#"
// xlint: allow-file(no-wall-clock) — timing module.
fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
"#;
    assert!(fired(file_level).contains(&"no-wall-clock"));
}

#[test]
fn calendar_time_is_banned_even_in_the_timing_exempt_bench() {
    let calendar = "fn f() { let t = std::time::SystemTime::now(); }\n";
    let fired: Vec<_> =
        lint_as(calendar, "vulnds-bench", false).into_iter().map(|(_, r)| r).collect();
    assert_eq!(fired, ["no-wall-clock"], "the bench timing exemption must not cover SystemTime");
    // The exemption still covers what it is for: monotonic timing.
    assert_eq!(lint_as("fn f() { let t = Instant::now(); }\n", "vulnds-bench", false), []);
}

#[test]
fn no_sleep_fires_and_spares() {
    let firing = "fn f() { std::thread::sleep(d); }\n";
    assert_eq!(fired(firing), ["no-sleep"]);
    let non_firing = "fn f() { let s = \"thread::sleep\"; } // thread::sleep\n";
    assert_eq!(fired(non_firing), [""; 0]);
}

#[test]
fn no_hash_order_fires_and_spares() {
    let firing = "use std::collections::HashMap;\n";
    assert_eq!(fired(firing), ["no-hash-order"]);
    let firing_set = "fn f(s: &HashSet<u32>) {}\n";
    assert_eq!(fired(firing_set), ["no-hash-order"]);
    let non_firing = "use std::collections::BTreeMap;\n";
    assert_eq!(fired(non_firing), [""; 0]);
    // Identifier boundaries: a name that merely contains the token
    // does not fire.
    assert_eq!(fired("fn f(m: MyHashMapLike) {}\n"), [""; 0]);
}

#[test]
fn ordering_comment_fires_and_spares() {
    let firing = r#"
fn f(x: &AtomicU64) {
    x.load(Ordering::Relaxed);
}
"#;
    assert_eq!(fired(firing), ["ordering-comment"]);
    let non_firing = r#"
fn f(x: &AtomicU64) {
    // ORDERING: Relaxed — a pure stat counter.
    x.load(Ordering::Relaxed);
}
"#;
    assert_eq!(fired(non_firing), [""; 0]);
}

#[test]
fn ordering_comment_covers_contiguous_atomic_runs() {
    // One justification covers a block of adjacent atomic lines (a
    // stats snapshot), but not a detached one after a gap.
    let source = r#"
fn snapshot(s: &Totals) -> (u64, u64) {
    // ORDERING: Relaxed — independent monotone counters; the comment
    // block also flows down to the code it precedes.
    let a = s.a.load(Ordering::Relaxed);
    let b = s.b.load(Ordering::Relaxed);

    let c = s.c.load(Ordering::Relaxed);
}
"#;
    assert_eq!(lint(source), [(8, "ordering-comment")]);
}

#[test]
fn lock_nesting_fires_and_spares() {
    let firing = r#"
fn f(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
}
"#;
    let rules: Vec<_> = lint(firing).into_iter().filter(|(_, r)| *r == "lock-nesting").collect();
    assert_eq!(rules, [(4, "lock-nesting")]);
    // Disjoint scopes do not nest.
    let scoped = r#"
fn f(a: &Mutex<u32>, b: &Mutex<u32>) {
    {
        let ga = a.lock().unwrap();
    }
    let gb = b.lock().unwrap();
}
"#;
    assert!(lint(scoped).iter().all(|(_, r)| *r != "lock-nesting"));
    // An explicit drop releases the guard mid-block.
    let dropped = r#"
fn f(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().unwrap();
    drop(ga);
    let gb = b.lock().unwrap();
}
"#;
    assert!(lint(dropped).iter().all(|(_, r)| *r != "lock-nesting"));
}

#[test]
fn panic_hygiene_fires_and_spares() {
    assert_eq!(fired("fn f(x: Option<u32>) { x.unwrap(); }\n"), ["panic-hygiene"]);
    assert_eq!(fired("fn f(x: Option<u32>) { x.expect(\"set\"); }\n"), ["panic-hygiene"]);
    // Non-panicking relatives do not fire.
    assert_eq!(fired("fn f(x: Option<u32>) { x.unwrap_or(0); }\n"), [""; 0]);
    assert_eq!(fired("fn f(x: Result<u32, ()>) { x.expect_err(\"err\"); }\n"), [""; 0]);
    // Binary entry points may abort like any CLI tool.
    assert_eq!(lint_as("fn main() { run().unwrap(); }\n", "vulnds", true), []);
}

#[test]
fn unsafe_block_fires_and_spares() {
    let firing = "fn f(p: *const u8) { unsafe { p.read() }; }\n";
    assert_eq!(fired(firing), ["unsafe-block"]);
    let non_firing = r#"
fn f(p: *const u8) {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { p.read() };
}
"#;
    assert_eq!(fired(non_firing), [""; 0]);
}

#[test]
fn waivers_suppress_and_register() {
    let source = r#"
fn f(x: Option<u32>) {
    // xlint: allow(panic-hygiene) — x is Some by construction.
    x.unwrap();
}
"#;
    let class = FileClass { package: "vulnds-core".to_string(), is_bin: false };
    let (violations, waivers) = check_source("fixture.rs", source, &class);
    assert!(violations.is_empty(), "waiver must suppress: {:?}", violations[0].message);
    assert_eq!(waivers.len(), 1);
    let w = &waivers[0];
    assert_eq!((w.line, w.rule.as_str(), w.file_level, w.used), (3, "panic-hygiene", false, true));
    assert_eq!(w.reason, "x is Some by construction.");
}

#[test]
fn waiver_separators_round_trip() {
    // Em dash, en dash, double hyphen, hyphen, and colon all parse.
    for sep in ["—", "–", "--", "-", ":"] {
        let source =
            format!("fn f(x: Option<u32>) {{\n    x.unwrap(); // xlint: allow(panic-hygiene) {sep} proven above\n}}\n");
        let class = FileClass { package: "vulnds-core".to_string(), is_bin: false };
        let (violations, waivers) = check_source("fixture.rs", &source, &class);
        assert!(violations.is_empty(), "separator {sep:?} failed");
        assert_eq!(waivers[0].reason, "proven above");
    }
}

#[test]
fn file_level_waivers_cover_the_whole_file() {
    let source = r#"
// xlint: allow-file(no-wall-clock) — this module reports elapsed time.
fn f() {
    let a = std::time::Instant::now();
}
fn g() {
    let b = std::time::Instant::now();
}
"#;
    let class = FileClass { package: "vulnds-core".to_string(), is_bin: false };
    let (violations, waivers) = check_source("fixture.rs", source, &class);
    assert!(violations.is_empty());
    assert!(waivers[0].file_level && waivers[0].used);
}

#[test]
fn malformed_waivers_are_violations() {
    // Unknown rule.
    let unknown = "fn f() {} // xlint: allow(no-such-rule) — why\n";
    assert_eq!(fired(unknown), ["waiver-hygiene"]);
    // Missing reason.
    let unreasoned = "fn f(x: Option<u32>) { x.unwrap() } // xlint: allow(panic-hygiene)\n";
    assert!(fired(unreasoned).contains(&"waiver-hygiene"));
    // Suppresses nothing.
    let unused = "fn f() {} // xlint: allow(panic-hygiene) — stale\n";
    assert_eq!(fired(unused), ["waiver-hygiene"]);
}

#[test]
fn masked_channels_never_fire() {
    // Tokens in strings, comments, and doc comments are not code.
    let source = r##"
//! HashMap in module docs is fine; so is `x.unwrap()`.

/// Doc example: `Instant::now()` and thread::sleep mentioned here.
fn f() {
    let s = "HashMap::new() Instant::now() .unwrap()";
    let r = r#"unsafe { } Ordering::Relaxed"#;
    // a comment naming HashMap, thread::sleep, and .expect( too
}
"##;
    assert_eq!(fired(source), [""; 0]);
}

#[test]
fn cfg_test_extents_are_out_of_scope() {
    let source = r#"
fn lib() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        m.get(&1).unwrap();
    }
}
"#;
    assert_eq!(fired(source), [""; 0]);
    // But cfg(not(test)) is live code.
    let not_test = r#"
#[cfg(not(test))]
fn live() {
    let t = std::time::Instant::now();
}
"#;
    assert_eq!(fired(not_test), ["no-wall-clock"]);
}
