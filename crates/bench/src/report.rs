//! Plain-text table rendering for the experiment binaries. The output
//! mirrors the rows/series of the paper's tables and figures so results
//! can be compared side by side (see EXPERIMENTS.md).

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (cells are pre-formatted strings).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = width[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a duration in adaptive units.
pub fn dur(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with(" 1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(dur(std::time::Duration::from_secs(2)), "2.00s");
        assert_eq!(dur(std::time::Duration::from_millis(5)), "5.00ms");
        assert_eq!(dur(std::time::Duration::from_micros(7)), "7µs");
    }
}
