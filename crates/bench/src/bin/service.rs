//! Concurrent-service throughput microbench (`BENCH_service.json`):
//! queries/sec vs client threads for one **shared** `Detector` session
//! (the 0.4 `&self` engine) against the pre-0.4 architecture of one
//! session **per client**.
//!
//! Three configurations per client count:
//!
//! * `per_client` — every client builds its own session and answers the
//!   request mix cold: bounds, reductions, coin table, and every
//!   sampled world are paid per client (what the borrowed `&mut`
//!   engine forced a service to do);
//! * `shared_cold` — all clients hit one fresh shared session: the
//!   first arrivals build the caches single-flight, everyone else
//!   reuses them mid-flight;
//! * `shared_warm` — the shared session has already served the mix
//!   once (steady-state service traffic).
//!
//! Throughput is work amortization, not just core count: on any
//! machine the shared warm session answers from cached bounds and
//! sampled-world prefixes while per-client sessions re-derive
//! everything, so the gain shows even on a single-core runner.
//!
//! Env knobs: `VULNDS_SCALE`, `VULNDS_SEED` (see `workload`),
//! `VULNDS_BENCH_JSON` (output path), `VULNDS_BENCH_REPS` (timing
//! repetitions, default 5).

use std::sync::Barrier;
use std::time::{Duration, Instant};

use vulnds_bench::machine::{available_parallelism, emit_machine};
use vulnds_bench::microbench::JsonReport;
use vulnds_bench::workload;
use vulnds_core::engine::{DetectRequest, Detector};
use vulnds_core::AlgorithmKind;
use vulnds_datasets::Dataset;

/// The per-client request mix: the algorithms a screening service
/// actually serves, over a few `k`, so bounds, reductions, and both
/// sampling directions are all on the hot path. Weighted toward the
/// prefix-cacheable estimators (SN/SR/BSR) the way steady-state service
/// traffic is; one BSRBK rides along, whose adaptive pass redraws per
/// query by design and bounds the warm-cache gain from above.
fn request_mix(n: usize) -> Vec<DetectRequest> {
    let k1 = (n / 100).max(1);
    let k2 = (n / 50).max(2);
    vec![
        DetectRequest::new(k1, AlgorithmKind::SampledNaive),
        DetectRequest::new(k2, AlgorithmKind::SampledNaive),
        DetectRequest::new(k1, AlgorithmKind::BoundedSampleReverse),
        DetectRequest::new(k2, AlgorithmKind::BoundedSampleReverse),
        DetectRequest::new(k1, AlgorithmKind::SampleReverse),
        DetectRequest::new(k1, AlgorithmKind::BottomK),
    ]
}

fn build_session(graph: &std::sync::Arc<ugraph::UncertainGraph>) -> Detector {
    // Serving posture: per-query samplers single-threaded (concurrency
    // comes from the client threads), and a production-ish accuracy
    // contract — a service quotes ε = 0.2, not the benchmark-friendly
    // default 0.3, which is what makes cold re-sampling per client the
    // dominant cost the shared session amortizes away.
    let approx = vulnds_core::ApproxParams::new(0.2, 0.1).expect("valid contract");
    Detector::builder(graph)
        .config(workload::config().with_threads(1).with_approx(approx))
        .build()
        .unwrap()
}

/// Runs `clients` threads, each answering the whole mix once against
/// the session produced by `session_for`, and returns the wall time of
/// the slowest thread (barrier-started).
fn run_clients(
    clients: usize,
    mix: &[DetectRequest],
    session_for: impl Fn() -> std::sync::Arc<Detector> + Sync,
) -> Duration {
    let barrier = Barrier::new(clients + 1);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let session = session_for();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let start = Instant::now();
                    for i in 0..mix.len() {
                        // Rotate so concurrent clients interleave
                        // different cache layers.
                        let req = &mix[(i + c) % mix.len()];
                        session.detect(req).expect("valid request");
                    }
                    start.elapsed()
                })
            })
            .collect();
        barrier.wait();
        handles.into_iter().map(|h| h.join().expect("client thread")).max().unwrap()
    })
}

fn reps() -> usize {
    std::env::var("VULNDS_BENCH_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(5)
}

/// Median of `reps` timed runs of `f`.
fn median_duration(mut f: impl FnMut() -> Duration) -> Duration {
    let mut samples: Vec<Duration> = (0..reps()).map(|_| f()).collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let graph = std::sync::Arc::new(workload::generate(Dataset::Citation));
    let n = graph.num_nodes();
    let mix = request_mix(n);
    let hardware = available_parallelism();
    println!(
        "service bench: {} nodes, {} edges, {} requests/client, {} hardware threads",
        n,
        graph.num_edges(),
        mix.len(),
        hardware
    );

    let mut report = JsonReport::new();
    // The shared probe keeps the `machine` group's hardware fields in
    // lockstep with `BENCH_sampling.json` (this report used to lack
    // `simd`); workload-specific fields chain onto the same group.
    emit_machine(&mut report)
        .num("nodes", n as f64)
        .num("edges", graph.num_edges() as f64)
        .num("requests_per_client", mix.len() as f64)
        .num("scale", workload::scale());

    for clients in [1usize, 2, 4, 8] {
        // Per-client sessions: every client pays the full cold cost.
        let per_client = median_duration(|| {
            run_clients(clients, &mix, || std::sync::Arc::new(build_session(&graph)))
        });

        // Shared cold session: rebuilt per repetition, clients race in.
        let shared_cold = median_duration(|| {
            let shared = std::sync::Arc::new(build_session(&graph));
            run_clients(clients, &mix, || std::sync::Arc::clone(&shared))
        });

        // Shared warm session: steady-state traffic.
        let warm = std::sync::Arc::new(build_session(&graph));
        for req in &mix {
            warm.detect(req).expect("warm-up");
        }
        let shared_warm =
            median_duration(|| run_clients(clients, &mix, || std::sync::Arc::clone(&warm)));

        let total_queries = (clients * mix.len()) as f64;
        let qps = |d: Duration| total_queries / d.as_secs_f64().max(1e-12);
        let (qps_per_client, qps_cold, qps_warm) =
            (qps(per_client), qps(shared_cold), qps(shared_warm));
        let warm_gain = qps_warm / qps_per_client;
        println!(
            "clients {clients}: per-client {qps_per_client:.1} q/s | shared cold {qps_cold:.1} q/s | shared warm {qps_warm:.1} q/s | warm gain {warm_gain:.2}x"
        );
        report
            .group(&format!("clients_{clients}"))
            .num("client_threads", clients as f64)
            .num("qps_per_client_sessions", qps_per_client)
            .num("qps_shared_cold", qps_cold)
            .num("qps_shared_warm", qps_warm)
            .num("cold_gain_vs_per_client", qps_cold / qps_per_client)
            .num("warm_gain_vs_per_client", warm_gain);

        let stats = warm.session_stats();
        report
            .group(&format!("clients_{clients}_shared_warm_session"))
            .num("queries", stats.queries as f64)
            .num("samples_drawn", stats.samples_drawn as f64)
            .num("samples_reused", stats.samples_reused as f64)
            .num("cache_waits", stats.cache_waits as f64)
            .num("builds_deduped", stats.builds_deduped as f64)
            .num("concurrent_peak", stats.concurrent_peak as f64);
    }

    let path = std::env::var("VULNDS_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json").to_string()
    });
    report.write(&path).expect("write benchmark report");
    println!("wrote {path}");
}
