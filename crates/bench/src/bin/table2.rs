//! Reproduces **Table 2**: statistics of the eight evaluation datasets.
//!
//! Prints the paper's published numbers next to the synthetic generator's
//! output at the configured scale, so the shape match is auditable.

use ugraph::GraphStats;
use vulnds_bench::report::{f3, Table};
use vulnds_bench::workload;
use vulnds_datasets::Dataset;

fn main() {
    let scale = workload::scale();
    println!("Table 2 — dataset statistics (scale = {scale}, seed = {})\n", workload::seed());
    let mut t = Table::new(&[
        "Dataset",
        "paper n",
        "gen n",
        "paper m",
        "gen m",
        "paper avg",
        "gen avg",
        "paper max",
        "gen max",
    ]);
    for ds in Dataset::ALL {
        let spec = ds.spec();
        let g = workload::generate(ds);
        let s = GraphStats::compute(&g);
        t.row(vec![
            spec.name.to_string(),
            spec.nodes.to_string(),
            s.nodes.to_string(),
            spec.edges.to_string(),
            s.edges.to_string(),
            f3(spec.avg_degree),
            f3(s.avg_degree),
            spec.max_degree.to_string(),
            s.max_degree.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nPaper columns are the published full-scale values; generated columns are at scale {scale}."
    );
    println!("Fraud's paper max degree counts repeat trades (multi-edges); the generator builds the simple graph.");
}
