//! Reproduces **Figure 6**: wall-clock time of the five algorithms
//! (N, SN, SR, BSR, BSRBK) on all eight datasets, `k` from 2% to 10%.
//!
//! Expected shape: N slowest and flat in `k` (fixed budget); each added
//! technique is faster; BSRBK fastest, with up to two orders of magnitude
//! between N and BSRBK.

use vulnds_bench::report::{dur, Table};
use vulnds_bench::workload;
use vulnds_core::engine::{DetectRequest, Detector};
use vulnds_core::AlgorithmKind;
use vulnds_datasets::Dataset;

fn main() {
    println!(
        "Figure 6 — efficiency (scale = {}, seed = {})\n",
        workload::scale(),
        workload::seed()
    );
    for ds in Dataset::ALL {
        let g = std::sync::Arc::new(workload::generate(ds));
        println!("{} (n = {}, m = {})", ds, g.num_nodes(), g.num_edges());
        let mut t = Table::new(&["k%", "N", "SN", "SR", "BSR", "BSRBK", "N/BSRBK"]);
        for (pct, k) in workload::k_grid(g.num_nodes()) {
            let mut cells = vec![pct.to_string()];
            let mut n_time = 0.0f64;
            let mut bk_time = 0.0f64;
            for alg in AlgorithmKind::ALL {
                // Fresh session per run: Figure 6 times the cold path.
                let d = Detector::builder(std::sync::Arc::clone(&g))
                    .config(workload::config())
                    .build()
                    .unwrap();
                let r = d.detect(&DetectRequest::new(k, alg)).unwrap();
                let secs = r.stats.elapsed.as_secs_f64();
                match alg {
                    AlgorithmKind::Naive => n_time = secs,
                    AlgorithmKind::BottomK => bk_time = secs,
                    _ => {}
                }
                cells.push(dur(r.stats.elapsed));
            }
            let speedup = if bk_time > 0.0 { n_time / bk_time } else { f64::INFINITY };
            cells.push(format!("{speedup:.0}x"));
            t.row(cells);
        }
        t.print();
        println!();
    }
    println!("Expected shape (paper): N ≫ SN > SR > BSR > BSRBK; up to ~100x between N and BSRBK.");
}
