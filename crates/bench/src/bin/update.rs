//! Live-update bench (`BENCH_update.json`): what a graph delta costs
//! and what the delta-aware caches save.
//!
//! Three measurement families:
//!
//! * **Epoch swap latency** — `Detector::apply_delta` wall time for
//!   small (1 node + 1 edge) and larger (1% of items) batches against
//!   a warm session, with the revalidated/invalidated cache counts.
//! * **Warm vs cold** — the first query after a delta, answered by the
//!   revalidated session vs by a from-scratch session on the same
//!   post-delta graph. Same bits by construction; the gap is the
//!   revalidation payoff.
//! * **Update-rate × query-mix sweep** — `serve_with` throughput on
//!   request streams mixing `update` and `detect` at 1:16, 1:4, and
//!   1:1, single connection, worker pool as configured. The stream
//!   arrives at maximum rate (a `Cursor`, the worst case a flood
//!   produces), so the bounded queue sheds part of it — acked updates
//!   and shed requests are reported separately.
//!
//! Env knobs: `VULNDS_SCALE`, `VULNDS_SEED` (see `workload`),
//! `VULNDS_BENCH_JSON` (output path).

use std::io::Cursor;
use std::time::Instant;

use ugraph::{EdgeId, GraphDelta, NodeId, UncertainGraph};
use vulnds::json::Json;
use vulnds::serve::{serve_with, ServeOptions, DEFAULT_SERVE_MAX_SAMPLES};
use vulnds_bench::machine::{available_parallelism, emit_machine};
use vulnds_bench::microbench::JsonReport;
use vulnds_bench::workload;
use vulnds_core::engine::Detector;
use vulnds_core::{AlgorithmKind, DetectRequest};
use vulnds_datasets::Dataset;

/// Deterministic delta stream: index → which node/edge move and to
/// what. Small deltas touch 1 node + 1 edge; a `span` of n touches n
/// of each.
fn delta_at(index: u64, span: u64, graph: &UncertainGraph) -> GraphDelta {
    let n = graph.num_nodes() as u64;
    let m = graph.num_edges() as u64;
    let mut delta = GraphDelta::default();
    for j in 0..span {
        let i = index * span + j;
        delta = delta
            .set_self_risk(NodeId(((i * 7 + 3) % n) as u32), 0.2 + (i % 60) as f64 * 0.01)
            .set_edge_prob(EdgeId(((i * 5 + 1) % m) as u32), 0.15 + (i % 70) as f64 * 0.01);
    }
    delta
}

struct SwapStats {
    apply_ms_mean: f64,
    revalidated: u64,
    invalidated: u64,
    warm_query_ms: f64,
    cold_query_ms: f64,
}

/// Applies `rounds` deltas of `span` items to a warm session, timing
/// each swap, then times the first post-delta query warm (revalidated
/// session) and cold (fresh session on the same graph).
fn swap_latency(graph: &UncertainGraph, span: u64, rounds: u64) -> SwapStats {
    let config = workload::config().with_threads(1);
    let detector = Detector::builder(graph)
        .config(config.clone())
        .max_samples(DEFAULT_SERVE_MAX_SAMPLES)
        .build()
        .expect("session builds");
    let request = DetectRequest::new(8, AlgorithmKind::BottomK);
    // Warm every cache the delta path can revalidate.
    detector.detect(&request).expect("warmup query");

    let mut apply_ms = 0.0;
    let (mut revalidated, mut invalidated) = (0u64, 0u64);
    for i in 0..rounds {
        let delta = delta_at(i, span, graph);
        let start = Instant::now();
        let outcome = detector.apply_delta(&delta).expect("delta applies");
        apply_ms += start.elapsed().as_secs_f64() * 1e3;
        revalidated += outcome.revalidated;
        invalidated += outcome.invalidated;
    }

    let start = Instant::now();
    let warm = detector.detect(&request).expect("warm query");
    let warm_query_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut mutated = graph.clone();
    for i in 0..rounds {
        delta_at(i, span, graph).apply(&mut mutated).expect("delta applies to the copy");
    }
    let cold_session = Detector::builder(mutated)
        .config(config)
        .max_samples(DEFAULT_SERVE_MAX_SAMPLES)
        .build()
        .expect("cold session builds");
    let start = Instant::now();
    let cold = cold_session.detect(&request).expect("cold query");
    let cold_query_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        warm.top_k.iter().map(|s| (s.node, s.score.to_bits())).collect::<Vec<_>>(),
        cold.top_k.iter().map(|s| (s.node, s.score.to_bits())).collect::<Vec<_>>(),
        "warm and cold answers must be bit-identical"
    );

    SwapStats {
        apply_ms_mean: apply_ms / rounds as f64,
        revalidated,
        invalidated,
        warm_query_ms,
        cold_query_ms,
    }
}

/// One `update` request per `queries_per_update` detects, ids dense.
fn mixed_stream(total: u64, queries_per_update: u64, graph: &UncertainGraph) -> String {
    let n = graph.num_nodes() as u64;
    let m = graph.num_edges() as u64;
    let mut input = String::new();
    let mut updates = 0u64;
    for id in 0..total {
        if id % (queries_per_update + 1) == 0 {
            let i = updates;
            updates += 1;
            input.push_str(&format!(
                "{{\"id\": {id}, \"cmd\": \"update\", \"self_risk\": [[{}, {}]], \
                 \"edge_prob\": [[{}, {}]]}}\n",
                (i * 7 + 3) % n,
                0.2 + (i % 60) as f64 * 0.01,
                (i * 5 + 1) % m,
                0.15 + (i % 70) as f64 * 0.01
            ));
        } else {
            input.push_str(&format!(
                "{{\"id\": {id}, \"cmd\": \"detect\", \"k\": 8, \"algorithm\": \"bsrbk\"}}\n"
            ));
        }
    }
    input
}

fn main() {
    let graph = workload::generate(Dataset::Interbank);
    let n = graph.num_nodes();
    println!(
        "update bench: {} nodes, {} edges, {} hardware threads",
        n,
        graph.num_edges(),
        available_parallelism()
    );

    let mut report = JsonReport::new();
    emit_machine(&mut report)
        .num("nodes", n as f64)
        .num("edges", graph.num_edges() as f64)
        .num("scale", workload::scale());

    // Epoch swap latency + warm-vs-cold, small and 1%-of-items deltas.
    let one_percent = ((graph.num_edges() as u64) / 100).max(1);
    for (label, span) in [("small", 1u64), ("one_percent", one_percent)] {
        let s = swap_latency(&graph, span, 16);
        let survival = s.revalidated as f64 / (s.revalidated + s.invalidated).max(1) as f64;
        println!(
            "delta {label} (span {span}): apply {:.3} ms | revalidated {} | invalidated {} \
             ({:.0}% survival) | first query warm {:.1} ms vs cold {:.1} ms",
            s.apply_ms_mean,
            s.revalidated,
            s.invalidated,
            survival * 1e2,
            s.warm_query_ms,
            s.cold_query_ms
        );
        report
            .group(&format!("swap_{label}"))
            .num("span_items", span as f64)
            .num("apply_ms_mean", s.apply_ms_mean)
            .num("caches_revalidated", s.revalidated as f64)
            .num("caches_invalidated", s.invalidated as f64)
            .num("cache_survival", survival)
            .num("first_query_warm_ms", s.warm_query_ms)
            .num("first_query_cold_ms", s.cold_query_ms)
            .num("warm_over_cold", s.warm_query_ms / s.cold_query_ms.max(1e-9));
    }

    // Update-rate × query-mix sweep through the serve loop.
    const TOTAL: u64 = 512;
    for workers in [1usize, 4] {
        for queries_per_update in [16u64, 4, 1] {
            let detector = Detector::builder(&graph)
                .config(workload::config().with_threads(1))
                .max_samples(DEFAULT_SERVE_MAX_SAMPLES)
                .build()
                .expect("session builds");
            let options = ServeOptions { workers, ..ServeOptions::default() };
            let input = mixed_stream(TOTAL, queries_per_update, &graph);
            let start = Instant::now();
            let mut output = Vec::new();
            let summary =
                serve_with(&detector, &options, Cursor::new(input.as_bytes()), &mut output)
                    .expect("in-memory serve cannot fail");
            let wall_s = start.elapsed().as_secs_f64();
            let (mut updates_acked, mut queries_answered) = (0u64, 0u64);
            for line in String::from_utf8(output).expect("responses are utf-8").lines() {
                let response = Json::parse(line).expect("responses are valid JSON");
                if response.get("ok").and_then(Json::as_bool) != Some(true) {
                    continue;
                }
                if response.get("epoch").is_some() && response.get("top_k").is_none() {
                    updates_acked += 1;
                } else if response.get("top_k").is_some() {
                    queries_answered += 1;
                }
            }
            let session = detector.session_stats();
            assert_eq!(session.epoch, updates_acked, "every acked update is an epoch");
            let rps = TOTAL as f64 / wall_s.max(1e-9);
            println!(
                "workers {workers} mix 1:{queries_per_update}: {TOTAL} requests in {:.0} ms \
                 ({rps:.0} req/s) | epochs {} | queries {} | shed {} | revalidated {} | \
                 invalidated {}",
                wall_s * 1e3,
                session.epoch,
                queries_answered,
                summary.shed,
                session.caches_revalidated,
                session.caches_invalidated
            );
            report
                .group(&format!("mix_w{workers}_q{queries_per_update}"))
                .num("workers", workers as f64)
                .num("queries_per_update", queries_per_update as f64)
                .num("requests", TOTAL as f64)
                .num("wall_ms", wall_s * 1e3)
                .num("requests_per_sec", rps)
                .num("epochs_applied", session.epoch as f64)
                .num("updates_acked", updates_acked as f64)
                .num("queries_answered", queries_answered as f64)
                .num("shed", summary.shed as f64)
                .num("caches_revalidated", session.caches_revalidated as f64)
                .num("caches_invalidated", session.caches_invalidated as f64);
        }
    }

    let path = std::env::var("VULNDS_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_update.json").to_string()
    });
    report.write(&path).expect("write benchmark report");
    println!("wrote {path}");
}
