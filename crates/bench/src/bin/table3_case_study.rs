//! Reproduces **Table 3**: default-prediction AUC on the Guarantee
//! network over three test periods ("years").
//!
//! Labels come from the uncertain-graph process itself (see
//! `vulnds_baselines::labels` and DESIGN.md §3); the training period fits
//! the feature models, then every method scores all nodes and is
//! evaluated by ROC-AUC against each test period.
//!
//! Expected shape: BSR and BSRBK on top (they reason about contagion),
//! feature models (GBDT/MLP/LogReg) in the middle, raw centralities at
//! the bottom, InfMax and k-core between — matching the paper's ordering.

use vulnds_baselines::ml::features::{apply_standardization, node_features, standardize};
use vulnds_baselines::{
    betweenness, core_numbers, draw_period_labels, influence_maximization, pagerank, roc_auc, Gbdt,
    GbdtParams, LogisticRegression, Mlp, PageRankParams, SgdParams, WeightedKnn,
};
use vulnds_bench::report::{f3, Table};
use vulnds_bench::workload;
use vulnds_core::{score_nodes_bottomk, score_nodes_mc};
use vulnds_datasets::Dataset;

fn main() {
    println!(
        "Table 3 — default-prediction AUC on Guarantee (scale = {}, seed = {})\n",
        workload::scale(),
        workload::seed()
    );
    let g = workload::generate(Dataset::Guarantee);
    let n = g.num_nodes();
    println!("graph: n = {n}, m = {}", g.num_edges());

    // One training period + three test periods, as in the paper
    // (2012 trains; 2014/2015/2016 test).
    let periods = draw_period_labels(&g, 4, 0.15, workload::seed() ^ 0x1ABE1);
    let train = &periods[0];
    let tests = &periods[1..];

    // Feature models.
    let mut train_rows = node_features(&g);
    let (means, stds) = standardize(&mut train_rows);
    let mut eval_rows = node_features(&g);
    apply_standardization(&mut eval_rows, &means, &stds);

    let logreg = LogisticRegression::train(&train_rows, &train.defaulted, SgdParams::default());
    let mlp = Mlp::train(
        &train_rows,
        &train.defaulted,
        16,
        SgdParams { lr: 0.05, epochs: 80, l2: 1e-4, seed: 7 },
    );
    let gbdt = Gbdt::train(&train_rows, &train.defaulted, GbdtParams::default());
    let knn = WeightedKnn::fit(&train_rows, &train.defaulted, 15);

    // Graph scores (label-free).
    let cfg = workload::config().with_threads(workload::threads());
    let k_hint = (n / 10).max(1);
    let methods: Vec<(&str, Vec<f64>)> = vec![
        ("Wide (logreg)", logreg.predict_many(&eval_rows)),
        ("Deep (MLP)", mlp.predict_many(&eval_rows)),
        ("GBDT (stumps)", gbdt.predict_many(&eval_rows)),
        ("p-wkNN", knn.predict_many(&eval_rows)),
        ("Betweenness", betweenness(&g)),
        ("PageRank", pagerank(&g, PageRankParams::default())),
        ("K-core", core_numbers(&g).iter().map(|&c| c as f64).collect()),
        ("InfMax", influence_maximization(&g, k_hint, 2000, workload::seed()).coverage),
        ("BSRBK", score_nodes_bottomk(&g, k_hint, &cfg)),
        ("BSR", score_nodes_mc(&g, k_hint, &cfg)),
    ];

    let mut t = Table::new(&["Method", "AUC(y1)", "AUC(y2)", "AUC(y3)"]);
    for (name, scores) in &methods {
        let mut cells = vec![name.to_string()];
        for period in tests {
            let auc = roc_auc(scores, &period.defaulted).unwrap_or(f64::NAN);
            cells.push(f3(auc));
        }
        t.row(cells);
    }
    t.print();
    println!("\nExpected shape (paper): BSR ≳ BSRBK > feature models > InfMax/K-core > PageRank/Betweenness.");
}
