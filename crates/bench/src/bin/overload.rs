//! Overload-behavior bench (`BENCH_overload.json`): offered load vs
//! answered/shed/degraded counts for the serve loop's bounded-queue
//! admission control.
//!
//! Each run feeds one pre-built burst of newline-delimited requests —
//! a mix of instant `stats` probes and deadline-limited heavy queries —
//! through `serve_with` at maximum arrival rate (the reader ingests as
//! fast as the cursor yields, exactly the worst case a flood produces
//! over TCP). The interesting outputs are the *shape* of the response
//! population: how many requests were answered, how many were shed
//! with the structured `overloaded` refusal, how many answers came
//! back degraded, and what the burst cost wall-clock end to end
//! (including the drain).
//!
//! Env knobs: `VULNDS_SCALE`, `VULNDS_SEED` (see `workload`),
//! `VULNDS_BENCH_JSON` (output path).

use std::io::Cursor;
use std::time::Instant;

use vulnds::json::Json;
use vulnds::serve::{serve_with, ServeOptions, DEFAULT_SERVE_MAX_SAMPLES};
use vulnds_bench::machine::{available_parallelism, emit_machine};
use vulnds_bench::microbench::JsonReport;
use vulnds_bench::workload;
use vulnds_core::engine::Detector;
use vulnds_datasets::Dataset;

/// Every eighth request is a heavy sampling query that pins a worker
/// for up to `HEAVY_TIMEOUT_MS`; the rest are instant probes. The
/// heavy queries are what turn a deep burst into queue pressure.
const HEAVY_EVERY: u64 = 8;
const HEAVY_TIMEOUT_MS: u64 = 20;

fn burst(offered: u64) -> String {
    let mut input = String::new();
    for id in 0..offered {
        if id % HEAVY_EVERY == 0 {
            // A fresh seed per heavy query forces a cold sampling pass
            // (a repeated seed would be served from the session cache
            // after the first arrival and stop exerting any pressure).
            input.push_str(&format!(
                "{{\"id\": {id}, \"cmd\": \"detect\", \"algorithm\": \"sn\", \"k\": 4, \
                 \"epsilon\": 0.005, \"seed\": {id}, \"timeout_ms\": {HEAVY_TIMEOUT_MS}}}\n"
            ));
        } else {
            input.push_str(&format!("{{\"id\": {id}, \"cmd\": \"stats\"}}\n"));
        }
    }
    input
}

struct Outcome {
    answered: u64,
    shed: u64,
    degraded: u64,
    cancelled: u64,
    wall_ms: f64,
}

fn run(detector: &Detector, options: &ServeOptions, input: &str) -> Outcome {
    let mut output = Vec::new();
    let start = Instant::now();
    let summary = serve_with(detector, options, Cursor::new(input.as_bytes()), &mut output)
        .expect("in-memory serve cannot fail");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut outcome =
        Outcome { answered: 0, shed: summary.shed, degraded: 0, cancelled: 0, wall_ms };
    for line in String::from_utf8(output).expect("responses are utf-8").lines() {
        let response = Json::parse(line).expect("responses are valid JSON");
        let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
        if ok {
            outcome.answered += 1;
            if response.get("degraded") == Some(&Json::Bool(true)) {
                outcome.degraded += 1;
            }
        } else if response.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("cancel"))
        {
            outcome.cancelled += 1;
        }
    }
    outcome
}

fn main() {
    let graph = workload::generate(Dataset::Interbank);
    let n = graph.num_nodes();
    // Server posture, mirroring the CLI defaults: single-threaded
    // samplers (parallelism lives in the worker pool) and the capped
    // per-query budget that keeps hostile ε bounded.
    let config = workload::config().with_threads(1);
    println!(
        "overload bench: {} nodes, {} edges, {} hardware threads",
        n,
        graph.num_edges(),
        available_parallelism()
    );

    let mut report = JsonReport::new();
    emit_machine(&mut report)
        .num("nodes", n as f64)
        .num("edges", graph.num_edges() as f64)
        .num("scale", workload::scale())
        .num("heavy_every", HEAVY_EVERY as f64)
        .num("heavy_timeout_ms", HEAVY_TIMEOUT_MS as f64);

    for workers in [1usize, 4] {
        for offered in [64u64, 256, 1024, 4096] {
            let detector = Detector::builder(&graph)
                .config(config.clone())
                .max_samples(DEFAULT_SERVE_MAX_SAMPLES)
                .build()
                .unwrap();
            let options = ServeOptions { workers, ..ServeOptions::default() };
            let input = burst(offered);
            let o = run(&detector, &options, &input);
            let shed_rate = o.shed as f64 / offered as f64;
            let qps = o.answered as f64 / (o.wall_ms / 1e3).max(1e-9);
            println!(
                "workers {workers} offered {offered}: answered {} | shed {} ({:.1}%) | \
                 degraded {} | cancelled {} | {:.0} ms | {qps:.0} q/s",
                o.answered,
                o.shed,
                shed_rate * 1e2,
                o.degraded,
                o.cancelled,
                o.wall_ms
            );
            report
                .group(&format!("workers_{workers}_offered_{offered}"))
                .num("workers", workers as f64)
                .num("offered", offered as f64)
                .num("answered", o.answered as f64)
                .num("shed", o.shed as f64)
                .num("shed_rate", shed_rate)
                .num("degraded", o.degraded as f64)
                .num("cancelled", o.cancelled as f64)
                .num("wall_ms", o.wall_ms)
                .num("answered_qps", qps);
        }
    }

    let path = std::env::var("VULNDS_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overload.json").to_string()
    });
    report.write(&path).expect("write benchmark report");
    println!("wrote {path}");
}
