//! Reproduces **Figure 4**: BSRBK precision while varying the bottom-k
//! parameter `bk ∈ {4, 8, 16, 32, 64}`, on the four tuning datasets
//! (Fraud, Guarantee, Interbank, Citation), `k` from 2% to 10% of `|V|`.
//!
//! Expected shape: precision rises quickly with `bk` and flattens around
//! `bk ≈ 8–16` (the paper picks 16).

use vulnds_bench::report::{f3, Table};
use vulnds_bench::workload;
use vulnds_core::engine::{DetectRequest, Detector};
use vulnds_core::{precision_with_ties, AlgorithmKind};
use vulnds_datasets::Dataset;

fn main() {
    println!(
        "Figure 4 — BSRBK precision vs bk (scale = {}, seed = {})\n",
        workload::scale(),
        workload::seed()
    );
    let bks = [4usize, 8, 16, 32, 64];
    for ds in Dataset::TUNING {
        let g = std::sync::Arc::new(workload::generate(ds));
        let truth = workload::truth(&g);
        println!("{} (n = {}, m = {})", ds, g.num_nodes(), g.num_edges());
        let mut t = Table::new(&["k%", "bk-4", "bk-8", "bk-16", "bk-32", "bk-64"]);
        for (pct, k) in workload::k_grid(g.num_nodes()) {
            let mut cells = vec![pct.to_string()];
            for bk in bks {
                // `bk` is session state, so each setting gets its own
                // session; bounds are cheap relative to sampling here.
                let d = Detector::builder(std::sync::Arc::clone(&g))
                    .config(workload::config().with_bk(bk))
                    .build()
                    .unwrap();
                let r = d.detect(&DetectRequest::new(k, AlgorithmKind::BottomK)).unwrap();
                cells.push(f3(precision_with_ties(&r.top_k, &truth, k, 1e-9)));
            }
            t.row(cells);
        }
        t.print();
        println!();
    }
    println!("Expected shape (paper): precision converges by bk ≈ 8–16 on all datasets.");
}
