//! CI perf-sanity gate for the world-block materialization kernel.
//!
//! Compares, on a small graph, the transposed bit-sliced coin synthesis
//! (eager block materialization) against the scalar per-lane path
//! (drawing the same 64 worlds coin by coin). The block kernel's whole
//! point is that materialization is bit-parallel; if it is ever not
//! measurably faster than the per-lane path, the kernel has regressed
//! and this binary exits non-zero, failing CI.
//!
//! Usage: `perf_sanity [--quick]`. `--quick` caps the per-measurement
//! budget (`VULNDS_BENCH_MS=60`) so the whole gate runs in about a
//! second; the required margin (block ≥ 1.5× faster) is far below the
//! ~30× the kernel delivers, keeping the gate robust to CI noise.

use vulnds_bench::microbench::measure;
use vulnds_datasets::gen::erdos;
use vulnds_datasets::{attach_probabilities, ProbabilityModel};
use vulnds_sampling::{CoinTable, PossibleWorld, WorldBlock, Xoshiro256pp, LANES};

/// Block materialization must beat the scalar per-lane path by at least
/// this factor, or the gate fails.
const REQUIRED_SPEEDUP: f64 = 1.5;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick && std::env::var("VULNDS_BENCH_MS").is_err() {
        std::env::set_var("VULNDS_BENCH_MS", "60");
    }

    let model = ProbabilityModel::financial();
    let mut rng = Xoshiro256pp::new(0x5A11_7E57);
    let edges = erdos::generate(2_000, 6_000, &mut rng);
    let g = attach_probabilities(2_000, &edges, model, &mut rng);
    let table = CoinTable::new(&g);

    let scalar = measure("perf_sanity/scalar_per_lane_materialize_64_worlds", || {
        let mut live = 0usize;
        for i in 0..LANES as u64 {
            live += PossibleWorld::sample_with_table(&g, &table, 7, i).active_counts().1;
        }
        live
    });
    let mut block = WorldBlock::new(&g);
    let blockwise = measure("perf_sanity/block_transposed_materialize_64_worlds", || {
        block.materialize(&g, &table, 7, 0, LANES);
        block.force_edges(&table);
        block.lane_mask()
    });

    let speedup = scalar.median_secs / blockwise.median_secs;
    println!(
        "perf_sanity: block materialization speedup {speedup:.1}x (required ≥ {REQUIRED_SPEEDUP}x)"
    );
    if speedup.is_nan() || speedup < REQUIRED_SPEEDUP {
        eprintln!(
            "perf_sanity FAILED: block materialization ({:.3} ms) is not ≥ {REQUIRED_SPEEDUP}x \
             faster than the scalar per-lane path ({:.3} ms)",
            blockwise.median_secs * 1e3,
            scalar.median_secs * 1e3,
        );
        std::process::exit(1);
    }
}
