//! CI perf-sanity gates for the world-superblock data path.
//!
//! Two regressions fail this binary (and CI):
//!
//! 1. **Materialization**: the transposed bit-sliced coin synthesis
//!    (eager block materialization) must beat the scalar per-lane path
//!    (drawing the same 64 worlds coin by coin) by at least
//!    [`MATERIALIZE_REQUIRED_SPEEDUP`]. The block kernel's whole point
//!    is that materialization is bit-parallel; the margin is far below
//!    the ~30× the kernel delivers, keeping the gate robust to CI noise.
//! 2. **Superblocks**: the wide path (planner-selected `W`-word
//!    superblocks) must beat the single-word block path on a
//!    fixed-budget forward workload by at least
//!    [`SUPERBLOCK_REQUIRED_SPEEDUP`]. Widening exists to amortize
//!    structural BFS work across `W` words; if the wide kernel is ever
//!    not measurably faster, the superblock path has regressed. The
//!    margin is far below the ~1.4–1.6× measured at width 8.
//!
//! Usage: `perf_sanity [--quick]`. `--quick` caps the per-measurement
//! budget (`VULNDS_BENCH_MS=60`) so the whole gate runs in a few
//! seconds.

use vulnds_bench::microbench::measure;
use vulnds_datasets::gen::erdos;
use vulnds_datasets::{attach_probabilities, ProbabilityModel};
use vulnds_sampling::{
    forward_counts_range_width, BlockWords, CoinTable, PossibleWorld, WorldBlock, Xoshiro256pp,
    LANES,
};

/// Block materialization must beat the scalar per-lane path by at least
/// this factor, or the gate fails.
const MATERIALIZE_REQUIRED_SPEEDUP: f64 = 1.5;

/// The planner-width superblock forward path must beat the single-word
/// block path by at least this factor on the fixed-budget workload, or
/// the gate fails.
const SUPERBLOCK_REQUIRED_SPEEDUP: f64 = 1.05;

/// Fixed forward budget for the superblock gate: several widest
/// superblocks, so both paths amortize their setup identically.
const SUPERBLOCK_BUDGET: u64 = 4 * (vulnds_sampling::MAX_BLOCK_WORDS * LANES) as u64;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick && std::env::var("VULNDS_BENCH_MS").is_err() {
        std::env::set_var("VULNDS_BENCH_MS", "60");
    }

    let model = ProbabilityModel::financial();
    let mut rng = Xoshiro256pp::new(0x5A11_7E57);
    let edges = erdos::generate(2_000, 6_000, &mut rng);
    let g = attach_probabilities(2_000, &edges, model, &mut rng);
    let table = CoinTable::new(&g);

    let scalar = measure("perf_sanity/scalar_per_lane_materialize_64_worlds", || {
        let mut live = 0usize;
        for i in 0..LANES as u64 {
            live += PossibleWorld::sample_with_table(&g, &table, 7, i).active_counts().1;
        }
        live
    });
    let mut block = WorldBlock::new(&g);
    let blockwise = measure("perf_sanity/block_transposed_materialize_64_worlds", || {
        block.materialize(&g, &table, 7, 0, LANES);
        block.force_edges(&table);
        block.lane_mask()
    });

    let mut failed = false;
    let mat_speedup = scalar.median_secs / blockwise.median_secs;
    println!(
        "perf_sanity: block materialization speedup {mat_speedup:.1}x \
         (required ≥ {MATERIALIZE_REQUIRED_SPEEDUP}x)"
    );
    if mat_speedup.is_nan() || mat_speedup < MATERIALIZE_REQUIRED_SPEEDUP {
        eprintln!(
            "perf_sanity FAILED: block materialization ({:.3} ms) is not ≥ \
             {MATERIALIZE_REQUIRED_SPEEDUP}x faster than the scalar per-lane path ({:.3} ms)",
            blockwise.median_secs * 1e3,
            scalar.median_secs * 1e3,
        );
        failed = true;
    }

    // Superblock gate: same fixed forward budget through the width-1
    // block path and the planner-width superblock path.
    let narrow = measure("perf_sanity/forward_fixed_budget_w1", || {
        forward_counts_range_width(&g, &table, 0..SUPERBLOCK_BUDGET, 11, BlockWords::W1).0.samples()
    });
    let planned = BlockWords::plan(SUPERBLOCK_BUDGET, 1);
    let wide = measure("perf_sanity/forward_fixed_budget_planned_width", || {
        forward_counts_range_width(&g, &table, 0..SUPERBLOCK_BUDGET, 11, planned).0.samples()
    });
    let wide_speedup = narrow.median_secs / wide.median_secs;
    println!(
        "perf_sanity: superblock (w{planned}) forward speedup {wide_speedup:.2}x over w1 \
         (required ≥ {SUPERBLOCK_REQUIRED_SPEEDUP}x)"
    );
    if wide_speedup.is_nan() || wide_speedup < SUPERBLOCK_REQUIRED_SPEEDUP {
        eprintln!(
            "perf_sanity FAILED: the w{planned} superblock forward path ({:.3} ms) is not ≥ \
             {SUPERBLOCK_REQUIRED_SPEEDUP}x faster than the single-word block path ({:.3} ms)",
            wide.median_secs * 1e3,
            narrow.median_secs * 1e3,
        );
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
}
