//! CI perf-sanity gates for the world-superblock data path.
//!
//! Four regressions fail this binary (and CI):
//!
//! 1. **Materialization**: the transposed bit-sliced coin synthesis
//!    (eager block materialization) must beat the scalar per-lane path
//!    (drawing the same 64 worlds coin by coin) by at least
//!    [`MATERIALIZE_REQUIRED_SPEEDUP`]. The block kernel's whole point
//!    is that materialization is bit-parallel; the margin is far below
//!    the ~30× the kernel delivers, keeping the gate robust to CI noise.
//! 2. **Superblocks**: the wide path (planner-selected `W`-word
//!    superblocks) must beat the single-word block path on a
//!    fixed-budget forward workload by at least
//!    [`SUPERBLOCK_REQUIRED_SPEEDUP`]. Widening exists to amortize
//!    structural BFS work across `W` words; if the wide kernel is ever
//!    not measurably faster, the superblock path has regressed. The
//!    margin is far below the ~1.4–1.6× measured at width 8.
//! 3. **Direction switching**: on a dense-frontier workload (high
//!    constant edge probabilities over a degree-16 graph, so most
//!    lanes go live) `Direction::Auto` must beat pinned push by at
//!    least [`DIRECTION_REQUIRED_SPEEDUP`] — if the occupancy switch
//!    ever stops engaging the pull sweep where pull wins, the
//!    direction-optimizing path has regressed. The financial-skew
//!    families stay lane-sparse and are deliberately *not* gated:
//!    there Auto's job is to match push, which gates 1–2 cover.
//! 4. **Relabeling**: a BFS-order relabel must beat the same graph
//!    under a scrambled node order by at least
//!    [`RELABEL_REQUIRED_SPEEDUP`] end-to-end. Two deliberate choices:
//!    the gate scrambles the ingest labels first, because generators
//!    emit nodes in an already cache-friendly creation order with
//!    nothing left to recover (measured ≈ 1.0×) — the scramble models
//!    the arbitrary-id layout real ingest produces. And it runs on the
//!    erdos family, not pref_attach: a hub-dominated graph keeps its
//!    hot set (the few high-degree hubs) cache-resident under *any*
//!    labeling, so pref_attach shows no layout effect even scrambled
//!    (measured ≈ 0.96–1.2× run-to-run, pure noise), while the flat
//!    erdos degree profile makes neighbor locality — exactly what
//!    relabeling buys — the dominant cache effect.
//!
//! Usage: `perf_sanity [--quick]`. `--quick` caps the per-measurement
//! budget (`VULNDS_BENCH_MS=60`) so the whole gate runs in a few
//! seconds.

use ugraph::NodeOrder;
use vulnds_bench::microbench::measure;
use vulnds_datasets::gen::erdos;
use vulnds_datasets::{attach_probabilities, ProbabilityModel};
use vulnds_sampling::{
    forward_counts_range_width, forward_counts_range_width_directed, BlockWords, CoinTable,
    Direction, PossibleWorld, WorldBlock, Xoshiro256pp, LANES,
};

/// Block materialization must beat the scalar per-lane path by at least
/// this factor, or the gate fails.
const MATERIALIZE_REQUIRED_SPEEDUP: f64 = 1.5;

/// The planner-width superblock forward path must beat the single-word
/// block path by at least this factor on the fixed-budget workload, or
/// the gate fails.
const SUPERBLOCK_REQUIRED_SPEEDUP: f64 = 1.05;

/// Fixed forward budget for the superblock gate: several widest
/// superblocks, so both paths amortize their setup identically.
const SUPERBLOCK_BUDGET: u64 = 4 * (vulnds_sampling::MAX_BLOCK_WORDS * LANES) as u64;

/// `Direction::Auto` must beat pinned push by at least this factor on
/// the dense-frontier workload, or the gate fails.
const DIRECTION_REQUIRED_SPEEDUP: f64 = 1.1;

/// The BFS-order relabel must beat the scrambled node order by at least
/// this factor on the fixed-budget forward workload, or the gate fails.
const RELABEL_REQUIRED_SPEEDUP: f64 = 1.05;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let defaulted_budget = quick && std::env::var("VULNDS_BENCH_MS").is_err();
    if defaulted_budget {
        std::env::set_var("VULNDS_BENCH_MS", "60");
    }

    let model = ProbabilityModel::financial();
    let mut rng = Xoshiro256pp::new(0x5A11_7E57);
    let edges = erdos::generate(2_000, 6_000, &mut rng);
    let g = attach_probabilities(2_000, &edges, model, &mut rng);
    let table = CoinTable::new(&g);

    let scalar = measure("perf_sanity/scalar_per_lane_materialize_64_worlds", || {
        let mut live = 0usize;
        for i in 0..LANES as u64 {
            live += PossibleWorld::sample_with_table(&g, &table, 7, i).active_counts().1;
        }
        live
    });
    let mut block = WorldBlock::new(&g);
    let blockwise = measure("perf_sanity/block_transposed_materialize_64_worlds", || {
        block.materialize(&g, &table, 7, 0, LANES);
        block.force_edges(&table);
        block.lane_mask()
    });

    let mut failed = false;
    let mat_speedup = scalar.median_secs / blockwise.median_secs;
    println!(
        "perf_sanity: block materialization speedup {mat_speedup:.1}x \
         (required ≥ {MATERIALIZE_REQUIRED_SPEEDUP}x)"
    );
    if mat_speedup.is_nan() || mat_speedup < MATERIALIZE_REQUIRED_SPEEDUP {
        eprintln!(
            "perf_sanity FAILED: block materialization ({:.3} ms) is not ≥ \
             {MATERIALIZE_REQUIRED_SPEEDUP}x faster than the scalar per-lane path ({:.3} ms)",
            blockwise.median_secs * 1e3,
            scalar.median_secs * 1e3,
        );
        failed = true;
    }

    // Superblock gate: same fixed forward budget through the width-1
    // block path and the planner-width superblock path.
    let narrow = measure("perf_sanity/forward_fixed_budget_w1", || {
        forward_counts_range_width(&g, &table, 0..SUPERBLOCK_BUDGET, 11, BlockWords::W1).0.samples()
    });
    let planned = BlockWords::plan(SUPERBLOCK_BUDGET, 1);
    let wide = measure("perf_sanity/forward_fixed_budget_planned_width", || {
        forward_counts_range_width(&g, &table, 0..SUPERBLOCK_BUDGET, 11, planned).0.samples()
    });
    let wide_speedup = narrow.median_secs / wide.median_secs;
    println!(
        "perf_sanity: superblock (w{planned}) forward speedup {wide_speedup:.2}x over w1 \
         (required ≥ {SUPERBLOCK_REQUIRED_SPEEDUP}x)"
    );
    if wide_speedup.is_nan() || wide_speedup < SUPERBLOCK_REQUIRED_SPEEDUP {
        eprintln!(
            "perf_sanity FAILED: the w{planned} superblock forward path ({:.3} ms) is not ≥ \
             {SUPERBLOCK_REQUIRED_SPEEDUP}x faster than the single-word block path ({:.3} ms)",
            wide.median_secs * 1e3,
            narrow.median_secs * 1e3,
        );
        failed = true;
    }

    // Direction gate: high constant probabilities drive most lanes live,
    // so frontiers go dense, nodes saturate fast, and the pull sweep's
    // saturation shortcuts pay — the regime Auto exists for. Dedicated
    // rng so edits to the gates above cannot silently change this graph.
    let mut dense_rng = Xoshiro256pp::new(0xD45E_F407);
    let dense_edges = erdos::generate(2_000, 32_000, &mut dense_rng);
    let dense =
        attach_probabilities(2_000, &dense_edges, ProbabilityModel::Constant(0.9), &mut dense_rng);
    let dense_table = CoinTable::new(&dense);
    // Interleaved rounds with a per-side minimum-of-medians: this runs
    // on shared hardware where steal-time spikes otherwise swamp the
    // effect size (see the relabel gate below for the same treatment).
    let mut push = f64::INFINITY;
    let mut auto = f64::INFINITY;
    for round in 0..3 {
        let p = measure(&format!("perf_sanity/dense_forward_fixed_budget_push_{round}"), || {
            forward_counts_range_width_directed(
                &dense,
                &dense_table,
                0..SUPERBLOCK_BUDGET,
                11,
                planned,
                Direction::Push,
            )
            .0
            .samples()
        });
        push = push.min(p.median_secs);
        let a = measure(&format!("perf_sanity/dense_forward_fixed_budget_auto_{round}"), || {
            forward_counts_range_width_directed(
                &dense,
                &dense_table,
                0..SUPERBLOCK_BUDGET,
                11,
                planned,
                Direction::Auto,
            )
            .0
            .samples()
        });
        auto = auto.min(a.median_secs);
    }
    let auto_speedup = push / auto;
    println!(
        "perf_sanity: dense-frontier auto vs push speedup {auto_speedup:.2}x \
         (required ≥ {DIRECTION_REQUIRED_SPEEDUP}x)"
    );
    if auto_speedup.is_nan() || auto_speedup < DIRECTION_REQUIRED_SPEEDUP {
        eprintln!(
            "perf_sanity FAILED: auto direction ({:.3} ms) is not ≥ \
             {DIRECTION_REQUIRED_SPEEDUP}x faster than pinned push ({:.3} ms) on the \
             dense-frontier workload",
            auto * 1e3,
            push * 1e3,
        );
        failed = true;
    }

    // Relabeling gate: erdos under scrambled ingest labels (see the
    // module docs for the family choice), BFS relabel vs the scrambled
    // layout it must recover. 100k nodes puts the per-superblock working
    // set past L3, so the layout effect is a DRAM-latency effect and
    // survives the frequency throttling that erases cache-resident
    // layout wins on shared runners.
    let relabel_budget = (vulnds_sampling::MAX_BLOCK_WORDS * LANES) as u64;
    let mut relabel_rng = Xoshiro256pp::new(0x4E1A_8E10);
    let re_edges = erdos::generate(100_000, 300_000, &mut relabel_rng);
    let mut perm: Vec<u32> = (0..100_000u32).collect();
    for i in (1..perm.len()).rev() {
        perm.swap(i, relabel_rng.next_bounded(i as u64 + 1) as usize);
    }
    let scrambled_edges: Vec<(u32, u32)> =
        re_edges.iter().map(|&(u, v)| (perm[u as usize], perm[v as usize])).collect();
    let scrambled = attach_probabilities(
        100_000,
        &scrambled_edges,
        ProbabilityModel::financial(),
        &mut relabel_rng,
    );
    let scrambled_table = CoinTable::new(&scrambled);
    let (relabeled, _) = scrambled.relabeled(NodeOrder::BfsFromHub);
    let relabeled_table = CoinTable::new(&relabeled);
    // The layout effect is ~1.1× — resolving it over run-to-run noise
    // needs more batches than the quick default's 3–4, so this gate
    // restores the full budget even under --quick and pays a few extra
    // seconds of wall time for a stable verdict.
    if defaulted_budget {
        std::env::set_var("VULNDS_BENCH_MS", "300");
    }
    // Interleaved rounds with a per-side minimum: frequency and page
    // placement drift between measurements otherwise dominates the
    // ~1.1× layout effect this gate resolves.
    let mut before = f64::INFINITY;
    let mut after = f64::INFINITY;
    for round in 0..4 {
        let b =
            measure(&format!("perf_sanity/relabel_forward_fixed_budget_scrambled_{round}"), || {
                forward_counts_range_width(
                    &scrambled,
                    &scrambled_table,
                    0..relabel_budget,
                    13,
                    planned,
                )
                .0
                .samples()
            });
        before = before.min(b.median_secs);
        let a =
            measure(&format!("perf_sanity/relabel_forward_fixed_budget_bfs_order_{round}"), || {
                forward_counts_range_width(
                    &relabeled,
                    &relabeled_table,
                    0..relabel_budget,
                    13,
                    planned,
                )
                .0
                .samples()
            });
        after = after.min(a.median_secs);
    }
    let relabel_speedup = before / after;
    println!(
        "perf_sanity: BFS relabel vs scrambled layout speedup {relabel_speedup:.2}x \
         (required ≥ {RELABEL_REQUIRED_SPEEDUP}x)"
    );
    if relabel_speedup.is_nan() || relabel_speedup < RELABEL_REQUIRED_SPEEDUP {
        eprintln!(
            "perf_sanity FAILED: the BFS-relabeled layout ({:.3} ms) is not ≥ \
             {RELABEL_REQUIRED_SPEEDUP}x faster than the scrambled node order ({:.3} ms)",
            after * 1e3,
            before * 1e3,
        );
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
}
