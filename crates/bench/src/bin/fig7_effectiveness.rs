//! Reproduces **Figure 7**: precision of the five algorithms against the
//! 20,000-sample ground truth, on the four tuning datasets, `k` from 2%
//! to 10% of `|V|`.
//!
//! Expected shape: all five within a few percent of each other; N
//! slightly best (it burns the most samples); SN/SR/BSR nearly identical
//! (same guarantee); BSRBK a touch lower — the paper reports ≤ 3% gap.

use vulnds_bench::report::{f3, Table};
use vulnds_bench::workload;
use vulnds_core::engine::{DetectRequest, Detector};
use vulnds_core::{precision_with_ties, AlgorithmKind};
use vulnds_datasets::Dataset;

fn main() {
    println!(
        "Figure 7 — effectiveness (scale = {}, seed = {})\n",
        workload::scale(),
        workload::seed()
    );
    for ds in Dataset::TUNING {
        let g = workload::generate(ds);
        let truth = workload::truth(&g);
        println!("{} (n = {}, m = {})", ds, g.num_nodes(), g.num_edges());
        let mut t = Table::new(&["k%", "N", "SN", "SR", "BSR", "BSRBK"]);
        // One session per dataset: all k values and algorithms share the
        // cached bounds, reductions, and sampled worlds.
        let d = Detector::builder(&g).config(workload::config()).build().unwrap();
        for (pct, k) in workload::k_grid(g.num_nodes()) {
            let mut cells = vec![pct.to_string()];
            let requests: Vec<DetectRequest> =
                AlgorithmKind::ALL.iter().map(|&alg| DetectRequest::new(k, alg)).collect();
            for r in d.detect_many(&requests).unwrap() {
                cells.push(f3(precision_with_ties(&r.top_k, &truth, k, 1e-9)));
            }
            t.row(cells);
        }
        t.print();
        println!();
    }
    println!("Expected shape (paper): all methods close; N best by a hair; BSRBK within ~3%.");
}
