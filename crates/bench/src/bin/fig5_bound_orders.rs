//! Reproduces **Figure 5**: candidate-set size as a heatmap over the
//! lower-bound order × upper-bound order grid (1..5 each), with
//! `k = 5% · |V|`, on the four tuning datasets.
//!
//! Expected shape: candidate count collapses sharply from order 1 to 2
//! and is mostly flat afterwards (the paper fixes both orders to 2).

use vulnds_bench::report::Table;
use vulnds_bench::workload;
use vulnds_core::{lower_bounds_paper, reduce_candidates, upper_bounds};
use vulnds_datasets::Dataset;

fn main() {
    println!(
        "Figure 5 — candidate size vs bound orders (scale = {}, seed = {})\n",
        workload::scale(),
        workload::seed()
    );
    for ds in Dataset::TUNING {
        let g = workload::generate(ds);
        let n = g.num_nodes();
        let k = (n * 5 / 100).max(1);
        println!("{} (n = {n}, k = {k})", ds);
        // Precompute bounds for each order.
        let lowers: Vec<Vec<f64>> = (1..=5).map(|z| lower_bounds_paper(&g, z)).collect();
        let uppers: Vec<Vec<f64>> = (1..=5).map(|z| upper_bounds(&g, z)).collect();
        let mut t = Table::new(&["lower\\upper", "u=1", "u=2", "u=3", "u=4", "u=5"]);
        for (li, lower) in lowers.iter().enumerate() {
            let mut cells = vec![format!("l={}", li + 1)];
            for upper in &uppers {
                let r = reduce_candidates(lower, upper, k);
                cells.push(format!("{}", r.candidate_count()));
            }
            t.row(cells);
        }
        t.print();
        println!();
    }
    println!("Expected shape (paper): sharp drop from order 1 to 2, then steady.");
}
