//! Shared experiment workload configuration.
//!
//! All experiment binaries honor two environment variables:
//!
//! * `VULNDS_SCALE` — fraction of the paper's dataset sizes to generate
//!   (default 0.1; `1.0` reproduces the full Table 2 scale).
//! * `VULNDS_SEED` — master seed (default 42).
//!
//! The paper varies `k` from 1% to 10% of `|V|`; [`k_grid`] reproduces the
//! {2, 4, 6, 8, 10}% grid its figures plot.

use ugraph::UncertainGraph;
use vulnds_core::{ground_truth, VulnConfig};
use vulnds_datasets::Dataset;

/// Reads the experiment scale from `VULNDS_SCALE` (default 0.1).
pub fn scale() -> f64 {
    std::env::var("VULNDS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0 && s <= 1.0)
        .unwrap_or(0.1)
}

/// Reads the master seed from `VULNDS_SEED` (default 42).
pub fn seed() -> u64 {
    std::env::var("VULNDS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// The paper's `k` grid: {2, 4, 6, 8, 10}% of `|V|`, each at least 1.
pub fn k_grid(n: usize) -> Vec<(usize, usize)> {
    [2usize, 4, 6, 8, 10].iter().map(|&pct| (pct, ((n * pct) / 100).max(1))).collect()
}

/// Generates a dataset at the configured experiment scale.
pub fn generate(ds: Dataset) -> UncertainGraph {
    ds.generate_scaled(seed(), scale())
}

/// Ground truth with the paper's 20,000-sample convention, parallelized.
pub fn truth(graph: &UncertainGraph) -> Vec<f64> {
    ground_truth(graph, 20_000, seed() ^ 0x6007, threads())
}

/// Worker threads for ground-truth computation (all available cores).
pub fn threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
}

/// Default experiment configuration (paper parameters, master seed).
pub fn config() -> VulnConfig {
    VulnConfig::default().with_seed(seed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_grid_matches_percentages() {
        let g = k_grid(1000);
        assert_eq!(g, vec![(2, 20), (4, 40), (6, 60), (8, 80), (10, 100)]);
        // Tiny graphs clamp to k ≥ 1.
        assert!(k_grid(10).iter().all(|&(_, k)| k >= 1));
    }

    #[test]
    fn defaults_are_sane() {
        assert!(scale() > 0.0 && scale() <= 1.0);
        assert!(threads() >= 1);
    }
}
