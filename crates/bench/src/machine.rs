//! Shared machine probe for the benchmark binaries.
//!
//! Every perf-trajectory file (`BENCH_sampling.json`,
//! `BENCH_service.json`) carries a `machine` group so readers can tell
//! what hardware produced the numbers. The probes used to live in the
//! individual bins and drifted — the service report lacked the `simd`
//! field the sampling report had — so both now start their group
//! through [`emit_machine`] and chain workload-specific extras onto it.

use crate::microbench::JsonReport;

/// The widest SIMD extension the running CPU reports (compile-target
/// fallback off x86-64). Recorded so trajectory readers can tell what
/// the autovectorized word-vector loops had to work with.
pub fn detected_simd() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return "avx512";
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
        if std::arch::is_x86_feature_detected!("sse4.2") {
            return "sse4.2";
        }
        "sse2"
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "unknown"
    }
}

/// Hardware thread count (1 when the platform cannot report it).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Starts the shared `machine` group on `report` with the fields every
/// trajectory file must carry, and returns the report so the caller can
/// chain bench-specific fields onto the same group.
pub fn emit_machine(report: &mut JsonReport) -> &mut JsonReport {
    report
        .group("machine")
        .num("available_parallelism", available_parallelism() as f64)
        .text("simd", detected_simd())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_group_always_carries_parallelism_and_simd() {
        let mut report = JsonReport::new();
        emit_machine(&mut report).num("extra", 1.0);
        let rendered = report.render();
        assert!(rendered.contains("\"machine\": {"));
        assert!(rendered.contains("\"available_parallelism\":"));
        assert!(rendered.contains(&format!("\"simd\": \"{}\"", detected_simd())));
        // Chained bench-specific fields land in the same group.
        assert!(rendered.contains("\"extra\": 1"));
    }

    #[test]
    fn probes_report_sane_values() {
        assert!(available_parallelism() >= 1);
        assert!(!detected_simd().is_empty());
    }
}
