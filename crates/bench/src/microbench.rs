//! Minimal micro-benchmark harness.
//!
//! The workspace builds offline with no external dependencies, so the
//! bench targets use this tiny timing loop instead of Criterion: warm up,
//! run adaptive batches until a time budget is spent, report the median
//! batch time per iteration.

use std::time::{Duration, Instant};

/// Time budget per benchmark (after warm-up). Kept small so `cargo bench`
/// over the whole suite stays in minutes; raise `VULNDS_BENCH_MS` for
/// more stable numbers.
fn budget() -> Duration {
    let ms = std::env::var("VULNDS_BENCH_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Runs `f` repeatedly and prints `name: <median iteration time>`.
///
/// The closure's return value is passed through a volatile read so the
/// optimizer cannot delete the work.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up: one untimed run (fills caches, faults pages).
    black_box(f());

    // Calibrate a batch size aiming at ~10 batches within the budget.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(100));
    let per_batch = budget() / 10;
    let batch = (per_batch.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let deadline = Instant::now() + budget();
    let mut samples: Vec<f64> = Vec::new();
    while Instant::now() < deadline || samples.len() < 3 {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(start.elapsed().as_secs_f64() / batch as f64);
        if samples.len() >= 1000 {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    println!("{name}: {} ({} batches x {batch} iters)", format_secs(median), samples.len());
}

/// Opaque identity — keeps the computed value alive past the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("VULNDS_BENCH_MS", "10");
        bench("noop", || 1 + 1);
        std::env::remove_var("VULNDS_BENCH_MS");
    }

    #[test]
    fn formats_scales() {
        assert!(format_secs(2.0).ends_with(" s"));
        assert!(format_secs(2e-3).ends_with(" ms"));
        assert!(format_secs(2e-6).ends_with(" µs"));
        assert!(format_secs(2e-9).ends_with(" ns"));
    }
}
