//! Minimal micro-benchmark harness.
//!
//! The workspace builds offline with no external dependencies, so the
//! bench targets use this tiny timing loop instead of Criterion: warm up,
//! run adaptive batches until a time budget is spent, report the median
//! batch time per iteration.

use std::time::{Duration, Instant};

/// Time budget per benchmark (after warm-up). Kept small so `cargo bench`
/// over the whole suite stays in minutes; raise `VULNDS_BENCH_MS` for
/// more stable numbers.
fn budget() -> Duration {
    let ms = std::env::var("VULNDS_BENCH_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// One benchmark result: the median per-iteration wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name as printed.
    pub name: String,
    /// Median seconds per iteration.
    pub median_secs: f64,
    /// Timed batches collected.
    pub batches: usize,
    /// Iterations per batch.
    pub batch_iters: u64,
}

/// Runs `f` repeatedly, prints `name: <median iteration time>`, and
/// returns the measurement (for JSON reports — see [`JsonReport`]).
///
/// The closure's return value is passed through a volatile read so the
/// optimizer cannot delete the work.
pub fn measure<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    // Warm-up: one untimed run (fills caches, faults pages).
    black_box(f());

    // Calibrate a batch size aiming at ~10 batches within the budget.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(100));
    let per_batch = budget() / 10;
    let batch = (per_batch.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let deadline = Instant::now() + budget();
    let mut samples: Vec<f64> = Vec::new();
    while Instant::now() < deadline || samples.len() < 3 {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(start.elapsed().as_secs_f64() / batch as f64);
        if samples.len() >= 1000 {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    println!("{name}: {} ({} batches x {batch} iters)", format_secs(median), samples.len());
    Measurement {
        name: name.to_string(),
        median_secs: median,
        batches: samples.len(),
        batch_iters: batch,
    }
}

/// Runs `f` repeatedly and prints `name: <median iteration time>`.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) {
    let _ = measure(name, f);
}

/// Minimal JSON report builder — enough structure for perf-trajectory
/// tracking files like `BENCH_sampling.json` without external
/// dependencies. Values are numbers or strings; nesting is one level of
/// named groups.
#[derive(Debug, Clone, Default)]
pub struct JsonReport {
    groups: Vec<(String, Vec<(String, String)>)>,
}

impl JsonReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        JsonReport::default()
    }

    /// Starts a named group (e.g. one per graph family).
    pub fn group(&mut self, name: &str) -> &mut Self {
        self.groups.push((name.to_string(), Vec::new()));
        self
    }

    /// Adds a numeric field to the current group.
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        let group = self.groups.last_mut().expect("call group() first");
        let rendered = if value.is_finite() { format!("{value}") } else { "null".to_string() };
        group.1.push((key.to_string(), rendered));
        self
    }

    /// Adds a string field to the current group. Backslashes, quotes,
    /// and control characters are escaped so the output stays valid
    /// JSON for any value.
    pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
        let group = self.groups.last_mut().expect("call group() first");
        let mut escaped = String::with_capacity(value.len() + 2);
        for c in value.chars() {
            match c {
                '\\' => escaped.push_str("\\\\"),
                '"' => escaped.push_str("\\\""),
                '\n' => escaped.push_str("\\n"),
                '\r' => escaped.push_str("\\r"),
                '\t' => escaped.push_str("\\t"),
                c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
                c => escaped.push(c),
            }
        }
        group.1.push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Renders the report as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (gi, (name, fields)) in self.groups.iter().enumerate() {
            out.push_str(&format!("  \"{name}\": {{\n"));
            for (fi, (key, value)) in fields.iter().enumerate() {
                let comma = if fi + 1 == fields.len() { "" } else { "," };
                out.push_str(&format!("    \"{key}\": {value}{comma}\n"));
            }
            let comma = if gi + 1 == self.groups.len() { "" } else { "," };
            out.push_str(&format!("  }}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Writes the rendered report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Opaque identity — keeps the computed value alive past the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The budget env var is process-global and the test harness runs
    /// tests on parallel threads, so every test that touches it must
    /// hold this lock for its whole body.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bench_runs_and_reports() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("VULNDS_BENCH_MS", "10");
        bench("noop", || 1 + 1);
        std::env::remove_var("VULNDS_BENCH_MS");
    }

    #[test]
    fn measure_returns_positive_median() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("VULNDS_BENCH_MS", "10");
        let m = measure("noop_measown", || 1 + 1);
        std::env::remove_var("VULNDS_BENCH_MS");
        assert!(m.median_secs >= 0.0);
        assert!(m.batches >= 3);
        assert_eq!(m.name, "noop_measown");
    }

    #[test]
    fn json_report_renders_valid_shape() {
        let mut r = JsonReport::new();
        r.group("erdos").text("family", "erdos").num("nodes", 10000.0).num("speedup", 4.5);
        r.group("chung_lu").num("nodes", 20000.0);
        r.group("esc").text("path", "C:\\bench \"x\"\n");
        let s = r.render();
        // Backslashes, quotes, and control characters stay valid JSON.
        assert!(s.contains(r#""path": "C:\\bench \"x\"\n""#), "{s}");
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("\"erdos\": {"));
        assert!(s.contains("\"family\": \"erdos\","));
        assert!(s.contains("\"speedup\": 4.5\n"));
        assert!(s.contains("\"nodes\": 20000\n"));
        // Exactly one trailing comma pattern per list: crude but catches
        // the classic malformed-JSON bugs.
        assert!(!s.contains(",\n  }"));
        assert!(!s.contains(",\n}"));
    }

    #[test]
    fn formats_scales() {
        assert!(format_secs(2.0).ends_with(" s"));
        assert!(format_secs(2e-3).ends_with(" ms"));
        assert!(format_secs(2e-6).ends_with(" µs"));
        assert!(format_secs(2e-9).ends_with(" ns"));
    }
}
