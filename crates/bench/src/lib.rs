//! # vulnds-bench — experiment harness for the VulnDS reproduction
//!
//! One binary per table/figure of the paper (run with `--release`):
//!
//! | Binary | Reproduces |
//! |--------|-----------|
//! | `table2` | Table 2 — dataset statistics |
//! | `fig4_bk_tuning` | Figure 4 — precision vs `bk` |
//! | `fig5_bound_orders` | Figure 5 — candidate size vs bound order |
//! | `fig6_efficiency` | Figure 6 — runtime of the five algorithms |
//! | `fig7_effectiveness` | Figure 7 — precision of the five algorithms |
//! | `table3_case_study` | Table 3 — default-prediction AUC |
//!
//! Micro-benches live in `benches/` (sampling, bounds, sketch,
//! algorithms, ablations), driven by the dependency-free harness in
//! [`microbench`]. Set `VULNDS_SCALE=1.0` to run experiments at the
//! paper's full dataset sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod machine;
pub mod microbench;
pub mod report;
pub mod workload;
