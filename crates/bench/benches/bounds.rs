//! Bound-computation benchmarks: cost of Algorithms 2/3 by order `z`
//! (the trade-off Figure 5 tunes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vulnds_core::{lower_bounds_paper, lower_bounds_safe, reduce_candidates, upper_bounds};
use vulnds_datasets::Dataset;

fn bench_bound_orders(c: &mut Criterion) {
    let g = Dataset::Bitcoin.generate_scaled(1, 0.25);
    let mut group = c.benchmark_group("bounds_by_order");
    for &z in &[1usize, 2, 3, 5] {
        group.bench_with_input(BenchmarkId::new("lower_paper", z), &z, |b, &z| {
            b.iter(|| lower_bounds_paper(&g, z));
        });
        group.bench_with_input(BenchmarkId::new("upper", z), &z, |b, &z| {
            b.iter(|| upper_bounds(&g, z));
        });
    }
    group.finish();
}

fn bench_safe_vs_paper_lower(c: &mut Criterion) {
    let g = Dataset::Bitcoin.generate_scaled(2, 0.25);
    let mut group = c.benchmark_group("lower_bound_variant");
    group.bench_function("paper", |b| b.iter(|| lower_bounds_paper(&g, 2)));
    group.bench_function("safe", |b| b.iter(|| lower_bounds_safe(&g, 2)));
    group.finish();
}

fn bench_candidate_reduction(c: &mut Criterion) {
    let g = Dataset::P2P.generate_scaled(3, 0.1);
    let lower = lower_bounds_paper(&g, 2);
    let upper = upper_bounds(&g, 2);
    let k = (g.num_nodes() / 20).max(1);
    c.bench_function("reduce_candidates_p2p", |b| {
        b.iter(|| reduce_candidates(&lower, &upper, k));
    });
}

criterion_group!(benches, bench_bound_orders, bench_safe_vs_paper_lower, bench_candidate_reduction);
criterion_main!(benches);
