//! Bound-computation benchmarks: cost of Algorithms 2/3 by order `z`
//! (the trade-off Figure 5 tunes).

use vulnds_bench::microbench::bench;
use vulnds_core::{lower_bounds_paper, lower_bounds_safe, reduce_candidates, upper_bounds};
use vulnds_datasets::Dataset;

fn main() {
    let g = Dataset::Bitcoin.generate_scaled(1, 0.25);
    for z in [1usize, 2, 3, 5] {
        bench(&format!("bounds_by_order/lower_paper/{z}"), || lower_bounds_paper(&g, z));
        bench(&format!("bounds_by_order/upper/{z}"), || upper_bounds(&g, z));
    }

    let g2 = Dataset::Bitcoin.generate_scaled(2, 0.25);
    bench("lower_bound_variant/paper", || lower_bounds_paper(&g2, 2));
    bench("lower_bound_variant/safe", || lower_bounds_safe(&g2, 2));

    let g3 = Dataset::P2P.generate_scaled(3, 0.1);
    let lower = lower_bounds_paper(&g3, 2);
    let upper = upper_bounds(&g3, 2);
    let k = (g3.num_nodes() / 20).max(1);
    bench("reduce_candidates_p2p", || reduce_candidates(&lower, &upper, k));
}
