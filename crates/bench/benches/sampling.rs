//! Micro-benchmarks of the sampling substrate: forward vs reverse
//! samplers, and parallel scaling.

use ugraph::NodeId;
use vulnds_bench::microbench::bench;
use vulnds_datasets::Dataset;
use vulnds_sampling::{
    forward_counts, parallel_forward_counts, reverse_counts, ReverseSampler, Xoshiro256pp,
};

fn main() {
    let g = Dataset::Citation.generate_scaled(1, 0.5);
    for t in [100u64, 400] {
        bench(&format!("forward_sampling/{t}"), || forward_counts(&g, t, 42));
    }

    // The crossover the reverse sampler exists for: with few candidates,
    // reverse beats forward; as |B|/|V| grows, the advantage shrinks.
    let g2 = Dataset::Citation.generate_scaled(2, 0.5);
    let n = g2.num_nodes();
    for pct in [1usize, 10, 50] {
        let count = (n * pct / 100).max(1);
        let candidates: Vec<NodeId> = (0..count as u32).map(NodeId).collect();
        bench(&format!("reverse_by_candidate_fraction/{pct}pct"), || {
            reverse_counts(&g2, &candidates, 200, 42)
        });
    }

    let g3 = Dataset::Bitcoin.generate_scaled(3, 0.25);
    for threads in [1usize, 2, 4] {
        bench(&format!("parallel_forward/{threads}"), || {
            parallel_forward_counts(&g3, 2000, 42, threads)
        });
    }

    let g4 = Dataset::Guarantee.generate_scaled(4, 0.05);
    let candidates: Vec<NodeId> = (0..50u32).map(NodeId).collect();
    let mut sampler = ReverseSampler::new(&g4);
    let mut buf = Vec::new();
    let mut sample_id = 0u64;
    bench("single_reverse_sample_50cand", || {
        let mut rng = Xoshiro256pp::for_sample(7, sample_id);
        sample_id += 1;
        sampler.sample_candidates(&g4, &candidates, &mut rng, &mut buf);
        buf.iter().filter(|&&h| h).count()
    });
}
