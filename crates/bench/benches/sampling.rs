//! Micro-benchmarks of the sampling substrate: forward vs reverse
//! samplers, and parallel scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ugraph::NodeId;
use vulnds_datasets::Dataset;
use vulnds_sampling::{
    forward_counts, parallel_forward_counts, reverse_counts, ReverseSampler, Xoshiro256pp,
};

fn bench_forward(c: &mut Criterion) {
    let g = Dataset::Citation.generate_scaled(1, 0.5);
    let mut group = c.benchmark_group("forward_sampling");
    for &t in &[100u64, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| forward_counts(&g, t, 42));
        });
    }
    group.finish();
}

fn bench_reverse_vs_forward_by_candidate_fraction(c: &mut Criterion) {
    // The crossover the reverse sampler exists for: with few candidates,
    // reverse beats forward; as |B|/|V| grows, the advantage shrinks.
    let g = Dataset::Citation.generate_scaled(2, 0.5);
    let n = g.num_nodes();
    let mut group = c.benchmark_group("reverse_by_candidate_fraction");
    for &pct in &[1usize, 10, 50] {
        let count = (n * pct / 100).max(1);
        let candidates: Vec<NodeId> = (0..count as u32).map(NodeId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(pct), &candidates, |b, cands| {
            b.iter(|| reverse_counts(&g, cands, 200, 42));
        });
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let g = Dataset::Bitcoin.generate_scaled(3, 0.25);
    let mut group = c.benchmark_group("parallel_forward");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &th| {
            b.iter(|| parallel_forward_counts(&g, 2000, 42, th));
        });
    }
    group.finish();
}

fn bench_single_reverse_sample(c: &mut Criterion) {
    let g = Dataset::Guarantee.generate_scaled(4, 0.05);
    let candidates: Vec<NodeId> = (0..50u32).map(NodeId).collect();
    c.bench_function("single_reverse_sample_50cand", |b| {
        let mut sampler = ReverseSampler::new(&g);
        let mut buf = Vec::new();
        let mut sample_id = 0u64;
        b.iter(|| {
            let mut rng = Xoshiro256pp::for_sample(7, sample_id);
            sample_id += 1;
            sampler.sample_candidates(&g, &candidates, &mut rng, &mut buf);
            buf.iter().filter(|&&h| h).count()
        });
    });
}

criterion_group!(
    benches,
    bench_forward,
    bench_reverse_vs_forward_by_candidate_fraction,
    bench_parallel_scaling,
    bench_single_reverse_sample
);
criterion_main!(benches);
