//! Micro-benchmarks of the sampling substrate, centered on the
//! scalar-vs-block comparison that motivates the bit-parallel data path
//! — now split into its two phases, since the counter-RNG refactor
//! attacks materialization specifically:
//!
//! * `materialize/{scalar,block}` — coin cost only: drawing one world's
//!   coins one at a time vs synthesizing all 64 lane words transposed
//!   (eagerly, so the phase is isolated from traversal order);
//! * `eval/{scalar,block}` — default reachability over pre-materialized
//!   worlds, the PR-2 comparison;
//! * `end_to_end/{scalar,block}` — both phases together; the block path
//!   runs production-shaped, i.e. with frontier-lazy edge words.
//!
//! Results append to stdout and are written to `BENCH_sampling.json`
//! (override the path with `VULNDS_BENCH_JSON`) so the perf trajectory
//! is tracked from PR 2 on, together with the coin precision and the
//! lazy-skip ratio. Raise `VULNDS_BENCH_MS` for tighter medians.

use ugraph::{NodeId, NodeOrder, UncertainGraph};
use vulnds_bench::machine::{available_parallelism, detected_simd, emit_machine};
use vulnds_bench::microbench::{bench, measure, JsonReport};
use vulnds_datasets::gen::{chung_lu, erdos, pref_attach};
use vulnds_datasets::{attach_probabilities, ProbabilityModel};
use vulnds_sampling::{
    forward_counts_range_width, forward_counts_range_width_directed, forward_counts_range_with,
    parallel_forward_counts, reverse_counts, reverse_counts_range_width, reverse_counts_range_with,
    BlockKernel, BlockWords, CoinTable, CoinUsage, DefaultCounts, Direction, ForwardSampler,
    PossibleWorld, ReverseSampler, ScalarCoins, WorldBlock, Xoshiro256pp, COIN_PRECISION, LANES,
};

/// Worlds per end-to-end measurement: one widest superblock, so every
/// width runs the same fixed budget through one driver call.
const WIDTH_BUDGET: u64 = (vulnds_sampling::MAX_BLOCK_WORDS * LANES) as u64;

struct Family {
    name: &'static str,
    graph: UncertainGraph,
}

/// The acceptance-size families: ≥ 10k nodes each, one per structure
/// generator, financial-skew probabilities so traversals stay sparse but
/// non-trivial.
fn families() -> Vec<Family> {
    let model = ProbabilityModel::financial();
    let mut rng = Xoshiro256pp::new(0xB10C_BE4C);
    let erdos_edges = erdos::generate(12_000, 36_000, &mut rng);
    let erdos_graph = attach_probabilities(12_000, &erdos_edges, model, &mut rng);
    let cl_params =
        chung_lu::ChungLuParams { nodes: 12_000, edges: 30_000, alpha: 2.5, max_degree: 400 };
    let cl_edges = chung_lu::generate(cl_params, &mut rng);
    let cl_graph = attach_probabilities(12_000, &cl_edges, model, &mut rng);
    let pa_params = pref_attach::PrefAttachParams { nodes: 12_000, edges: 14_000, hub_bias: 0.1 };
    let pa_edges = pref_attach::generate(pa_params, &mut rng);
    let pa_graph = attach_probabilities(12_000, &pa_edges, model, &mut rng);
    vec![
        Family { name: "erdos", graph: erdos_graph },
        Family { name: "chung_lu", graph: cl_graph },
        Family { name: "pref_attach", graph: pa_graph },
    ]
}

fn main() {
    let mut report = JsonReport::new();
    for Family { name, graph: g } in families() {
        let n = g.num_nodes();
        let m = g.num_edges();
        let table = CoinTable::new(&g);

        // --- Materialization phase: coins only, no reachability. ---
        // Scalar: every coin of 64 worlds drawn one lane at a time.
        let scalar_mat = measure(&format!("{name}/materialize/scalar_per_64_worlds"), || {
            let mut live = 0usize;
            for i in 0..LANES as u64 {
                let w = PossibleWorld::sample_with_table(&g, &table, 42, i);
                live += w.active_counts().1;
            }
            live
        });
        // Block: the same 64 worlds as transposed lane words, eagerly
        // (force_edges) so the phase excludes traversal effects.
        let mut block = WorldBlock::new(&g);
        let block_mat = measure(&format!("{name}/materialize/block_per_64_worlds"), || {
            block.materialize(&g, &table, 42, 0, LANES);
            block.force_edges(&table);
            block.lane_mask()
        });
        let _ = block.take_usage();

        // --- World evaluation: coins fixed, reachability only. ---
        let worlds: Vec<PossibleWorld> = (0..LANES as u64)
            .map(|i| PossibleWorld::sample_with_table(&g, &table, 42, i))
            .collect();
        let scalar_eval = measure(&format!("{name}/eval/scalar_per_64_worlds"), || {
            let mut counts = DefaultCounts::new(n);
            for w in &worlds {
                counts.record_mask(&w.defaulted_nodes(&g));
            }
            counts.samples()
        });

        // Block: the same 64 worlds, one bit-parallel BFS; edge words
        // are pre-materialized above so no synthesis happens here.
        let mut kernel = BlockKernel::new(&g);
        let block_eval = measure(&format!("{name}/eval/block_per_64_worlds"), || {
            let mut counts = DefaultCounts::new(n);
            let words = kernel.forward_defaults(&g, &table, &mut block);
            counts.record_block(words, block.lane_mask());
            counts.samples()
        });

        // --- End to end: materialization + evaluation. ---
        let mut sampler = ForwardSampler::new(&g);
        let scalar_e2e = measure(&format!("{name}/end_to_end/scalar_per_64_worlds"), || {
            let mut counts = DefaultCounts::new(n);
            for i in 0..LANES as u64 {
                counts.begin_sample();
                sampler
                    .sample_with(&g, &table, &ScalarCoins::new(43, i), |v| counts.bump(v.index()));
            }
            counts.samples()
        });
        let block_e2e = measure(&format!("{name}/end_to_end/block_per_64_worlds"), || {
            forward_counts_range_with(&g, &table, 0..LANES as u64, 43).0.samples()
        });

        // Per-width superblock rows: the same fixed budget (one widest
        // superblock = 512 worlds) through each monomorphized width, so
        // the width effect is isolated from call and allocation shape.
        let mut width_ns = Vec::new();
        for width in BlockWords::ALL {
            let m =
                measure(&format!("{name}/end_to_end/superblock_w{width}_per_512_worlds"), || {
                    forward_counts_range_width(&g, &table, 0..WIDTH_BUDGET, 43, width).0.samples()
                });
            width_ns.push((width, m.median_secs / WIDTH_BUDGET as f64 * 1e9));
        }
        let planned = BlockWords::plan(WIDTH_BUDGET, 1);
        let w1_ns = width_ns[0].1;
        let planned_ns =
            width_ns.iter().find(|(w, _)| *w == planned).expect("planned width measured").1;

        // Per-direction rows at the planned width: the same fixed budget
        // pinned to push, pinned to pull, and occupancy-switched auto.
        // Counts are bit-identical (see `direction_equivalence.rs`);
        // these rows track the throughput spread direction buys.
        let mut direction_ns = Vec::new();
        for direction in Direction::ALL {
            let m = measure(
                &format!("{name}/end_to_end/superblock_{direction}_per_512_worlds"),
                || {
                    forward_counts_range_width_directed(
                        &g,
                        &table,
                        0..WIDTH_BUDGET,
                        43,
                        planned,
                        direction,
                    )
                    .0
                    .samples()
                },
            );
            direction_ns.push((direction, m.median_secs / WIDTH_BUDGET as f64 * 1e9));
        }
        let direction_row = |d: Direction| {
            direction_ns.iter().find(|(dd, _)| *dd == d).expect("direction measured").1
        };
        // Auto's step mix over the budget — a two-bucket frontier
        // occupancy histogram (push steps ran sparse, pull steps ran at
        // ≥ n/8 occupancy) plus how often the strategy flipped.
        let (_, auto_usage) = forward_counts_range_width_directed(
            &g,
            &table,
            0..WIDTH_BUDGET,
            43,
            planned,
            Direction::Auto,
        );
        let auto_steps = (auto_usage.push_steps + auto_usage.pull_steps).max(1);

        // Relabeled-vs-original rows: the same budget through each
        // cache-conscious node order. Relabeling renumbers canonical
        // edge ids, so these runs draw *different* coin streams — the
        // comparison is layout throughput under the same `(ε, δ)`
        // budget, not bit-identity (see `ugraph::relabel`).
        let mut relabel_ns = Vec::new();
        for (label, order) in
            [("degree", NodeOrder::DegreeDescending), ("bfs", NodeOrder::BfsFromHub)]
        {
            let (relabeled, _) = g.relabeled(order);
            let relabeled_table = CoinTable::new(&relabeled);
            let m = measure(
                &format!("{name}/end_to_end/superblock_relabel_{label}_per_512_worlds"),
                || {
                    forward_counts_range_width(
                        &relabeled,
                        &relabeled_table,
                        0..WIDTH_BUDGET,
                        43,
                        planned,
                    )
                    .0
                    .samples()
                },
            );
            relabel_ns.push((label, m.median_secs / WIDTH_BUDGET as f64 * 1e9));
        }
        let relabel_row =
            |l: &str| relabel_ns.iter().find(|(ll, _)| *ll == l).expect("order measured").1;

        // Lazy-skip ratio of the production path, over a longer run so
        // per-block variation averages out.
        let (_, usage) = forward_counts_range_with(&g, &table, 0..(32 * LANES as u64), 43);

        let mat_speedup = scalar_mat.median_secs / block_mat.median_secs;
        let eval_speedup = scalar_eval.median_secs / block_eval.median_secs;
        let e2e_speedup = scalar_e2e.median_secs / block_e2e.median_secs;
        println!(
            "{name}: materialize speedup {mat_speedup:.1}x, eval speedup {eval_speedup:.1}x, \
             end-to-end speedup {e2e_speedup:.1}x, superblock w{planned} vs w1 {:.2}x, \
             lazy skip {:.0}%",
            w1_ns / planned_ns,
            usage.lazy_skip_ratio() * 100.0
        );
        println!(
            "{name}: direction auto vs push {:.2}x (pull share {:.0}%, {} switches), \
             bfs relabel vs original {:.2}x",
            direction_row(Direction::Push) / direction_row(Direction::Auto),
            auto_usage.pull_steps as f64 / auto_steps as f64 * 100.0,
            auto_usage.direction_switches,
            planned_ns / relabel_row("bfs"),
        );

        let per_world = 1.0 / LANES as f64 * 1e9;
        let mut group = report
            .group(name)
            .num("nodes", n as f64)
            .num("edges", m as f64)
            .num("coin_precision_bits", COIN_PRECISION as f64)
            .num("scalar_materialize_per_world_ns", scalar_mat.median_secs * per_world)
            .num("block_materialize_per_world_ns", block_mat.median_secs * per_world)
            .num("materialize_speedup", mat_speedup)
            .num("scalar_eval_per_world_ns", scalar_eval.median_secs * per_world)
            .num("block_eval_per_world_ns", block_eval.median_secs * per_world)
            .num("eval_speedup", eval_speedup)
            .num("scalar_end_to_end_per_world_ns", scalar_e2e.median_secs * per_world)
            .num("block_end_to_end_per_world_ns", block_e2e.median_secs * per_world)
            .num("end_to_end_speedup", e2e_speedup);
        for (width, ns) in &width_ns {
            group = group.num(&format!("superblock_end_to_end_per_world_ns_w{width}"), *ns);
        }
        for (direction, ns) in &direction_ns {
            group = group.num(&format!("superblock_end_to_end_per_world_ns_{direction}"), *ns);
        }
        for (label, ns) in &relabel_ns {
            group = group.num(&format!("superblock_end_to_end_per_world_ns_relabel_{label}"), *ns);
        }
        group
            .num("superblock_end_to_end_per_world_ns", planned_ns)
            .num("superblock_block_words", planned.words() as f64)
            .num("superblock_speedup_vs_w1", w1_ns / planned_ns)
            .num(
                "auto_speedup_vs_push",
                direction_row(Direction::Push) / direction_row(Direction::Auto),
            )
            .num("auto_push_steps", auto_usage.push_steps as f64)
            .num("auto_pull_steps", auto_usage.pull_steps as f64)
            .num("auto_pull_step_share", auto_usage.pull_steps as f64 / auto_steps as f64)
            .num("auto_direction_switches", auto_usage.direction_switches as f64)
            .num("relabel_bfs_speedup_vs_original", planned_ns / relabel_row("bfs"))
            .num("relabel_degree_speedup_vs_original", planned_ns / relabel_row("degree"))
            .num("lazy_edge_skip_ratio", usage.lazy_skip_ratio())
            .num("coin_words_per_world", usage.words as f64 / (32.0 * LANES as f64));
    }

    // Context benches kept from the scalar era: reverse-candidate
    // crossover and parallel scaling, now on the block data path.
    let model = ProbabilityModel::financial();
    let mut rng = Xoshiro256pp::new(7);
    let edges = erdos::generate(3_000, 9_000, &mut rng);
    let g = attach_probabilities(3_000, &edges, model, &mut rng);
    for pct in [1usize, 10, 50] {
        let count = (g.num_nodes() * pct / 100).max(1);
        let candidates: Vec<NodeId> = (0..count as u32).map(NodeId).collect();
        bench(&format!("reverse_by_candidate_fraction/{pct}pct"), || {
            reverse_counts(&g, &candidates, 192, 42)
        });
    }
    // The small-candidate regime the paper's lazy coins won: with the
    // counter RNG the block path only materializes the edge words the
    // candidates' reverse BFS trees touch, so this row now compares the
    // scalar per-world path against the lazy block path explicitly
    // (per 64 worlds over 50 candidates).
    {
        let table = CoinTable::new(&g);
        let candidates: Vec<NodeId> = (0..50u32).map(NodeId).collect();
        let mut scalar_sampler = ReverseSampler::new(&g);
        let mut buf = Vec::new();
        let mut sample_base = 0u64;
        let scalar_small =
            measure("reverse_small_candidate_set/scalar_50cand_per_64_worlds", || {
                let base = sample_base;
                sample_base += LANES as u64;
                let mut hits = 0usize;
                for i in base..base + LANES as u64 {
                    scalar_sampler.sample_candidates(
                        &g,
                        &table,
                        &candidates,
                        ScalarCoins::new(7, i),
                        &mut buf,
                    );
                    hits += buf.iter().filter(|&&h| h).count();
                }
                hits
            });
        let mut block_base = 0u64;
        let block_small = measure("reverse_small_candidate_set/block_50cand_per_64_worlds", || {
            let base = block_base;
            block_base += LANES as u64;
            reverse_counts_range_with(&g, &table, &candidates, base..base + LANES as u64, 7)
                .0
                .samples()
        });
        // The superblock reverse path at the widest width, same budget
        // per call as one widest superblock.
        let mut wide_base = 0u64;
        let wide_small =
            measure("reverse_small_candidate_set/superblock_w8_per_512_worlds", || {
                let base = wide_base;
                wide_base += WIDTH_BUDGET;
                reverse_counts_range_width(
                    &g,
                    &table,
                    &candidates,
                    base..base + WIDTH_BUDGET,
                    7,
                    BlockWords::W8,
                )
                .0
                .samples()
            });
        let (_, usage): (DefaultCounts, CoinUsage) =
            reverse_counts_range_with(&g, &table, &candidates, 0..(16 * LANES as u64), 7);
        report
            .group("reverse_small_candidate_set")
            .num("nodes", g.num_nodes() as f64)
            .num("edges", g.num_edges() as f64)
            .num("candidates", 50.0)
            .num("scalar_per_world_ns", scalar_small.median_secs / LANES as f64 * 1e9)
            .num("block_per_world_ns", block_small.median_secs / LANES as f64 * 1e9)
            .num("superblock_w8_per_world_ns", wide_small.median_secs / WIDTH_BUDGET as f64 * 1e9)
            .num("speedup", scalar_small.median_secs / block_small.median_secs)
            .num("lazy_edge_skip_ratio", usage.lazy_skip_ratio());
    }
    // `effective_threads` clamps to available_parallelism, so on a
    // machine with fewer cores these rows measure the same (sequential)
    // path — record the hardware limit so trajectory readers can tell.
    let hardware = available_parallelism();
    println!("available_parallelism: {hardware}, simd: {}", detected_simd());
    for threads in [1usize, 2, 4] {
        let effective = threads.min(hardware);
        bench(&format!("parallel_forward/requested_{threads}_effective_{effective}"), || {
            parallel_forward_counts(&g, 2048, 42, threads)
        });
    }
    emit_machine(&mut report).num("block_words", BlockWords::plan(WIDTH_BUDGET, 1).words() as f64);

    // Default next to the workspace root, independent of the bench CWD.
    let path = std::env::var("VULNDS_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sampling.json").to_string()
    });
    report.write(&path).expect("write benchmark report");
    println!("wrote {path}");
}
