//! Micro-benchmarks of the sampling substrate, centered on the
//! scalar-vs-block world-evaluation comparison that motivates the
//! bit-parallel data path.
//!
//! For each graph family from `vulnds_datasets::gen` the bench measures,
//! per possible world:
//!
//! * `eval/scalar` — default reachability over one pre-materialized
//!   world at a time ([`PossibleWorld::defaulted_nodes`] + mask
//!   accumulation), the pre-refactor inner loop;
//! * `eval/block` — the same 64 worlds through
//!   [`BlockKernel::forward_defaults`] + popcount accumulation;
//! * `end_to_end/{scalar,block}` — coin materialization included.
//!
//! Results append to stdout and are written to `BENCH_sampling.json`
//! (override the path with `VULNDS_BENCH_JSON`) so the perf trajectory
//! is tracked from PR 2 on. Raise `VULNDS_BENCH_MS` for tighter
//! medians.

use ugraph::{NodeId, UncertainGraph};
use vulnds_bench::microbench::{bench, measure, JsonReport};
use vulnds_datasets::gen::{chung_lu, erdos, pref_attach};
use vulnds_datasets::{attach_probabilities, ProbabilityModel};
use vulnds_sampling::{
    forward_counts, parallel_forward_counts, reverse_counts, reverse_counts_range, BlockKernel,
    DefaultCounts, ForwardSampler, PossibleWorld, WorldBlock, Xoshiro256pp, LANES,
};

struct Family {
    name: &'static str,
    graph: UncertainGraph,
}

/// The acceptance-size families: ≥ 10k nodes each, one per structure
/// generator, financial-skew probabilities so traversals stay sparse but
/// non-trivial.
fn families() -> Vec<Family> {
    let model = ProbabilityModel::financial();
    let mut rng = Xoshiro256pp::new(0xB10C_BE4C);
    let erdos_edges = erdos::generate(12_000, 36_000, &mut rng);
    let erdos_graph = attach_probabilities(12_000, &erdos_edges, model, &mut rng);
    let cl_params =
        chung_lu::ChungLuParams { nodes: 12_000, edges: 30_000, alpha: 2.5, max_degree: 400 };
    let cl_edges = chung_lu::generate(cl_params, &mut rng);
    let cl_graph = attach_probabilities(12_000, &cl_edges, model, &mut rng);
    let pa_params = pref_attach::PrefAttachParams { nodes: 12_000, edges: 14_000, hub_bias: 0.1 };
    let pa_edges = pref_attach::generate(pa_params, &mut rng);
    let pa_graph = attach_probabilities(12_000, &pa_edges, model, &mut rng);
    vec![
        Family { name: "erdos", graph: erdos_graph },
        Family { name: "chung_lu", graph: cl_graph },
        Family { name: "pref_attach", graph: pa_graph },
    ]
}

fn main() {
    let mut report = JsonReport::new();
    for Family { name, graph: g } in families() {
        let n = g.num_nodes();
        let m = g.num_edges();

        // --- World evaluation: coins fixed, reachability only. ---
        // Scalar: 64 pre-sampled worlds, one BFS each.
        let worlds: Vec<PossibleWorld> =
            (0..LANES as u64).map(|i| PossibleWorld::sample_indexed(&g, 42, i)).collect();
        let scalar_eval = measure(&format!("{name}/eval/scalar_per_64_worlds"), || {
            let mut counts = DefaultCounts::new(n);
            for w in &worlds {
                counts.record_mask(&w.defaulted_nodes(&g));
            }
            counts.samples()
        });

        // Block: the same 64 worlds, one bit-parallel BFS.
        let mut block = WorldBlock::new(&g);
        block.materialize(&g, 42, 0, LANES);
        let mut kernel = BlockKernel::new(&g);
        let block_eval = measure(&format!("{name}/eval/block_per_64_worlds"), || {
            let mut counts = DefaultCounts::new(n);
            let words = kernel.forward_defaults(&g, &block);
            counts.record_block(words, u64::MAX);
            counts.samples()
        });

        // --- End to end: coin materialization included. ---
        let mut sampler = ForwardSampler::new(&g);
        let scalar_e2e = measure(&format!("{name}/end_to_end/scalar_per_64_worlds"), || {
            let mut counts = DefaultCounts::new(n);
            for i in 0..LANES as u64 {
                let mut rng = Xoshiro256pp::for_sample(43, i);
                counts.begin_sample();
                sampler.sample_with(&g, &mut rng, |v| counts.bump(v.index()));
            }
            counts.samples()
        });
        let block_e2e = measure(&format!("{name}/end_to_end/block_per_64_worlds"), || {
            forward_counts(&g, LANES as u64, 43).samples()
        });

        let eval_speedup = scalar_eval.median_secs / block_eval.median_secs;
        let e2e_speedup = scalar_e2e.median_secs / block_e2e.median_secs;
        println!("{name}: eval speedup {eval_speedup:.1}x, end-to-end speedup {e2e_speedup:.1}x");

        let per_world = 1.0 / LANES as f64 * 1e9;
        report
            .group(name)
            .num("nodes", n as f64)
            .num("edges", m as f64)
            .num("scalar_eval_per_world_ns", scalar_eval.median_secs * per_world)
            .num("block_eval_per_world_ns", block_eval.median_secs * per_world)
            .num("eval_speedup", eval_speedup)
            .num("scalar_end_to_end_per_world_ns", scalar_e2e.median_secs * per_world)
            .num("block_end_to_end_per_world_ns", block_e2e.median_secs * per_world)
            .num("end_to_end_speedup", e2e_speedup);
    }

    // Context benches kept from the scalar era: reverse-candidate
    // crossover and parallel scaling, now on the block data path.
    let model = ProbabilityModel::financial();
    let mut rng = Xoshiro256pp::new(7);
    let edges = erdos::generate(3_000, 9_000, &mut rng);
    let g = attach_probabilities(3_000, &edges, model, &mut rng);
    for pct in [1usize, 10, 50] {
        let count = (g.num_nodes() * pct / 100).max(1);
        let candidates: Vec<NodeId> = (0..count as u32).map(NodeId).collect();
        bench(&format!("reverse_by_candidate_fraction/{pct}pct"), || {
            reverse_counts(&g, &candidates, 192, 42)
        });
    }
    // The small-candidate regime Algorithm 5's lazy coins used to win:
    // under the materialized-world contract every reverse world costs
    // Θ(n + m) coins regardless of |B|, so this row tracks that
    // trade-off explicitly (per 64 worlds over 50 candidates).
    {
        let candidates: Vec<NodeId> = (0..50u32).map(NodeId).collect();
        let mut sample_base = 0u64;
        let small = measure("reverse_small_candidate_set/50cand_per_64_worlds", || {
            let base = sample_base;
            sample_base += LANES as u64;
            reverse_counts_range(&g, &candidates, base..base + LANES as u64, 7).samples()
        });
        report
            .group("reverse_small_candidate_set")
            .num("nodes", g.num_nodes() as f64)
            .num("edges", g.num_edges() as f64)
            .num("candidates", 50.0)
            .num("per_world_ns", small.median_secs / LANES as f64 * 1e9);
    }
    // `effective_threads` clamps to available_parallelism, so on a
    // machine with fewer cores these rows measure the same (sequential)
    // path — record the hardware limit so trajectory readers can tell.
    let hardware = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!("available_parallelism: {hardware}");
    for threads in [1usize, 2, 4] {
        let effective = threads.min(hardware);
        bench(&format!("parallel_forward/requested_{threads}_effective_{effective}"), || {
            parallel_forward_counts(&g, 2048, 42, threads)
        });
    }
    report.group("machine").num("available_parallelism", hardware as f64);

    // Default next to the workspace root, independent of the bench CWD.
    let path = std::env::var("VULNDS_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sampling.json").to_string()
    });
    report.write(&path).expect("write benchmark report");
    println!("wrote {path}");
}
