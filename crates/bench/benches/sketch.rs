//! Bottom-k sketch micro-benchmarks: insertion throughput and hash-order
//! generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vulnds_sketch::{hash_order, BottomK, UnitHasher};

fn bench_insert(c: &mut Criterion) {
    let h = UnitHasher::new(1);
    let values: Vec<f64> = (0..10_000u64).map(|k| h.hash_unit(k)).collect();
    let mut group = c.benchmark_group("bottomk_insert_10k");
    for &bk in &[8usize, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(bk), &bk, |b, &bk| {
            b.iter(|| {
                let mut s = BottomK::new(bk);
                for &v in &values {
                    s.insert(v);
                }
                s.kth_smallest()
            });
        });
    }
    group.finish();
}

fn bench_hash_order(c: &mut Criterion) {
    let h = UnitHasher::new(2);
    let mut group = c.benchmark_group("hash_order");
    for &t in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| hash_order(&h, t));
        });
    }
    group.finish();
}

fn bench_unit_hash(c: &mut Criterion) {
    let h = UnitHasher::new(3);
    c.bench_function("hash_unit_1k", |b| {
        b.iter(|| (0..1000u64).map(|k| h.hash_unit(k)).sum::<f64>());
    });
}

criterion_group!(benches, bench_insert, bench_hash_order, bench_unit_hash);
criterion_main!(benches);
