//! Bottom-k sketch micro-benchmarks: insertion throughput and hash-order
//! generation.

use vulnds_bench::microbench::bench;
use vulnds_sketch::{hash_order, BottomK, UnitHasher};

fn main() {
    let h = UnitHasher::new(1);
    let values: Vec<f64> = (0..10_000u64).map(|k| h.hash_unit(k)).collect();
    for bk in [8usize, 64, 512] {
        bench(&format!("bottomk_insert_10k/{bk}"), || {
            let mut s = BottomK::new(bk);
            for &v in &values {
                s.insert(v);
            }
            s.kth_smallest()
        });
    }

    let h2 = UnitHasher::new(2);
    for t in [1_000usize, 10_000] {
        bench(&format!("hash_order/{t}"), || hash_order(&h2, t));
    }

    let h3 = UnitHasher::new(3);
    bench("hash_unit_1k", || (0..1000u64).map(|k| h3.hash_unit(k)).sum::<f64>());
}
