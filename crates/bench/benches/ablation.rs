//! Ablations of design choices called out in DESIGN.md §6:
//! negative-result caching in the reverse sampler, and bottom-k early
//! stop vs the full Equation-4 budget.

use criterion::{criterion_group, criterion_main, Criterion};
use ugraph::NodeId;
use vulnds_core::{detect, AlgorithmKind, VulnConfig};
use vulnds_datasets::Dataset;
use vulnds_sampling::{DefaultCounts, ReverseSampler, Xoshiro256pp};

fn run_reverse(g: &ugraph::UncertainGraph, candidates: &[NodeId], t: u64, negative_cache: bool) -> DefaultCounts {
    let mut sampler = if negative_cache {
        ReverseSampler::new(g)
    } else {
        ReverseSampler::new(g).without_negative_cache()
    };
    let mut counts = DefaultCounts::new(candidates.len());
    let mut buf = Vec::new();
    for sample_id in 0..t {
        let mut rng = Xoshiro256pp::for_sample(42, sample_id);
        sampler.sample_candidates(g, candidates, &mut rng, &mut buf);
        counts.begin_sample();
        for (i, &h) in buf.iter().enumerate() {
            if h {
                counts.bump(i);
            }
        }
    }
    counts
}

fn bench_negative_cache(c: &mut Criterion) {
    // Dense candidate set on a hub graph: many overlapping reverse BFS
    // trees, where negative caching pays.
    let g = Dataset::Guarantee.generate_scaled(1, 0.05);
    let candidates: Vec<NodeId> = (0..(g.num_nodes() as u32 / 10).max(1)).map(NodeId).collect();
    let mut group = c.benchmark_group("reverse_negative_cache");
    group.sample_size(10);
    group.bench_function("with_cache", |b| b.iter(|| run_reverse(&g, &candidates, 100, true)));
    group.bench_function("without_cache", |b| b.iter(|| run_reverse(&g, &candidates, 100, false)));
    group.finish();
}

fn bench_bottomk_early_stop(c: &mut Criterion) {
    let g = Dataset::Citation.generate_scaled(2, 0.5);
    let k = (g.num_nodes() / 20).max(1);
    let cfg = VulnConfig::default().with_seed(42);
    let mut group = c.benchmark_group("early_stop_vs_full_budget");
    group.sample_size(10);
    group.bench_function("bsr_full_budget", |b| {
        b.iter(|| detect(&g, k, AlgorithmKind::BoundedSampleReverse, &cfg));
    });
    group.bench_function("bsrbk_early_stop", |b| {
        b.iter(|| detect(&g, k, AlgorithmKind::BottomK, &cfg));
    });
    group.finish();
}

fn bench_incremental_bounds(c: &mut Criterion) {
    // Monthly recalibration: incremental repair vs full recomputation.
    use vulnds_core::{BoundsMethod, IncrementalBounds};
    use vulnds_datasets::{update_stream, UpdateEvent, UpdateStreamParams};
    let g = Dataset::Guarantee.generate_scaled(3, 0.1);
    let events = update_stream(
        &g,
        UpdateStreamParams { events: 50, node_fraction: 0.7, drift: 0.2 },
        9,
    );
    let mut group = c.benchmark_group("incremental_vs_batch_bounds");
    group.sample_size(10);
    group.bench_function("incremental_repair", |b| {
        b.iter(|| {
            let mut inc = IncrementalBounds::new(g.clone(), 2, BoundsMethod::Paper);
            for &ev in &events {
                match ev {
                    UpdateEvent::SelfRisk(v, p) => {
                        inc.update_self_risk(v, p).unwrap();
                    }
                    UpdateEvent::EdgeProb(e, p) => {
                        inc.update_edge_prob(e, p).unwrap();
                    }
                }
            }
            inc.lower()[0]
        });
    });
    group.bench_function("batch_recompute", |b| {
        b.iter(|| {
            let mut g2 = g.clone();
            let mut last = 0.0;
            for &ev in &events {
                match ev {
                    UpdateEvent::SelfRisk(v, p) => g2.set_self_risk(v, p).unwrap(),
                    UpdateEvent::EdgeProb(e, p) => g2.set_edge_prob(e, p).unwrap(),
                }
                let (l, _) = vulnds_core::compute_bounds(&g2, 2, vulnds_core::BoundsMethod::Paper);
                last = l[0];
            }
            last
        });
    });
    group.finish();
}

fn bench_antithetic_sampling(c: &mut Criterion) {
    use vulnds_sampling::{antithetic_forward_counts, forward_counts};
    let g = Dataset::Citation.generate_scaled(4, 0.5);
    let mut group = c.benchmark_group("antithetic_vs_independent");
    group.bench_function("independent_2000", |b| b.iter(|| forward_counts(&g, 2000, 42)));
    group.bench_function("antithetic_2000", |b| {
        b.iter(|| antithetic_forward_counts(&g, 2000, 42))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_negative_cache,
    bench_bottomk_early_stop,
    bench_incremental_bounds,
    bench_antithetic_sampling
);
criterion_main!(benches);
