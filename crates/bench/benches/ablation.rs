//! Ablations of design choices called out in DESIGN.md §6:
//! negative-result caching in the reverse sampler, bottom-k early stop
//! vs the full Equation-4 budget, incremental bounds, and antithetic
//! sampling.

use ugraph::NodeId;
use vulnds_bench::microbench::bench;
use vulnds_core::engine::{DetectRequest, Detector};
use vulnds_core::{AlgorithmKind, VulnConfig};
use vulnds_datasets::Dataset;
use vulnds_sampling::{CoinTable, DefaultCounts, ReverseSampler, ScalarCoins};

fn run_reverse(
    g: &ugraph::UncertainGraph,
    candidates: &[NodeId],
    t: u64,
    negative_cache: bool,
) -> DefaultCounts {
    let table = CoinTable::new(g);
    let mut sampler = if negative_cache {
        ReverseSampler::new(g)
    } else {
        ReverseSampler::new(g).without_negative_cache()
    };
    let mut counts = DefaultCounts::new(candidates.len());
    let mut buf = Vec::new();
    for sample_id in 0..t {
        sampler.sample_candidates(g, &table, candidates, ScalarCoins::new(42, sample_id), &mut buf);
        counts.begin_sample();
        for (i, &h) in buf.iter().enumerate() {
            if h {
                counts.bump(i);
            }
        }
    }
    counts
}

fn main() {
    // Dense candidate set on a hub graph: many overlapping reverse BFS
    // trees, where negative caching pays.
    let g = Dataset::Guarantee.generate_scaled(1, 0.05);
    let candidates: Vec<NodeId> = (0..(g.num_nodes() as u32 / 10).max(1)).map(NodeId).collect();
    bench("reverse_negative_cache/with_cache", || run_reverse(&g, &candidates, 100, true));
    bench("reverse_negative_cache/without_cache", || run_reverse(&g, &candidates, 100, false));

    let g2 = std::sync::Arc::new(Dataset::Citation.generate_scaled(2, 0.5));
    let k = (g2.num_nodes() / 20).max(1);
    let cfg = VulnConfig::default().with_seed(42);
    bench("early_stop_vs_full_budget/bsr_full_budget", || {
        let d = Detector::builder(std::sync::Arc::clone(&g2)).config(cfg.clone()).build().unwrap();
        d.detect(&DetectRequest::new(k, AlgorithmKind::BoundedSampleReverse)).unwrap()
    });
    bench("early_stop_vs_full_budget/bsrbk_early_stop", || {
        let d = Detector::builder(std::sync::Arc::clone(&g2)).config(cfg.clone()).build().unwrap();
        d.detect(&DetectRequest::new(k, AlgorithmKind::BottomK)).unwrap()
    });

    // Monthly recalibration: incremental repair vs full recomputation.
    {
        use vulnds_core::{BoundsMethod, IncrementalBounds};
        use vulnds_datasets::{update_stream, UpdateEvent, UpdateStreamParams};
        let g = Dataset::Guarantee.generate_scaled(3, 0.1);
        let events =
            update_stream(&g, UpdateStreamParams { events: 50, node_fraction: 0.7, drift: 0.2 }, 9);
        bench("incremental_vs_batch_bounds/incremental_repair", || {
            let mut inc = IncrementalBounds::new(g.clone(), 2, BoundsMethod::Paper);
            for &ev in &events {
                match ev {
                    UpdateEvent::SelfRisk(v, p) => {
                        inc.update_self_risk(v, p).unwrap();
                    }
                    UpdateEvent::EdgeProb(e, p) => {
                        inc.update_edge_prob(e, p).unwrap();
                    }
                }
            }
            inc.lower()[0]
        });
        bench("incremental_vs_batch_bounds/batch_recompute", || {
            let mut g2 = g.clone();
            let mut last = 0.0;
            for &ev in &events {
                match ev {
                    UpdateEvent::SelfRisk(v, p) => g2.set_self_risk(v, p).unwrap(),
                    UpdateEvent::EdgeProb(e, p) => g2.set_edge_prob(e, p).unwrap(),
                }
                let (l, _) = vulnds_core::compute_bounds(&g2, 2, vulnds_core::BoundsMethod::Paper);
                last = l[0];
            }
            last
        });
    }

    {
        use vulnds_sampling::{antithetic_forward_counts, forward_counts};
        let g = Dataset::Citation.generate_scaled(4, 0.5);
        bench("antithetic_vs_independent/independent_2000", || forward_counts(&g, 2000, 42));
        bench("antithetic_vs_independent/antithetic_2000", || {
            antithetic_forward_counts(&g, 2000, 42)
        });
    }
}
