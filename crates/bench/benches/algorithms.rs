//! End-to-end benchmark of the five detection algorithms (the
//! micro-bench counterpart of Figure 6), cold vs warm engine sessions.

use std::sync::Arc;

use vulnds_bench::microbench::bench;
use vulnds_core::engine::{DetectRequest, Detector};
use vulnds_core::{AlgorithmKind, VulnConfig};
use vulnds_datasets::Dataset;

fn main() {
    // Sessions own their graph, so the bench holds one `Arc` and each
    // cold iteration shares it — the measured cost stays detection, not
    // a per-iteration graph copy.
    let g = Arc::new(Dataset::Citation.generate_scaled(1, 0.5));
    let n = g.num_nodes();
    let k = (n / 20).max(1); // 5%
    let cfg = VulnConfig::default().with_seed(42);

    // Cold path: a fresh session per query (bounds + sampling each time),
    // equivalent to the deprecated free-function API.
    for alg in AlgorithmKind::ALL {
        let req = DetectRequest::new(k, alg);
        bench(&format!("detect_citation_k5pct/cold/{}", alg.label()), || {
            let d = Detector::builder(Arc::clone(&g)).config(cfg.clone()).build().unwrap();
            d.detect(&req).unwrap()
        });
    }

    // Warm path: one session, repeated queries served from the cache.
    for alg in AlgorithmKind::ALL {
        let d = Detector::builder(&g).config(cfg.clone()).build().unwrap();
        let req = DetectRequest::new(k, alg);
        d.detect(&req).unwrap();
        bench(&format!("detect_citation_k5pct/warm/{}", alg.label()), || d.detect(&req).unwrap());
    }

    // k sensitivity for BSRBK on the interbank network.
    let g = Arc::new(Dataset::Interbank.generate(42));
    for pct in [2usize, 6, 10] {
        let k = (g.num_nodes() * pct / 100).max(1);
        let req = DetectRequest::new(k, AlgorithmKind::BottomK);
        bench(&format!("bsrbk_interbank_by_k/{pct}pct"), || {
            let d = Detector::builder(Arc::clone(&g)).config(cfg.clone()).build().unwrap();
            d.detect(&req).unwrap()
        });
    }
}
