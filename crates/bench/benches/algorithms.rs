//! End-to-end benchmark of the five detection algorithms (the Criterion
//! counterpart of Figure 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vulnds_core::{detect, AlgorithmKind, VulnConfig};
use vulnds_datasets::Dataset;

fn bench_algorithms(c: &mut Criterion) {
    let g = Dataset::Citation.generate_scaled(1, 0.5);
    let n = g.num_nodes();
    let k = (n / 20).max(1); // 5%
    let cfg = VulnConfig::default().with_seed(42);
    let mut group = c.benchmark_group("detect_citation_k5pct");
    group.sample_size(10);
    for alg in AlgorithmKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(alg.label()), &alg, |b, &alg| {
            b.iter(|| detect(&g, k, alg, &cfg));
        });
    }
    group.finish();
}

fn bench_k_sensitivity(c: &mut Criterion) {
    let g = Dataset::Interbank.generate(42);
    let cfg = VulnConfig::default().with_seed(42);
    let mut group = c.benchmark_group("bsrbk_interbank_by_k");
    for &pct in &[2usize, 6, 10] {
        let k = (g.num_nodes() * pct / 100).max(1);
        group.bench_with_input(BenchmarkId::from_parameter(pct), &k, |b, &k| {
            b.iter(|| detect(&g, k, AlgorithmKind::BottomK, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_k_sensitivity);
criterion_main!(benches);
