//! Influence maximization under the independent-cascade model, via
//! reverse-reachable (RR) sets (Borgs et al., SODA'14 — the method the
//! paper cites as \[18\] and compares against as `InfMax`).
//!
//! An RR set is the set of nodes that can reach a uniformly random target
//! through edges kept independently with their diffusion probabilities.
//! A node's coverage count over many RR sets is proportional to its
//! influence spread; greedy max-cover over RR sets approximates the
//! optimal seed set within `1 − 1/e`.

use ugraph::{NodeId, UncertainGraph};
use vulnds_sampling::Xoshiro256pp;

/// Result of the RR-set computation.
#[derive(Debug, Clone)]
pub struct InfMaxResult {
    /// Greedily selected seed set, in selection order.
    pub seeds: Vec<NodeId>,
    /// Per-node influence score: fraction of RR sets covered (before any
    /// greedy removal). Usable as a ranking for AUC baselines.
    pub coverage: Vec<f64>,
}

/// Builds one RR set: reverse BFS from a random target with per-edge coin
/// flips (IC semantics; node self-risks are ignored — IC nodes carry no
/// probability, as the paper notes when contrasting the models).
fn rr_set(
    graph: &UncertainGraph,
    rng: &mut Xoshiro256pp,
    scratch: &mut Vec<u32>,
    visited: &mut [u32],
    stamp: u32,
) -> Vec<u32> {
    let n = graph.num_nodes() as u64;
    let target = rng.next_bounded(n) as u32;
    scratch.clear();
    scratch.push(target);
    visited[target as usize] = stamp;
    let mut head = 0;
    while head < scratch.len() {
        let v = scratch[head];
        head += 1;
        for e in graph.in_edges(NodeId(v)) {
            if visited[e.source.index()] != stamp && rng.bernoulli(e.prob) {
                visited[e.source.index()] = stamp;
                scratch.push(e.source.0);
            }
        }
    }
    scratch.clone()
}

/// Runs RR-set influence maximization: `num_sets` RR sets, then greedy
/// max-cover to select `k` seeds.
pub fn influence_maximization(
    graph: &UncertainGraph,
    k: usize,
    num_sets: usize,
    seed: u64,
) -> InfMaxResult {
    let n = graph.num_nodes();
    assert!(n > 0, "graph must be non-empty");
    let k = k.min(n);
    let mut rng = Xoshiro256pp::new(seed);
    let mut visited = vec![0u32; n];
    let mut scratch = Vec::new();

    let mut sets: Vec<Vec<u32>> = Vec::with_capacity(num_sets);
    for i in 0..num_sets {
        sets.push(rr_set(graph, &mut rng, &mut scratch, &mut visited, i as u32 + 1));
    }

    // node → list of RR-set indices covering it.
    let mut covers: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut count = vec![0u32; n];
    for (si, s) in sets.iter().enumerate() {
        for &v in s {
            covers[v as usize].push(si as u32);
            count[v as usize] += 1;
        }
    }
    let denom = num_sets.max(1) as f64;
    let coverage: Vec<f64> = count.iter().map(|&c| c as f64 / denom).collect();

    // Greedy max-cover.
    let mut alive = vec![true; num_sets];
    let mut gain = count.clone();
    let mut seeds = Vec::with_capacity(k);
    let mut chosen = vec![false; n];
    for _ in 0..k {
        let best = (0..n)
            .filter(|&v| !chosen[v])
            .max_by_key(|&v| (gain[v], std::cmp::Reverse(v)))
            // xlint: allow(panic-hygiene) — iteration `i < k ≤ n`
            // leaves `n − i ≥ 1` unchosen nodes, so the filter is
            // never empty.
            .expect("k ≤ n");
        chosen[best] = true;
        seeds.push(NodeId(best as u32));
        for &si in &covers[best] {
            if alive[si as usize] {
                alive[si as usize] = false;
                for &v in &sets[si as usize] {
                    gain[v as usize] = gain[v as usize].saturating_sub(1);
                }
            }
        }
    }
    InfMaxResult { seeds, coverage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn broadcast_star() -> UncertainGraph {
        // Node 0 reaches everyone with certainty.
        let edges: Vec<(u32, u32, f64)> = (1..10).map(|v| (0u32, v, 1.0)).collect();
        from_parts(&[0.0; 10], &edges, DuplicateEdgePolicy::Error).unwrap()
    }

    #[test]
    fn picks_the_broadcaster_first() {
        let g = broadcast_star();
        let r = influence_maximization(&g, 1, 500, 1);
        assert_eq!(r.seeds, vec![NodeId(0)]);
        // Node 0 covers every RR set.
        assert!((r.coverage[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_ranks_by_reachability() {
        // 0 → 1 → 2: node 0 covers RR sets of all three targets.
        let g =
            from_parts(&[0.0; 3], &[(0, 1, 1.0), (1, 2, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let r = influence_maximization(&g, 2, 600, 2);
        assert!(r.coverage[0] > r.coverage[1]);
        assert!(r.coverage[1] > r.coverage[2]);
    }

    #[test]
    fn greedy_avoids_redundant_seeds() {
        // Two disjoint broadcast stars; the two hubs should be picked.
        let mut edges: Vec<(u32, u32, f64)> = (1..5).map(|v| (0u32, v, 1.0)).collect();
        edges.extend((6..10).map(|v| (5u32, v, 1.0)));
        let g = from_parts(&[0.0; 10], &edges, DuplicateEdgePolicy::Error).unwrap();
        let r = influence_maximization(&g, 2, 1000, 3);
        let mut s: Vec<u32> = r.seeds.iter().map(|v| v.0).collect();
        s.sort_unstable();
        assert_eq!(s, vec![0, 5]);
    }

    #[test]
    fn zero_probability_edges_do_not_spread() {
        let g =
            from_parts(&[0.0; 3], &[(0, 1, 0.0), (0, 2, 0.0)], DuplicateEdgePolicy::Error).unwrap();
        let r = influence_maximization(&g, 1, 300, 4);
        // Every node only covers its own RR sets: coverage ≈ 1/3 each.
        for v in 0..3 {
            assert!((r.coverage[v] - 1.0 / 3.0).abs() < 0.1, "{:?}", r.coverage);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = broadcast_star();
        let a = influence_maximization(&g, 3, 200, 9);
        let b = influence_maximization(&g, 3, 200, 9);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn k_clamped_to_n() {
        let g = from_parts(&[0.0; 2], &[(0, 1, 0.5)], DuplicateEdgePolicy::Error).unwrap();
        let r = influence_maximization(&g, 10, 100, 5);
        assert_eq!(r.seeds.len(), 2);
    }
}
