//! # vulnds-baselines — comparison methods for the VulnDS evaluation
//!
//! Everything the paper's Table 3 compares against, built from scratch:
//!
//! * **Centralities** — Brandes betweenness, PageRank, k-core.
//! * **Influence maximization** — RR-set greedy (IC model).
//! * **Feature models** — logistic regression (≈ Wide), an MLP
//!   (≈ Wide&Deep / CNN-max / crDNN), gradient-boosted stumps (≈ GBDT),
//!   all over local-graph features, scored by ROC-AUC.
//! * **Labels** — synthetic multi-period default labels drawn from the
//!   uncertain-graph process (the substitute for the bank's delinquency
//!   records; see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod centrality;
pub mod infmax;
pub mod labels;
pub mod ml;

pub use centrality::{betweenness, core_numbers, pagerank, PageRankParams};
pub use infmax::{influence_maximization, InfMaxResult};
pub use labels::{draw_period_labels, PeriodLabels};
pub use ml::{
    node_features, roc_auc, Gbdt, GbdtParams, LogisticRegression, Mlp, SgdParams, WeightedKnn,
    NUM_FEATURES,
};
