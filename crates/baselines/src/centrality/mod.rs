//! Graph-centrality baselines of the paper's Table 3.

pub mod betweenness;
pub mod kcore;
pub mod pagerank;

pub use betweenness::betweenness;
pub use kcore::core_numbers;
pub use pagerank::{pagerank, PageRankParams};
