//! PageRank by power iteration (directed, damping 0.85 by default).

use ugraph::{NodeId, UncertainGraph};

/// PageRank configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankParams {
    /// Damping factor (teleport probability is `1 − damping`).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iter: usize,
    /// L1 convergence tolerance.
    pub tol: f64,
}

impl Default for PageRankParams {
    fn default() -> Self {
        PageRankParams { damping: 0.85, max_iter: 100, tol: 1e-10 }
    }
}

/// PageRank scores, summing to 1. Dangling mass is redistributed
/// uniformly, the standard fix.
pub fn pagerank(graph: &UncertainGraph, params: PageRankParams) -> Vec<f64> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    let out_deg: Vec<f64> = (0..n).map(|v| graph.out_degree(NodeId(v as u32)) as f64).collect();

    for _ in 0..params.max_iter {
        let mut dangling = 0.0;
        for v in 0..n {
            if out_deg[v] == 0.0 {
                dangling += rank[v];
            }
        }
        let base = (1.0 - params.damping) * inv_n + params.damping * dangling * inv_n;
        next.fill(base);
        for v in 0..n {
            if out_deg[v] > 0.0 {
                let share = params.damping * rank[v] / out_deg[v];
                for &w in graph.out_neighbors(NodeId(v as u32)) {
                    next[w as usize] += share;
                }
            }
        }
        let diff: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if diff < params.tol {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    #[test]
    fn sums_to_one() {
        let g = from_parts(
            &[0.0; 4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5), (3, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let r = pagerank(&g, PageRankParams::default());
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn sink_of_a_star_ranks_highest() {
        let g = from_parts(
            &[0.0; 5],
            &[(1, 0, 0.5), (2, 0, 0.5), (3, 0, 0.5), (4, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let r = pagerank(&g, PageRankParams::default());
        for v in 1..5 {
            assert!(r[0] > r[v], "hub {} !> spoke {}", r[0], r[v]);
        }
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = from_parts(
            &[0.0; 3],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let r = pagerank(&g, PageRankParams::default());
        for &x in &r {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn handles_all_dangling() {
        let g = from_parts(&[0.0; 3], &[], DuplicateEdgePolicy::Error).unwrap();
        let r = pagerank(&g, PageRankParams::default());
        for &x in &r {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph() {
        let g = ugraph::UncertainGraph::builder(0).build().unwrap();
        assert!(pagerank(&g, PageRankParams::default()).is_empty());
    }
}
