//! Betweenness centrality via Brandes' algorithm (unweighted, directed).
//!
//! Used as a Table-3 baseline: rank nodes by how often they sit on
//! shortest paths. `O(n·m)` — fine at the paper's graph sizes.

use std::collections::VecDeque;
use ugraph::{NodeId, UncertainGraph};

/// Betweenness centrality of every node (directed, unnormalized).
pub fn betweenness(graph: &UncertainGraph) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut centrality = vec![0.0f64; n];
    // Scratch reused across sources.
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut stack: Vec<u32> = Vec::with_capacity(n);
    let mut queue: VecDeque<u32> = VecDeque::new();

    for s in 0..n as u32 {
        sigma.fill(0.0);
        dist.fill(-1);
        delta.fill(0.0);
        for p in preds.iter_mut() {
            p.clear();
        }
        stack.clear();
        queue.clear();

        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in graph.out_neighbors(NodeId(v)) {
                let wi = w as usize;
                if dist[wi] < 0 {
                    dist[wi] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[wi] == dist[v as usize] + 1 {
                    sigma[wi] += sigma[v as usize];
                    preds[wi].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            let wi = w as usize;
            for &v in &preds[wi] {
                let vi = v as usize;
                delta[vi] += sigma[vi] / sigma[wi] * (1.0 + delta[wi]);
            }
            if w != s {
                centrality[wi] += delta[wi];
            }
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    #[test]
    fn middle_of_path_has_all_betweenness() {
        // 0 → 1 → 2: only node 1 lies strictly between a pair.
        let g =
            from_parts(&[0.0; 3], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error).unwrap();
        let b = betweenness(&g);
        assert_eq!(b[0], 0.0);
        assert_eq!(b[1], 1.0);
        assert_eq!(b[2], 0.0);
    }

    #[test]
    fn star_center_dominates() {
        // spokes → center → spokes: center on every spoke-to-spoke path.
        let g = from_parts(
            &[0.0; 5],
            &[(1, 0, 0.5), (2, 0, 0.5), (0, 3, 0.5), (0, 4, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let b = betweenness(&g);
        assert_eq!(b[0], 4.0); // 2 sources × 2 sinks
        for &spoke in &b[1..5] {
            assert_eq!(spoke, 0.0);
        }
    }

    #[test]
    fn split_shortest_paths_share_credit() {
        // 0 → {1, 2} → 3: two shortest paths, each middle gets 1/2.
        let g = from_parts(
            &[0.0; 4],
            &[(0, 1, 0.5), (0, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let b = betweenness(&g);
        assert!((b[1] - 0.5).abs() < 1e-12);
        assert!((b[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_is_zero() {
        let g = from_parts(&[0.0; 4], &[], DuplicateEdgePolicy::Error).unwrap();
        assert_eq!(betweenness(&g), vec![0.0; 4]);
    }
}
