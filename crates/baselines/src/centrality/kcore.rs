//! k-core decomposition (total-degree peeling) — linear-time bucket
//! algorithm of Batagelj & Zaveršnik.

use ugraph::{NodeId, UncertainGraph};

/// Core number of every node under total (in + out) degree.
pub fn core_numbers(graph: &UncertainGraph) -> Vec<u32> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..n).map(|v| graph.degree(NodeId(v as u32)) as u32).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort nodes by degree.
    let mut bin = vec![0u32; max_deg + 2];
    for &d in &degree {
        bin[d as usize] += 1;
    }
    let mut start = 0u32;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0u32; n];
    let mut vert = vec![0u32; n];
    for v in 0..n {
        let d = degree[v] as usize;
        pos[v] = bin[d];
        vert[bin[d] as usize] = v as u32;
        bin[d] += 1;
    }
    for d in (1..=max_deg + 1).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;

    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i] as usize;
        core[v] = degree[v];
        // Peel: lower each unprocessed neighbor's degree.
        let vid = NodeId(v as u32);
        let neighbors: Vec<u32> =
            graph.out_neighbors(vid).iter().chain(graph.in_neighbors(vid)).copied().collect();
        for u in neighbors {
            let u = u as usize;
            if degree[u] > degree[v] {
                let du = degree[u] as usize;
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw as usize];
                if u as u32 != w {
                    vert[pu as usize] = w;
                    vert[pw as usize] = u as u32;
                    pos[u] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 (each degree 2 within), tail 2 → 3.
        let g = from_parts(
            &[0.0; 4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5), (2, 3, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let c = core_numbers(&g);
        assert_eq!(c[0], 2);
        assert_eq!(c[1], 2);
        assert_eq!(c[2], 2);
        assert_eq!(c[3], 1);
    }

    #[test]
    fn path_is_one_core() {
        let g = from_parts(
            &[0.0; 4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let c = core_numbers(&g);
        assert!(c.iter().all(|&x| x == 1), "{c:?}");
    }

    #[test]
    fn isolated_nodes_are_zero_core() {
        let g = from_parts(&[0.0; 3], &[(0, 1, 0.5)], DuplicateEdgePolicy::Error).unwrap();
        let c = core_numbers(&g);
        assert_eq!(c[2], 0);
        assert_eq!(c[0], 1);
    }

    #[test]
    fn clique_core_equals_degree() {
        // Directed 4-clique (both directions): total degree 6, core 6.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    edges.push((u, v, 0.5));
                }
            }
        }
        let g = from_parts(&[0.0; 4], &edges, DuplicateEdgePolicy::Error).unwrap();
        let c = core_numbers(&g);
        assert!(c.iter().all(|&x| x == 6), "{c:?}");
    }

    #[test]
    fn empty_graph() {
        let g = ugraph::UncertainGraph::builder(0).build().unwrap();
        assert!(core_numbers(&g).is_empty());
    }
}
