//! Logistic regression trained by mini-batch SGD — the stand-in for the
//! paper's "Wide" baseline (a linear model over raw features).

use vulnds_sampling::Xoshiro256pp;

/// Hyperparameters for SGD training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdParams {
    /// Learning rate.
    pub lr: f64,
    /// Number of epochs over the training set.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle/initialization seed.
    pub seed: u64,
}

impl Default for SgdParams {
    fn default() -> Self {
        SgdParams { lr: 0.1, epochs: 60, l2: 1e-4, seed: 7 }
    }
}

/// A trained logistic regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Trains on `rows` (feature vectors) against binary `labels`.
    ///
    /// # Panics
    /// Panics on empty input or inconsistent dimensions.
    pub fn train(rows: &[Vec<f64>], labels: &[bool], params: SgdParams) -> Self {
        assert!(!rows.is_empty(), "empty training set");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let d = rows[0].len();
        let mut weights = vec![0.0f64; d];
        let mut bias = 0.0f64;
        let mut rng = Xoshiro256pp::new(params.seed);
        let mut order: Vec<usize> = (0..rows.len()).collect();

        for _ in 0..params.epochs {
            // Fisher–Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.next_bounded(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            for &i in &order {
                let row = &rows[i];
                debug_assert_eq!(row.len(), d);
                let z = bias + dot(&weights, row);
                let err = sigmoid(z) - labels[i] as u8 as f64;
                for (w, &x) in weights.iter_mut().zip(row) {
                    *w -= params.lr * (err * x + params.l2 * *w);
                }
                bias -= params.lr * err;
            }
        }
        LogisticRegression { weights, bias }
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        sigmoid(self.bias + dot(&self.weights, row))
    }

    /// Batch prediction.
    pub fn predict_many(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_proba(r)).collect()
    }

    /// Learned weights (for interpretability checks).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ml::auc::roc_auc;

    /// Linearly separable toy data: label = x0 > 0.
    fn toy(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = Xoshiro256pp::new(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x0 = rng.next_f64() * 2.0 - 1.0;
            let x1 = rng.next_f64() * 2.0 - 1.0;
            rows.push(vec![x0, x1]);
            labels.push(x0 > 0.0);
        }
        (rows, labels)
    }

    #[test]
    fn learns_separable_data() {
        let (rows, labels) = toy(500, 1);
        let model = LogisticRegression::train(&rows, &labels, SgdParams::default());
        let preds = model.predict_many(&rows);
        let auc = roc_auc(&preds, &labels).unwrap();
        assert!(auc > 0.97, "train AUC {auc}");
        // The informative weight dominates the noise weight.
        assert!(model.weights()[0].abs() > 3.0 * model.weights()[1].abs());
    }

    #[test]
    fn generalizes_to_fresh_data() {
        let (rows, labels) = toy(500, 2);
        let model = LogisticRegression::train(&rows, &labels, SgdParams::default());
        let (test_rows, test_labels) = toy(300, 3);
        let auc = roc_auc(&model.predict_many(&test_rows), &test_labels).unwrap();
        assert!(auc > 0.95, "test AUC {auc}");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (rows, labels) = toy(100, 4);
        let model = LogisticRegression::train(&rows, &labels, SgdParams::default());
        for p in model.predict_many(&rows) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_training() {
        let (rows, labels) = toy(100, 5);
        let a = LogisticRegression::train(&rows, &labels, SgdParams::default());
        let b = LogisticRegression::train(&rows, &labels, SgdParams::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty() {
        LogisticRegression::train(&[], &[], SgdParams::default());
    }
}
