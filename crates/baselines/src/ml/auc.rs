//! ROC-AUC — the metric of the paper's Table 3.

/// Area under the ROC curve for scores against binary labels, computed as
/// the normalized Mann–Whitney U statistic with midrank tie handling.
///
/// Returns `None` when either class is empty (AUC undefined).
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return None;
    }

    // Rank scores ascending with midranks for ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_unstable_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for item in idx.iter().take(j + 1).skip(i) {
            ranks[*item] = midrank;
        }
        i = j + 1;
    }

    let rank_sum_pos: f64 = labels.iter().zip(&ranks).filter(|(&l, _)| l).map(|(_, &r)| r).sum();
    let u = rank_sum_pos - (pos as f64 * (pos as f64 + 1.0)) / 2.0;
    Some(u / (pos as f64 * neg as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let auc = roc_auc(&[0.1, 0.2, 0.8, 0.9], &[false, false, true, true]).unwrap();
        assert!((auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_separation() {
        let auc = roc_auc(&[0.9, 0.8, 0.2, 0.1], &[false, false, true, true]).unwrap();
        assert!(auc.abs() < 1e-12);
    }

    #[test]
    fn random_scores_near_half() {
        // Alternating labels with identical scores: AUC exactly 0.5 by
        // midrank ties.
        let scores = vec![0.5; 100];
        let labels: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let auc = roc_auc(&scores, &labels).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        // One misranked pair out of four: AUC = 3/4.
        let auc = roc_auc(&[0.6, 0.2, 0.5, 0.9], &[false, true, true, true]).unwrap();
        // pairs (pos, neg): (0.2,0.6) wrong, (0.5,0.6) wrong? 0.5 < 0.6 wrong,
        // (0.9,0.6) right → 1/3.
        assert!((auc - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn undefined_for_single_class() {
        assert_eq!(roc_auc(&[0.1, 0.2], &[true, true]), None);
        assert_eq!(roc_auc(&[0.1, 0.2], &[false, false]), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_checked() {
        roc_auc(&[0.1], &[true, false]);
    }

    #[test]
    fn invariant_to_monotone_transform() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [false, true, false, true];
        let a = roc_auc(&scores, &labels).unwrap();
        let squared: Vec<f64> = scores.iter().map(|s| s * s).collect();
        let b = roc_auc(&squared, &labels).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}
