//! From-scratch ML classifiers standing in for the paper's TensorFlow
//! baselines (see DESIGN.md §3 for the substitution rationale).

pub mod auc;
pub mod features;
pub mod gbdt;
pub mod knn;
pub mod logreg;
pub mod mlp;

pub use auc::roc_auc;
pub use features::{node_features, standardize, NUM_FEATURES};
pub use gbdt::{Gbdt, GbdtParams};
pub use knn::WeightedKnn;
pub use logreg::{LogisticRegression, SgdParams};
pub use mlp::Mlp;
