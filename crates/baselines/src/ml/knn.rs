//! Weighted k-nearest-neighbors classifier — the stand-in for the
//! paper's p-wkNN \[15\], which the authors use to infer guarantee-edge
//! risk probabilities.
//!
//! Prediction: the probability of the positive class is the
//! distance-weighted vote of the `k` nearest training rows under
//! Euclidean distance, with weight `1 / (d + ε)`.

/// A fitted (memorizing) weighted kNN model.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedKnn {
    rows: Vec<Vec<f64>>,
    labels: Vec<bool>,
    k: usize,
}

impl WeightedKnn {
    /// Stores the training set.
    ///
    /// # Panics
    /// Panics on empty input, inconsistent lengths, or `k == 0`.
    pub fn fit(rows: &[Vec<f64>], labels: &[bool], k: usize) -> Self {
        assert!(!rows.is_empty(), "empty training set");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert!(k > 0, "k must be positive");
        WeightedKnn { rows: rows.to_vec(), labels: labels.to_vec(), k: k.min(rows.len()) }
    }

    /// The effective neighborhood size (clamped to the training size).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Weighted vote for the positive class, in `[0, 1]`.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        // Distances to all training rows; partial-select the k nearest.
        let mut dist: Vec<(f64, bool)> =
            self.rows.iter().zip(&self.labels).map(|(r, &l)| (euclidean(row, r), l)).collect();
        let k = self.k.min(dist.len());
        dist.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut pos = 0.0;
        let mut total = 0.0;
        for &(d, l) in &dist[..k] {
            let w = 1.0 / (d + 1e-9);
            total += w;
            if l {
                pos += w;
            }
        }
        pos / total
    }

    /// Batch prediction.
    pub fn predict_many(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_proba(r)).collect()
    }
}

#[inline]
fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ml::auc::roc_auc;
    use vulnds_sampling::Xoshiro256pp;

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        // Two Gaussian-ish blobs around (0,0) and (2,2).
        let mut rng = Xoshiro256pp::new(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let positive = i % 2 == 0;
            let center = if positive { 2.0 } else { 0.0 };
            rows.push(vec![center + rng.next_f64() - 0.5, center + rng.next_f64() - 0.5]);
            labels.push(positive);
        }
        (rows, labels)
    }

    #[test]
    fn separates_blobs() {
        let (rows, labels) = blobs(200, 1);
        let model = WeightedKnn::fit(&rows, &labels, 5);
        let (test_rows, test_labels) = blobs(100, 2);
        let auc = roc_auc(&model.predict_many(&test_rows), &test_labels).unwrap();
        assert!(auc > 0.98, "AUC {auc}");
    }

    #[test]
    fn exact_memorization_with_k1() {
        let (rows, labels) = blobs(50, 3);
        let model = WeightedKnn::fit(&rows, &labels, 1);
        for (r, &l) in rows.iter().zip(&labels) {
            let p = model.predict_proba(r);
            assert_eq!(p > 0.5, l, "misremembered a training row");
        }
    }

    #[test]
    fn k_clamped_to_training_size() {
        let rows = vec![vec![0.0], vec![1.0]];
        let model = WeightedKnn::fit(&rows, &[true, false], 100);
        assert_eq!(model.k(), 2);
        let p = model.predict_proba(&[0.0]);
        assert!(p > 0.5, "near neighbor should dominate: {p}");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (rows, labels) = blobs(60, 4);
        let model = WeightedKnn::fit(&rows, &labels, 7);
        for p in model.predict_many(&rows) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        WeightedKnn::fit(&[vec![0.0]], &[true], 0);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty() {
        WeightedKnn::fit(&[], &[], 3);
    }
}
