//! A small multi-layer perceptron (one ReLU hidden layer, sigmoid output)
//! trained with SGD + backprop — the stand-in for the paper's deep
//! baselines (Wide&Deep, CNN-max, crDNN), which all reduce to "nonlinear
//! feature combinations" once stripped of their input-specific encoders.

use super::logreg::SgdParams;
use vulnds_sampling::Xoshiro256pp;

/// A trained MLP: `input → hidden (ReLU) → 1 (sigmoid)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    // w1[h * d + j]: input j → hidden h.
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    input_dim: usize,
    hidden: usize,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Mlp {
    /// Trains a new MLP with `hidden` units.
    ///
    /// # Panics
    /// Panics on empty input, dimension mismatch, or `hidden == 0`.
    pub fn train(rows: &[Vec<f64>], labels: &[bool], hidden: usize, params: SgdParams) -> Self {
        assert!(!rows.is_empty(), "empty training set");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert!(hidden > 0, "need at least one hidden unit");
        let d = rows[0].len();
        let mut rng = Xoshiro256pp::new(params.seed);
        // He-style init scaled to the input dimension.
        let scale = (2.0 / d as f64).sqrt();
        let mut w1: Vec<f64> =
            (0..hidden * d).map(|_| (rng.next_f64() * 2.0 - 1.0) * scale).collect();
        let mut b1 = vec![0.0f64; hidden];
        let mut w2: Vec<f64> = (0..hidden).map(|_| (rng.next_f64() * 2.0 - 1.0) * scale).collect();
        let mut b2 = 0.0f64;

        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut act = vec![0.0f64; hidden];
        for _ in 0..params.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.next_bounded(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            for &i in &order {
                let row = &rows[i];
                debug_assert_eq!(row.len(), d);
                // Forward.
                for h in 0..hidden {
                    let mut z = b1[h];
                    let base = h * d;
                    for (j, &x) in row.iter().enumerate() {
                        z += w1[base + j] * x;
                    }
                    act[h] = z.max(0.0);
                }
                let z2 = b2 + w2.iter().zip(&act).map(|(w, a)| w * a).sum::<f64>();
                let out = sigmoid(z2);
                // Backward (logistic loss gradient is out − y).
                let err = out - labels[i] as u8 as f64;
                for h in 0..hidden {
                    let grad_w2 = err * act[h];
                    let grad_hidden = if act[h] > 0.0 { err * w2[h] } else { 0.0 };
                    w2[h] -= params.lr * (grad_w2 + params.l2 * w2[h]);
                    if grad_hidden != 0.0 {
                        let base = h * d;
                        for (j, &x) in row.iter().enumerate() {
                            w1[base + j] -=
                                params.lr * (grad_hidden * x + params.l2 * w1[base + j]);
                        }
                        b1[h] -= params.lr * grad_hidden;
                    }
                }
                b2 -= params.lr * err;
            }
        }
        Mlp { w1, b1, w2, b2, input_dim: d, hidden }
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.input_dim);
        let mut z2 = self.b2;
        for h in 0..self.hidden {
            let mut z = self.b1[h];
            let base = h * self.input_dim;
            for (j, &x) in row.iter().enumerate() {
                z += self.w1[base + j] * x;
            }
            if z > 0.0 {
                z2 += self.w2[h] * z;
            }
        }
        sigmoid(z2)
    }

    /// Batch prediction.
    pub fn predict_many(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_proba(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ml::auc::roc_auc;

    /// XOR-ish data a linear model cannot fit: label = (x0 > 0) ⊕ (x1 > 0).
    fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = Xoshiro256pp::new(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x0 = rng.next_f64() * 2.0 - 1.0;
            let x1 = rng.next_f64() * 2.0 - 1.0;
            rows.push(vec![x0, x1]);
            labels.push((x0 > 0.0) != (x1 > 0.0));
        }
        (rows, labels)
    }

    #[test]
    fn fits_xor_better_than_linear() {
        let (rows, labels) = xor_data(600, 1);
        let params = SgdParams { lr: 0.05, epochs: 200, l2: 0.0, seed: 1 };
        let mlp = Mlp::train(&rows, &labels, 16, params);
        let mlp_auc = roc_auc(&mlp.predict_many(&rows), &labels).unwrap();
        let lin = crate::ml::logreg::LogisticRegression::train(
            &rows,
            &labels,
            crate::ml::logreg::SgdParams::default(),
        );
        let lin_auc = roc_auc(&lin.predict_many(&rows), &labels).unwrap();
        assert!(mlp_auc > 0.9, "MLP AUC {mlp_auc}");
        assert!(lin_auc < 0.65, "linear should fail at XOR: {lin_auc}");
    }

    #[test]
    fn probabilities_valid() {
        let (rows, labels) = xor_data(100, 2);
        let mlp = Mlp::train(&rows, &labels, 8, SgdParams::default());
        for p in mlp.predict_many(&rows) {
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn deterministic_training() {
        let (rows, labels) = xor_data(80, 3);
        let a = Mlp::train(&rows, &labels, 4, SgdParams::default());
        let b = Mlp::train(&rows, &labels, 4, SgdParams::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one hidden unit")]
    fn rejects_zero_hidden() {
        Mlp::train(&[vec![0.0]], &[true], 0, SgdParams::default());
    }
}
