//! Gradient-boosted decision stumps with logistic loss — the stand-in for
//! the paper's GBDT (LightGBM) baseline.
//!
//! Each round fits a depth-1 regression tree (a stump: one feature, one
//! threshold, two leaf values) to the negative gradient of the logistic
//! loss, then adds it to the ensemble with shrinkage.

/// Hyperparameters for boosting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtParams {
    /// Number of boosting rounds (stumps).
    pub rounds: usize,
    /// Shrinkage (learning rate) applied to each stump.
    pub shrinkage: f64,
    /// Candidate thresholds per feature (quantile grid size).
    pub bins: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams { rounds: 80, shrinkage: 0.2, bins: 16 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Stump {
    feature: usize,
    threshold: f64,
    left_value: f64,
    right_value: f64,
}

/// A trained boosted-stump classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Gbdt {
    base_score: f64,
    stumps: Vec<Stump>,
    shrinkage: f64,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Gbdt {
    /// Trains the ensemble.
    ///
    /// # Panics
    /// Panics on empty input or inconsistent dimensions.
    pub fn train(rows: &[Vec<f64>], labels: &[bool], params: GbdtParams) -> Self {
        assert!(!rows.is_empty(), "empty training set");
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let n = rows.len();
        let d = rows[0].len();

        // Base score: log-odds of the positive rate.
        let pos = labels.iter().filter(|&&l| l).count() as f64;
        let rate = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (rate / (1.0 - rate)).ln();

        // Quantile threshold grid per feature.
        let mut grids: Vec<Vec<f64>> = Vec::with_capacity(d);
        for j in 0..d {
            let mut col: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            col.sort_unstable_by(|a, b| a.total_cmp(b));
            let mut grid = Vec::with_capacity(params.bins);
            for b in 1..=params.bins {
                let idx = (b * (n - 1)) / (params.bins + 1);
                grid.push(col[idx]);
            }
            grid.dedup();
            grids.push(grid);
        }

        let mut margin = vec![base_score; n];
        let mut stumps = Vec::with_capacity(params.rounds);
        for _ in 0..params.rounds {
            // Negative gradient of logistic loss: y − p.
            let grad: Vec<f64> =
                margin.iter().zip(labels).map(|(&m, &y)| y as u8 as f64 - sigmoid(m)).collect();
            // Hessian: p(1−p), for Newton leaf values.
            let hess: Vec<f64> = margin.iter().map(|&m| sigmoid(m) * (1.0 - sigmoid(m))).collect();

            let mut best: Option<(f64, Stump)> = None;
            for (j, grid) in grids.iter().enumerate() {
                for &thr in grid {
                    let mut gl = 0.0;
                    let mut hl = 0.0;
                    let mut gr = 0.0;
                    let mut hr = 0.0;
                    for i in 0..n {
                        if rows[i][j] <= thr {
                            gl += grad[i];
                            hl += hess[i];
                        } else {
                            gr += grad[i];
                            hr += hess[i];
                        }
                    }
                    if hl < 1e-9 || hr < 1e-9 {
                        continue;
                    }
                    // Gain ∝ GL²/HL + GR²/HR.
                    let gain = gl * gl / hl + gr * gr / hr;
                    let stump = Stump {
                        feature: j,
                        threshold: thr,
                        left_value: gl / hl,
                        right_value: gr / hr,
                    };
                    if best.as_ref().is_none_or(|(g, _)| gain > *g) {
                        best = Some((gain, stump));
                    }
                }
            }
            let Some((_, stump)) = best else { break };
            for i in 0..n {
                let v = if rows[i][stump.feature] <= stump.threshold {
                    stump.left_value
                } else {
                    stump.right_value
                };
                margin[i] += params.shrinkage * v;
            }
            stumps.push(stump);
        }
        Gbdt { base_score, stumps, shrinkage: params.shrinkage }
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let mut margin = self.base_score;
        for s in &self.stumps {
            let v = if row[s.feature] <= s.threshold { s.left_value } else { s.right_value };
            margin += self.shrinkage * v;
        }
        sigmoid(margin)
    }

    /// Batch prediction.
    pub fn predict_many(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_proba(r)).collect()
    }

    /// Number of stumps actually fit.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    /// `true` if boosting fit nothing (degenerate data).
    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ml::auc::roc_auc;
    use vulnds_sampling::Xoshiro256pp;

    /// Non-linear but axis-aligned concept: label = x0 ∈ (0.3, 0.7).
    fn band_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = Xoshiro256pp::new(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x0 = rng.next_f64();
            let x1 = rng.next_f64();
            rows.push(vec![x0, x1]);
            labels.push(x0 > 0.3 && x0 < 0.7);
        }
        (rows, labels)
    }

    #[test]
    fn fits_axis_aligned_band() {
        let (rows, labels) = band_data(800, 1);
        let model = Gbdt::train(&rows, &labels, GbdtParams::default());
        let auc = roc_auc(&model.predict_many(&rows), &labels).unwrap();
        assert!(auc > 0.95, "train AUC {auc}");
        assert!(!model.is_empty());
    }

    #[test]
    fn generalizes() {
        let (rows, labels) = band_data(800, 2);
        let model = Gbdt::train(&rows, &labels, GbdtParams::default());
        let (test_rows, test_labels) = band_data(400, 3);
        let auc = roc_auc(&model.predict_many(&test_rows), &test_labels).unwrap();
        assert!(auc > 0.9, "test AUC {auc}");
    }

    #[test]
    fn constant_labels_degenerate_gracefully() {
        let rows = vec![vec![0.1], vec![0.9]];
        let model = Gbdt::train(&rows, &[true, true], GbdtParams::default());
        let p = model.predict_proba(&[0.5]);
        assert!(p > 0.9, "all-positive prior should dominate: {p}");
    }

    #[test]
    fn deterministic() {
        let (rows, labels) = band_data(100, 4);
        let a = Gbdt::train(&rows, &labels, GbdtParams::default());
        let b = Gbdt::train(&rows, &labels, GbdtParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn more_rounds_do_not_hurt_train_auc() {
        let (rows, labels) = band_data(400, 5);
        let small = Gbdt::train(&rows, &labels, GbdtParams { rounds: 5, ..Default::default() });
        let large = Gbdt::train(&rows, &labels, GbdtParams { rounds: 100, ..Default::default() });
        let a_small = roc_auc(&small.predict_many(&rows), &labels).unwrap();
        let a_large = roc_auc(&large.predict_many(&rows), &labels).unwrap();
        assert!(a_large >= a_small - 0.01, "small {a_small}, large {a_large}");
    }
}
