//! Node feature extraction for the ML baselines of Table 3.
//!
//! The paper's feature-based models (Wide, Wide&Deep, GBDT, …) consume
//! loan behavior features; our synthetic substitute uses the node's local
//! view of the uncertain graph — which is exactly the information a
//! feature model could plausibly see without possible-world reasoning.
//! The structural aggregation the VulnDS algorithms perform (multi-hop
//! probabilistic reachability) is deliberately *not* in the feature set;
//! the Table 3 experiment measures how much that reasoning adds.

use ugraph::{NodeId, UncertainGraph};

/// Number of features produced per node.
pub const NUM_FEATURES: usize = 8;

/// Feature names, index-aligned with the vectors from [`node_features`].
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "self_risk",
    "in_degree",
    "out_degree",
    "mean_in_edge_prob",
    "max_in_edge_prob",
    "mean_in_neighbor_self_risk",
    "max_in_neighbor_self_risk",
    "upstream_pressure", // Σ p(v|x)·ps(x) over in-edges
];

/// Extracts the feature matrix, one row per node.
pub fn node_features(graph: &UncertainGraph) -> Vec<Vec<f64>> {
    let n = graph.num_nodes();
    let mut rows = Vec::with_capacity(n);
    // Degree normalizers keep features in comparable ranges.
    let max_in = (0..n).map(|v| graph.in_degree(NodeId(v as u32))).max().unwrap_or(1).max(1) as f64;
    let max_out =
        (0..n).map(|v| graph.out_degree(NodeId(v as u32))).max().unwrap_or(1).max(1) as f64;
    for v in graph.nodes() {
        let mut mean_p = 0.0;
        let mut max_p: f64 = 0.0;
        let mut mean_r = 0.0;
        let mut max_r: f64 = 0.0;
        let mut pressure = 0.0;
        let din = graph.in_degree(v);
        for e in graph.in_edges(v) {
            let r = graph.self_risk(e.source);
            mean_p += e.prob;
            max_p = max_p.max(e.prob);
            mean_r += r;
            max_r = max_r.max(r);
            pressure += e.prob * r;
        }
        if din > 0 {
            mean_p /= din as f64;
            mean_r /= din as f64;
        }
        rows.push(vec![
            graph.self_risk(v),
            din as f64 / max_in,
            graph.out_degree(v) as f64 / max_out,
            mean_p,
            max_p,
            mean_r,
            max_r,
            pressure,
        ]);
    }
    rows
}

/// Standardizes features column-wise to zero mean, unit variance
/// (constant columns become zeros). Returns `(means, stds)` so test
/// data can reuse the training transform.
pub fn standardize(rows: &mut [Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    if rows.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let d = rows[0].len();
    let n = rows.len() as f64;
    let mut means = vec![0.0; d];
    for r in rows.iter() {
        for (j, &x) in r.iter().enumerate() {
            means[j] += x;
        }
    }
    for m in means.iter_mut() {
        *m /= n;
    }
    let mut stds = vec![0.0; d];
    for r in rows.iter() {
        for (j, &x) in r.iter().enumerate() {
            stds[j] += (x - means[j]).powi(2);
        }
    }
    for s in stds.iter_mut() {
        *s = (*s / n).sqrt();
        if *s < 1e-12 {
            *s = 1.0;
        }
    }
    for r in rows.iter_mut() {
        for (j, x) in r.iter_mut().enumerate() {
            *x = (*x - means[j]) / stds[j];
        }
    }
    (means, stds)
}

/// Applies a previously-computed standardization to new rows.
pub fn apply_standardization(rows: &mut [Vec<f64>], means: &[f64], stds: &[f64]) {
    for r in rows.iter_mut() {
        for (j, x) in r.iter_mut().enumerate() {
            *x = (*x - means[j]) / stds[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn g() -> UncertainGraph {
        from_parts(&[0.9, 0.1, 0.3], &[(0, 1, 0.8), (2, 1, 0.4)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn shapes_and_names_align() {
        let f = node_features(&g());
        assert_eq!(f.len(), 3);
        for row in &f {
            assert_eq!(row.len(), NUM_FEATURES);
            assert_eq!(row.len(), FEATURE_NAMES.len());
        }
    }

    #[test]
    fn feature_values_for_middle_node() {
        let f = node_features(&g());
        let row = &f[1]; // node 1: in-edges from 0 (0.8) and 2 (0.4)
        assert_eq!(row[0], 0.1); // self risk
        assert!((row[3] - 0.6).abs() < 1e-12); // mean in-edge prob
        assert_eq!(row[4], 0.8); // max in-edge prob
        assert!((row[5] - 0.6).abs() < 1e-12); // mean in-neighbor risk
        assert_eq!(row[6], 0.9); // max in-neighbor risk
        let pressure = 0.8 * 0.9 + 0.4 * 0.3;
        assert!((row[7] - pressure).abs() < 1e-12);
    }

    #[test]
    fn sources_have_zero_in_features() {
        let f = node_features(&g());
        let row = &f[0];
        assert_eq!(row[3], 0.0);
        assert_eq!(row[7], 0.0);
    }

    #[test]
    fn standardization_centers_and_scales() {
        let mut rows = node_features(&g());
        let (means, stds) = standardize(&mut rows);
        assert_eq!(means.len(), NUM_FEATURES);
        for j in 0..NUM_FEATURES {
            let col_mean: f64 = rows.iter().map(|r| r[j]).sum::<f64>() / rows.len() as f64;
            assert!(col_mean.abs() < 1e-9, "column {j} mean {col_mean}");
        }
        // Applying the same transform to a copy reproduces the result.
        let mut fresh = node_features(&g());
        apply_standardization(&mut fresh, &means, &stds);
        for (a, b) in fresh.iter().flatten().zip(rows.iter().flatten()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
