//! Cross-validation of the bit-parallel world-block data path against
//! the scalar `PossibleWorld` oracle (in-repo test kit; the workspace
//! builds offline with no external dependencies).
//!
//! The contract under test: sample `i` of a run seeded `s` IS the world
//! `PossibleWorld::sample_indexed(g, s, i)` — every coin a stateless
//! counter-RNG function of `(s, i / 64, item)` projected at lane
//! `i % 64` — and every counting API is a pure function of those worlds.
//! So `DefaultCounts` must be **bit-identical** across the block kernel
//! (lazy or eager edge materialization), the scalar samplers, and the
//! parallel drivers, for any seed, any thread count, and any budget
//! including `t % 64 != 0`.

use ugraph::testkit::{check, random_graph, TestRng};
use ugraph::{NodeId, UncertainGraph};
use vulnds_sampling::{
    forward_counts, forward_counts_range, parallel_forward_counts_range,
    parallel_reverse_counts_range, reverse_counts, reverse_counts_range, BlockKernel, CoinTable,
    DefaultCounts, ForwardSampler, PossibleWorld, ReverseSampler, ScalarCoins, WorldBlock, LANES,
};

fn arb_graph(rng: &mut TestRng) -> UncertainGraph {
    random_graph(rng, 24, 60)
}

/// A budget straddling block boundaries most of the time.
fn arb_budget(rng: &mut TestRng) -> u64 {
    rng.range_usize(1, 3 * LANES + 7) as u64
}

/// The oracle: materialize every world one at a time and record its
/// defaulted-node mask.
fn oracle_forward_counts(
    g: &UncertainGraph,
    range: std::ops::Range<u64>,
    seed: u64,
) -> DefaultCounts {
    let table = CoinTable::new(g);
    let mut counts = DefaultCounts::new(g.num_nodes());
    for i in range {
        let world = PossibleWorld::sample_with_table(g, &table, seed, i);
        counts.record_mask(&world.defaulted_nodes(g));
    }
    counts
}

/// The oracle projected onto a candidate list.
fn oracle_reverse_counts(
    g: &UncertainGraph,
    candidates: &[NodeId],
    t: u64,
    seed: u64,
) -> DefaultCounts {
    let table = CoinTable::new(g);
    let mut counts = DefaultCounts::new(candidates.len());
    for i in 0..t {
        let world = PossibleWorld::sample_with_table(g, &table, seed, i);
        let defaulted = world.defaulted_nodes(g);
        let mask: Vec<bool> = candidates.iter().map(|&v| defaulted[v.index()]).collect();
        counts.record_mask(&mask);
    }
    counts
}

/// Block-kernel forward counts are bit-identical to the materialized
/// world oracle, to the scalar `ForwardSampler`, and to the parallel
/// driver at every thread count.
#[test]
fn forward_block_equals_oracle_and_scalar_and_parallel() {
    check(24, |rng| {
        let g = arb_graph(rng);
        let t = arb_budget(rng);
        let seed = rng.next_bounded(1 << 20);
        let blockwise = forward_counts(&g, t, seed);

        assert_eq!(blockwise, oracle_forward_counts(&g, 0..t, seed), "oracle, t = {t}");

        let table = CoinTable::new(&g);
        let mut sampler = ForwardSampler::new(&g);
        let mut scalar = DefaultCounts::new(g.num_nodes());
        for i in 0..t {
            scalar.begin_sample();
            sampler.sample_with(&g, &table, &ScalarCoins::new(seed, i), |v| scalar.bump(v.index()));
        }
        assert_eq!(blockwise, scalar, "scalar sampler, t = {t}");

        for threads in [2usize, 3, 7] {
            assert_eq!(
                parallel_forward_counts_range(&g, 0..t, seed, threads),
                blockwise,
                "threads = {threads}, t = {t}"
            );
        }
    });
}

/// Reverse sampling is a projection of the same worlds: block kernel,
/// scalar `ReverseSampler` (with and without the negative cache), the
/// oracle, and the parallel driver all agree bitwise on any candidate
/// subset.
#[test]
fn reverse_block_equals_oracle_and_scalar_and_parallel() {
    check(24, |rng| {
        let g = arb_graph(rng);
        let t = arb_budget(rng);
        let seed = rng.next_bounded(1 << 20);
        let n = g.num_nodes();
        // A random candidate subset, sometimes everything.
        let candidates: Vec<NodeId> = if rng.next_bounded(4) == 0 {
            g.nodes().collect()
        } else {
            (0..rng.range_usize(1, n)).map(|_| NodeId(rng.next_bounded(n as u64) as u32)).collect()
        };

        let blockwise = reverse_counts(&g, &candidates, t, seed);
        assert_eq!(blockwise, oracle_reverse_counts(&g, &candidates, t, seed), "oracle, t = {t}");

        let table = CoinTable::new(&g);
        for negative_cache in [true, false] {
            let mut sampler = if negative_cache {
                ReverseSampler::new(&g)
            } else {
                ReverseSampler::new(&g).without_negative_cache()
            };
            let mut scalar = DefaultCounts::new(candidates.len());
            let mut buf = Vec::new();
            for i in 0..t {
                sampler.sample_candidates(
                    &g,
                    &table,
                    &candidates,
                    ScalarCoins::new(seed, i),
                    &mut buf,
                );
                scalar.begin_sample();
                for (j, &hit) in buf.iter().enumerate() {
                    if hit {
                        scalar.bump(j);
                    }
                }
            }
            assert_eq!(blockwise, scalar, "scalar, negative_cache = {negative_cache}, t = {t}");
        }

        for threads in [2usize, 5] {
            assert_eq!(
                parallel_reverse_counts_range(&g, &candidates, 0..t, seed, threads),
                blockwise,
                "threads = {threads}, t = {t}"
            );
        }
    });
}

/// Range decomposition is exact: counts over `a..b` plus `b..c` merge
/// into the counts over `a..c` for arbitrary (unaligned) split points —
/// the prefix-extension property the engine cache relies on. Unaligned
/// chunks occupy the *high* lanes of their home block, so this also
/// exercises partial lane masks that do not start at lane 0.
#[test]
fn unaligned_range_splits_merge_exactly() {
    check(24, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1 << 20);
        let end = arb_budget(rng) + arb_budget(rng);
        let cut = rng.next_bounded(end);
        let whole = forward_counts_range(&g, 0..end, seed);
        let mut parts = forward_counts_range(&g, 0..cut, seed);
        parts.merge(&forward_counts_range(&g, cut..end, seed));
        assert_eq!(whole, parts, "cut {cut} of {end}");

        let candidates: Vec<NodeId> = g.nodes().collect();
        let whole_r = reverse_counts_range(&g, &candidates, 0..end, seed);
        let mut parts_r = reverse_counts_range(&g, &candidates, 0..cut, seed);
        parts_r.merge(&reverse_counts_range(&g, &candidates, cut..end, seed));
        assert_eq!(whole_r, parts_r, "reverse cut {cut} of {end}");
    });
}

/// `materialize_ids` with scattered, non-consecutive sample ids (the
/// shape BSRBK's hash order produces) is lane-for-lane the oracle.
#[test]
fn scattered_id_blocks_match_oracle() {
    check(16, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1 << 20);
        let lanes = rng.range_usize(1, LANES);
        let ids: Vec<u64> = (0..lanes).map(|_| rng.next_bounded(10_000)).collect();
        let table = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        let mut kernel = BlockKernel::new(&g);
        block.materialize_ids(&g, &table, seed, &ids);
        let words = kernel.forward_defaults(&g, &table, &mut block).to_vec();
        for (lane, &id) in ids.iter().enumerate() {
            let defaulted =
                PossibleWorld::sample_with_table(&g, &table, seed, id).defaulted_nodes(&g);
            for v in 0..g.num_nodes() {
                assert_eq!(
                    words[v] >> lane & 1 == 1,
                    defaulted[v],
                    "lane {lane} (sample {id}), node {v}"
                );
            }
        }
        // The reverse kernel agrees candidate by candidate.
        kernel.begin_block();
        for v in g.nodes() {
            let word = kernel.reverse_hit_word(&g, &table, &mut block, v);
            assert_eq!(word, words[v.index()], "reverse word of {v}");
        }
    });
}
