//! Width cross-validation: every superblock width `W ∈ {1, 2, 4, 8}`
//! must produce counts **bit-identical** to the `PossibleWorld` oracle
//! and to every other width — including partial superblocks (budgets
//! with `t % (W·64) ≠ 0` and ranges resuming mid-superblock),
//! lazy-vs-eager edge word-vectors, and the parallel drivers' strided
//! superblock partitions.
//!
//! This is the property that makes width a pure throughput knob: sample
//! `i` always occupies lane `i % 64` of home block `i / 64`, whatever
//! superblock geometry evaluates it, so the planner (and users via
//! `--block-words`) can change width freely without changing a single
//! count.

use ugraph::testkit::{check, random_graph, TestRng};
use ugraph::{NodeId, UncertainGraph};
use vulnds_sampling::{
    fit_width, forward_counts_range_width, parallel_forward_counts_range_width,
    parallel_reverse_counts_range_width, reverse_counts_range_width, BlockWords, CoinTable,
    DefaultCounts, PossibleWorld, SuperBlock, SuperKernel, LANES, MAX_BLOCK_WORDS,
};

fn arb_graph(rng: &mut TestRng) -> UncertainGraph {
    random_graph(rng, 24, 60)
}

/// A sample range that straddles superblock boundaries of every width
/// most of the time (the widest span is `MAX_BLOCK_WORDS · 64 = 512`).
fn arb_range(rng: &mut TestRng) -> std::ops::Range<u64> {
    let start = rng.range_usize(0, 3 * MAX_BLOCK_WORDS * LANES) as u64;
    let len = rng.range_usize(1, 2 * MAX_BLOCK_WORDS * LANES + 7) as u64;
    start..start + len
}

/// The oracle: materialize every world one at a time.
fn oracle_forward_counts(
    g: &UncertainGraph,
    range: std::ops::Range<u64>,
    seed: u64,
) -> DefaultCounts {
    let table = CoinTable::new(g);
    let mut counts = DefaultCounts::new(g.num_nodes());
    for i in range {
        let world = PossibleWorld::sample_with_table(g, &table, seed, i);
        counts.record_mask(&world.defaulted_nodes(g));
    }
    counts
}

#[test]
fn every_width_forward_equals_oracle_and_each_other() {
    check(40, |rng| {
        let g = arb_graph(rng);
        let range = arb_range(rng);
        let seed = rng.next_u64();
        let table = CoinTable::new(&g);
        let oracle = oracle_forward_counts(&g, range.clone(), seed);
        for width in BlockWords::ALL {
            let (counts, usage) =
                forward_counts_range_width(&g, &table, range.clone(), seed, width);
            assert_eq!(counts, oracle, "sequential width {width}, range {range:?}");
            assert!(usage.superblocks > 0, "no superblock accounted at width {width}");
            // The threaded driver partitions by superblock; counts must
            // merge back bit-identically.
            for threads in [2, 5] {
                let (par, _) = parallel_forward_counts_range_width(
                    &g,
                    &table,
                    range.clone(),
                    seed,
                    threads,
                    width,
                );
                assert_eq!(par, oracle, "parallel width {width}, threads {threads}");
            }
        }
    });
}

#[test]
fn every_width_reverse_equals_oracle_and_each_other() {
    check(40, |rng| {
        let g = arb_graph(rng);
        let range = arb_range(rng);
        let seed = rng.next_u64();
        let table = CoinTable::new(&g);
        // A random candidate subset, shuffled order.
        let mut candidates: Vec<NodeId> = g.nodes().collect();
        for i in (1..candidates.len()).rev() {
            candidates.swap(i, rng.next_bounded(i as u64 + 1) as usize);
        }
        candidates.truncate(rng.range_usize(1, candidates.len()));

        let oracle = {
            let mut counts = DefaultCounts::new(candidates.len());
            for i in range.clone() {
                let world = PossibleWorld::sample_with_table(&g, &table, seed, i);
                let defaulted = world.defaulted_nodes(&g);
                let mask: Vec<bool> = candidates.iter().map(|&v| defaulted[v.index()]).collect();
                counts.record_mask(&mask);
            }
            counts
        };
        for width in BlockWords::ALL {
            let (counts, _) =
                reverse_counts_range_width(&g, &table, &candidates, range.clone(), seed, width);
            assert_eq!(counts, oracle, "sequential width {width}, range {range:?}");
            let (par, _) = parallel_reverse_counts_range_width(
                &g,
                &table,
                &candidates,
                range.clone(),
                seed,
                3,
                width,
            );
            assert_eq!(par, oracle, "parallel width {width}");
        }
    });
}

/// Lazy-vs-eager at every width: forcing all edge word-vectors up front
/// must leave the forward pass bit-identical to frontier-lazy synthesis.
#[test]
fn lazy_and_eager_edge_words_agree_at_every_width() {
    fn run<const W: usize>(g: &UncertainGraph, table: &CoinTable, seed: u64) {
        let mut eager_block = SuperBlock::<W>::new(g);
        let mut lazy_block = SuperBlock::<W>::new(g);
        let mut kernel = SuperKernel::<W>::new(g);
        let span = (W * LANES) as u64;
        for sb in 0..2u64 {
            eager_block.materialize(g, table, seed, sb * span, span as usize);
            eager_block.force_edges(table);
            let eager_words = kernel.forward_defaults(g, table, &mut eager_block).to_vec();
            lazy_block.materialize(g, table, seed, sb * span, span as usize);
            let lazy_words = kernel.forward_defaults(g, table, &mut lazy_block).to_vec();
            assert_eq!(eager_words, lazy_words, "width {W}, superblock {sb}");
        }
    }
    check(20, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_u64();
        let table = CoinTable::new(&g);
        run::<1>(&g, &table, seed);
        run::<2>(&g, &table, seed);
        run::<4>(&g, &table, seed);
        run::<8>(&g, &table, seed);
    });
}

/// Every lane of every width unpacks to exactly the oracle world —
/// the strongest form of the stream contract (worlds, not just counts).
#[test]
fn superblock_lanes_are_oracle_worlds_at_every_width() {
    fn run<const W: usize>(g: &UncertainGraph, table: &CoinTable, seed: u64, rng: &mut TestRng) {
        let span = (W * LANES) as u64;
        let first = rng.next_bounded(3) * span;
        let lanes = rng.range_usize(1, W * LANES);
        let mut block = SuperBlock::<W>::new(g);
        block.materialize(g, table, seed, first, lanes);
        for _ in 0..4 {
            let lane = rng.next_bounded(lanes as u64) as usize;
            let expected = PossibleWorld::sample_indexed(g, seed, first + lane as u64);
            assert_eq!(block.lane_world(table, lane), expected, "width {W}, lane {lane}");
        }
    }
    check(20, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_u64();
        let table = CoinTable::new(&g);
        run::<1>(&g, &table, seed, rng);
        run::<2>(&g, &table, seed, rng);
        run::<4>(&g, &table, seed, rng);
        run::<8>(&g, &table, seed, rng);
    });
}

/// `fit_width` narrowing composes with everything else: whatever width
/// the driver actually lands on, counts stay bit-identical.
#[test]
fn fitted_widths_preserve_counts() {
    check(20, |rng| {
        let g = arb_graph(rng);
        let t = rng.range_usize(1, 3000) as u64;
        let seed = rng.next_u64();
        let table = CoinTable::new(&g);
        let oracle = oracle_forward_counts(&g, 0..t, seed);
        for threads in [1usize, 4, 16] {
            let planned = BlockWords::plan(t, threads);
            let fitted = fit_width(&(0..t), planned, threads);
            assert!(fitted <= planned, "fitting may only narrow");
            let (counts, _) =
                parallel_forward_counts_range_width(&g, &table, 0..t, seed, threads, planned);
            assert_eq!(counts, oracle, "t {t}, threads {threads}, planned {planned}");
        }
    });
}
