//! Randomized property tests for the sampling substrate (in-repo test
//! kit; the workspace builds offline with no external dependencies).

use ugraph::testkit::{check, random_graph, TestRng};
use ugraph::{NodeId, UncertainGraph};
use vulnds_sampling::{
    antithetic_forward_counts, forward_counts, parallel_forward_counts, parallel_reverse_counts,
    reverse_counts, PossibleWorld,
};

fn arb_graph(rng: &mut TestRng) -> UncertainGraph {
    random_graph(rng, 12, 24)
}

/// Estimates are proper probabilities and respect hard bounds: a node
/// with `ps = 1` defaults in every world.
#[test]
fn estimates_are_probabilities() {
    check(32, |rng| {
        let g = arb_graph(rng);
        let counts = forward_counts(&g, 400, 7);
        for v in g.nodes() {
            let e = counts.estimate(v.index());
            assert!((0.0..=1.0).contains(&e));
            if g.self_risk(v) == 1.0 {
                assert_eq!(e, 1.0, "certain node must always default");
            }
        }
    });
}

/// Parallel forward and reverse drivers are bit-identical to their
/// sequential counterparts for any thread count.
#[test]
fn parallel_equals_sequential() {
    check(32, |rng| {
        let g = arb_graph(rng);
        let threads = rng.range_usize(1, 6);
        let seq = forward_counts(&g, 200, 11);
        assert_eq!(parallel_forward_counts(&g, 200, 11, threads), seq);
        let cands: Vec<NodeId> = g.nodes().collect();
        let rseq = reverse_counts(&g, &cands, 200, 13);
        assert_eq!(parallel_reverse_counts(&g, &cands, 200, 13, threads), rseq);
    });
}

/// Antithetic estimates agree with independent ones within sampling
/// noise on every graph.
#[test]
fn antithetic_is_unbiased() {
    check(32, |rng| {
        let g = arb_graph(rng);
        let t = 6_000;
        let anti = antithetic_forward_counts(&g, t, 17);
        let indep = forward_counts(&g, t, 19);
        for v in g.nodes() {
            let diff = (anti.estimate(v.index()) - indep.estimate(v.index())).abs();
            assert!(
                diff < 0.08,
                "node {v}: anti {} indep {}",
                anti.estimate(v.index()),
                indep.estimate(v.index())
            );
        }
    });
}

/// Reverse sampling over a candidate subset matches the full run's
/// estimates on those candidates (same seed, same worlds).
#[test]
fn candidate_subset_consistency() {
    check(32, |rng| {
        let g = arb_graph(rng);
        let all: Vec<NodeId> = g.nodes().collect();
        let t = 2_000;
        let full = reverse_counts(&g, &all, t, 23);
        // Singleton runs see the same lazily-built worlds only if the
        // coin-consumption order matches, which it need not — so compare
        // statistically, not bitwise.
        for &v in all.iter().take(3) {
            let single = reverse_counts(&g, &[v], t, 23);
            let diff = (single.estimate(0) - full.estimate(v.index())).abs();
            assert!(
                diff < 0.1,
                "node {v}: single {} full {}",
                single.estimate(0),
                full.estimate(v.index())
            );
        }
    });
}

/// A materialized world's defaulted set is monotone: adding live edges
/// can only grow it.
#[test]
fn world_monotone_in_edges() {
    check(32, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(100);
        let w = PossibleWorld::sample_indexed(&g, seed, 0);
        let base = w.defaulted_nodes(&g);
        let mut all_live = w.clone();
        all_live.edge_live.iter_mut().for_each(|e| *e = true);
        let grown = all_live.defaulted_nodes(&g);
        for v in 0..g.num_nodes() {
            assert!(!base[v] || grown[v], "default lost at {v}");
        }
    });
}

/// A sampled world has positive probability under its own graph: sampling
/// can only fix coins consistent with their probabilities.
#[test]
fn sampled_world_probability_positive() {
    check(32, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(50);
        let w = PossibleWorld::sample_indexed(&g, seed, 1);
        assert!(w.probability(&g) > 0.0);
    });
}
