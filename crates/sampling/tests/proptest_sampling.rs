//! Property tests for the sampling substrate.

use proptest::prelude::*;
use ugraph::{from_parts, DuplicateEdgePolicy, NodeId, UncertainGraph};
use vulnds_sampling::{
    antithetic_forward_counts, forward_counts, parallel_forward_counts, parallel_reverse_counts,
    reverse_counts, PossibleWorld,
};

fn arb_graph() -> impl Strategy<Value = UncertainGraph> {
    (2usize..=12).prop_flat_map(|n| {
        let risks = proptest::collection::vec(0.0f64..=1.0, n);
        let edges = proptest::collection::vec(
            (0..n as u32, 1..n as u32, 0.0f64..=1.0)
                .prop_map(move |(u, d, p)| (u, (u + d) % n as u32, p)),
            0..=24,
        );
        (risks, edges).prop_map(|(risks, edges)| {
            from_parts(&risks, &edges, DuplicateEdgePolicy::KeepMax).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Estimates are proper probabilities and respect hard bounds:
    /// p(v) ≥ ps(v) when ps ∈ {0,1} edge cases hold exactly.
    #[test]
    fn estimates_are_probabilities(g in arb_graph()) {
        let counts = forward_counts(&g, 400, 7);
        for v in g.nodes() {
            let e = counts.estimate(v.index());
            prop_assert!((0.0..=1.0).contains(&e));
            if g.self_risk(v) == 1.0 {
                prop_assert_eq!(e, 1.0, "certain node must always default");
            }
        }
    }

    /// Parallel forward and reverse drivers are bit-identical to their
    /// sequential counterparts for any thread count.
    #[test]
    fn parallel_equals_sequential(g in arb_graph(), threads in 1usize..=6) {
        let seq = forward_counts(&g, 200, 11);
        prop_assert_eq!(parallel_forward_counts(&g, 200, 11, threads), seq);
        let cands: Vec<NodeId> = g.nodes().collect();
        let rseq = reverse_counts(&g, &cands, 200, 13);
        prop_assert_eq!(parallel_reverse_counts(&g, &cands, 200, 13, threads), rseq);
    }

    /// Antithetic estimates agree with independent ones within sampling
    /// noise on every graph.
    #[test]
    fn antithetic_is_unbiased(g in arb_graph()) {
        let t = 6_000;
        let anti = antithetic_forward_counts(&g, t, 17);
        let indep = forward_counts(&g, t, 19);
        for v in g.nodes() {
            let diff = (anti.estimate(v.index()) - indep.estimate(v.index())).abs();
            prop_assert!(diff < 0.08, "node {v}: anti {} indep {}",
                anti.estimate(v.index()), indep.estimate(v.index()));
        }
    }

    /// Reverse sampling over a candidate subset matches the full run's
    /// estimates on those candidates (same seed, same worlds).
    #[test]
    fn candidate_subset_consistency(g in arb_graph()) {
        let all: Vec<NodeId> = g.nodes().collect();
        let t = 2_000;
        let full = reverse_counts(&g, &all, t, 23);
        // Singleton runs see the same lazily-built worlds only if the
        // coin-consumption order matches, which it need not — so compare
        // statistically, not bitwise.
        for &v in all.iter().take(3) {
            let single = reverse_counts(&g, &[v], t, 23);
            let diff = (single.estimate(0) - full.estimate(v.index())).abs();
            prop_assert!(diff < 0.1, "node {v}: single {} full {}",
                single.estimate(0), full.estimate(v.index()));
        }
    }

    /// A materialized world's defaulted set is monotone: adding live
    /// edges can only grow it.
    #[test]
    fn world_monotone_in_edges(g in arb_graph(), seed in 0u64..100) {
        let w = PossibleWorld::sample_indexed(&g, seed, 0);
        let base = w.defaulted_nodes(&g);
        let mut all_live = w.clone();
        all_live.edge_live.iter_mut().for_each(|e| *e = true);
        let grown = all_live.defaulted_nodes(&g);
        for v in 0..g.num_nodes() {
            prop_assert!(!base[v] || grown[v], "default lost at {v}");
        }
    }

    /// World probability times enumeration consistency: a sampled world
    /// has positive probability under its own graph unless it fixed a
    /// zero-probability coin.
    #[test]
    fn sampled_world_probability_positive(g in arb_graph(), seed in 0u64..50) {
        let w = PossibleWorld::sample_indexed(&g, seed, 1);
        // Worlds sampled from the graph can only set coins consistent
        // with their probabilities, so p(W) > 0.
        prop_assert!(w.probability(&g) > 0.0);
    }
}
