//! Direction cross-validation: push, pull, and auto traversal must
//! produce counts **bit-identical** to the `PossibleWorld` oracle and
//! to each other at every width `W ∈ {1, 2, 4, 8}`, every seed, every
//! thread count, on partial superblocks, and with lazy or eager edge
//! word-vectors.
//!
//! This is the property that makes direction a pure throughput knob:
//! the forward fixpoint is a monotone OR-propagation and coin words are
//! random-access functions of `(seed, block, item, level)`, so the
//! order in which the kernel discovers a default — pushed out of a
//! sparse frontier or pulled in over a dense one — cannot change which
//! bits end up set. Only the cost diagnostics (which lazy edge words
//! happened to materialize, how many steps each strategy took) may
//! differ between directions.

use ugraph::testkit::{check, random_graph, TestRng};
use ugraph::UncertainGraph;
use vulnds_sampling::{
    forward_counts_range_width_directed, parallel_forward_counts_range_width_directed, BlockWords,
    CoinTable, DefaultCounts, Direction, PossibleWorld, SuperBlock, SuperKernel, LANES,
    MAX_BLOCK_WORDS,
};

fn arb_graph(rng: &mut TestRng) -> UncertainGraph {
    random_graph(rng, 24, 60)
}

/// A sample range that straddles superblock boundaries of every width
/// most of the time and often leaves a partial trailing superblock.
fn arb_range(rng: &mut TestRng) -> std::ops::Range<u64> {
    let start = rng.range_usize(0, 3 * MAX_BLOCK_WORDS * LANES) as u64;
    let len = rng.range_usize(1, 2 * MAX_BLOCK_WORDS * LANES + 7) as u64;
    start..start + len
}

/// The oracle: materialize every world one at a time.
fn oracle_forward_counts(
    g: &UncertainGraph,
    range: std::ops::Range<u64>,
    seed: u64,
) -> DefaultCounts {
    let table = CoinTable::new(g);
    let mut counts = DefaultCounts::new(g.num_nodes());
    for i in range {
        let world = PossibleWorld::sample_with_table(g, &table, seed, i);
        counts.record_mask(&world.defaulted_nodes(g));
    }
    counts
}

#[test]
fn every_direction_equals_oracle_at_every_width_and_thread_count() {
    check(30, |rng| {
        let g = arb_graph(rng);
        let range = arb_range(rng);
        let seed = rng.next_u64();
        let table = CoinTable::new(&g);
        let oracle = oracle_forward_counts(&g, range.clone(), seed);
        for width in BlockWords::ALL {
            // The lazy-materialization ledger (covered edge words,
            // materialized + skipped) is `num_edges × covered_words`
            // regardless of direction — directions may split it
            // differently (different touch patterns) but never lose or
            // invent a word.
            let mut ledger: Option<u64> = None;
            for direction in Direction::ALL {
                let (counts, usage) = forward_counts_range_width_directed(
                    &g,
                    &table,
                    range.clone(),
                    seed,
                    width,
                    direction,
                );
                assert_eq!(counts, oracle, "sequential {direction}, width {width}");
                let total = usage.edge_words_materialized + usage.edge_words_skipped;
                match ledger {
                    None => ledger = Some(total),
                    Some(expected) => assert_eq!(
                        total, expected,
                        "{direction}, width {width}: edge-word ledger out of balance"
                    ),
                }
                for threads in [2usize, 5] {
                    let (par, _) = parallel_forward_counts_range_width_directed(
                        &g,
                        &table,
                        range.clone(),
                        seed,
                        threads,
                        width,
                        direction,
                    );
                    assert_eq!(par, oracle, "parallel {direction}, width {width}, {threads}t");
                }
            }
        }
    });
}

/// Pinned directions only run their own step kind, and the switch
/// counter only moves when both kinds actually ran.
#[test]
fn step_counters_are_consistent_with_the_pinned_direction() {
    check(30, |rng| {
        let g = arb_graph(rng);
        let range = arb_range(rng);
        let seed = rng.next_u64();
        let table = CoinTable::new(&g);
        for direction in Direction::ALL {
            let (_, usage) = forward_counts_range_width_directed(
                &g,
                &table,
                range.clone(),
                seed,
                BlockWords::W4,
                direction,
            );
            match direction {
                Direction::Push => {
                    assert_eq!(usage.pull_steps, 0, "pinned push must never pull");
                    assert_eq!(usage.direction_switches, 0);
                }
                Direction::Pull => {
                    assert_eq!(usage.push_steps, 0, "pinned pull must never push");
                    assert_eq!(usage.direction_switches, 0);
                }
                Direction::Auto => {
                    if usage.push_steps == 0 || usage.pull_steps == 0 {
                        assert_eq!(
                            usage.direction_switches, 0,
                            "auto cannot switch without both step kinds"
                        );
                    }
                }
            }
        }
    });
}

/// Kernel-level equivalence across the full lazy/eager × direction
/// matrix: forcing every edge word-vector up front must leave all three
/// directions bit-identical to frontier-lazy synthesis, per superblock.
#[test]
fn directions_agree_with_lazy_and_eager_edges_at_every_width() {
    fn run<const W: usize>(g: &UncertainGraph, table: &CoinTable, seed: u64) {
        let mut block = SuperBlock::<W>::new(g);
        let mut kernel = SuperKernel::<W>::new(g);
        let span = (W * LANES) as u64;
        for sb in 0..2u64 {
            let mut reference: Option<Vec<u64>> = None;
            for eager in [false, true] {
                for direction in Direction::ALL {
                    block.materialize(g, table, seed, sb * span, span as usize);
                    if eager {
                        block.force_edges(table);
                    }
                    let words =
                        kernel.forward_defaults_directed(g, table, &mut block, direction).to_vec();
                    match &reference {
                        None => reference = Some(words),
                        Some(expected) => assert_eq!(
                            &words, expected,
                            "width {W}, superblock {sb}, {direction}, eager {eager}"
                        ),
                    }
                }
            }
        }
    }
    check(20, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_u64();
        let table = CoinTable::new(&g);
        run::<1>(&g, &table, seed);
        run::<2>(&g, &table, seed);
        run::<4>(&g, &table, seed);
        run::<8>(&g, &table, seed);
    });
}

/// A partial trailing superblock (covered lanes < W·64) must stay
/// direction-invariant too — the pull sweep's lane masks only cover the
/// populated lanes, exactly like push's seeded frontier.
#[test]
fn partial_superblocks_are_direction_invariant() {
    check(30, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_u64();
        let table = CoinTable::new(&g);
        // 1..(8·64) worlds: partial at every width except sometimes W1.
        let t = rng.range_usize(1, MAX_BLOCK_WORDS * LANES) as u64;
        let oracle = oracle_forward_counts(&g, 0..t, seed);
        for width in BlockWords::ALL {
            for direction in Direction::ALL {
                let (counts, _) =
                    forward_counts_range_width_directed(&g, &table, 0..t, seed, width, direction);
                assert_eq!(counts, oracle, "t {t}, width {width}, {direction}");
            }
        }
    });
}
