//! Property suite for the counter-RNG coin synthesis (in-repo test kit):
//!
//! (a) **lazy == eager** — frontier-lazy edge materialization is
//!     bit-identical to eagerly synthesizing every edge word up front,
//!     for both the forward and the reverse kernel;
//! (b) **dyadic synthesis == scalar Bernoulli** — the 64-lane word, the
//!     per-lane scalar projection, and the `PossibleWorld` oracle all
//!     observe the same coins, with probabilities hitting their
//!     fixed-point targets including `p ∈ {0, 1}` exactly;
//! (c) **partial blocks** — budgets with `t % 64 != 0` and chunks that
//!     start mid-block (high-lane masks) reproduce the oracle.

use ugraph::testkit::{check, random_graph, TestRng};
use ugraph::{from_parts, DuplicateEdgePolicy, NodeId, UncertainGraph};
use vulnds_sampling::{
    forward_counts_range_with, reverse_counts_range_with, BlockKernel, CoinTable, DefaultCounts,
    PossibleWorld, ScalarCoins, WorldBlock, LANES,
};

fn arb_graph(rng: &mut TestRng) -> UncertainGraph {
    random_graph(rng, 20, 50)
}

/// (a) Lazy and eager edge materialization produce bit-identical words
/// and counts, and the lazy path touches at most as many edge words.
#[test]
fn lazy_equals_eager_edge_materialization() {
    check(20, |rng| {
        let g = arb_graph(rng);
        let seed = rng.next_bounded(1 << 16);
        let first = rng.next_bounded(200);
        let lane0 = first % LANES as u64;
        let lanes = rng.range_usize(1, (LANES as u64 - lane0) as usize + 1);
        let table = CoinTable::new(&g);

        // Eager: force every edge word immediately after materializing.
        let mut eager = WorldBlock::new(&g);
        eager.materialize(&g, &table, seed, first, lanes);
        eager.force_edges(&table);
        let eager_usage = eager.take_usage();
        let mut eager_kernel = BlockKernel::new(&g);
        let eager_words = eager_kernel.forward_defaults(&g, &table, &mut eager).to_vec();

        // Lazy: words appear only where the BFS frontier needs them.
        let mut lazy = WorldBlock::new(&g);
        lazy.materialize(&g, &table, seed, first, lanes);
        let mut lazy_kernel = BlockKernel::new(&g);
        let lazy_words = lazy_kernel.forward_defaults(&g, &table, &mut lazy).to_vec();
        assert_eq!(lazy_words, eager_words, "forward defaults, chunk {first}+{lanes}");

        // Every edge word the lazy path did synthesize equals the eager
        // one (probe them all; lazy fills the rest on demand now).
        for e in 0..g.num_edges() {
            assert_eq!(lazy.edge_word(&table, e), eager.edge_word(&table, e), "edge {e}");
        }
        let lazy_usage = lazy.take_usage();
        assert_eq!(eager_usage.edge_words_materialized, g.num_edges() as u64);
        assert_eq!(
            lazy_usage.edge_words_materialized, eager_usage.edge_words_materialized,
            "probe forced the rest"
        );

        // Reverse kernel: same equivalence on a random candidate subset.
        let n = g.num_nodes();
        let candidates: Vec<NodeId> =
            (0..rng.range_usize(1, n)).map(|_| NodeId(rng.next_bounded(n as u64) as u32)).collect();
        let mut lazy2 = WorldBlock::new(&g);
        lazy2.materialize(&g, &table, seed, first, lanes);
        let mut hits = Vec::new();
        lazy_kernel.reverse_hits_into(&g, &table, &mut lazy2, &candidates, &mut hits);
        for (i, &v) in candidates.iter().enumerate() {
            assert_eq!(hits[i], eager_words[v.index()], "reverse hits of {v}");
        }
    });
}

/// (b) The bit-sliced word synthesis, its scalar per-lane projection,
/// and `PossibleWorld` sampling observe identical coins; deterministic
/// probabilities are exact.
#[test]
fn dyadic_synthesis_matches_scalar_oracle() {
    check(20, |rng| {
        let g = arb_graph(rng);
        let table = CoinTable::new(&g);
        let seed = rng.next_bounded(1 << 16);
        let id = rng.next_bounded(1 << 12);
        let world = PossibleWorld::sample_with_table(&g, &table, seed, id);
        let coins = ScalarCoins::new(seed, id);
        for v in g.nodes() {
            assert_eq!(world.self_default[v.index()], coins.node_coin(&table, v.index()));
            if g.self_risk(v) == 0.0 {
                assert!(!world.self_default[v.index()], "p = 0 must never fire");
            }
            if g.self_risk(v) == 1.0 {
                assert!(world.self_default[v.index()], "p = 1 must always fire");
            }
        }
        for e in g.edges() {
            assert_eq!(world.edge_live[e.index()], coins.edge_coin(&table, e.index()));
        }

        // Lane-for-lane: the world is one lane of the 64-wide block.
        let mut block = WorldBlock::new(&g);
        block.materialize(&g, &table, seed, id / 64 * 64, 64);
        assert_eq!(block.lane_world(&table, (id % 64) as usize), world);
    });
}

/// (b, frequency) Dyadic coins hit their quantized probabilities in the
/// law of large numbers, for random fixed-point probabilities including
/// the exact endpoints.
#[test]
fn dyadic_frequencies_match_fixed_point_probabilities() {
    // One node per regime: p = 0, p = 1, a dyadic p, and two arbitrary
    // probabilities (quantization error ≤ 2^-33, invisible here).
    let ps = [0.0, 1.0, 0.25, 0.371, 0.9317];
    let g = from_parts(&ps, &[], DuplicateEdgePolicy::Error).unwrap();
    let table = CoinTable::new(&g);
    let t = 40_000u64;
    let (counts, usage) = forward_counts_range_with(&g, &table, 0..t, 99);
    assert_eq!(counts.count(0), 0, "p = 0 fired");
    assert_eq!(counts.count(1), t, "p = 1 missed");
    for (v, &p) in ps.iter().enumerate().skip(2) {
        let freq = counts.estimate(v);
        assert!((freq - p).abs() < 0.01, "node {v}: freq {freq} vs p {p}");
    }
    // Sentinel probabilities draw no uniform words; with no edges the
    // whole run's word count stays well under one word per coin.
    assert!(usage.words > 0);
    assert_eq!(usage.edge_words_materialized, 0);
}

/// (c) Partial budgets and mid-block chunk starts reproduce the oracle
/// exactly, and arbitrary three-way splits merge into the whole.
#[test]
fn partial_blocks_match_oracle_under_new_contract() {
    check(20, |rng| {
        let g = arb_graph(rng);
        let table = CoinTable::new(&g);
        let seed = rng.next_bounded(1 << 16);
        let t = rng.range_usize(1, 3 * LANES + 7) as u64;

        let mut oracle = DefaultCounts::new(g.num_nodes());
        for i in 0..t {
            let world = PossibleWorld::sample_with_table(&g, &table, seed, i);
            oracle.record_mask(&world.defaulted_nodes(&g));
        }

        let (whole, _) = forward_counts_range_with(&g, &table, 0..t, seed);
        assert_eq!(whole, oracle, "whole range, t = {t}");

        // Random split points: the middle part starts and ends mid-block
        // almost always.
        let a = rng.next_bounded(t + 1);
        let b = a + rng.next_bounded(t - a + 1);
        let mut parts = forward_counts_range_with(&g, &table, 0..a, seed).0;
        parts.merge(&forward_counts_range_with(&g, &table, a..b, seed).0);
        parts.merge(&forward_counts_range_with(&g, &table, b..t, seed).0);
        assert_eq!(parts, oracle, "split 0..{a}..{b}..{t}");

        // Reverse projection of an interior chunk.
        let candidates: Vec<NodeId> = g.nodes().collect();
        let (rev, _) = reverse_counts_range_with(&g, &table, &candidates, a..b, seed);
        let mut rev_oracle = DefaultCounts::new(candidates.len());
        for i in a..b {
            let world = PossibleWorld::sample_with_table(&g, &table, seed, i);
            rev_oracle.record_mask(&world.defaulted_nodes(&g));
        }
        assert_eq!(rev, rev_oracle, "reverse chunk {a}..{b}");
    });
}
