//! # vulnds-sampling — possible-world samplers for uncertain graphs
//!
//! Implements the sampling substrate of the VulnDS system:
//!
//! * [`ForwardSampler`] — the inner loop of the paper's Algorithm 1:
//!   flip every self-default coin, then BFS forward flipping edge coins.
//! * [`ReverseSampler`] — Algorithm 5: per-candidate reverse BFS with
//!   lazily-memoized coins, shared consistently within one sample.
//! * [`PossibleWorld`] / [`WorldEnumerator`] — fully-materialized worlds,
//!   the semantic reference the samplers are validated against.
//! * [`parallel`] — deterministic multi-threaded drivers: identical counts
//!   to the sequential runs for any thread count.
//!
//! ```
//! use ugraph::{from_parts, DuplicateEdgePolicy};
//! use vulnds_sampling::forward_counts;
//!
//! // 0 → 1 chain: p(0) = 0.5, p(1) = 0.5 · 0.5 = 0.25.
//! let g = from_parts(&[0.5, 0.0], &[(0, 1, 0.5)], DuplicateEdgePolicy::Error).unwrap();
//! let counts = forward_counts(&g, 20_000, 42);
//! assert!((counts.estimate(1) - 0.25).abs() < 0.02);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod antithetic;
pub mod counts;
pub mod forward;
pub mod parallel;
pub mod reverse;
pub mod rng;
pub mod world;

pub use antithetic::antithetic_forward_counts;
pub use counts::DefaultCounts;
pub use forward::{forward_counts, forward_counts_range, ForwardSampler};
pub use parallel::{
    parallel_forward_counts, parallel_forward_counts_range, parallel_reverse_counts,
    parallel_reverse_counts_range,
};
pub use reverse::{reverse_counts, reverse_counts_range, ReverseSampler};
pub use rng::Xoshiro256pp;
pub use world::{PossibleWorld, WorldEnumerator};
