//! # vulnds-sampling — possible-world samplers for uncertain graphs
//!
//! Implements the sampling substrate of the VulnDS system. Every
//! runtime path is **bit-parallel end to end**: worlds are packed as
//! `[u64; W]` word-vectors — `W` consecutive 64-lane home blocks form a
//! *superblock* — one BFS step advances all `W·64` worlds with bitwise
//! AND/OR the compiler autovectorizes, and the lane words themselves
//! are synthesized transposed from a stateless `(seed, block, item,
//! level)` generator, with edge word-vectors materialized lazily when a
//! traversal first touches them. See [`coins`] for the generator,
//! [`block`] for the data path, and [`width`] for runtime width
//! selection (counts are bit-identical at every width).
//!
//! * [`CoinTable`] / [`coins`] — per-graph dyadic thresholds plus the
//!   stateless bit-sliced Bernoulli synthesis.
//! * [`SuperBlock`] / [`SuperKernel`] — the W×64-lane possible-world
//!   kernel behind [`forward_counts`], [`reverse_counts`], and the
//!   parallel drivers; [`WorldBlock`] / [`BlockKernel`] are the width-1
//!   aliases used by scattered-lane adaptive passes.
//! * [`BlockWords`] — the supported superblock widths and the
//!   budget/thread-aware planning heuristic.
//! * [`ForwardSampler`] — scalar reference for the inner loop of the
//!   paper's Algorithm 1 (one world at a time).
//! * [`ReverseSampler`] — scalar reference for Algorithm 5: per-candidate
//!   reverse BFS with result caches and lazy coins.
//! * [`PossibleWorld`] / [`WorldEnumerator`] — fully-materialized worlds,
//!   the semantic oracle everything above is validated against
//!   (bit-identical, not just in distribution).
//! * [`parallel`] — deterministic multi-threaded drivers partitioned by
//!   block: identical counts to the sequential runs for any thread count.
//!
//! ```
//! use ugraph::{from_parts, DuplicateEdgePolicy};
//! use vulnds_sampling::forward_counts;
//!
//! // 0 → 1 chain: p(0) = 0.5, p(1) = 0.5 · 0.5 = 0.25.
//! let g = from_parts(&[0.5, 0.0], &[(0, 1, 0.5)], DuplicateEdgePolicy::Error).unwrap();
//! let counts = forward_counts(&g, 20_000, 42);
//! assert!((counts.estimate(1) - 0.25).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod antithetic;
pub mod block;
pub mod cancel;
pub mod coins;
pub mod counts;
pub mod direction;
pub mod forward;
pub mod parallel;
pub mod reverse;
pub mod rng;
pub mod touch;
pub mod width;
pub mod world;

pub use antithetic::antithetic_forward_counts;
pub use block::{
    block_chunks, lane_mask, superblock_chunks, BlockKernel, SuperBlock, SuperKernel, WorldBlock,
    LANES,
};
pub use cancel::CancelToken;
pub use coins::{CoinTable, CoinUsage, ScalarCoins, COIN_PRECISION};
pub use counts::DefaultCounts;
pub use direction::Direction;
pub use forward::{
    forward_counts, forward_counts_range, forward_counts_range_wide,
    forward_counts_range_wide_cancellable, forward_counts_range_wide_directed,
    forward_counts_range_width, forward_counts_range_width_directed, forward_counts_range_with,
    ForwardSampler,
};
pub use parallel::{
    fit_width, parallel_forward_counts, parallel_forward_counts_range,
    parallel_forward_counts_range_width, parallel_forward_counts_range_width_cancellable,
    parallel_forward_counts_range_width_directed, parallel_forward_counts_range_width_traced,
    parallel_forward_counts_range_with, parallel_reverse_counts, parallel_reverse_counts_range,
    parallel_reverse_counts_range_width, parallel_reverse_counts_range_width_cancellable,
    parallel_reverse_counts_range_width_traced, parallel_reverse_counts_range_with,
};
pub use reverse::{
    reverse_counts, reverse_counts_range, reverse_counts_range_wide,
    reverse_counts_range_wide_cancellable, reverse_counts_range_width, reverse_counts_range_with,
    ReverseSampler,
};
pub use rng::Xoshiro256pp;
pub use touch::{TouchLedger, TouchedEdges};
pub use width::{BlockWords, MAX_BLOCK_WORDS};
pub use world::{PossibleWorld, WorldEnumerator};
