//! Deterministic sequential random number generation.
//!
//! Since the counter-RNG refactor the possible-world coins come from the
//! stateless generator in [`crate::coins`]; this sequential PRNG remains
//! the workhorse for everything that *wants* a stream — synthetic
//! dataset generation, workload drivers, label noise, and test
//! utilities. [`Xoshiro256pp::for_sample`] still derives independent
//! per-index streams via SplitMix64 for those callers.

/// Xoshiro256++ PRNG (Blackman & Vigna). Small state, excellent statistical
/// quality, and ~1 ns per 64-bit output — the sampler's hot loop is coin
/// flips, so this matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64, as
    /// recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Xoshiro256pp { s }
    }

    /// Derives the RNG for sample `sample_id` of a run seeded with `seed`.
    ///
    /// The two inputs are mixed through SplitMix64 so that nearby sample
    /// ids produce unrelated streams.
    pub fn for_sample(seed: u64, sample_id: u64) -> Self {
        let mut sm = seed ^ sample_id.wrapping_mul(0xA24B_AED4_963E_E407);
        let _ = splitmix64(&mut sm);
        Xoshiro256pp::new(splitmix64(&mut sm))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64_raw() >> 11) as f64 * SCALE
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// Matches the paper's pseudocode (`r ≤ p` with `r ~ U[0,1]`): `p = 0`
    /// can never fire (since `next_f64 < 1`... and `r < 0` impossible) and
    /// `p = 1` always fires.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (unbiased enough for workload generation; not for cryptography).
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64_raw() as u128 * bound as u128) >> 64) as u64
    }
}

impl Xoshiro256pp {
    /// Fills `dest` with raw output bytes (little-endian words).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Xoshiro256pp::new(123);
        let mut b = Xoshiro256pp::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::new(1);
        let mut b = Xoshiro256pp::new(2);
        let equal = (0..64).filter(|_| a.next_u64_raw() == b.next_u64_raw()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn per_sample_streams_are_independent_of_order() {
        let a5 = Xoshiro256pp::for_sample(9, 5);
        let b5 = Xoshiro256pp::for_sample(9, 5);
        assert_eq!(a5, b5);
        let a6 = Xoshiro256pp::for_sample(9, 6);
        assert_ne!(a5, a6);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256pp::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = Xoshiro256pp::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Xoshiro256pp::new(13);
        for _ in 0..1000 {
            assert!(!r.bernoulli(0.0));
            assert!(r.bernoulli(1.0));
        }
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut r = Xoshiro256pp::new(17);
        let n = 200_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn bounded_is_in_range_and_covers() {
        let mut r = Xoshiro256pp::new(19);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.next_bounded(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = Xoshiro256pp::new(23);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
