//! Superblock width selection — how many 64-lane home blocks one
//! [`SuperBlock`](crate::SuperBlock) spans.
//!
//! The bit-parallel kernel packs worlds 64 per `u64` word; a superblock
//! widens every structural step (CSR walks, frontier queue pushes, epoch
//! checks) to `W` words at once, evaluating `W · 64` worlds per
//! traversal. Counts are **bit-identical at every width** — sample `i`
//! always occupies lane `i % 64` of home block `i / 64`, whatever
//! superblock that home block is evaluated in — so width is purely a
//! performance knob: wider superblocks amortize structural overhead,
//! narrower ones keep partitions fine-grained for thread fan-out and
//! small budgets.
//!
//! [`BlockWords`] is the closed set of supported widths (the kernels are
//! monomorphized per width, so the set is fixed at `{1, 2, 4, 8}`), and
//! [`BlockWords::plan`] is the default heuristic: go as wide as the
//! budget allows while leaving every worker thread at least two full
//! superblocks of work.

use crate::block::LANES;

/// Widest supported superblock, in 64-lane words.
pub const MAX_BLOCK_WORDS: usize = 8;

/// Work units each worker thread should keep at a chosen width — the
/// shared saturation factor behind both [`BlockWords::plan`] (which
/// counts *full* superblocks in a budget, so a tiny tail never pushes
/// the width up) and [`fit_width`](crate::fit_width) (which counts
/// chunks of a concrete range, partials included, so a coarse partition
/// never starves a thread). Tune it here and both stay in step.
pub const MIN_UNITS_PER_THREAD: u64 = 2;

/// Superblock width: how many 64-lane words (home blocks) the kernels
/// advance per traversal step. The variants are the monomorphized widths
/// the sampling crate ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum BlockWords {
    /// One word — the classic 64-lane block path.
    #[default]
    W1,
    /// Two words: 128 worlds per superblock.
    W2,
    /// Four words: 256 worlds per superblock.
    W4,
    /// Eight words: 512 worlds per superblock.
    W8,
}

impl BlockWords {
    /// All supported widths, narrowest first.
    pub const ALL: [BlockWords; 4] =
        [BlockWords::W1, BlockWords::W2, BlockWords::W4, BlockWords::W8];

    /// The width as a word count (1, 2, 4, or 8).
    #[inline]
    pub fn words(self) -> usize {
        match self {
            BlockWords::W1 => 1,
            BlockWords::W2 => 2,
            BlockWords::W4 => 4,
            BlockWords::W8 => 8,
        }
    }

    /// Worlds per superblock at this width (`words · 64`).
    #[inline]
    pub fn lanes(self) -> u64 {
        (self.words() * LANES) as u64
    }

    /// The width for a word count, if it is one of the supported widths.
    pub fn from_words(words: usize) -> Option<BlockWords> {
        match words {
            1 => Some(BlockWords::W1),
            2 => Some(BlockWords::W2),
            4 => Some(BlockWords::W4),
            8 => Some(BlockWords::W8),
            _ => None,
        }
    }

    /// The next narrower width (`None` below [`BlockWords::W1`]).
    pub fn narrower(self) -> Option<BlockWords> {
        match self {
            BlockWords::W1 => None,
            BlockWords::W2 => Some(BlockWords::W1),
            BlockWords::W4 => Some(BlockWords::W2),
            BlockWords::W8 => Some(BlockWords::W4),
        }
    }

    /// Default width heuristic: the widest superblock that still leaves
    /// every worker thread at least [`MIN_UNITS_PER_THREAD`] **full
    /// superblocks** of work for a `budget`-world pass. Big fixed-budget
    /// passes (Equation-3/4 budgets, ground truth, scoring) go wide;
    /// small follow-ups and heavily-threaded small batches stay narrow
    /// so the partition unit does not coarsen away the fan-out (the
    /// drivers additionally re-fit per drawn range with
    /// [`fit_width`](crate::fit_width)). Adaptive hash-order passes
    /// (BSRBK) do not use this planner — their scattered-lane replay is
    /// inherently single-word.
    pub fn plan(budget: u64, threads: usize) -> BlockWords {
        let threads = threads.max(1) as u64;
        let mut width = BlockWords::W8;
        while let Some(narrower) = width.narrower() {
            if budget >= width.lanes() * threads * MIN_UNITS_PER_THREAD {
                break;
            }
            width = narrower;
        }
        width
    }
}

impl std::fmt::Display for BlockWords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.words())
    }
}

impl std::str::FromStr for BlockWords {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse::<usize>()
            .ok()
            .and_then(BlockWords::from_words)
            .ok_or_else(|| format!("block words must be one of 1, 2, 4, 8 (got {s})"))
    }
}

/// Runs `$body` with the const `$W` bound to the word count of the
/// runtime width `$width` — the dispatch point between runtime width
/// selection and the monomorphized kernels.
macro_rules! with_block_words {
    ($width:expr, $W:ident, $body:expr) => {
        match $width {
            $crate::width::BlockWords::W1 => {
                const $W: usize = 1;
                $body
            }
            $crate::width::BlockWords::W2 => {
                const $W: usize = 2;
                $body
            }
            $crate::width::BlockWords::W4 => {
                const $W: usize = 4;
                $body
            }
            $crate::width::BlockWords::W8 => {
                const $W: usize = 8;
                $body
            }
        }
    };
}
pub(crate) use with_block_words;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_lanes_roundtrip() {
        for width in BlockWords::ALL {
            assert_eq!(BlockWords::from_words(width.words()), Some(width));
            assert_eq!(width.lanes(), width.words() as u64 * 64);
        }
        assert_eq!(BlockWords::from_words(3), None);
        assert_eq!(BlockWords::from_words(16), None);
        assert_eq!(BlockWords::default(), BlockWords::W1);
    }

    #[test]
    fn narrower_walks_down_to_one() {
        assert_eq!(BlockWords::W8.narrower(), Some(BlockWords::W4));
        assert_eq!(BlockWords::W4.narrower(), Some(BlockWords::W2));
        assert_eq!(BlockWords::W2.narrower(), Some(BlockWords::W1));
        assert_eq!(BlockWords::W1.narrower(), None);
    }

    #[test]
    fn plan_goes_wide_for_big_budgets_and_narrow_for_small() {
        assert_eq!(BlockWords::plan(20_000, 1), BlockWords::W8);
        assert_eq!(BlockWords::plan(1024, 1), BlockWords::W8);
        assert_eq!(BlockWords::plan(1023, 1), BlockWords::W4);
        assert_eq!(BlockWords::plan(256, 1), BlockWords::W2);
        assert_eq!(BlockWords::plan(100, 1), BlockWords::W1);
        assert_eq!(BlockWords::plan(0, 1), BlockWords::W1);
        // More threads need more superblocks to stay saturated.
        assert_eq!(BlockWords::plan(20_000, 8), BlockWords::W8);
        assert_eq!(BlockWords::plan(4096, 8), BlockWords::W4);
        assert_eq!(BlockWords::plan(2048, 8), BlockWords::W2);
        assert_eq!(BlockWords::plan(1000, 8), BlockWords::W1);
        assert_eq!(BlockWords::plan(4096, 0), BlockWords::W8, "zero threads clamps to 1");
    }

    #[test]
    fn parse_and_display() {
        for width in BlockWords::ALL {
            assert_eq!(width.to_string().parse::<BlockWords>(), Ok(width));
        }
        assert!("3".parse::<BlockWords>().is_err());
        assert!("auto".parse::<BlockWords>().is_err());
        assert_eq!(MAX_BLOCK_WORDS, BlockWords::W8.words());
    }
}
