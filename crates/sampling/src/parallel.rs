//! Parallel sample execution over std scoped threads.
//!
//! Work is partitioned by **superblock** (`W·64`-sample aligned chunks,
//! see [`crate::block`]), not by individual sample: threads claim
//! chunks of the range's superblock decomposition from a shared atomic
//! counter, in index order. Each chunk's counts are a pure function of
//! `(seed, chunk)` — the coin generator is a stateless counter RNG, so
//! threads share one read-only [`CoinTable`] and never coordinate
//! beyond the claim counter — and partial counts merge with commutative
//! addition, so a parallel run with any thread count produces
//! **bit-identical counts** to the sequential run, at any width.
//!
//! Cancellation ([`CancelToken`]) is checked before each claim, never
//! mid-chunk: a claimed chunk always finishes. Because claims are a
//! single monotone counter, the set of completed chunks at cancellation
//! is exactly the contiguous prefix `0..C` of the decomposition — the
//! same prefix a sequential cancelled run produces — so a degraded
//! answer replays bit-identically from its sample count alone.
//!
//! Width-aware chunking: a wide superblock coarsens the partition unit,
//! so before partitioning the drivers narrow the requested width until
//! the range decomposes into at least two chunks per worker thread
//! ([`fit_width`]). Counts are width-independent, so narrowing never
//! changes an answer — it only keeps small budgets from starving
//! threads.

use crate::block::{superblock_chunks, SuperBlock, SuperKernel};
use crate::cancel::CancelToken;
use crate::coins::{CoinTable, CoinUsage};
use crate::counts::DefaultCounts;
use crate::direction::Direction;
use crate::touch::TouchLedger;
use crate::width::{with_block_words, BlockWords};
use std::sync::atomic::{AtomicUsize, Ordering};
use ugraph::{NodeId, UncertainGraph};

/// Clamps a requested thread count to something sane: at least one, at
/// most one thread per work item, and never more than the machine's
/// available parallelism (extra threads could only contend).
pub(crate) fn effective_threads(requested: usize, work_items: u64) -> usize {
    let hardware = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    requested.max(1).min(work_items.max(1) as usize).min(hardware)
}

/// Number of superblock chunks `range` decomposes into at `width`.
fn chunk_count(range: &std::ops::Range<u64>, width: BlockWords) -> u64 {
    if range.end <= range.start {
        return 0;
    }
    let span = width.lanes();
    (range.end - 1) / span - range.start / span + 1
}

/// Narrows `width` until the range decomposes into at least
/// [`MIN_UNITS_PER_THREAD`](crate::width::MIN_UNITS_PER_THREAD)
/// superblock chunks per worker thread (or width 1 is reached), so a
/// small budget still saturates and balances all threads even when the
/// planner asked for wide superblocks. Partial chunks count — unlike
/// [`BlockWords::plan`], which requires *full* superblocks, this guards
/// a concrete range where any chunk is real work for a thread. Counts
/// are bit-identical at every width, so this only redistributes work.
pub fn fit_width(range: &std::ops::Range<u64>, width: BlockWords, threads: usize) -> BlockWords {
    let threads = threads.max(1) as u64;
    let mut width = width;
    while let Some(narrower) = width.narrower() {
        if chunk_count(range, width) >= threads * crate::width::MIN_UNITS_PER_THREAD {
            break;
        }
        width = narrower;
    }
    width
}

/// Parallel version of [`crate::forward::forward_counts`], on
/// planner-selected superblocks ([`BlockWords::plan`]).
///
/// Splits the superblock decomposition of `0..t` into `threads` strided
/// partitions; each thread owns its kernel scratch and partial counts.
pub fn parallel_forward_counts(
    graph: &UncertainGraph,
    t: u64,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    let width = BlockWords::plan(t, threads);
    parallel_forward_counts_range_width(graph, &CoinTable::new(graph), 0..t, seed, threads, width).0
}

/// [`parallel_forward_counts_range_with`] with a throwaway
/// [`CoinTable`], for callers without a session cache.
pub fn parallel_forward_counts_range(
    graph: &UncertainGraph,
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    parallel_forward_counts_range_with(graph, &CoinTable::new(graph), range, seed, threads).0
}

/// Parallel version of [`crate::forward::forward_counts_range_with`]
/// (width 1): bit-identical to the sequential range run for any thread
/// count. Returns the counts plus the merged materialization counters of
/// every worker. Width-selecting callers use
/// [`parallel_forward_counts_range_width`].
pub fn parallel_forward_counts_range_with(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
) -> (DefaultCounts, CoinUsage) {
    parallel_forward_counts_range_width(graph, coins, range, seed, threads, BlockWords::W1)
}

/// [`parallel_forward_counts_range_with`] on superblocks of the given
/// width (narrowed by [`fit_width`] when the range is too small to keep
/// every thread busy at that width): bit-identical to the sequential
/// width-1 run for any thread count and any width.
pub fn parallel_forward_counts_range_width(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
    width: BlockWords,
) -> (DefaultCounts, CoinUsage) {
    parallel_forward_counts_range_width_directed(
        graph,
        coins,
        range,
        seed,
        threads,
        width,
        Direction::default(),
    )
}

/// [`parallel_forward_counts_range_width`] with an explicit traversal
/// [`Direction`]: bit-identical counts for every direction, width, and
/// thread count.
#[allow(clippy::too_many_arguments)]
pub fn parallel_forward_counts_range_width_directed(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
    width: BlockWords,
    direction: Direction,
) -> (DefaultCounts, CoinUsage) {
    parallel_forward_counts_range_width_cancellable(
        graph, coins, range, seed, threads, width, direction, None,
    )
}

/// [`parallel_forward_counts_range_width_directed`] polling a
/// [`CancelToken`] between superblock chunks. A cancelled run returns
/// the contiguous chunk-aligned prefix it completed (exact sample count
/// inside the counts); replaying with that count as the budget
/// reproduces the prefix bit-identically at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn parallel_forward_counts_range_width_cancellable(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
    width: BlockWords,
    direction: Direction,
    cancel: Option<&CancelToken>,
) -> (DefaultCounts, CoinUsage) {
    parallel_forward_counts_range_width_traced(
        graph, coins, range, seed, threads, width, direction, cancel, None,
    )
}

/// [`parallel_forward_counts_range_width_cancellable`] that additionally
/// folds every worker's touched-edge set into `ledger` — the
/// revalidation bookkeeping for delta-aware sampled-state caches. The
/// counts are bit-identical with or without a ledger.
#[allow(clippy::too_many_arguments)]
pub fn parallel_forward_counts_range_width_traced(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
    width: BlockWords,
    direction: Direction,
    cancel: Option<&CancelToken>,
    ledger: Option<&TouchLedger>,
) -> (DefaultCounts, CoinUsage) {
    let width = fit_width(&range, width, threads);
    with_block_words!(width, W, {
        let chunks: Vec<std::ops::Range<u64>> = superblock_chunks(range.clone(), W).collect();
        let threads = effective_threads(threads, chunks.len() as u64);
        if threads == 1 && ledger.is_none() {
            return crate::forward::forward_counts_range_wide_cancellable::<W>(
                graph, coins, range, seed, direction, cancel,
            );
        }
        forward_partitioned::<W>(graph, coins, &chunks, seed, threads, direction, cancel, ledger)
    })
}

/// The claim-based multi-thread forward runner, taking `threads` as-is.
/// Split out from the public entry point so tests exercise the threaded
/// merge path even on single-core machines (where `effective_threads`
/// would clamp to the sequential path).
///
/// Threads draw chunk indices from a shared monotone counter; the
/// cancel token is polled before each claim and a claimed chunk always
/// finishes, so the completed set is exactly the contiguous prefix of
/// `chunks` at the counter's final value — the same prefix the
/// sequential cancellable driver produces.
#[allow(clippy::too_many_arguments)]
fn forward_partitioned<const W: usize>(
    graph: &UncertainGraph,
    coins: &CoinTable,
    chunks: &[std::ops::Range<u64>],
    seed: u64,
    threads: usize,
    direction: Direction,
    cancel: Option<&CancelToken>,
    ledger: Option<&TouchLedger>,
) -> (DefaultCounts, CoinUsage) {
    let next = AtomicUsize::new(0);
    let partials = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut block = SuperBlock::<W>::new(graph);
                    let mut kernel = SuperKernel::<W>::new(graph);
                    let mut counts = DefaultCounts::new(graph.num_nodes());
                    loop {
                        if cancel.is_some_and(CancelToken::is_cancelled) {
                            break;
                        }
                        // ORDERING: Relaxed — the counter only hands out
                        // distinct indices; chunk results flow to the
                        // merge through thread join, not this atomic.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(i) else { break };
                        crate::forward::accumulate_forward_chunk(
                            graph,
                            coins,
                            chunk.clone(),
                            seed,
                            direction,
                            &mut block,
                            &mut kernel,
                            &mut counts,
                        );
                    }
                    if let Some(ledger) = ledger {
                        ledger.absorb(block.touched_edges());
                    }
                    (counts, block.take_usage())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect::<Vec<_>>()
    });

    let mut total = DefaultCounts::new(graph.num_nodes());
    let mut usage = CoinUsage::default();
    for (p, u) in &partials {
        total.merge(p);
        usage.merge(u);
    }
    (total, usage)
}

/// Parallel version of [`crate::reverse::reverse_counts`], on
/// planner-selected superblocks ([`BlockWords::plan`]).
pub fn parallel_reverse_counts(
    graph: &UncertainGraph,
    candidates: &[NodeId],
    t: u64,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    let width = BlockWords::plan(t, threads);
    parallel_reverse_counts_range_width(
        graph,
        &CoinTable::new(graph),
        candidates,
        0..t,
        seed,
        threads,
        width,
    )
    .0
}

/// [`parallel_reverse_counts_range_with`] with a throwaway
/// [`CoinTable`], for callers without a session cache.
pub fn parallel_reverse_counts_range(
    graph: &UncertainGraph,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    parallel_reverse_counts_range_with(
        graph,
        &CoinTable::new(graph),
        candidates,
        range,
        seed,
        threads,
    )
    .0
}

/// Parallel version of [`crate::reverse::reverse_counts_range_with`]
/// (width 1): bit-identical to the sequential range run for any thread
/// count. Width-selecting callers use
/// [`parallel_reverse_counts_range_width`].
pub fn parallel_reverse_counts_range_with(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
) -> (DefaultCounts, CoinUsage) {
    parallel_reverse_counts_range_width(
        graph,
        coins,
        candidates,
        range,
        seed,
        threads,
        BlockWords::W1,
    )
}

/// [`parallel_reverse_counts_range_with`] on superblocks of the given
/// width (narrowed by [`fit_width`] when the range is too small to keep
/// every thread busy at that width): bit-identical to the sequential
/// width-1 run for any thread count and any width.
#[allow(clippy::too_many_arguments)]
pub fn parallel_reverse_counts_range_width(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
    width: BlockWords,
) -> (DefaultCounts, CoinUsage) {
    parallel_reverse_counts_range_width_cancellable(
        graph, coins, candidates, range, seed, threads, width, None,
    )
}

/// [`parallel_reverse_counts_range_width`] polling a [`CancelToken`]
/// between superblock chunks, with the same contiguous-prefix guarantee
/// as [`parallel_forward_counts_range_width_cancellable`].
#[allow(clippy::too_many_arguments)]
pub fn parallel_reverse_counts_range_width_cancellable(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
    width: BlockWords,
    cancel: Option<&CancelToken>,
) -> (DefaultCounts, CoinUsage) {
    parallel_reverse_counts_range_width_traced(
        graph, coins, candidates, range, seed, threads, width, cancel, None,
    )
}

/// [`parallel_reverse_counts_range_width_cancellable`] that additionally
/// folds every worker's touched-edge set into `ledger` (see
/// [`parallel_forward_counts_range_width_traced`]).
#[allow(clippy::too_many_arguments)]
pub fn parallel_reverse_counts_range_width_traced(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
    width: BlockWords,
    cancel: Option<&CancelToken>,
    ledger: Option<&TouchLedger>,
) -> (DefaultCounts, CoinUsage) {
    let width = fit_width(&range, width, threads);
    with_block_words!(width, W, {
        let chunks: Vec<std::ops::Range<u64>> = superblock_chunks(range.clone(), W).collect();
        let threads = effective_threads(threads, chunks.len() as u64);
        if threads == 1 && ledger.is_none() {
            return crate::reverse::reverse_counts_range_wide_cancellable::<W>(
                graph, coins, candidates, range, seed, cancel,
            );
        }
        reverse_partitioned::<W>(graph, coins, candidates, &chunks, seed, threads, cancel, ledger)
    })
}

/// The claim-based multi-thread reverse runner, taking `threads` as-is
/// (see [`forward_partitioned`] for why it is split out and how
/// cancellation keeps the completed set a contiguous prefix).
#[allow(clippy::too_many_arguments)]
fn reverse_partitioned<const W: usize>(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    chunks: &[std::ops::Range<u64>],
    seed: u64,
    threads: usize,
    cancel: Option<&CancelToken>,
    ledger: Option<&TouchLedger>,
) -> (DefaultCounts, CoinUsage) {
    let next = AtomicUsize::new(0);
    let partials = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut block = SuperBlock::<W>::new(graph);
                    let mut kernel = SuperKernel::<W>::new(graph);
                    let mut hits = Vec::with_capacity(candidates.len() * W);
                    let mut counts = DefaultCounts::new(candidates.len());
                    loop {
                        if cancel.is_some_and(CancelToken::is_cancelled) {
                            break;
                        }
                        // ORDERING: Relaxed — distinct-index handout only;
                        // results synchronize through thread join.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(i) else { break };
                        crate::reverse::accumulate_reverse_chunk(
                            graph,
                            coins,
                            candidates,
                            chunk.clone(),
                            seed,
                            &mut block,
                            &mut kernel,
                            &mut hits,
                            &mut counts,
                        );
                    }
                    if let Some(ledger) = ledger {
                        ledger.absorb(block.touched_edges());
                    }
                    (counts, block.take_usage())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect::<Vec<_>>()
    });

    let mut total = DefaultCounts::new(candidates.len());
    let mut usage = CoinUsage::default();
    for (p, u) in &partials {
        total.merge(p);
        usage.merge(u);
    }
    (total, usage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::block_chunks;
    use crate::forward::forward_counts;
    use crate::reverse::reverse_counts;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn graph() -> UncertainGraph {
        from_parts(
            &[0.3, 0.2, 0.1, 0.4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.25)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn parallel_forward_bit_identical_to_sequential() {
        let g = graph();
        let seq = forward_counts(&g, 1000, 42);
        for threads in [1, 2, 3, 8] {
            let par = parallel_forward_counts(&g, 1000, 42, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_reverse_bit_identical_to_sequential() {
        let g = graph();
        let cands: Vec<NodeId> = g.nodes().collect();
        let seq = reverse_counts(&g, &cands, 1000, 7);
        for threads in [2, 4] {
            let par = parallel_reverse_counts(&g, &cands, 1000, 7, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn partitioned_runners_bit_identical_at_forced_thread_counts() {
        // Drive the strided runners directly so the threaded merge path
        // is exercised even where available_parallelism() == 1 — at
        // width 1 and at the wide widths.
        let g = graph();
        let coins = CoinTable::new(&g);
        let chunks: Vec<std::ops::Range<u64>> = block_chunks(37..411).collect();
        let seq = crate::forward::forward_counts_range(&g, 37..411, 9);
        for threads in [2, 3, 5] {
            let (par, usage) = forward_partitioned::<1>(
                &g,
                &coins,
                &chunks,
                9,
                threads,
                Direction::Auto,
                None,
                None,
            );
            assert_eq!(par, seq, "threads = {threads}");
            // Lazy accounting covers every block exactly once regardless
            // of the partition.
            assert_eq!(
                usage.edge_words_materialized + usage.edge_words_skipped,
                chunks.len() as u64 * g.num_edges() as u64,
                "threads = {threads}"
            );
        }
        let wide_chunks: Vec<std::ops::Range<u64>> = superblock_chunks(37..1500, 4).collect();
        let wide_seq = crate::forward::forward_counts_range(&g, 37..1500, 9);
        for threads in [2, 3] {
            let (par, _) = forward_partitioned::<4>(
                &g,
                &coins,
                &wide_chunks,
                9,
                threads,
                Direction::Auto,
                None,
                None,
            );
            assert_eq!(par, wide_seq, "width 4, threads = {threads}");
        }
        let cands: Vec<NodeId> = g.nodes().collect();
        let rseq = crate::reverse::reverse_counts_range(&g, &cands, 37..411, 9);
        for threads in [2, 4] {
            assert_eq!(
                reverse_partitioned::<1>(&g, &coins, &cands, &chunks, 9, threads, None, None).0,
                rseq,
                "threads = {threads}"
            );
        }
        let rchunks: Vec<std::ops::Range<u64>> = superblock_chunks(37..411, 2).collect();
        assert_eq!(
            reverse_partitioned::<2>(&g, &coins, &cands, &rchunks, 9, 2, None, None).0,
            rseq
        );
    }

    #[test]
    fn pre_cancelled_runs_return_empty_prefix() {
        let g = graph();
        let coins = CoinTable::new(&g);
        let token = CancelToken::new();
        token.cancel();
        let chunks: Vec<std::ops::Range<u64>> = block_chunks(0..500).collect();
        let (f, _) = forward_partitioned::<1>(
            &g,
            &coins,
            &chunks,
            9,
            3,
            Direction::Auto,
            Some(&token),
            None,
        );
        assert_eq!(f.samples(), 0);
        let cands: Vec<NodeId> = g.nodes().collect();
        let (r, _) =
            reverse_partitioned::<1>(&g, &coins, &cands, &chunks, 9, 3, Some(&token), None);
        assert_eq!(r.samples(), 0);
        // The width-dispatching entry points honour the token too, on
        // both the sequential (threads = 1) and threaded paths.
        for threads in [1, 4] {
            let (f, _) = parallel_forward_counts_range_width_cancellable(
                &g,
                &coins,
                0..500,
                9,
                threads,
                BlockWords::W1,
                Direction::Auto,
                Some(&token),
            );
            assert_eq!(f.samples(), 0, "threads = {threads}");
            let (r, _) = parallel_reverse_counts_range_width_cancellable(
                &g,
                &coins,
                &cands,
                0..500,
                9,
                threads,
                BlockWords::W1,
                Some(&token),
            );
            assert_eq!(r.samples(), 0, "threads = {threads}");
        }
    }

    #[test]
    fn mid_run_cancellation_prefix_replays_bit_identically() {
        // Cancel from another thread mid-pass, then replay the run with
        // the observed sample count as the exact budget: the replay must
        // reproduce the degraded counts bit-for-bit at several thread
        // counts. The cancel may land anywhere (including after the full
        // range) — the property must hold wherever it lands.
        let g = graph();
        let coins = CoinTable::new(&g);
        let token = CancelToken::new();
        let (counts, _) = std::thread::scope(|scope| {
            let canceller = {
                let token = token.clone();
                scope.spawn(move || token.cancel())
            };
            let out = parallel_forward_counts_range_width_cancellable(
                &g,
                &coins,
                0..51_200,
                11,
                3,
                BlockWords::W1,
                Direction::Auto,
                Some(&token),
            );
            canceller.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            out
        });
        let used = counts.samples();
        assert_eq!(used % crate::LANES as u64, 0, "prefix must be block-aligned");
        for threads in [1, 2, 5] {
            let (replay, _) = parallel_forward_counts_range_width(
                &g,
                &coins,
                0..used,
                11,
                threads,
                BlockWords::W1,
            );
            assert_eq!(replay, counts, "replay threads = {threads}");
        }
    }

    #[test]
    fn width_requests_are_bit_identical_for_any_thread_count() {
        let g = graph();
        let coins = CoinTable::new(&g);
        let seq = crate::forward::forward_counts_range(&g, 0..900, 3);
        let cands: Vec<NodeId> = g.nodes().collect();
        let rseq = crate::reverse::reverse_counts_range(&g, &cands, 0..900, 3);
        for width in BlockWords::ALL {
            for threads in [1, 2, 8] {
                let (f, _) =
                    parallel_forward_counts_range_width(&g, &coins, 0..900, 3, threads, width);
                assert_eq!(f, seq, "forward width {width}, threads {threads}");
                let (r, _) = parallel_reverse_counts_range_width(
                    &g,
                    &coins,
                    &cands,
                    0..900,
                    3,
                    threads,
                    width,
                );
                assert_eq!(r, rseq, "reverse width {width}, threads {threads}");
            }
        }
    }

    #[test]
    fn traced_runs_are_bit_identical_and_record_touches() {
        let g = graph();
        let coins = CoinTable::new(&g);
        let plain = parallel_forward_counts_range_width(&g, &coins, 0..900, 3, 2, BlockWords::W2).0;
        let ledger = TouchLedger::new(g.num_edges());
        for threads in [1, 3] {
            let (traced, _) = parallel_forward_counts_range_width_traced(
                &g,
                &coins,
                0..900,
                3,
                threads,
                BlockWords::W2,
                Direction::Auto,
                None,
                Some(&ledger),
            );
            assert_eq!(traced, plain, "threads = {threads}");
        }
        // Every self-risk here is positive and every edge p = 0.5, so at
        // 900 worlds each edge's source defaults somewhere: all edges
        // must appear in the ledger.
        assert_eq!(ledger.count(), g.num_edges());

        let cands: Vec<NodeId> = g.nodes().collect();
        let rplain =
            parallel_reverse_counts_range_width(&g, &coins, &cands, 0..900, 3, 2, BlockWords::W1).0;
        let rledger = TouchLedger::new(g.num_edges());
        let (rtraced, _) = parallel_reverse_counts_range_width_traced(
            &g,
            &coins,
            &cands,
            0..900,
            3,
            2,
            BlockWords::W1,
            None,
            Some(&rledger),
        );
        assert_eq!(rtraced, rplain);
        assert!(rledger.count() > 0);
    }

    #[test]
    fn untouched_edges_cannot_change_counts() {
        // Node 4 has zero self-risk and no in-edges, so no world ever
        // defaults it and the frontier never reaches edge 4 → 0: that
        // edge's survival words are never synthesized. Changing its
        // probability and patching only its threshold must reproduce
        // every count bit-identically — the soundness invariant behind
        // delta-aware stream survival.
        let mut g = from_parts(
            &[0.3, 0.2, 0.1, 0.4, 0.0],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.25), (4, 0, 0.9)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let coins = CoinTable::new(&g);
        let ledger = TouchLedger::new(g.num_edges());
        let before = parallel_forward_counts_range_width_traced(
            &g,
            &coins,
            0..2000,
            21,
            3,
            BlockWords::W2,
            Direction::Auto,
            None,
            Some(&ledger),
        )
        .0;
        let dormant = g.find_edge(NodeId(4), NodeId(0)).unwrap();
        assert!(!ledger.intersects(&[dormant.0]), "dormant edge must never materialize");

        g.set_edge_prob(dormant, 0.01).unwrap();
        let mut patched = coins.clone();
        patched.patch(&g, &[], &[dormant.0]);
        let after =
            parallel_forward_counts_range_width(&g, &patched, 0..2000, 21, 3, BlockWords::W2).0;
        assert_eq!(after, before, "untouched-edge delta changed sampled counts");
    }

    #[test]
    fn fit_width_keeps_small_budgets_fine_grained() {
        // A few thousand worlds at width 8 would decompose into too few
        // superblocks to feed 8 threads; the fitted width must narrow
        // until every thread gets at least two chunks.
        let range = 0..2048u64;
        let fitted = fit_width(&range, BlockWords::W8, 8);
        assert_eq!(fitted, BlockWords::W2, "2048 worlds / 8 threads need 128-lane chunks");
        assert!(chunk_count(&range, fitted) >= 16);
        // With more budget the same request keeps its width.
        assert_eq!(fit_width(&(0..8192), BlockWords::W8, 8), BlockWords::W8);
        // Single-threaded runs never narrow below the chunk floor…
        assert_eq!(fit_width(&(0..1024), BlockWords::W8, 1), BlockWords::W8);
        // …and tiny ranges bottom out at width 1 without panicking.
        assert_eq!(fit_width(&(0..64), BlockWords::W8, 4), BlockWords::W1);
        assert_eq!(fit_width(&(5..5), BlockWords::W8, 4), BlockWords::W1);
    }

    #[test]
    fn chunk_counts_match_decomposition() {
        for (range, width) in [
            (0..2048u64, BlockWords::W8),
            (37..411, BlockWords::W1),
            (100..130, BlockWords::W2),
            (0..512, BlockWords::W4),
            (7..7, BlockWords::W8),
        ] {
            assert_eq!(
                chunk_count(&range, width),
                superblock_chunks(range.clone(), width.words()).count() as u64,
                "{range:?} at {width}"
            );
        }
    }

    #[test]
    fn thread_count_edge_cases() {
        let g = graph();
        // zero threads clamps to 1; more threads than blocks also works.
        let a = parallel_forward_counts(&g, 5, 1, 0);
        let b = parallel_forward_counts(&g, 5, 1, 128);
        assert_eq!(a, b);
        assert_eq!(a.samples(), 5);
    }

    #[test]
    fn zero_samples() {
        let g = graph();
        let c = parallel_forward_counts(&g, 0, 1, 4);
        assert_eq!(c.samples(), 0);
    }

    #[test]
    fn effective_threads_clamps_to_available_parallelism() {
        let hardware = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        // No hard cap anymore: a huge request lands exactly on the
        // machine's parallelism (previously frozen at 64).
        assert_eq!(effective_threads(usize::MAX, u64::MAX), hardware);
        assert_eq!(effective_threads(1_000_000, u64::MAX), hardware);
        // Still clamped below by 1 and above by the number of work items.
        assert_eq!(effective_threads(0, 10), 1);
        assert_eq!(effective_threads(8, 1), 1);
        assert_eq!(effective_threads(8, 3), 3.min(hardware));
        assert_eq!(effective_threads(1, 0), 1);
    }
}
