//! Parallel sample execution over std scoped threads.
//!
//! Samples are embarrassingly parallel: sample `i` always uses the RNG
//! stream derived from `(seed, i)`, so a parallel run with any thread
//! count produces **bit-identical counts** to the sequential run — the
//! per-thread partial counts are merged with commutative addition.

use crate::counts::DefaultCounts;
use crate::forward::ForwardSampler;
use crate::reverse::ReverseSampler;
use crate::rng::Xoshiro256pp;
use ugraph::{NodeId, UncertainGraph};

/// Clamps a requested thread count to something sane.
fn effective_threads(requested: usize, work_items: u64) -> usize {
    requested.max(1).min(work_items.max(1) as usize).min(64)
}

/// Parallel version of [`crate::forward::forward_counts`].
///
/// Splits sample ids `0..t` into `threads` strided partitions; each thread
/// owns its sampler and partial counts.
pub fn parallel_forward_counts(
    graph: &UncertainGraph,
    t: u64,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    parallel_forward_counts_range(graph, 0..t, seed, threads)
}

/// Parallel version of [`crate::forward::forward_counts_range`]:
/// bit-identical to the sequential range run for any thread count.
pub fn parallel_forward_counts_range(
    graph: &UncertainGraph,
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    let work = range.end.saturating_sub(range.start);
    let threads = effective_threads(threads, work);
    if threads == 1 {
        return crate::forward::forward_counts_range(graph, range, seed);
    }
    let partials = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let range = range.clone();
                scope.spawn(move || {
                    let mut sampler = ForwardSampler::new(graph);
                    let mut counts = DefaultCounts::new(graph.num_nodes());
                    let mut sample_id = range.start + tid as u64;
                    while sample_id < range.end {
                        let mut rng = Xoshiro256pp::for_sample(seed, sample_id);
                        counts.begin_sample();
                        sampler.sample_with(graph, &mut rng, |v| counts.bump(v.index()));
                        sample_id += threads as u64;
                    }
                    counts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sampler thread panicked")).collect::<Vec<_>>()
    });

    let mut total = DefaultCounts::new(graph.num_nodes());
    for p in &partials {
        total.merge(p);
    }
    total
}

/// Parallel version of [`crate::reverse::reverse_counts`].
pub fn parallel_reverse_counts(
    graph: &UncertainGraph,
    candidates: &[NodeId],
    t: u64,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    parallel_reverse_counts_range(graph, candidates, 0..t, seed, threads)
}

/// Parallel version of [`crate::reverse::reverse_counts_range`]:
/// bit-identical to the sequential range run for any thread count.
pub fn parallel_reverse_counts_range(
    graph: &UncertainGraph,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    let work = range.end.saturating_sub(range.start);
    let threads = effective_threads(threads, work);
    if threads == 1 {
        return crate::reverse::reverse_counts_range(graph, candidates, range, seed);
    }
    let partials = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let range = range.clone();
                scope.spawn(move || {
                    let mut sampler = ReverseSampler::new(graph);
                    let mut counts = DefaultCounts::new(candidates.len());
                    let mut buf = Vec::with_capacity(candidates.len());
                    let mut sample_id = range.start + tid as u64;
                    while sample_id < range.end {
                        let mut rng = Xoshiro256pp::for_sample(seed, sample_id);
                        sampler.sample_candidates(graph, candidates, &mut rng, &mut buf);
                        counts.begin_sample();
                        for (i, &hit) in buf.iter().enumerate() {
                            if hit {
                                counts.bump(i);
                            }
                        }
                        sample_id += threads as u64;
                    }
                    counts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sampler thread panicked")).collect::<Vec<_>>()
    });

    let mut total = DefaultCounts::new(candidates.len());
    for p in &partials {
        total.merge(p);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward_counts;
    use crate::reverse::reverse_counts;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn graph() -> UncertainGraph {
        from_parts(
            &[0.3, 0.2, 0.1, 0.4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.25)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn parallel_forward_bit_identical_to_sequential() {
        let g = graph();
        let seq = forward_counts(&g, 1000, 42);
        for threads in [1, 2, 3, 8] {
            let par = parallel_forward_counts(&g, 1000, 42, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_reverse_bit_identical_to_sequential() {
        let g = graph();
        let cands: Vec<NodeId> = g.nodes().collect();
        let seq = reverse_counts(&g, &cands, 1000, 7);
        for threads in [2, 4] {
            let par = parallel_reverse_counts(&g, &cands, 1000, 7, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn thread_count_edge_cases() {
        let g = graph();
        // zero threads clamps to 1; more threads than samples also works.
        let a = parallel_forward_counts(&g, 5, 1, 0);
        let b = parallel_forward_counts(&g, 5, 1, 128);
        assert_eq!(a, b);
        assert_eq!(a.samples(), 5);
    }

    #[test]
    fn zero_samples() {
        let g = graph();
        let c = parallel_forward_counts(&g, 0, 1, 4);
        assert_eq!(c.samples(), 0);
    }
}
