//! Parallel sample execution over std scoped threads.
//!
//! Work is partitioned by **world block** (64-sample aligned chunks, see
//! [`crate::block`]), not by individual sample: thread `tid` owns chunks
//! `tid, tid + T, tid + 2T, …` of the range's block decomposition. Each
//! chunk's counts are a pure function of `(seed, chunk)` — the coin
//! generator is a stateless counter RNG, so threads share one read-only
//! [`CoinTable`] and never coordinate — and partial counts merge with
//! commutative addition, so a parallel run with any thread count
//! produces **bit-identical counts** to the sequential run.

use crate::block::{block_chunks, BlockKernel, WorldBlock};
use crate::coins::{CoinTable, CoinUsage};
use crate::counts::DefaultCounts;
use ugraph::{NodeId, UncertainGraph};

/// Clamps a requested thread count to something sane: at least one, at
/// most one thread per work item, and never more than the machine's
/// available parallelism (extra threads could only contend).
pub(crate) fn effective_threads(requested: usize, work_items: u64) -> usize {
    let hardware = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    requested.max(1).min(work_items.max(1) as usize).min(hardware)
}

/// Parallel version of [`crate::forward::forward_counts`].
///
/// Splits the block decomposition of `0..t` into `threads` strided
/// partitions; each thread owns its kernel scratch and partial counts.
pub fn parallel_forward_counts(
    graph: &UncertainGraph,
    t: u64,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    parallel_forward_counts_range(graph, 0..t, seed, threads)
}

/// [`parallel_forward_counts_range_with`] with a throwaway
/// [`CoinTable`], for callers without a session cache.
pub fn parallel_forward_counts_range(
    graph: &UncertainGraph,
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    parallel_forward_counts_range_with(graph, &CoinTable::new(graph), range, seed, threads).0
}

/// Parallel version of [`crate::forward::forward_counts_range_with`]:
/// bit-identical to the sequential range run for any thread count.
/// Returns the counts plus the merged materialization counters of every
/// worker.
pub fn parallel_forward_counts_range_with(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
) -> (DefaultCounts, CoinUsage) {
    let chunks: Vec<std::ops::Range<u64>> = block_chunks(range.clone()).collect();
    let threads = effective_threads(threads, chunks.len() as u64);
    if threads == 1 {
        return crate::forward::forward_counts_range_with(graph, coins, range, seed);
    }
    forward_partitioned(graph, coins, &chunks, seed, threads)
}

/// The strided multi-thread forward runner, taking `threads` as-is.
/// Split out from the public entry point so tests exercise the threaded
/// merge path even on single-core machines (where `effective_threads`
/// would clamp to the sequential path).
fn forward_partitioned(
    graph: &UncertainGraph,
    coins: &CoinTable,
    chunks: &[std::ops::Range<u64>],
    seed: u64,
    threads: usize,
) -> (DefaultCounts, CoinUsage) {
    let partials = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                scope.spawn(move || {
                    let mut block = WorldBlock::new(graph);
                    let mut kernel = BlockKernel::new(graph);
                    let mut counts = DefaultCounts::new(graph.num_nodes());
                    for chunk in chunks.iter().skip(tid).step_by(threads) {
                        crate::forward::accumulate_forward_chunk(
                            graph,
                            coins,
                            chunk.clone(),
                            seed,
                            &mut block,
                            &mut kernel,
                            &mut counts,
                        );
                    }
                    (counts, block.take_usage())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sampler thread panicked")).collect::<Vec<_>>()
    });

    let mut total = DefaultCounts::new(graph.num_nodes());
    let mut usage = CoinUsage::default();
    for (p, u) in &partials {
        total.merge(p);
        usage.merge(u);
    }
    (total, usage)
}

/// Parallel version of [`crate::reverse::reverse_counts`].
pub fn parallel_reverse_counts(
    graph: &UncertainGraph,
    candidates: &[NodeId],
    t: u64,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    parallel_reverse_counts_range(graph, candidates, 0..t, seed, threads)
}

/// [`parallel_reverse_counts_range_with`] with a throwaway
/// [`CoinTable`], for callers without a session cache.
pub fn parallel_reverse_counts_range(
    graph: &UncertainGraph,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
) -> DefaultCounts {
    parallel_reverse_counts_range_with(
        graph,
        &CoinTable::new(graph),
        candidates,
        range,
        seed,
        threads,
    )
    .0
}

/// Parallel version of [`crate::reverse::reverse_counts_range_with`]:
/// bit-identical to the sequential range run for any thread count.
pub fn parallel_reverse_counts_range_with(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
    threads: usize,
) -> (DefaultCounts, CoinUsage) {
    let chunks: Vec<std::ops::Range<u64>> = block_chunks(range.clone()).collect();
    let threads = effective_threads(threads, chunks.len() as u64);
    if threads == 1 {
        return crate::reverse::reverse_counts_range_with(graph, coins, candidates, range, seed);
    }
    reverse_partitioned(graph, coins, candidates, &chunks, seed, threads)
}

/// The strided multi-thread reverse runner, taking `threads` as-is (see
/// [`forward_partitioned`] for why it is split out).
fn reverse_partitioned(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    chunks: &[std::ops::Range<u64>],
    seed: u64,
    threads: usize,
) -> (DefaultCounts, CoinUsage) {
    let partials = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                scope.spawn(move || {
                    let mut block = WorldBlock::new(graph);
                    let mut kernel = BlockKernel::new(graph);
                    let mut hits = Vec::with_capacity(candidates.len());
                    let mut counts = DefaultCounts::new(candidates.len());
                    for chunk in chunks.iter().skip(tid).step_by(threads) {
                        crate::reverse::accumulate_reverse_chunk(
                            graph,
                            coins,
                            candidates,
                            chunk.clone(),
                            seed,
                            &mut block,
                            &mut kernel,
                            &mut hits,
                            &mut counts,
                        );
                    }
                    (counts, block.take_usage())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sampler thread panicked")).collect::<Vec<_>>()
    });

    let mut total = DefaultCounts::new(candidates.len());
    let mut usage = CoinUsage::default();
    for (p, u) in &partials {
        total.merge(p);
        usage.merge(u);
    }
    (total, usage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward_counts;
    use crate::reverse::reverse_counts;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn graph() -> UncertainGraph {
        from_parts(
            &[0.3, 0.2, 0.1, 0.4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.25)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn parallel_forward_bit_identical_to_sequential() {
        let g = graph();
        let seq = forward_counts(&g, 1000, 42);
        for threads in [1, 2, 3, 8] {
            let par = parallel_forward_counts(&g, 1000, 42, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_reverse_bit_identical_to_sequential() {
        let g = graph();
        let cands: Vec<NodeId> = g.nodes().collect();
        let seq = reverse_counts(&g, &cands, 1000, 7);
        for threads in [2, 4] {
            let par = parallel_reverse_counts(&g, &cands, 1000, 7, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn partitioned_runners_bit_identical_at_forced_thread_counts() {
        // Drive the strided runners directly so the threaded merge path
        // is exercised even where available_parallelism() == 1.
        let g = graph();
        let coins = CoinTable::new(&g);
        let chunks: Vec<std::ops::Range<u64>> = block_chunks(37..411).collect();
        let seq = crate::forward::forward_counts_range(&g, 37..411, 9);
        for threads in [2, 3, 5] {
            let (par, usage) = forward_partitioned(&g, &coins, &chunks, 9, threads);
            assert_eq!(par, seq, "threads = {threads}");
            // Lazy accounting covers every block exactly once regardless
            // of the partition.
            assert_eq!(
                usage.edge_words_materialized + usage.edge_words_skipped,
                chunks.len() as u64 * g.num_edges() as u64,
                "threads = {threads}"
            );
        }
        let cands: Vec<NodeId> = g.nodes().collect();
        let rseq = crate::reverse::reverse_counts_range(&g, &cands, 37..411, 9);
        for threads in [2, 4] {
            assert_eq!(
                reverse_partitioned(&g, &coins, &cands, &chunks, 9, threads).0,
                rseq,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn thread_count_edge_cases() {
        let g = graph();
        // zero threads clamps to 1; more threads than blocks also works.
        let a = parallel_forward_counts(&g, 5, 1, 0);
        let b = parallel_forward_counts(&g, 5, 1, 128);
        assert_eq!(a, b);
        assert_eq!(a.samples(), 5);
    }

    #[test]
    fn zero_samples() {
        let g = graph();
        let c = parallel_forward_counts(&g, 0, 1, 4);
        assert_eq!(c.samples(), 0);
    }

    #[test]
    fn effective_threads_clamps_to_available_parallelism() {
        let hardware = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        // No hard cap anymore: a huge request lands exactly on the
        // machine's parallelism (previously frozen at 64).
        assert_eq!(effective_threads(usize::MAX, u64::MAX), hardware);
        assert_eq!(effective_threads(1_000_000, u64::MAX), hardware);
        // Still clamped below by 1 and above by the number of work items.
        assert_eq!(effective_threads(0, 10), 1);
        assert_eq!(effective_threads(8, 1), 1);
        assert_eq!(effective_threads(8, 3), 3.min(hardware));
        assert_eq!(effective_threads(1, 0), 1);
    }
}
