//! Reverse possible-world sampling — Algorithm 5 of the paper.
//!
//! Given a (hopefully small) candidate set `B`, one reverse sample decides
//! for each `v ∈ B` whether `v` defaults in a lazily-materialized possible
//! world, by BFS over **in**-edges from `v` looking for a self-defaulted
//! ancestor reachable through surviving edges. Coins are flipped lazily on
//! first contact and memoized for the rest of the sample, so the same edge
//! examined from two candidates gives one consistent outcome — this is the
//! paper's "mark it as checked and store the corresponding information"
//! (Algorithm 5, lines 9–16).
//!
//! Memoization uses epoch-stamped dense arrays instead of hash maps: a
//! stamp compare beats a hash lookup, and clearing is `O(1)` per sample
//! (bump the epoch). DESIGN.md lists this choice for ablation.

use crate::counts::DefaultCounts;
use crate::rng::Xoshiro256pp;
use ugraph::{NodeId, UncertainGraph};

/// Reusable reverse sampler with lazily-memoized coin flips.
#[derive(Debug, Clone)]
pub struct ReverseSampler {
    // Per-sample memo: node self-default coins.
    node_epoch: Vec<u32>,
    node_self: Vec<bool>,
    // Per-sample memo: edge survival coins (canonical edge ids).
    edge_epoch: Vec<u32>,
    edge_surv: Vec<bool>,
    // Per-sample positive cache: nodes known to default in this sample.
    hit_epoch: Vec<u32>,
    // Per-sample negative cache: nodes known NOT to default (only filled
    // when a candidate BFS exhausts without success).
    safe_epoch: Vec<u32>,
    // Per-candidate-BFS visited stamps.
    visit_stamp: Vec<u32>,
    epoch: u32,
    visit_counter: u32,
    queue: Vec<u32>,
    cache_negative: bool,
}

impl ReverseSampler {
    /// Creates a sampler with buffers sized for `graph`, with negative-
    /// result caching enabled.
    pub fn new(graph: &UncertainGraph) -> Self {
        ReverseSampler {
            node_epoch: vec![0; graph.num_nodes()],
            node_self: vec![false; graph.num_nodes()],
            edge_epoch: vec![0; graph.num_edges()],
            edge_surv: vec![false; graph.num_edges()],
            hit_epoch: vec![0; graph.num_nodes()],
            safe_epoch: vec![0; graph.num_nodes()],
            visit_stamp: vec![0; graph.num_nodes()],
            epoch: 0,
            visit_counter: 0,
            queue: Vec::new(),
            cache_negative: true,
        }
    }

    /// Disables the negative-result cache (exactly the paper's Algorithm 5).
    /// Kept for the ablation benchmark; results are distribution-identical.
    pub fn without_negative_cache(mut self) -> Self {
        self.cache_negative = false;
        self
    }

    /// Starts a new possible world: all memoized coins are forgotten.
    pub fn begin_sample(&mut self) {
        if self.epoch == u32::MAX {
            self.node_epoch.fill(0);
            self.edge_epoch.fill(0);
            self.hit_epoch.fill(0);
            self.safe_epoch.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    #[inline]
    fn node_defaults_by_self(
        &mut self,
        graph: &UncertainGraph,
        v: usize,
        rng: &mut Xoshiro256pp,
    ) -> bool {
        if self.node_epoch[v] != self.epoch {
            self.node_epoch[v] = self.epoch;
            self.node_self[v] = rng.bernoulli(graph.self_risk(NodeId(v as u32)));
        }
        self.node_self[v]
    }

    #[inline]
    fn edge_survives(&mut self, graph: &UncertainGraph, e: usize, rng: &mut Xoshiro256pp) -> bool {
        if self.edge_epoch[e] != self.epoch {
            self.edge_epoch[e] = self.epoch;
            self.edge_surv[e] = rng.bernoulli(graph.edge_prob(ugraph::EdgeId(e as u32)));
        }
        self.edge_surv[e]
    }

    /// Decides whether candidate `v` defaults in the current sample
    /// (`h_v` of Algorithm 5). Must be called between
    /// [`begin_sample`](Self::begin_sample) calls.
    pub fn is_influenced(
        &mut self,
        graph: &UncertainGraph,
        v: NodeId,
        rng: &mut Xoshiro256pp,
    ) -> bool {
        assert!(self.epoch > 0, "call begin_sample before is_influenced");
        if self.hit_epoch[v.index()] == self.epoch {
            return true;
        }
        if self.cache_negative && self.safe_epoch[v.index()] == self.epoch {
            return false;
        }
        if self.visit_counter >= u32::MAX - 1 {
            self.visit_stamp.fill(0);
            self.visit_counter = 0;
        }
        self.visit_counter += 1;
        let stamp = self.visit_counter;

        self.queue.clear();
        self.queue.push(v.0);
        self.visit_stamp[v.index()] = stamp;
        let mut head = 0;
        let mut found = false;
        'bfs: while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            // A node already known to default infects the candidate
            // (Algorithm 5, lines 7–8).
            if self.hit_epoch[u] == self.epoch {
                found = true;
                break 'bfs;
            }
            if self.cache_negative && self.safe_epoch[u] == self.epoch {
                // Known safe: its ancestors through surviving edges cannot
                // contain a defaulted node either — do not expand.
                continue;
            }
            if self.node_defaults_by_self(graph, u, rng) {
                self.hit_epoch[u] = self.epoch;
                found = true;
                break 'bfs;
            }
            let lo = graph.in_edges(NodeId(u as u32));
            for edge in lo {
                if self.edge_survives(graph, edge.id.index(), rng)
                    && self.visit_stamp[edge.source.index()] != stamp
                {
                    self.visit_stamp[edge.source.index()] = stamp;
                    self.queue.push(edge.source.0);
                }
            }
        }

        if found {
            self.hit_epoch[v.index()] = self.epoch;
            true
        } else {
            if self.cache_negative {
                // The BFS exhausted: every visited node's surviving in-tree
                // was fully explored, so all of them are safe this sample.
                for &u in &self.queue {
                    self.safe_epoch[u as usize] = self.epoch;
                }
            }
            false
        }
    }

    /// Runs one full sample over a candidate list, writing `h_v` into
    /// `out` (resized to `candidates.len()`).
    pub fn sample_candidates(
        &mut self,
        graph: &UncertainGraph,
        candidates: &[NodeId],
        rng: &mut Xoshiro256pp,
        out: &mut Vec<bool>,
    ) {
        self.begin_sample();
        out.clear();
        out.extend(candidates.iter().map(|&v| false_holder(v)));
        for (i, &v) in candidates.iter().enumerate() {
            out[i] = self.is_influenced(graph, v, rng);
        }
    }
}

#[inline]
fn false_holder(_v: NodeId) -> bool {
    false
}

/// Runs `t` reverse samples (ids `0..t`) over `candidates` and returns
/// per-candidate default counts (indexed by candidate position).
pub fn reverse_counts(
    graph: &UncertainGraph,
    candidates: &[NodeId],
    t: u64,
    seed: u64,
) -> DefaultCounts {
    reverse_counts_range(graph, candidates, 0..t, seed)
}

/// Runs reverse samples for the given range of sample ids.
///
/// Sample `i` always uses the RNG stream derived from `(seed, i)`, so
/// counts over disjoint ranges merge into exactly the counts of the
/// union range — the property the engine's incremental sample cache
/// extends prefixes with.
pub fn reverse_counts_range(
    graph: &UncertainGraph,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
) -> DefaultCounts {
    let mut sampler = ReverseSampler::new(graph);
    let mut counts = DefaultCounts::new(candidates.len());
    let mut buf = Vec::with_capacity(candidates.len());
    for sample_id in range {
        let mut rng = Xoshiro256pp::for_sample(seed, sample_id);
        sampler.sample_candidates(graph, candidates, &mut rng, &mut buf);
        counts.begin_sample();
        for (i, &hit) in buf.iter().enumerate() {
            if hit {
                counts.bump(i);
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward_counts;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    fn all_nodes(g: &UncertainGraph) -> Vec<NodeId> {
        g.nodes().collect()
    }

    #[test]
    fn certain_chain_always_infects() {
        let g = from_parts(&[1.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let counts = reverse_counts(&g, &all_nodes(&g), 100, 1);
        assert_eq!(counts.estimate(0), 1.0);
        assert_eq!(counts.estimate(1), 1.0);
    }

    #[test]
    fn impossible_chain_never_infects() {
        let g = from_parts(&[0.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let counts = reverse_counts(&g, &all_nodes(&g), 100, 1);
        assert_eq!(counts.count(0), 0);
        assert_eq!(counts.count(1), 0);
    }

    #[test]
    fn marginals_match_forward_sampler() {
        let g = chain();
        let t = 40_000;
        let fwd = forward_counts(&g, t, 5);
        let rev = reverse_counts(&g, &all_nodes(&g), t, 6);
        for v in 0..3 {
            let diff = (fwd.estimate(v) - rev.estimate(v)).abs();
            assert!(diff < 0.02, "node {v}: fwd {} rev {}", fwd.estimate(v), rev.estimate(v));
        }
    }

    #[test]
    fn marginals_match_on_cyclic_graph() {
        let g = from_parts(
            &[0.3, 0.2, 0.1],
            &[(0, 1, 0.6), (1, 2, 0.6), (2, 0, 0.6)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let t = 40_000;
        let fwd = forward_counts(&g, t, 8);
        let rev = reverse_counts(&g, &all_nodes(&g), t, 9);
        for v in 0..3 {
            let diff = (fwd.estimate(v) - rev.estimate(v)).abs();
            assert!(diff < 0.02, "node {v}: fwd {} rev {}", fwd.estimate(v), rev.estimate(v));
        }
    }

    #[test]
    fn negative_cache_does_not_change_distribution() {
        let g = from_parts(
            &[0.2, 0.2, 0.2, 0.2],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let cands = all_nodes(&g);
        let t = 30_000;
        let with = reverse_counts(&g, &cands, t, 10);
        // Hand-rolled run without negative cache.
        let mut sampler = ReverseSampler::new(&g).without_negative_cache();
        let mut counts = DefaultCounts::new(cands.len());
        let mut buf = Vec::new();
        for sample_id in 0..t {
            let mut rng = Xoshiro256pp::for_sample(11, sample_id);
            sampler.sample_candidates(&g, &cands, &mut rng, &mut buf);
            counts.begin_sample();
            for (i, &h) in buf.iter().enumerate() {
                if h {
                    counts.bump(i);
                }
            }
        }
        for v in 0..cands.len() {
            let diff = (with.estimate(v) - counts.estimate(v)).abs();
            assert!(diff < 0.02, "node {v}");
        }
    }

    #[test]
    fn coins_are_consistent_within_a_sample() {
        // Two candidates sharing an ancestor must observe the same coin:
        // in the graph 0 → 1, 0 → 2 with ps(0) = 0.5 and certain edges,
        // nodes 1 and 2 default together in every sample.
        let g =
            from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 1.0), (0, 2, 1.0)], DuplicateEdgePolicy::Error)
                .unwrap();
        let mut sampler = ReverseSampler::new(&g);
        let mut buf = Vec::new();
        for sample_id in 0..500 {
            let mut rng = Xoshiro256pp::for_sample(13, sample_id);
            sampler.sample_candidates(&g, &[NodeId(1), NodeId(2)], &mut rng, &mut buf);
            assert_eq!(buf[0], buf[1], "sample {sample_id}: inconsistent shared coin");
        }
    }

    #[test]
    fn requires_begin_sample() {
        let g = chain();
        let mut sampler = ReverseSampler::new(&g);
        let mut rng = Xoshiro256pp::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sampler.is_influenced(&g, NodeId(0), &mut rng)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn reverse_counts_reproducible() {
        let g = chain();
        let cands = all_nodes(&g);
        assert_eq!(reverse_counts(&g, &cands, 300, 2), reverse_counts(&g, &cands, 300, 2));
    }

    #[test]
    fn subset_candidates_only_tracked() {
        let g = chain();
        let counts = reverse_counts(&g, &[NodeId(2)], 20_000, 3);
        assert_eq!(counts.len(), 1);
        assert!((counts.estimate(0) - 0.125).abs() < 0.02);
    }
}
