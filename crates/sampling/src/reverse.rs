//! Reverse possible-world sampling — Algorithm 5 of the paper.
//!
//! Given a (hopefully small) candidate set `B`, one reverse sample
//! decides for each `v ∈ B` whether `v` defaults in the sample's
//! possible world, by BFS over **in**-edges from `v` looking for a
//! self-defaulted ancestor reachable through surviving edges.
//!
//! Under the counter-RNG contract (see [`crate::coins`]) a sample's
//! world is a *stateless function* of `(seed, sample_id)`: `h_v` is a
//! pure function of that world, so reverse sampling over any candidate
//! set is **bit-identical** to forward sampling restricted to those
//! candidates — a property the cross-validation tests assert. Two
//! implementations share it:
//!
//! * [`ReverseSampler`] — the **scalar reference**: one world at a time,
//!   with the paper's positive/negative result caches (epoch-stamped
//!   dense arrays; the negative cache is the ablation toggle from
//!   DESIGN.md). Coins are drawn lazily where the reverse BFS touches
//!   them — the paper's original lazy-coin regime, restored by the
//!   stateless generator.
//! * [`reverse_counts_range`] — the **runtime path** on the bit-parallel
//!   [`BlockKernel`](crate::BlockKernel): one reverse BFS per candidate advances all 64
//!   worlds of a block at once, and an edge's 64-lane word is
//!   synthesized only when some candidate's frontier first crosses it —
//!   `O(edges reached)` coins per block, not `O(m)`.

use crate::block::{superblock_chunks, SuperBlock, SuperKernel};
use crate::cancel::CancelToken;
use crate::coins::{CoinTable, CoinUsage, ScalarCoins};
use crate::counts::DefaultCounts;
use crate::width::{with_block_words, BlockWords};
use ugraph::{NodeId, UncertainGraph};

/// Reusable scalar reverse sampler — the semantic reference for the
/// block kernel's reverse pass. Coins are projected lazily from the
/// per-sample counter streams.
#[derive(Debug, Clone)]
pub struct ReverseSampler {
    // The current sample's coin view.
    coins: Option<ScalarCoins>,
    // Per-sample positive cache: nodes known to default in this sample.
    hit_epoch: Vec<u32>,
    // Per-sample negative cache: nodes known NOT to default (only filled
    // when a candidate BFS exhausts without success).
    safe_epoch: Vec<u32>,
    // Per-candidate-BFS visited stamps.
    visit_stamp: Vec<u32>,
    epoch: u32,
    visit_counter: u32,
    queue: Vec<u32>,
    cache_negative: bool,
}

impl ReverseSampler {
    /// Creates a sampler with buffers sized for `graph`, with negative-
    /// result caching enabled.
    pub fn new(graph: &UncertainGraph) -> Self {
        ReverseSampler {
            coins: None,
            hit_epoch: vec![0; graph.num_nodes()],
            safe_epoch: vec![0; graph.num_nodes()],
            visit_stamp: vec![0; graph.num_nodes()],
            epoch: 0,
            visit_counter: 0,
            queue: Vec::new(),
            cache_negative: true,
        }
    }

    /// Disables the negative-result cache (exactly the paper's Algorithm
    /// 5). Kept for the ablation benchmark; results are identical either
    /// way — `h_v` is a pure function of the sample's world.
    pub fn without_negative_cache(mut self) -> Self {
        self.cache_negative = false;
        self
    }

    /// Starts a new possible world — the one fixed by `coins` — and
    /// forgets the per-sample result caches. No coin is drawn until a
    /// candidate's reverse BFS touches it.
    pub fn begin_sample(&mut self, coins: ScalarCoins) {
        if self.epoch == u32::MAX {
            self.hit_epoch.fill(0);
            self.safe_epoch.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.coins = Some(coins);
    }

    /// Decides whether candidate `v` defaults in the current sample
    /// (`h_v` of Algorithm 5). Must be called between
    /// [`begin_sample`](Self::begin_sample) calls.
    pub fn is_influenced(&mut self, graph: &UncertainGraph, table: &CoinTable, v: NodeId) -> bool {
        // xlint: allow(panic-hygiene) — documented API contract (see
        // the doc comment): `begin_sample` must precede this call.
        let coins = self.coins.expect("call begin_sample before is_influenced");
        if self.hit_epoch[v.index()] == self.epoch {
            return true;
        }
        if self.cache_negative && self.safe_epoch[v.index()] == self.epoch {
            return false;
        }
        if self.visit_counter >= u32::MAX - 1 {
            self.visit_stamp.fill(0);
            self.visit_counter = 0;
        }
        self.visit_counter += 1;
        let stamp = self.visit_counter;

        self.queue.clear();
        self.queue.push(v.0);
        self.visit_stamp[v.index()] = stamp;
        let mut head = 0;
        let mut found = false;
        'bfs: while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            // A node already known to default infects the candidate
            // (Algorithm 5, lines 7–8).
            if self.hit_epoch[u] == self.epoch {
                found = true;
                break 'bfs;
            }
            if self.cache_negative && self.safe_epoch[u] == self.epoch {
                // Known safe: its ancestors through surviving edges cannot
                // contain a defaulted node either — do not expand.
                continue;
            }
            if coins.node_coin(table, u) {
                self.hit_epoch[u] = self.epoch;
                found = true;
                break 'bfs;
            }
            for edge in graph.in_edges(NodeId(u as u32)) {
                if self.visit_stamp[edge.source.index()] != stamp
                    && coins.edge_coin(table, edge.id.index())
                {
                    self.visit_stamp[edge.source.index()] = stamp;
                    self.queue.push(edge.source.0);
                }
            }
        }

        if found {
            self.hit_epoch[v.index()] = self.epoch;
            true
        } else {
            if self.cache_negative {
                // The BFS exhausted: every visited node's surviving in-tree
                // was fully explored, so all of them are safe this sample.
                for &u in &self.queue {
                    self.safe_epoch[u as usize] = self.epoch;
                }
            }
            false
        }
    }

    /// Runs one full sample over a candidate list, writing `h_v` into
    /// `out` (resized to `candidates.len()`). The sample is the world of
    /// `coins`.
    pub fn sample_candidates(
        &mut self,
        graph: &UncertainGraph,
        table: &CoinTable,
        candidates: &[NodeId],
        coins: ScalarCoins,
        out: &mut Vec<bool>,
    ) {
        self.begin_sample(coins);
        out.clear();
        for &v in candidates {
            let hit = self.is_influenced(graph, table, v);
            out.push(hit);
        }
    }
}

/// Runs `t` reverse samples (ids `0..t`) over `candidates` and returns
/// per-candidate default counts (indexed by candidate position).
pub fn reverse_counts(
    graph: &UncertainGraph,
    candidates: &[NodeId],
    t: u64,
    seed: u64,
) -> DefaultCounts {
    reverse_counts_range(graph, candidates, 0..t, seed)
}

/// [`reverse_counts_range_with`] with a throwaway [`CoinTable`], for
/// callers without a session cache.
pub fn reverse_counts_range(
    graph: &UncertainGraph,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
) -> DefaultCounts {
    reverse_counts_range_with(graph, &CoinTable::new(graph), candidates, range, seed).0
}

/// Runs reverse samples for the given range of sample ids on the block
/// kernel: 64 worlds per [`WorldBlock`](crate::WorldBlock), one bit-parallel reverse BFS
/// per candidate per block, frontier-lazy edge words. Returns the
/// counts plus the materialization-cost counters.
///
/// Sample `i` always draws from the counter-RNG stream derived from
/// `(seed, i)`, so counts over disjoint ranges merge into exactly the
/// counts of the union range — the property the engine's incremental
/// sample cache extends prefixes with — and the result is bit-identical
/// both to the scalar [`ReverseSampler`] reference and to
/// [`forward_counts_range`](crate::forward_counts_range) restricted to
/// `candidates`.
pub fn reverse_counts_range_with(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
) -> (DefaultCounts, CoinUsage) {
    reverse_counts_range_wide::<1>(graph, coins, candidates, range, seed)
}

/// [`reverse_counts_range_with`] on `W`-word superblocks: one
/// bit-parallel reverse BFS per candidate decides all `W·64` worlds of
/// a superblock at once. Counts are bit-identical at every width —
/// width is purely a throughput knob (see [`BlockWords`]).
pub fn reverse_counts_range_wide<const W: usize>(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
) -> (DefaultCounts, CoinUsage) {
    reverse_counts_range_wide_cancellable::<W>(graph, coins, candidates, range, seed, None)
}

/// [`reverse_counts_range_wide`] polling a [`CancelToken`] once per
/// superblock chunk. A cancelled pass stops at the next chunk boundary
/// and returns the chunk-aligned **prefix** it completed; the exact
/// sample count is `counts.samples()`, and re-running the range
/// truncated to that count reproduces the prefix bit-identically.
pub fn reverse_counts_range_wide_cancellable<const W: usize>(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
    cancel: Option<&CancelToken>,
) -> (DefaultCounts, CoinUsage) {
    let mut counts = DefaultCounts::new(candidates.len());
    let mut block = SuperBlock::<W>::new(graph);
    let mut kernel = SuperKernel::<W>::new(graph);
    let mut hits = Vec::with_capacity(candidates.len() * W);
    for chunk in superblock_chunks(range, W) {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            break;
        }
        accumulate_reverse_chunk(
            graph,
            coins,
            candidates,
            chunk,
            seed,
            &mut block,
            &mut kernel,
            &mut hits,
            &mut counts,
        );
    }
    (counts, block.take_usage())
}

/// [`reverse_counts_range_wide`] with a runtime-selected width.
pub fn reverse_counts_range_width(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    range: std::ops::Range<u64>,
    seed: u64,
    width: BlockWords,
) -> (DefaultCounts, CoinUsage) {
    with_block_words!(
        width,
        W,
        reverse_counts_range_wide::<W>(graph, coins, candidates, range, seed)
    )
}

/// Materializes and evaluates one ≤`W·64`-sample chunk over
/// `candidates`, accumulating into `counts`. Shared with the parallel
/// driver.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accumulate_reverse_chunk<const W: usize>(
    graph: &UncertainGraph,
    coins: &CoinTable,
    candidates: &[NodeId],
    chunk: std::ops::Range<u64>,
    seed: u64,
    block: &mut SuperBlock<W>,
    kernel: &mut SuperKernel<W>,
    hits: &mut Vec<u64>,
    counts: &mut DefaultCounts,
) {
    let lanes = (chunk.end - chunk.start) as usize;
    block.materialize(graph, coins, seed, chunk.start, lanes);
    kernel.reverse_hits_into(graph, coins, block, candidates, hits);
    counts.record_words::<W>(hits, block.lane_masks());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward_counts;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    fn all_nodes(g: &UncertainGraph) -> Vec<NodeId> {
        g.nodes().collect()
    }

    #[test]
    fn certain_chain_always_infects() {
        let g = from_parts(&[1.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let counts = reverse_counts(&g, &all_nodes(&g), 100, 1);
        assert_eq!(counts.estimate(0), 1.0);
        assert_eq!(counts.estimate(1), 1.0);
    }

    #[test]
    fn impossible_chain_never_infects() {
        let g = from_parts(&[0.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let counts = reverse_counts(&g, &all_nodes(&g), 100, 1);
        assert_eq!(counts.count(0), 0);
        assert_eq!(counts.count(1), 0);
    }

    #[test]
    fn bit_identical_to_forward_sampler() {
        // Same seed, same worlds, same verdicts — not just equal
        // marginals: the stateless-coin contract makes reverse a
        // projection of forward.
        let g = chain();
        for t in [1u64, 63, 64, 200] {
            let fwd = forward_counts(&g, t, 5);
            let rev = reverse_counts(&g, &all_nodes(&g), t, 5);
            assert_eq!(rev, fwd, "t = {t}");
        }
    }

    #[test]
    fn bit_identical_to_forward_on_cyclic_graph() {
        let g = from_parts(
            &[0.3, 0.2, 0.1],
            &[(0, 1, 0.6), (1, 2, 0.6), (2, 0, 0.6)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let t = 500;
        assert_eq!(reverse_counts(&g, &all_nodes(&g), t, 8), forward_counts(&g, t, 8));
    }

    #[test]
    fn scalar_reference_matches_block_path() {
        let g = from_parts(
            &[0.2, 0.2, 0.2, 0.2],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let table = CoinTable::new(&g);
        let cands = [NodeId(3), NodeId(1)];
        for variant in [true, false] {
            let mut sampler = if variant {
                ReverseSampler::new(&g)
            } else {
                ReverseSampler::new(&g).without_negative_cache()
            };
            let mut counts = DefaultCounts::new(cands.len());
            let mut buf = Vec::new();
            for sample_id in 0..300 {
                let coins = ScalarCoins::new(11, sample_id);
                sampler.sample_candidates(&g, &table, &cands, coins, &mut buf);
                counts.begin_sample();
                for (i, &h) in buf.iter().enumerate() {
                    if h {
                        counts.bump(i);
                    }
                }
            }
            assert_eq!(counts, reverse_counts(&g, &cands, 300, 11), "negative cache = {variant}");
        }
    }

    #[test]
    fn coins_are_consistent_within_a_sample() {
        // Two candidates sharing an ancestor must observe the same coin:
        // in the graph 0 → 1, 0 → 2 with ps(0) = 0.5 and certain edges,
        // nodes 1 and 2 default together in every sample.
        let g =
            from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 1.0), (0, 2, 1.0)], DuplicateEdgePolicy::Error)
                .unwrap();
        let table = CoinTable::new(&g);
        let mut sampler = ReverseSampler::new(&g);
        let mut buf = Vec::new();
        for sample_id in 0..500 {
            let coins = ScalarCoins::new(13, sample_id);
            sampler.sample_candidates(&g, &table, &[NodeId(1), NodeId(2)], coins, &mut buf);
            assert_eq!(buf[0], buf[1], "sample {sample_id}: inconsistent shared coin");
        }
    }

    #[test]
    fn requires_begin_sample() {
        let g = chain();
        let table = CoinTable::new(&g);
        let mut sampler = ReverseSampler::new(&g);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sampler.is_influenced(&g, &table, NodeId(0))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn reverse_counts_reproducible() {
        let g = chain();
        let cands = all_nodes(&g);
        assert_eq!(reverse_counts(&g, &cands, 300, 2), reverse_counts(&g, &cands, 300, 2));
    }

    #[test]
    fn every_width_is_bit_identical_to_forward() {
        let g = from_parts(
            &[0.3, 0.2, 0.1],
            &[(0, 1, 0.6), (1, 2, 0.6), (2, 0, 0.6)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let table = CoinTable::new(&g);
        let cands = all_nodes(&g);
        for range in [0..100u64, 0..600, 70..300] {
            let fwd = crate::forward::forward_counts_range_with(&g, &table, range.clone(), 8).0;
            for width in crate::BlockWords::ALL {
                let (counts, _) =
                    reverse_counts_range_width(&g, &table, &cands, range.clone(), 8, width);
                assert_eq!(counts, fwd, "range {range:?}, width {width}");
            }
        }
    }

    #[test]
    fn subset_candidates_match_full_run_bitwise() {
        // Worlds are shared state, not per-candidate: a singleton run
        // sees exactly the worlds of the full run.
        let g = chain();
        let full = reverse_counts(&g, &all_nodes(&g), 500, 3);
        let single = reverse_counts(&g, &[NodeId(2)], 500, 3);
        assert_eq!(single.count(0), full.count(2));
        let counts = reverse_counts(&g, &[NodeId(2)], 20_000, 3);
        assert_eq!(counts.len(), 1);
        assert!((counts.estimate(0) - 0.125).abs() < 0.02);
    }

    #[test]
    fn small_candidate_sets_skip_most_edge_words() {
        // A long chain with a candidate at its head: the reverse BFS
        // only walks the candidate's ancestor tree, so the lazy path
        // must leave the downstream edges unmaterialized.
        let n = 50usize;
        let risks = vec![0.2; n];
        let edges: Vec<(u32, u32, f64)> = (0..n as u32 - 1).map(|v| (v, v + 1, 0.5)).collect();
        let g = from_parts(&risks, &edges, DuplicateEdgePolicy::Error).unwrap();
        let table = CoinTable::new(&g);
        let (_, usage) = reverse_counts_range_with(&g, &table, &[NodeId(1)], 0..128, 17);
        assert!(
            usage.edge_words_materialized <= 2 * 2,
            "candidate 1 has one in-edge per world-block, got {}",
            usage.edge_words_materialized
        );
        assert!(usage.lazy_skip_ratio() > 0.9, "ratio {}", usage.lazy_skip_ratio());
    }
}
