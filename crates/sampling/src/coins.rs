//! Stateless counter-RNG coin synthesis — the bit-parallel
//! materialization side of the world-block data path.
//!
//! PR 2 made world *evaluation* bit-parallel but still materialized
//! coins with 64 sequential per-lane RNG streams: `64 · (n + m)`
//! Bernoulli draws per block, which `BENCH_sampling.json` showed was
//! ~85% of every end-to-end sample. This module replaces those streams
//! with a **stateless counter generator** and **bit-sliced dyadic
//! Bernoulli synthesis**:
//!
//! * Every probability is quantized once per graph into a fixed-point
//!   threshold `T = round(p · 2^32)` held in a [`CoinTable`] (engines
//!   cache one per session; [`CoinTable::matches`] detects stale tables
//!   through the graph's version counter).
//! * The uniform source is a pure function of `(seed, block, item,
//!   level)` — no sequential state, so any coin can be generated at any
//!   time, in any order, on any thread, including *lazily* when a BFS
//!   first touches an edge.
//! * A 64-lane Bernoulli(p) word is built by comparing, bit-serially
//!   from the most significant level down, each lane's uniform bits
//!   against the threshold bits ([`bernoulli_word`]). A lane is decided
//!   the first time its uniform bit differs from the threshold bit, so
//!   the expected number of uniform words per item is `log2(64) + O(1)`
//!   ≈ 7 — not 64 — and a popcount-checked fast path retires rare items
//!   (`p` near 0) after their threshold's leading-zero run.
//!
//! # The `(seed, block, item, level)` stream contract
//!
//! Sample `i` lives in lane `i % 64` of block `i / 64`. Its coin for an
//! item (node `v` or canonical edge `e`) is bit `i % 64` of the
//! synthesized word for that `(seed, i / 64, item)` — which
//! [`bernoulli_bit`] reproduces one lane at a time, exactly. The scalar
//! samplers, the [`PossibleWorld`](crate::PossibleWorld) oracle, and
//! the lazy/eager block paths are all projections of the same function,
//! which is what keeps counts bit-identical across every data path.
//!
//! Quantization note: coins fire with probability exactly `T / 2^32`,
//! i.e. probabilities are rounded to the nearest multiple of `2^-32`
//! (error ≤ `2^-33`, far below any sampling-noise floor; `p = 0` and
//! `p = 1` are exact and never draw a word).

use ugraph::UncertainGraph;

/// Fixed-point precision of the dyadic thresholds, in bits.
pub const COIN_PRECISION: u32 = 32;

/// Threshold value meaning "always fires" (`p = 1`).
const FULL_THRESHOLD: u64 = 1 << COIN_PRECISION;

/// Domain separators so node coins, edge coins, and block keys can
/// never alias each other's streams.
const STREAM_DOMAIN: u64 = 0xC0_1234_5EED_C015;
const BLOCK_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
const NODE_DOMAIN: u64 = 0x52D9_6F4D_9DC9_3C41;
const EDGE_DOMAIN: u64 = 0xA24B_AED4_963E_E407;
const LEVEL_GAMMA: u64 = 0xD6E8_FEB8_6659_FD93;

/// SplitMix64 finalizer: the counter-mixing primitive. Statistically
/// strong enough that evaluating it at arbitrary counters is exactly
/// the SplitMix64 generator the xoshiro authors recommend for seeding.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Key of one 64-lane block of the run seeded `seed`.
#[inline]
pub fn block_key(seed: u64, block: u64) -> u64 {
    mix64(mix64(seed ^ STREAM_DOMAIN) ^ block.wrapping_mul(BLOCK_GAMMA))
}

/// Per-item key for node `v` within a block.
#[inline]
pub fn node_key(block_key: u64, v: usize) -> u64 {
    mix64(block_key ^ NODE_DOMAIN ^ (v as u64).wrapping_mul(BLOCK_GAMMA))
}

/// Per-item key for canonical edge `e` within a block.
#[inline]
pub fn edge_key(block_key: u64, e: usize) -> u64 {
    mix64(block_key ^ EDGE_DOMAIN ^ (e as u64).wrapping_mul(BLOCK_GAMMA))
}

/// Uniform 64-bit word at `level` of an item's stream: bit `j` is lane
/// `j`'s uniform bit for that comparison level.
#[inline]
fn level_word(item_key: u64, level: u32) -> u64 {
    mix64(item_key.wrapping_add((level as u64 + 1).wrapping_mul(LEVEL_GAMMA)))
}

/// Quantizes a probability into a fixed-point dyadic threshold in
/// `[0, 2^32]`. The coin fires with probability exactly `T / 2^32`.
#[inline]
pub fn quantize_probability(p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    ((p * FULL_THRESHOLD as f64).round() as u64).min(FULL_THRESHOLD)
}

/// Synthesizes a 64-lane Bernoulli word: bit `j` of the result is set
/// (the coin "fires") with probability `threshold / 2^32`,
/// independently per lane, for the lanes selected by `lanes`.
///
/// Bit-serial comparison `U < T` from the most significant level down:
/// a lane whose uniform bit differs from the threshold bit is decided
/// at that level; undecided lanes (exact 32-bit ties) do not fire.
/// Deselected lanes always read 0. `words` counts the uniform words
/// consumed (0 for the `p ∈ {0, 1}` sentinels).
///
/// The leading-zero run of the threshold is the popcount-checked fast
/// path for rare items: while the threshold bit is 0 the loop is a pure
/// AND-chain that only *removes* candidate lanes, and it returns as
/// soon as the candidate mask pops to zero — for `p ≤ 2^-z` that is
/// typically within `z + log2(64)` words.
#[inline]
pub fn bernoulli_word(threshold: u64, item_key: u64, lanes: u64, words: &mut u64) -> u64 {
    if threshold == 0 || lanes == 0 {
        return 0;
    }
    if threshold >= FULL_THRESHOLD {
        return lanes;
    }
    let t = threshold as u32;
    let mut fired = 0u64;
    let mut undecided = lanes;
    let mut level = t.leading_zeros();
    // Fast path: the first `level` threshold bits are 0, so a lane can
    // only stay in play while its uniform bits are all 0.
    for l in 0..level {
        undecided &= !level_word(item_key, l);
        *words += 1;
        if undecided == 0 {
            return 0;
        }
    }
    while level < COIN_PRECISION {
        let u = level_word(item_key, level);
        *words += 1;
        if t >> (COIN_PRECISION - 1 - level) & 1 == 1 {
            fired |= undecided & !u;
            undecided &= u;
        } else {
            undecided &= !u;
        }
        if undecided == 0 {
            break;
        }
        level += 1;
    }
    fired
}

/// `W` parallel [`bernoulli_word`] syntheses for one item — one word
/// per home block of a superblock, each under its own `item_keys[w]` —
/// advanced **level-synchronized**: every comparison level draws the
/// still-undecided words' uniforms together, so the `W` independent
/// `mix64` chains overlap in the pipeline (and autovectorize where the
/// target has 64-bit SIMD multiplies) instead of running as `W`
/// sequential early-exit loops.
///
/// Bit-identical to calling [`bernoulli_word`] once per word: the same
/// uniform levels are compared against the same threshold bits (updates
/// applied to an already-decided word are no-ops), and `words` counts
/// exactly the levels a per-word early-exit loop would have drawn.
#[inline]
pub fn bernoulli_words<const W: usize>(
    threshold: u64,
    item_keys: &[u64; W],
    lanes: &[u64; W],
    words: &mut u64,
) -> [u64; W] {
    let mut fired = [0u64; W];
    if threshold == 0 {
        return fired;
    }
    if threshold >= FULL_THRESHOLD {
        return *lanes;
    }
    let mut undecided = *lanes;
    let live = undecided.iter().fold(0u64, |acc, &word| acc | word);
    if live == 0 {
        return fired;
    }
    let t = threshold as u32;
    // Fast path: while the threshold bit is 0 a lane only stays in play
    // while its uniform bits are all 0 — a pure AND-chain per word.
    let leading = t.leading_zeros();
    for level in 0..leading {
        let mut active = 0u64;
        let mut still = 0u64;
        for w in 0..W {
            active += u64::from(undecided[w] != 0);
            undecided[w] &= !level_word(item_keys[w], level);
            still |= undecided[w];
        }
        *words += active;
        if still == 0 {
            return fired;
        }
    }
    for level in leading..COIN_PRECISION {
        let bit = t >> (COIN_PRECISION - 1 - level) & 1 == 1;
        let mut active = 0u64;
        let mut still = 0u64;
        for w in 0..W {
            active += u64::from(undecided[w] != 0);
            let u = level_word(item_keys[w], level);
            if bit {
                fired[w] |= undecided[w] & !u;
                undecided[w] &= u;
            } else {
                undecided[w] &= !u;
            }
            still |= undecided[w];
        }
        *words += active;
        if still == 0 {
            break;
        }
    }
    fired
}

/// One lane of [`bernoulli_word`], bit-identical to bit `lane` of the
/// 64-lane synthesis. `mirror` complements every uniform bit — the
/// antithetic twin: still Bernoulli(`threshold / 2^32`) exactly, but
/// maximally negatively correlated with the base coin.
#[inline]
pub fn bernoulli_bit(
    threshold: u64,
    item_key: u64,
    lane: u32,
    mirror: bool,
    words: &mut u64,
) -> bool {
    if threshold == 0 {
        return false;
    }
    if threshold >= FULL_THRESHOLD {
        return true;
    }
    let t = threshold as u32;
    let flip = u64::from(mirror);
    for level in 0..COIN_PRECISION {
        let u_bit = (level_word(item_key, level) >> lane & 1) ^ flip;
        *words += 1;
        let t_bit = u64::from(t >> (COIN_PRECISION - 1 - level) & 1);
        if u_bit != t_bit {
            return u_bit < t_bit;
        }
    }
    false
}

/// Per-graph fixed-point thresholds for every node self-default and
/// edge survival coin — the precomputation the synthesis kernels read.
///
/// Building one is `O(n + m)`; engines cache it per session and
/// revalidate with [`CoinTable::matches`] (the graph bumps a version
/// counter on every probability update, so a stale table is rebuilt
/// instead of serving old thresholds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoinTable {
    node_thresholds: Box<[u64]>,
    edge_thresholds: Box<[u64]>,
    graph_version: u64,
}

impl CoinTable {
    /// Quantizes every probability of `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        CoinTable {
            node_thresholds: graph
                .nodes()
                .map(|v| quantize_probability(graph.self_risk(v)))
                .collect(),
            edge_thresholds: graph
                .edges()
                .map(|e| quantize_probability(graph.edge_prob(e)))
                .collect(),
            graph_version: graph.version(),
        }
    }

    /// `true` if this table is still current for `graph`: same shape
    /// and same probability version. A `set_self_risk`/`set_edge_prob`
    /// call bumps the graph's version, invalidating cached tables.
    pub fn matches(&self, graph: &UncertainGraph) -> bool {
        self.node_thresholds.len() == graph.num_nodes()
            && self.edge_thresholds.len() == graph.num_edges()
            && self.graph_version == graph.version()
    }

    /// Fixed-point precision of the thresholds, in bits.
    pub fn precision(&self) -> u32 {
        COIN_PRECISION
    }

    /// Number of node thresholds.
    pub fn num_nodes(&self) -> usize {
        self.node_thresholds.len()
    }

    /// Number of edge thresholds.
    pub fn num_edges(&self) -> usize {
        self.edge_thresholds.len()
    }

    /// Threshold of node `v`'s self-default coin.
    #[inline]
    pub fn node_threshold(&self, v: usize) -> u64 {
        self.node_thresholds[v]
    }

    /// Threshold of canonical edge `e`'s survival coin.
    #[inline]
    pub fn edge_threshold(&self, e: usize) -> u64 {
        self.edge_thresholds[e]
    }

    /// Re-quantizes only the listed items against `graph` (the
    /// post-delta snapshot) and adopts its probability version.
    ///
    /// Thresholds are per-item pure functions of the probability, so
    /// when the dirty sets cover every item whose probability changed,
    /// the patched table is **bit-identical** to `CoinTable::new(graph)`
    /// — at `O(|dirty|)` instead of `O(n + m)`. Ids must be in bounds
    /// for the table's shape (a validated [`ugraph::GraphDelta`]
    /// guarantees this) and the graph's shape must match the table's.
    pub fn patch(&mut self, graph: &UncertainGraph, dirty_nodes: &[u32], dirty_edges: &[u32]) {
        assert_eq!(self.node_thresholds.len(), graph.num_nodes(), "table/graph node mismatch");
        assert_eq!(self.edge_thresholds.len(), graph.num_edges(), "table/graph edge mismatch");
        for &v in dirty_nodes {
            self.node_thresholds[v as usize] =
                quantize_probability(graph.self_risk(ugraph::NodeId(v)));
        }
        for &e in dirty_edges {
            self.edge_thresholds[e as usize] =
                quantize_probability(graph.edge_prob(ugraph::EdgeId(e)));
        }
        self.graph_version = graph.version();
    }
}

/// One sample's scalar coin view: lane `sample_id % 64` of block
/// `sample_id / 64`. The scalar samplers and the
/// [`PossibleWorld`](crate::PossibleWorld) oracle draw through this,
/// which makes them bit-identical to the block kernels by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarCoins {
    block_key: u64,
    lane: u32,
    mirror: bool,
}

impl ScalarCoins {
    /// Coins of sample `sample_id` in the run seeded `seed`.
    pub fn new(seed: u64, sample_id: u64) -> Self {
        ScalarCoins {
            block_key: block_key(seed, sample_id / 64),
            lane: (sample_id % 64) as u32,
            mirror: false,
        }
    }

    /// The antithetic twin of sample `sample_id`: every uniform bit
    /// complemented (see [`bernoulli_bit`]).
    pub fn mirrored(seed: u64, sample_id: u64) -> Self {
        ScalarCoins { mirror: true, ..ScalarCoins::new(seed, sample_id) }
    }

    /// Node `v`'s self-default coin in this sample's world.
    #[inline]
    pub fn node_coin(&self, table: &CoinTable, v: usize) -> bool {
        let mut words = 0;
        bernoulli_bit(
            table.node_threshold(v),
            node_key(self.block_key, v),
            self.lane,
            self.mirror,
            &mut words,
        )
    }

    /// Canonical edge `e`'s survival coin in this sample's world.
    #[inline]
    pub fn edge_coin(&self, table: &CoinTable, e: usize) -> bool {
        let mut words = 0;
        bernoulli_bit(
            table.edge_threshold(e),
            edge_key(self.block_key, e),
            self.lane,
            self.mirror,
            &mut words,
        )
    }
}

/// Materialization-cost counters, accumulated by
/// [`WorldBlock`](crate::WorldBlock) and surfaced through the engine
/// stats and the benchmark report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoinUsage {
    /// Uniform 64-bit words synthesized (the raw generator cost).
    pub words: u64,
    /// Edge lane-words actually materialized (eagerly or on first BFS
    /// touch). Partial superblocks count covered home blocks only.
    pub edge_words_materialized: u64,
    /// Edge lane-words skipped entirely because no traversal touched
    /// the edge in that block — the frontier-lazy win.
    pub edge_words_skipped: u64,
    /// Superblocks materialized (a width-1 run counts one per 64-lane
    /// block; a width-W run one per W home blocks).
    pub superblocks: u64,
    /// Frontier steps the forward kernel ran as sparse out-edge
    /// expansions (see [`Direction`](crate::Direction)).
    pub push_steps: u64,
    /// Frontier steps the forward kernel ran as dense in-edge sweeps.
    pub pull_steps: u64,
    /// Times an [`Auto`](crate::Direction::Auto) traversal changed
    /// direction between consecutive frontier steps of one superblock.
    pub direction_switches: u64,
}

impl CoinUsage {
    /// Adds another accumulator's counts into this one.
    pub fn merge(&mut self, other: &CoinUsage) {
        self.words += other.words;
        self.edge_words_materialized += other.edge_words_materialized;
        self.edge_words_skipped += other.edge_words_skipped;
        self.superblocks += other.superblocks;
        self.push_steps += other.push_steps;
        self.pull_steps += other.pull_steps;
        self.direction_switches += other.direction_switches;
    }

    /// Fraction of edge lane-words the lazy path never materialized
    /// (0 when nothing ran).
    pub fn lazy_skip_ratio(&self) -> f64 {
        let total = self.edge_words_materialized + self.edge_words_skipped;
        if total == 0 {
            0.0
        } else {
            self.edge_words_skipped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy, EdgeId, NodeId};

    #[test]
    fn quantization_is_exact_at_dyadic_points() {
        assert_eq!(quantize_probability(0.0), 0);
        assert_eq!(quantize_probability(1.0), FULL_THRESHOLD);
        assert_eq!(quantize_probability(0.5), 1 << 31);
        assert_eq!(quantize_probability(0.25), 1 << 30);
    }

    #[test]
    fn word_and_bit_synthesis_agree_lane_for_lane() {
        for (i, &threshold) in
            [0u64, 1, 3, 1 << 16, (1 << 31) + 12345, FULL_THRESHOLD - 1, FULL_THRESHOLD]
                .iter()
                .enumerate()
        {
            let key = mix64(0xFEED ^ i as u64);
            let mut words = 0;
            let word = bernoulli_word(threshold, key, u64::MAX, &mut words);
            for lane in 0..64u32 {
                let mut w = 0;
                assert_eq!(
                    word >> lane & 1 == 1,
                    bernoulli_bit(threshold, key, lane, false, &mut w),
                    "threshold {threshold}, lane {lane}"
                );
            }
        }
    }

    #[test]
    fn batched_synthesis_matches_per_word_synthesis_and_counts() {
        for (i, &threshold) in
            [0u64, 1, 3, 1 << 16, (1 << 31) + 12345, FULL_THRESHOLD - 1, FULL_THRESHOLD]
                .iter()
                .enumerate()
        {
            let keys = [
                mix64(0xABCD ^ i as u64),
                mix64(0x1234 ^ i as u64),
                mix64(0x9999 ^ i as u64),
                mix64(0x4242 ^ i as u64),
            ];
            // Full, partial, and empty lane masks side by side.
            let lanes = [u64::MAX, 0xFFFF, u64::MAX << 32, 0];
            let mut batched_words = 0;
            let batched = bernoulli_words::<4>(threshold, &keys, &lanes, &mut batched_words);
            let mut sequential_words = 0;
            for w in 0..4 {
                let expected = bernoulli_word(threshold, keys[w], lanes[w], &mut sequential_words);
                assert_eq!(batched[w], expected, "threshold {threshold}, word {w}");
            }
            assert_eq!(
                batched_words, sequential_words,
                "threshold {threshold}: word accounting diverged"
            );
        }
    }

    #[test]
    fn sentinels_draw_no_words() {
        let mut words = 0;
        assert_eq!(bernoulli_word(0, 1, u64::MAX, &mut words), 0);
        assert_eq!(bernoulli_word(FULL_THRESHOLD, 1, u64::MAX, &mut words), u64::MAX);
        assert!(bernoulli_bit(FULL_THRESHOLD, 1, 0, false, &mut words));
        assert!(!bernoulli_bit(0, 1, 0, true, &mut words));
        assert_eq!(words, 0);
    }

    #[test]
    fn deselected_lanes_read_zero() {
        let mut words = 0;
        let mask = 0b1010_1010;
        let word = bernoulli_word(1 << 31, mix64(9), mask, &mut words);
        assert_eq!(word & !mask, 0);
        // Selected lanes match the full-mask synthesis bit for bit.
        let mut w2 = 0;
        let full = bernoulli_word(1 << 31, mix64(9), u64::MAX, &mut w2);
        assert_eq!(word, full & mask);
    }

    #[test]
    fn frequency_matches_dyadic_probability() {
        // p = T / 2^32 exactly; check the law of large numbers over many
        // independent item keys, for a mid and a rare threshold.
        for (threshold, blocks) in [(quantize_probability(0.3), 2_000u64), (1 << 26, 40_000)] {
            let p = threshold as f64 / FULL_THRESHOLD as f64;
            let mut hits = 0u64;
            let mut words = 0;
            for b in 0..blocks {
                hits += bernoulli_word(threshold, block_key(7, b), u64::MAX, &mut words)
                    .count_ones() as u64;
            }
            let freq = hits as f64 / (blocks * 64) as f64;
            let sigma = (p * (1.0 - p) / (blocks * 64) as f64).sqrt();
            assert!((freq - p).abs() < 6.0 * sigma + 1e-9, "p {p}: freq {freq}");
        }
    }

    #[test]
    fn rare_thresholds_consume_few_words() {
        // p = 2^-20: the popcount-checked AND-chain should retire a
        // block in well under the full 32 levels.
        let mut words = 0;
        let blocks = 1000u64;
        for b in 0..blocks {
            bernoulli_word(1 << 12, block_key(3, b), u64::MAX, &mut words);
        }
        let avg = words as f64 / blocks as f64;
        assert!(avg < 12.0, "average words per rare item: {avg}");
    }

    #[test]
    fn mirrored_coins_are_anti_correlated_and_unbiased() {
        let threshold = quantize_probability(0.5);
        let mut base_hits = 0u64;
        let mut twin_hits = 0u64;
        let mut both = 0u64;
        let n = 20_000u64;
        let mut words = 0;
        for i in 0..n {
            let key = node_key(block_key(11, i / 64), 0);
            let lane = (i % 64) as u32;
            let b = bernoulli_bit(threshold, key, lane, false, &mut words);
            let t = bernoulli_bit(threshold, key, lane, true, &mut words);
            base_hits += u64::from(b);
            twin_hits += u64::from(t);
            both += u64::from(b && t);
        }
        let (pb, pt) = (base_hits as f64 / n as f64, twin_hits as f64 / n as f64);
        assert!((pb - 0.5).abs() < 0.02, "base freq {pb}");
        assert!((pt - 0.5).abs() < 0.02, "twin freq {pt}");
        // At p = 1/2 the pair is perfectly exclusive.
        assert_eq!(both, 0, "mirrored coin fired together with its base at p = 1/2");
    }

    #[test]
    fn coin_table_quantizes_and_tracks_versions() {
        let mut g = from_parts(&[0.5, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let table = CoinTable::new(&g);
        assert_eq!(table.node_threshold(0), 1 << 31);
        assert_eq!(table.node_threshold(1), 0);
        assert_eq!(table.edge_threshold(0), FULL_THRESHOLD);
        assert_eq!(table.precision(), COIN_PRECISION);
        assert!(table.matches(&g));
        g.set_edge_prob(EdgeId(0), 0.25).unwrap();
        assert!(!table.matches(&g), "stale table must be detected after an edge update");
        let rebuilt = CoinTable::new(&g);
        assert!(rebuilt.matches(&g));
        g.set_self_risk(NodeId(1), 0.1).unwrap();
        assert!(!rebuilt.matches(&g), "stale table must be detected after a node update");
    }

    #[test]
    fn patched_table_is_bit_identical_to_a_rebuild() {
        let mut g = from_parts(
            &[0.5, 0.25, 0.125, 0.75],
            &[(0, 1, 0.5), (1, 2, 0.3), (2, 3, 0.9), (0, 3, 0.1)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let mut table = CoinTable::new(&g);
        g.set_self_risk(NodeId(1), 0.875).unwrap();
        g.set_self_risk(NodeId(3), 0.0).unwrap();
        g.set_edge_prob(EdgeId(2), 0.05).unwrap();
        assert!(!table.matches(&g));
        table.patch(&g, &[1, 3], &[2]);
        assert!(table.matches(&g));
        assert_eq!(table, CoinTable::new(&g), "patch must equal a cold rebuild bit-for-bit");
        // An empty patch only adopts the version.
        let mut idle = table.clone();
        g.set_self_risk(NodeId(0), 0.5).unwrap(); // same value, version still bumps
        idle.patch(&g, &[0], &[]);
        assert_eq!(idle, CoinTable::new(&g));
    }

    #[test]
    fn scalar_coins_project_block_lanes() {
        let g = from_parts(&[0.4, 0.2], &[(0, 1, 0.7)], DuplicateEdgePolicy::Error).unwrap();
        let table = CoinTable::new(&g);
        for id in [0u64, 1, 63, 64, 130] {
            let coins = ScalarCoins::new(5, id);
            let bk = block_key(5, id / 64);
            let lane = (id % 64) as u32;
            let mut words = 0;
            for v in 0..2 {
                let word =
                    bernoulli_word(table.node_threshold(v), node_key(bk, v), u64::MAX, &mut words);
                assert_eq!(coins.node_coin(&table, v), word >> lane & 1 == 1, "sample {id}");
            }
            let word =
                bernoulli_word(table.edge_threshold(0), edge_key(bk, 0), u64::MAX, &mut words);
            assert_eq!(coins.edge_coin(&table, 0), word >> lane & 1 == 1, "sample {id}");
        }
    }

    #[test]
    fn usage_merge_and_ratio() {
        let mut a = CoinUsage {
            words: 10,
            edge_words_materialized: 3,
            edge_words_skipped: 9,
            superblocks: 2,
            push_steps: 4,
            pull_steps: 2,
            direction_switches: 1,
        };
        let b = CoinUsage {
            words: 5,
            edge_words_materialized: 1,
            edge_words_skipped: 3,
            superblocks: 1,
            push_steps: 1,
            pull_steps: 3,
            direction_switches: 2,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CoinUsage {
                words: 15,
                edge_words_materialized: 4,
                edge_words_skipped: 12,
                superblocks: 3,
                push_steps: 5,
                pull_steps: 5,
                direction_switches: 3,
            }
        );
        assert!((a.lazy_skip_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CoinUsage::default().lazy_skip_ratio(), 0.0);
    }
}
